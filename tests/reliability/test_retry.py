"""retry_with_backoff: policy, determinism, error discipline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CalibrationError, ProbeError, ReproError
from repro.reliability import retry_with_backoff


class Flaky:
    """Fails the first *failures* calls, then returns *value*."""

    def __init__(self, failures: int, value: float = 42.0, exc: type = ProbeError):
        self.failures = failures
        self.value = value
        self.exc = exc
        self.calls = 0

    def __call__(self) -> float:
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc(f"transient #{self.calls}")
        return self.value


class TestPolicy:
    def test_success_first_try_calls_once(self):
        fn = Flaky(0)
        assert retry_with_backoff(fn) == 42.0
        assert fn.calls == 1

    def test_retries_until_success(self):
        fn = Flaky(2)
        assert retry_with_backoff(fn, attempts=3) == 42.0
        assert fn.calls == 3

    def test_exhaustion_reraises_last_error(self):
        fn = Flaky(10)
        with pytest.raises(ProbeError, match="transient #3"):
            retry_with_backoff(fn, attempts=3)
        assert fn.calls == 3

    def test_no_retry_on_non_repro_error(self):
        calls = []

        def bug():
            calls.append(1)
            raise TypeError("a bug, not bad weather")

        with pytest.raises(TypeError):
            retry_with_backoff(bug, attempts=5)
        assert len(calls) == 1

    def test_retry_on_narrows_the_retryable_set(self):
        # CalibrationError is a ReproError but not a ProbeError.
        fn = Flaky(1, exc=CalibrationError)
        with pytest.raises(CalibrationError):
            retry_with_backoff(fn, attempts=3, retry_on=ProbeError)
        assert fn.calls == 1

    def test_retry_on_base_class_catches_subclass(self):
        fn = Flaky(1, exc=ProbeError)
        assert retry_with_backoff(fn, attempts=2, retry_on=ReproError) == 42.0

    def test_attempts_one_is_a_plain_call(self):
        fn = Flaky(1)
        with pytest.raises(ProbeError):
            retry_with_backoff(fn, attempts=1)
        assert fn.calls == 1


class TestValidation:
    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError, match="attempts"):
            retry_with_backoff(lambda: 1, attempts=0)

    def test_rejects_bad_delays(self):
        with pytest.raises(ValueError, match="base_delay"):
            retry_with_backoff(lambda: 1, base_delay=2.0, max_delay=1.0)

    def test_rejects_sub_unit_multiplier(self):
        with pytest.raises(ValueError, match="multiplier"):
            retry_with_backoff(lambda: 1, multiplier=0.5)


class TestJitterDeterminism:
    @staticmethod
    def _observed_delays(seed: int, failures: int = 4) -> list[float]:
        delays: list[float] = []
        retry_with_backoff(
            Flaky(failures),
            attempts=failures + 1,
            seed=seed,
            on_retry=lambda attempt, delay, exc: delays.append(delay),
        )
        return delays

    def test_same_seed_same_schedule(self):
        assert self._observed_delays(7) == self._observed_delays(7)

    def test_different_seed_different_schedule(self):
        assert self._observed_delays(7) != self._observed_delays(8)

    def test_delays_obey_decorrelated_jitter_bounds(self):
        base, cap, mult = 0.05, 2.0, 3.0
        delays = self._observed_delays(3)
        prev = base
        for d in delays:
            assert base <= d <= min(cap, max(base, prev * mult))
            prev = d

    def test_explicit_rng_overrides_seed(self):
        delays_a: list[float] = []
        delays_b: list[float] = []
        for sink in (delays_a, delays_b):
            retry_with_backoff(
                Flaky(3),
                attempts=4,
                rng=np.random.default_rng(123),
                seed=999,  # ignored when rng is given
                on_retry=lambda attempt, delay, exc, sink=sink: sink.append(delay),
            )
        assert delays_a == delays_b

    def test_sleep_receives_each_delay(self):
        slept: list[float] = []
        observed: list[float] = []
        retry_with_backoff(
            Flaky(2),
            attempts=3,
            seed=5,
            sleep=slept.append,
            on_retry=lambda attempt, delay, exc: observed.append(delay),
        )
        assert slept == observed
        assert len(slept) == 2
