"""End-to-end resilience: faulted calibration, churn, zero-fault identity."""

from __future__ import annotations

import pytest

from repro.apps.burst import message_burst
from repro.apps.contender import churned, cpu_bound
from repro.errors import ProbeError
from repro.experiments.calibrate import calibrate_paragon, measure_delay_comp
from repro.experiments.chaos import chaos_experiment
from repro.experiments.runner import repeat_mean
from repro.platforms.sunparagon import SunParagonPlatform
from repro.reliability import (
    NO_FAULTS,
    Confidence,
    FaultInjector,
    FaultPlan,
    supervise,
)
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


class _Host:
    """Minimal platform stand-in for churn tests: just owns a simulator."""

    def __init__(self, sim: Simulator):
        self.sim = sim


class TestFaultedCalibration:
    def test_converges_under_10pct_probe_failures(self, quiet_paragon_spec, paragon_cal):
        """Acceptance: 10% probe-failure calibration converges via retries
        and, being deterministic underneath, lands on the exact tables."""
        injector = FaultInjector(FaultPlan(probe_failure_rate=0.1, seed=101))
        cal = calibrate_paragon(quiet_paragon_spec, p_max=3, injector=injector)
        assert cal == paragon_cal
        # The run was genuinely faulted, not a cache hit of the clean one.
        assert any(k.startswith("probe_failure:") for k in injector.injected)

    def test_exhausted_retries_raise_probe_error(self, quiet_paragon_spec):
        injector = FaultInjector(FaultPlan(probe_failure_rate=0.999999, seed=5))
        with pytest.raises(ProbeError, match="injected probe failure"):
            measure_delay_comp(
                quiet_paragon_spec, p_max=1, injector=injector, retry_attempts=2
            )

    def test_injector_bypasses_the_cache(self, quiet_paragon_spec, paragon_cal):
        """A faulted calibration must not be served from (or poison) the
        fault-free lru_cache."""
        injector = FaultInjector(FaultPlan(probe_failure_rate=0.1, seed=101))
        calibrate_paragon(quiet_paragon_spec, p_max=3, injector=injector)
        assert injector.total_injected > 0  # probes actually ran faulted
        # And the cached fault-free object is still the fixture's.
        assert calibrate_paragon(quiet_paragon_spec, p_max=3) is paragon_cal


class TestChurn:
    def test_no_churn_runs_single_incarnation_with_no_draws(self, sim):
        host = _Host(sim)
        done = []

        def job():
            yield sim.timeout(1.0)
            done.append(sim.now)

        injector = FaultInjector(NO_FAULTS)
        sim.process(churned(host, job, injector), name="churn")
        assert supervise(sim).ok
        assert done == [1.0]
        assert injector.total_injected == 0
        assert injector._streams._cache == {}  # zero-draw invariant

    def test_crashes_and_restarts_counted(self, sim):
        host = _Host(sim)

        def forever():
            while True:
                yield sim.timeout(0.05)

        injector = FaultInjector(FaultPlan(crash_rate=5.0, restart_delay=0.01, seed=3))
        sim.process(churned(host, forever, injector), name="churn")
        report = supervise(sim, until=20.0)
        assert report.ok
        assert injector.injected.get("contender_crash", 0) >= 2

    def test_terminating_contender_ends_churn(self, sim):
        host = _Host(sim)
        done = []

        def job():
            yield sim.timeout(0.5)
            done.append(sim.now)

        # Mean lifetime 1/0.001 = 1000 s: the job wins the race.
        injector = FaultInjector(FaultPlan(crash_rate=0.001, seed=9))
        sim.process(churned(host, job, injector), name="churn")
        assert supervise(sim).ok
        assert done == [0.5]
        assert "contender_crash" not in injector.injected


class TestInterruptSafety:
    def test_crashed_transfer_releases_the_wire(self, quiet_paragon_spec):
        """A process interrupted mid-transfer must not wedge the link."""
        sim = Simulator()
        platform = SunParagonPlatform(sim, spec=quiet_paragon_spec)

        def victim():
            yield from platform.message(50_000, "out", tag="victim")

        proc = sim.process(victim(), name="victim")

        def killer():
            yield sim.timeout(1e-4)  # strike mid-transfer
            proc.interrupt("fault-injected crash")

        sim.process(killer(), name="killer")
        probe = sim.process(
            message_burst(platform, 100, 5, "out", tag="probe"), name="probe"
        )
        report = supervise(sim, until_event=probe, max_events=200_000)
        assert report.ok, report.describe()


class TestZeroFaultIdentity:
    """An armed injector with a zero-rate plan must change nothing."""

    @staticmethod
    def _burst_time(spec, injector) -> float:
        sim = Simulator()
        platform = SunParagonPlatform(sim, spec=spec)
        if injector is not None:
            injector.arm(platform)
        probe = sim.process(message_burst(platform, 200, 50, "out"), name="probe")
        return float(sim.run_until(probe))

    def test_armed_no_faults_is_byte_identical(self, quiet_paragon_spec):
        injector = FaultInjector(FaultPlan.uniform(0.0))
        assert self._burst_time(quiet_paragon_spec, injector) == self._burst_time(
            quiet_paragon_spec, None
        )
        assert injector.total_injected == 0

    def test_armed_faulty_plan_does_perturb(self, quiet_paragon_spec):
        injector = FaultInjector(
            FaultPlan(link_degrade_rate=0.5, link_degrade_factor=4.0, seed=2)
        )
        assert self._burst_time(quiet_paragon_spec, injector) > self._burst_time(
            quiet_paragon_spec, None
        )
        assert injector.injected.get("wire_degrade", 0) > 0

    def test_zero_rate_calibration_hits_identical_tables(
        self, quiet_paragon_spec, paragon_cal
    ):
        injector = FaultInjector(FaultPlan.uniform(0.0))
        cal = calibrate_paragon(quiet_paragon_spec, p_max=3, injector=injector)
        assert cal == paragon_cal


class TestRepeatMeanRetry:
    def test_retries_with_resalted_fork(self):
        calls: list[int] = []

        def flaky(streams: RandomStreams) -> float:
            calls.append(streams.seed)
            if len(calls) == 1:
                raise ProbeError("first replication attempt fails")
            return float(streams.seed)

        rep = repeat_mean(flaky, repetitions=2, seed=4, retry_attempts=3)
        assert rep.n == 2
        assert len(calls) == 3  # one retry for replication 0
        assert calls[0] != calls[1]  # the retry used a re-salted fork

    def test_default_is_fail_fast(self):
        def flaky(streams: RandomStreams) -> float:
            raise ProbeError("nope")

        with pytest.raises(ProbeError):
            repeat_mean(flaky, repetitions=1, seed=4)

    def test_non_repro_errors_propagate(self):
        def bug(streams: RandomStreams) -> float:
            raise TypeError("a bug")

        with pytest.raises(TypeError):
            repeat_mean(bug, repetitions=1, seed=4, retry_attempts=5)

    def test_deterministic_across_calls(self):
        def measure(streams: RandomStreams) -> float:
            return float(streams.get("x").random())

        a = repeat_mean(measure, repetitions=3, seed=8, retry_attempts=2)
        b = repeat_mean(measure, repetitions=3, seed=8, retry_attempts=2)
        assert a.values == b.values


class TestChaosExperiment:
    @pytest.fixture(scope="class")
    def result(self, quiet_paragon_spec):
        return chaos_experiment(spec=quiet_paragon_spec, quick=True)

    def test_shape_and_registry(self, result):
        assert result.experiment == "chaos"
        assert len(result.headers) == 7
        assert all(len(row) == 7 for row in result.rows)
        assert result.rows[0][0] == 0.0  # control row first

    def test_faults_injected_only_at_nonzero_rates(self, result):
        by_rate = {row[0]: row[6] for row in result.rows}
        assert by_rate[0.0] == 0
        assert any(count > 0 for rate, count in by_rate.items() if rate > 0)

    def test_fallback_prediction_is_analytic_and_never_raises(self, result):
        assert result.metrics["degradation_events"] >= 1
        assert "ANALYTIC" in result.title
        # Fallback column is the p+1 law times the probe work: finite, > 0.
        assert all(row[4] > 0 for row in result.rows)

    def test_renders(self, result):
        text = result.render()
        assert "fault rate" in text
        assert "fallback" in text
