"""Circuit-breaker tests: state machine, budget, retry/calibration wiring."""

from __future__ import annotations

import pytest

from repro.errors import CircuitOpenError, ProbeError
from repro.obs import MetricsRegistry, ObsContext, Tracer, observed
from repro.reliability import CircuitBreaker
from repro.reliability.breaker import CLOSED, HALF_OPEN, OPEN
from repro.reliability.retry import retry_with_backoff


class FakeClock:
    """Injectable monotonic clock the tests advance by hand."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def make(clock: FakeClock, **kwargs) -> CircuitBreaker:
    kwargs.setdefault("failure_threshold", 3)
    kwargs.setdefault("recovery_time", 10.0)
    return CircuitBreaker(clock=clock, **kwargs)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"recovery_time": -1.0},
            {"half_open_max": 0},
            {"budget": -0.5},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker = make(FakeClock())
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_trips_after_consecutive_failures(self):
        breaker = make(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 1
        assert not breaker.allow()
        assert breaker.rejections == 1

    def test_success_resets_failure_count(self):
        breaker = make(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_after_recovery_window(self):
        clock = FakeClock()
        breaker = make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(9.9)
        assert breaker.state == OPEN
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN

    def test_half_open_admits_limited_trials(self):
        clock = FakeClock()
        breaker = make(clock, half_open_max=1)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        assert not breaker.allow()  # only one trial slot

    def test_half_open_success_closes(self):
        clock = FakeClock()
        breaker = make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_half_open_failure_retrips_and_restarts_window(self):
        clock = FakeClock()
        breaker = make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.trips == 2
        assert breaker.state == OPEN
        clock.advance(9.0)
        assert breaker.state == OPEN  # window restarted at the re-trip
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN


class TestBudget:
    def test_budget_exhaustion_opens_permanently(self):
        clock = FakeClock()
        breaker = make(clock, budget=60.0)
        assert not breaker.exhausted
        assert breaker.allow()
        clock.advance(60.0)
        assert breaker.exhausted
        assert breaker.state == OPEN
        assert not breaker.allow()
        # No recovery window out of exhaustion — permanently open.
        clock.advance(1e6)
        assert not breaker.allow()

    def test_budget_none_never_exhausts(self):
        clock = FakeClock()
        breaker = make(clock)
        clock.advance(1e9)
        assert not breaker.exhausted

    def test_budget_boundary_is_inclusive(self):
        # Exactly at the budget counts as spent: allow() must reject.
        clock = FakeClock()
        breaker = make(clock, budget=20.0)
        clock.advance(20.0)
        assert breaker.exhausted
        assert not breaker.allow()

    def test_success_landing_exactly_at_budget_cannot_close(self):
        # A half-open probe admitted before the budget whose success
        # lands exactly when it runs out must not resurrect the
        # breaker — or book a breaker.closed the state never reflects.
        ctx = ObsContext(tracer=Tracer(seed=3), metrics=MetricsRegistry())
        clock = FakeClock()
        with observed(ctx):
            breaker = make(clock, failure_threshold=1, budget=20.0)
            breaker.record_failure()  # trips at t=0
            clock.advance(10.0)
            assert breaker.allow()  # half-open probe admitted at t=10
            clock.advance(10.0)  # probe finishes exactly at the budget
            breaker.record_success()
            assert breaker.state == OPEN
            assert not breaker.allow()
            clock.advance(1e6)
            assert not breaker.allow()
        assert ctx.snapshot().counters.get("breaker.closed", 0) == 0

    def test_failure_past_budget_does_not_double_count_trips(self):
        clock = FakeClock()
        breaker = make(clock, failure_threshold=1, budget=20.0)
        breaker.record_failure()
        assert breaker.trips == 1
        clock.advance(20.0)
        breaker.record_failure()
        assert breaker.trips == 1  # terminal state, not a new trip


class TestCall:
    def test_call_passes_through_and_records(self):
        breaker = make(FakeClock())
        assert breaker.call(lambda: 42) == 42
        assert breaker.state == CLOSED

    def test_call_records_failure_and_reraises(self):
        breaker = make(FakeClock(), failure_threshold=1)
        with pytest.raises(ProbeError):
            breaker.call(lambda: (_ for _ in ()).throw(ProbeError("boom")))
        assert breaker.state == OPEN

    def test_open_call_raises_circuit_open_with_label(self):
        breaker = make(FakeClock(), failure_threshold=1)
        breaker.record_failure()
        with pytest.raises(CircuitOpenError, match="pingpong"):
            breaker.call(lambda: 1, label="pingpong")

    def test_circuit_open_is_a_probe_error(self):
        # The taxonomy contract: breaker rejections flow through the
        # same except-clauses that catch failed probes.
        assert issubclass(CircuitOpenError, ProbeError)


class TestRetryIntegration:
    def test_open_breaker_abandons_retry_schedule(self):
        calls = []

        def fn():
            calls.append(1)
            raise ProbeError("persistent")

        breaker = make(FakeClock(), failure_threshold=2)
        with pytest.raises(CircuitOpenError, match="attempt 3/5"):
            retry_with_backoff(fn, attempts=5, retry_on=ProbeError, breaker=breaker)
        # Two attempts ran, tripped the breaker, third was rejected.
        assert len(calls) == 2
        assert breaker.trips == 1

    def test_breaker_success_keeps_schedule_alive(self):
        attempts = []

        def fn():
            attempts.append(1)
            if len(attempts) < 2:
                raise ProbeError("transient")
            return "ok"

        breaker = make(FakeClock(), failure_threshold=3)
        assert (
            retry_with_backoff(fn, attempts=3, retry_on=ProbeError, breaker=breaker)
            == "ok"
        )
        assert breaker.state == CLOSED

    def test_rejection_chains_last_error(self):
        def fn():
            raise ProbeError("root cause")

        breaker = make(FakeClock(), failure_threshold=1)
        with pytest.raises(CircuitOpenError) as info:
            retry_with_backoff(fn, attempts=4, retry_on=ProbeError, breaker=breaker)
        assert isinstance(info.value.__cause__, ProbeError)


class TestObsCounters:
    def test_trip_and_rejection_counters(self):
        ctx = ObsContext(tracer=Tracer(seed=9), metrics=MetricsRegistry())
        clock = FakeClock()
        with observed(ctx):
            breaker = make(clock, failure_threshold=1)
            breaker.record_failure()
            breaker.allow()
            clock.advance(10.0)
            breaker.allow()
            breaker.record_success()
        counters = ctx.snapshot().counters
        assert counters.get("breaker.trips") == 1
        assert counters.get("breaker.rejections") == 1
        assert counters.get("breaker.half_open") == 1
        assert counters.get("breaker.closed") == 1


class TestResilientCalibration:
    def test_faulty_platform_degrades_to_analytic(self):
        from repro.experiments.calibrate import calibrate_paragon_resilient
        from repro.platforms.specs import DEFAULT_SUNPARAGON
        from repro.reliability.degrade import Confidence
        from repro.reliability.faults import FaultInjector, FaultPlan

        injector = FaultInjector(FaultPlan(seed=7, probe_failure_rate=0.999999))
        breaker = CircuitBreaker(failure_threshold=2, recovery_time=3600.0)
        cal, confidence = calibrate_paragon_resilient(
            DEFAULT_SUNPARAGON,
            p_max=1,
            sizes=(16, 256, 768, 1024, 1536, 2048),
            injector=injector,
            retry_attempts=2,
            breaker=breaker,
        )
        assert cal is None
        assert confidence is Confidence.ANALYTIC
        assert breaker.trips >= 1

    def test_healthy_platform_stays_calibrated(self):
        from repro.experiments.calibrate import calibrate_paragon_resilient
        from repro.platforms.specs import DEFAULT_SUNPARAGON
        from repro.reliability.degrade import Confidence

        breaker = CircuitBreaker(failure_threshold=2, recovery_time=3600.0)
        cal, confidence = calibrate_paragon_resilient(
            DEFAULT_SUNPARAGON,
            p_max=1,
            sizes=(16, 256, 768, 1024, 1536, 2048),
            breaker=breaker,
        )
        assert cal is not None
        assert confidence is Confidence.CALIBRATED
        assert breaker.trips == 0
