"""Confidence vocabulary and the SlowdownManager fallback chain."""

from __future__ import annotations

import pytest

from repro.core.params import DelayTable, SizedDelayTable
from repro.core.prediction import (
    BackendTaskCosts,
    decide_placement,
    decide_placement_tagged,
)
from repro.core.runtime import SlowdownManager
from repro.core.scheduler import MappingProblem, best_mapping, best_mapping_tagged
from repro.core.workload import ApplicationProfile
from repro.reliability import (
    Confidence,
    DegradationLog,
    TaggedSlowdown,
    analytic_comm_slowdown,
    analytic_comp_slowdown,
    combine_confidence,
)

DELAY_COMP = DelayTable((0.5, 1.1, 1.8))
DELAY_COMM = DelayTable((0.2, 0.7, 1.3))
SIZED = SizedDelayTable(
    tables={
        1: DelayTable((0.1, 0.25, 0.4)),
        500: DelayTable((0.4, 0.9, 1.4)),
    }
)


def profile(name: str, fraction: float, size: float = 200) -> ApplicationProfile:
    return ApplicationProfile(name, fraction, size if fraction > 0 else 0.0)


class TestVocabulary:
    def test_confidence_orders_analytic_lowest(self):
        assert Confidence.ANALYTIC < Confidence.EXTRAPOLATED < Confidence.CALIBRATED

    def test_combine_is_the_minimum(self):
        assert (
            combine_confidence(Confidence.CALIBRATED, Confidence.ANALYTIC)
            is Confidence.ANALYTIC
        )
        assert combine_confidence() is Confidence.CALIBRATED

    def test_tagged_slowdown_validates_and_floats(self):
        t = TaggedSlowdown(2.5, Confidence.EXTRAPOLATED)
        assert float(t) == 2.5
        with pytest.raises(ValueError):
            TaggedSlowdown(0.5, Confidence.CALIBRATED)

    def test_degradation_log_aggregations(self):
        log = DegradationLog()
        log.record("comm", Confidence.ANALYTIC)
        log.record("comm", Confidence.ANALYTIC)
        log.record("comp", Confidence.EXTRAPOLATED)
        assert log.total == 3
        assert log.by_level() == {Confidence.ANALYTIC: 2, Confidence.EXTRAPOLATED: 1}
        assert log.by_source() == {"comm": 2, "comp": 1}
        assert log.snapshot()[("comm", Confidence.ANALYTIC)] == 2

    def test_analytic_forms(self):
        assert analytic_comp_slowdown(3) == 4.0
        assert analytic_comm_slowdown([0.3, 0.5]) == pytest.approx(1.8)
        with pytest.raises(ValueError):
            analytic_comp_slowdown(-1)
        with pytest.raises(ValueError):
            analytic_comm_slowdown([1.5])


class TestFallbackChain:
    def test_calibrated_within_range(self):
        mgr = SlowdownManager(DELAY_COMP, DELAY_COMM, SIZED)
        mgr.arrive(profile("a", 0.4))
        comm = mgr.comm_slowdown_tagged()
        comp = mgr.comp_slowdown_tagged()
        assert comm.confidence is Confidence.CALIBRATED
        assert comp.confidence is Confidence.CALIBRATED
        # Tagged values agree exactly with the plain calibrated queries.
        assert comm.value == mgr.comm_slowdown()
        assert comp.value == mgr.comp_slowdown()
        assert mgr.degradations.total == 0

    def test_extrapolated_beyond_table_range(self):
        mgr = SlowdownManager(DELAY_COMP, DELAY_COMM, SIZED)
        for k in range(4):  # tables calibrated to max_level 3
            mgr.arrive(profile(f"a{k}", 0.4))
        comm = mgr.comm_slowdown_tagged()
        comp = mgr.comp_slowdown_tagged()
        assert comm.confidence is Confidence.EXTRAPOLATED
        assert comp.confidence is Confidence.EXTRAPOLATED
        assert comm.value > 1.0 and comp.value > 1.0
        assert mgr.degradations.by_level() == {Confidence.EXTRAPOLATED: 2}
        # The strict plain query raises for the same population ...
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            mgr.comm_slowdown()
        # ... while the lenient one agrees with the tagged value.
        lenient = SlowdownManager(DELAY_COMP, DELAY_COMM, SIZED, extrapolate=True)
        for k in range(4):
            lenient.arrive(profile(f"a{k}", 0.4))
        assert comm.value == lenient.comm_slowdown()

    def test_analytic_without_tables(self):
        mgr = SlowdownManager(None, None, None)
        mgr.arrive(profile("a", 0.3))
        mgr.arrive(profile("b", 0.6))
        comm = mgr.comm_slowdown_tagged()
        comp = mgr.comp_slowdown_tagged()
        assert comm.confidence is Confidence.ANALYTIC
        assert comp.confidence is Confidence.ANALYTIC
        assert comm.value == pytest.approx(1.0 + 0.3 + 0.6)
        assert comp.value == pytest.approx(2 + 1)  # p + 1
        assert mgr.degradations.by_level() == {Confidence.ANALYTIC: 2}

    def test_plain_queries_degrade_when_tables_missing(self):
        """Missing tables never raise — not even on the plain API."""
        mgr = SlowdownManager(None, None, None)
        mgr.arrive(profile("a", 0.5))
        assert mgr.comm_slowdown() == pytest.approx(1.5)
        assert mgr.comp_slowdown() == pytest.approx(2.0)

    def test_empty_population_is_calibrated_unity(self):
        mgr = SlowdownManager(None, None, None)
        assert mgr.comm_slowdown_tagged() == TaggedSlowdown(1.0, Confidence.CALIBRATED)
        assert mgr.comp_slowdown_tagged() == TaggedSlowdown(1.0, Confidence.CALIBRATED)
        assert mgr.degradations.total == 0


class TestTaggedPrediction:
    COSTS = BackendTaskCosts(dcomp=1.0, didle=0.2, dserial=0.6)

    def test_matches_untagged_decision(self):
        comp = TaggedSlowdown(2.0, Confidence.CALIBRATED)
        comm = TaggedSlowdown(1.5, Confidence.CALIBRATED)
        tagged = decide_placement(3.0, self.COSTS, 0.4, 0.4, comp, comm)
        plain = decide_placement(3.0, self.COSTS, 0.4, 0.4, 2.0, 1.5)
        assert tagged.prediction == plain.prediction
        assert tagged.confidence is Confidence.CALIBRATED
        assert plain.confidence is Confidence.CALIBRATED  # bare floats are asserted
        assert tagged.offload == plain.offload
        assert tagged.best_time == plain.best_time

    def test_confidence_is_weakest_input(self):
        comp = TaggedSlowdown(2.0, Confidence.CALIBRATED)
        comm = TaggedSlowdown(1.5, Confidence.ANALYTIC)
        tagged = decide_placement(3.0, self.COSTS, 0.4, 0.4, comp, comm)
        assert tagged.confidence is Confidence.ANALYTIC

    def test_backend_serial_override_counts(self):
        comp = TaggedSlowdown(2.0, Confidence.CALIBRATED)
        comm = TaggedSlowdown(1.5, Confidence.CALIBRATED)
        serial = TaggedSlowdown(4.0, Confidence.EXTRAPOLATED)
        tagged = decide_placement(
            3.0, self.COSTS, 0.4, 0.4, comp, comm, backend_serial_slowdown=serial
        )
        assert tagged.confidence is Confidence.EXTRAPOLATED
        assert tagged.prediction.t_backend == pytest.approx(
            max(1.2, 0.6 * 4.0)
        )

    def test_deprecated_alias_warns_and_agrees(self):
        comp = TaggedSlowdown(2.0, Confidence.CALIBRATED)
        comm = TaggedSlowdown(1.5, Confidence.EXTRAPOLATED)
        with pytest.warns(DeprecationWarning):
            old = decide_placement_tagged(3.0, self.COSTS, 0.4, 0.4, comp, comm)
        new = decide_placement(3.0, self.COSTS, 0.4, 0.4, comp, comm)
        assert old == new


class TestTaggedMapping:
    PROBLEM = MappingProblem(
        tasks=("t1", "t2"),
        machines=("m1", "m2"),
        exec_time={"t1": {"m1": 4.0, "m2": 10.0}, "t2": {"m1": 8.0, "m2": 2.0}},
        comm_time={("m1", "m2"): 3.0, ("m2", "m1"): 3.0},
    )

    def test_matches_untagged_search(self):
        tagged = best_mapping(
            self.PROBLEM,
            {"m1": TaggedSlowdown(3.0, Confidence.CALIBRATED)},
            TaggedSlowdown(1.0, Confidence.CALIBRATED),
        )
        plain = best_mapping(self.PROBLEM.with_slowdowns({"m1": 3.0}, 1.0))
        assert tagged.result == plain.result
        assert tagged.assignment == plain.assignment
        assert tagged.elapsed == plain.elapsed
        assert tagged.confidence is Confidence.CALIBRATED
        assert plain.confidence is Confidence.CALIBRATED

    def test_analytic_inputs_still_rank(self):
        tagged = best_mapping(
            self.PROBLEM,
            {
                "m1": TaggedSlowdown(analytic_comp_slowdown(2), Confidence.ANALYTIC),
                "m2": TaggedSlowdown(1.0, Confidence.CALIBRATED),
            },
        )
        assert tagged.confidence is Confidence.ANALYTIC
        assert tagged.assignment  # a ranking was produced regardless

    def test_per_pair_comm_slowdowns(self):
        tagged = best_mapping(
            self.PROBLEM,
            {"m1": TaggedSlowdown(1.0, Confidence.CALIBRATED)},
            {
                ("m1", "m2"): TaggedSlowdown(2.0, Confidence.EXTRAPOLATED),
                ("m2", "m1"): TaggedSlowdown(2.0, Confidence.EXTRAPOLATED),
            },
        )
        assert tagged.confidence is Confidence.EXTRAPOLATED

    def test_deprecated_alias_warns_and_agrees(self):
        slowdowns = {"m1": TaggedSlowdown(3.0, Confidence.EXTRAPOLATED)}
        with pytest.warns(DeprecationWarning):
            old = best_mapping_tagged(self.PROBLEM, slowdowns)
        assert old == best_mapping(self.PROBLEM, slowdowns)
