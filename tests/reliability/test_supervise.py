"""supervise(): watchdogs, structured outcomes, no escaping exceptions."""

from __future__ import annotations

import pytest

from repro.errors import DeadlockError, WatchdogError
from repro.reliability import FailureReport, Outcome, supervise
from repro.sim.engine import Simulator


def ticker(sim, period=1.0):
    while True:
        yield sim.timeout(period)


class TestCompletion:
    def test_empty_simulator_completes(self, sim):
        report = supervise(sim)
        assert report.ok
        assert report.outcome is Outcome.COMPLETED
        assert report.events_processed == 0

    def test_terminating_process_completes(self, sim):
        def proc():
            yield sim.timeout(1.0)
            yield sim.timeout(2.0)

        sim.process(proc(), name="p")
        report = supervise(sim)
        assert report.ok
        assert sim.now == 3.0
        assert report.sim_time == 3.0
        assert report.events_processed > 0
        assert report.raise_if_failed() is report

    def test_until_horizon_is_success(self, sim):
        sim.process(ticker(sim), name="bg")
        report = supervise(sim, until=5.5)
        assert report.ok
        assert sim.now == 5.5

    def test_until_event_tolerates_background(self, sim):
        sim.process(ticker(sim, 0.1), name="bg")

        def probe():
            yield sim.timeout(1.0)
            return 17.0

        proc = sim.process(probe(), name="probe")
        report = supervise(sim, until_event=proc)
        assert report.ok
        assert proc.value == 17.0

    def test_until_in_the_past_is_error(self, sim):
        sim.process(ticker(sim), name="bg")
        supervise(sim, until=2.0)
        report = supervise(sim, until=1.0)
        assert report.outcome is Outcome.ERROR
        assert isinstance(report.error, ValueError)


class TestDeadlock:
    def test_stuck_process_reports_deadlock(self, sim):
        def stuck():
            yield sim.event()  # never triggered

        sim.process(stuck(), name="victim")
        report = supervise(sim)
        assert not report.ok
        assert report.outcome is Outcome.DEADLOCK
        assert isinstance(report.error, DeadlockError)
        assert "victim" in report.pending
        assert report.pending_count == 1
        with pytest.raises(DeadlockError):
            report.raise_if_failed()

    def test_until_event_never_firing_is_deadlock(self, sim):
        target = sim.event()
        report = supervise(sim, until_event=target)
        assert report.outcome is Outcome.DEADLOCK


class TestWatchdogs:
    def test_event_budget(self, sim):
        sim.process(ticker(sim, 0.001), name="bg")
        report = supervise(sim, max_events=50)
        assert report.outcome is Outcome.EVENT_BUDGET_EXCEEDED
        assert report.events_processed == 50
        assert report.queue_size > 0

    def test_sim_time_budget_is_a_failure(self, sim):
        sim.process(ticker(sim, 10.0), name="bg")
        report = supervise(sim, max_sim_time=25.0)
        assert report.outcome is Outcome.SIMTIME_EXCEEDED
        assert report.sim_time <= 25.0

    def test_wall_clock_budget(self, sim):
        sim.process(ticker(sim, 0.001), name="bg")
        report = supervise(sim, max_wall_seconds=0.0)
        assert report.outcome is Outcome.WALLCLOCK_EXCEEDED

    def test_watchdog_raise_carries_report(self, sim):
        sim.process(ticker(sim), name="bg")
        report = supervise(sim, max_events=3)
        with pytest.raises(WatchdogError) as err:
            report.raise_if_failed()
        assert err.value.report is report


class TestErrors:
    def test_detached_process_failure_stays_silent(self, sim):
        """Engine semantics: a detached process may fail without ending
        the run (churned contenders die of unhandled Interrupts). The
        failure is observed by supervising the process as until_event."""

        def bad():
            yield sim.timeout(1.0)
            raise RuntimeError("boom")

        sim.process(bad(), name="bad")
        report = supervise(sim)
        assert report.ok

    def test_until_event_failure_is_packaged(self, sim):
        def bad():
            yield sim.timeout(1.0)
            raise RuntimeError("probe died")

        proc = sim.process(bad(), name="bad")
        report = supervise(sim, until_event=proc)
        assert report.outcome is Outcome.ERROR
        assert isinstance(report.error, RuntimeError)


class TestReport:
    def test_describe_mentions_outcome_and_pending(self, sim):
        def stuck():
            yield sim.event()

        sim.process(stuck(), name="victim")
        report = supervise(sim)
        text = report.describe()
        assert "deadlock" in text
        assert "victim" in text

    def test_from_deadlock_round_trip(self):
        exc = DeadlockError(
            "stuck", sim_time=4.0, pending=("a", "b"), pending_count=2, queue_size=0
        )
        report = FailureReport.from_deadlock(exc, events_processed=9, wall_seconds=0.1)
        assert report.outcome is Outcome.DEADLOCK
        assert report.sim_time == 4.0
        assert report.pending == ("a", "b")
        assert report.error is exc

    def test_equivalence_with_plain_run(self, quiet_paragon_spec):
        """Supervision must not change what the simulation computes."""
        from repro.apps.pingpong import pingpong_burst
        from repro.platforms.sunparagon import SunParagonPlatform

        def burst_time(use_supervise: bool) -> float:
            sim = Simulator()
            platform = SunParagonPlatform(sim, spec=quiet_paragon_spec)
            probe = sim.process(pingpong_burst(platform, 100, 20), name="probe")
            if use_supervise:
                supervise(sim, until_event=probe).raise_if_failed()
                return float(probe.value)
            return float(sim.run_until(probe))

        assert burst_time(True) == burst_time(False)
