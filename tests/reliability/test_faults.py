"""FaultPlan/FaultInjector: validation, determinism, zero-draw invariant."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.reliability import NO_FAULTS, FaultInjector, FaultPlan


class TestFaultPlan:
    def test_default_plan_is_inactive(self):
        assert not NO_FAULTS.active
        assert not FaultPlan().active

    def test_uniform_sets_every_bernoulli_site(self):
        plan = FaultPlan.uniform(0.1, seed=7)
        assert plan.seed == 7
        assert plan.link_degrade_rate == 0.1
        assert plan.link_drop_rate == 0.1
        assert plan.cpu_stall_rate == 0.1
        assert plan.crash_rate == 0.1
        assert plan.probe_failure_rate == 0.1
        assert plan.active

    def test_uniform_zero_is_inactive(self):
        assert not FaultPlan.uniform(0.0).active

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"link_degrade_rate": -0.1},
            {"link_drop_rate": 1.5},
            {"cpu_stall_rate": 2.0},
            {"link_degrade_factor": 0.5},
            {"cpu_stall_factor": 0.9},
            {"crash_rate": -1.0},
            {"restart_delay": -0.1},
            {"max_retransmits": -1},
        ],
    )
    def test_rejects_out_of_range(self, kwargs):
        with pytest.raises(ModelError):
            FaultPlan(**kwargs)

    def test_rejects_certain_probe_failure(self):
        with pytest.raises(ModelError, match="never converge"):
            FaultPlan(probe_failure_rate=1.0)


class TestZeroDrawInvariant:
    """Inactive sites must not consume random numbers."""

    def test_inactive_injector_perturbs_nothing(self):
        inj = FaultInjector(NO_FAULTS)
        assert inj.perturb_wire(100, 0.5) == 0.5
        assert inj.perturb_cpu(1.25) == 1.25
        assert inj.crash_lifetime() is None
        assert inj.probe_fails() is False
        assert inj.total_injected == 0
        # No stream was ever materialised, hence no draw happened.
        assert inj._streams._cache == {}

    def test_active_injector_draws_only_from_active_sites(self):
        inj = FaultInjector(FaultPlan(cpu_stall_rate=0.5, seed=3))
        inj.perturb_wire(100, 0.5)
        for _ in range(8):
            inj.perturb_cpu(1.0)
        names = set(inj._streams._cache)
        assert "faults/cpu" in names
        assert "faults/wire" not in names
        assert "faults/wire-drop" not in names


class TestDeterminism:
    def _schedule(self, seed: int) -> list[float]:
        inj = FaultInjector(FaultPlan.uniform(0.3, seed=seed))
        out = [inj.perturb_wire(10, 0.1) for _ in range(20)]
        out += [inj.perturb_cpu(1.0) for _ in range(20)]
        out += [inj.crash_lifetime() for _ in range(5)]
        return out

    def test_same_seed_same_schedule(self):
        assert self._schedule(11) == self._schedule(11)

    def test_different_seed_different_schedule(self):
        assert self._schedule(11) != self._schedule(12)


class TestFaultSites:
    def test_degrade_multiplies_occupancy(self):
        inj = FaultInjector(FaultPlan(link_degrade_rate=1.0, link_degrade_factor=3.0))
        assert inj.perturb_wire(10, 0.2) == pytest.approx(0.6)
        assert inj.injected["wire_degrade"] == 1

    def test_drops_capped_by_max_retransmits(self):
        # Drop "rate" ~1 is not allowed for probes but is for the wire;
        # use 0.999... to force drops and hit the retransmit cap.
        inj = FaultInjector(FaultPlan(link_drop_rate=0.999999, max_retransmits=2))
        total = inj.perturb_wire(10, 0.1)
        # Original + exactly max_retransmits retransmissions.
        assert total == pytest.approx(0.1 * 3)
        assert inj.injected["wire_drop"] == 2

    def test_cpu_stall_inflates_work(self):
        inj = FaultInjector(FaultPlan(cpu_stall_rate=1.0, cpu_stall_factor=2.0))
        assert inj.perturb_cpu(0.5) == pytest.approx(1.0)
        assert inj.injected["cpu_stall"] == 1

    def test_crash_lifetime_scales_inversely_with_rate(self):
        fast = FaultInjector(FaultPlan(crash_rate=10.0, seed=1))
        slow = FaultInjector(FaultPlan(crash_rate=0.01, seed=1))
        n = 200
        mean_fast = sum(fast.crash_lifetime() for _ in range(n)) / n
        mean_slow = sum(slow.crash_lifetime() for _ in range(n)) / n
        assert mean_fast < 1.0 < mean_slow

    def test_restart_pause_zero_when_disabled(self):
        inj = FaultInjector(FaultPlan(crash_rate=1.0, restart_delay=0.0))
        assert inj.restart_pause() == 0.0

    def test_probe_fails_counts_by_label(self):
        inj = FaultInjector(FaultPlan(probe_failure_rate=0.999999, seed=2))
        assert inj.probe_fails("delay_comp/1")
        assert inj.injected["probe_failure:delay_comp/1"] == 1

    def test_counters_aggregate(self):
        inj = FaultInjector(FaultPlan(cpu_stall_rate=1.0))
        for _ in range(3):
            inj.perturb_cpu(1.0)
        assert inj.total_injected == 3


class TestArm:
    def test_arm_hooks_link_and_cpu(self, quiet_paragon_spec):
        from repro.platforms.sunparagon import SunParagonPlatform
        from repro.sim.engine import Simulator

        sim = Simulator()
        platform = SunParagonPlatform(sim, spec=quiet_paragon_spec)
        inj = FaultInjector(FaultPlan.uniform(0.1))
        inj.arm(platform)
        assert platform.link.faults is inj
        assert platform.frontend_cpu.faults is inj

    def test_arm_tolerates_bare_objects(self):
        inj = FaultInjector(NO_FAULTS)
        inj.arm(object())  # nothing to hook; must not raise
