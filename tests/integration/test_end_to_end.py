"""End-to-end integration: calibrate → predict → simulate → compare.

These tests exercise the full pipeline the paper describes — run the
system test suite once, take user-style workload descriptions, produce
slowdown-adjusted predictions, and check them against independent
simulated measurements — across both platforms and the extensions.
"""

from __future__ import annotations

import pytest

from repro.apps.burst import message_burst
from repro.apps.contender import alternating, cpu_bound
from repro.apps.program import frontend_program
from repro.core.commcost import dedicated_comm_cost
from repro.core.datasets import DataSet
from repro.core.prediction import predict_backend_time, predict_comm_cost, predict_frontend_time
from repro.core.runtime import SlowdownManager
from repro.core.slowdown import cm2_slowdown, paragon_comm_slowdown, paragon_comp_slowdown
from repro.core.workload import ApplicationProfile
from repro.ext.timevarying import LoadTimeline, predict_elapsed
from repro.platforms.suncm2 import SunCM2Platform
from repro.platforms.sunparagon import SunParagonPlatform
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.traces.analysis import measure_dedicated_cm2
from repro.traces.gauss import gauss_cm2_trace
from repro.traces.sor import sor_sun_work


class TestCM2Pipeline:
    def test_communication_prediction(self, cm2_cal, quiet_cm2_spec):
        """Calibrated dcomm x (p+1) vs an independent simulated run."""
        m, p = 320, 2
        dataset = [DataSet(count=m, size=float(m))]
        dcomm = dedicated_comm_cost(dataset, cm2_cal.params_out) + dedicated_comm_cost(
            dataset, cm2_cal.params_in
        )
        predicted = predict_comm_cost(dcomm, cm2_slowdown(p))

        sim = Simulator()
        platform = SunCM2Platform(sim, spec=quiet_cm2_spec)
        for i in range(p):
            platform.spawn(cpu_bound(platform, tag=f"h{i}"), name=f"h{i}")

        def probe():
            elapsed = yield from platform.transfer(m, count=m, tag="probe")
            elapsed2 = yield from platform.transfer(m, count=m, tag="probe")
            return elapsed + elapsed2

        actual = sim.run_until(sim.process(probe()))
        assert predicted == pytest.approx(actual, rel=0.15)

    def test_computation_prediction_both_regimes(self, quiet_cm2_spec):
        """The max() formula tracks the simulator on both sides of the
        Figure 3 crossover."""
        for m in (60, 320):
            trace = gauss_cm2_trace(m, quiet_cm2_spec)
            dedicated = measure_dedicated_cm2(trace, quiet_cm2_spec)
            predicted = predict_backend_time(dedicated.costs, cm2_slowdown(3))

            sim = Simulator()
            platform = SunCM2Platform(sim, spec=quiet_cm2_spec)
            for i in range(3):
                platform.spawn(cpu_bound(platform, tag=f"h{i}"), name=f"h{i}")
            probe = sim.process(platform.run_trace(trace, tag="probe"))
            actual = sim.run_until(probe).elapsed
            assert predicted == pytest.approx(actual, rel=0.15)


class TestParagonPipeline:
    CONTENDERS = (
        ApplicationProfile("c1", comm_fraction=0.3, message_size=200),
        ApplicationProfile("c2", comm_fraction=0.6, message_size=200),
    )

    def _with_contenders(self, spec, streams):
        sim = Simulator()
        platform = SunParagonPlatform(sim, spec=spec, streams=streams)
        for k, prof in enumerate(self.CONTENDERS):
            platform.spawn(
                alternating(
                    platform, prof.comm_fraction, prof.message_size,
                    platform.rng(f"c{k}"), tag=prof.name,
                ),
                name=prof.name,
            )
        return sim, platform

    def test_communication_prediction(self, paragon_cal, quiet_paragon_spec):
        slowdown = paragon_comm_slowdown(
            list(self.CONTENDERS), paragon_cal.delay_comp, paragon_cal.delay_comm
        )
        size, count = 256, 400
        dcomm = dedicated_comm_cost([DataSet(count, size)], paragon_cal.params_out)
        predicted = predict_comm_cost(dcomm, slowdown)

        totals = []
        for rep in range(3):
            sim, platform = self._with_contenders(
                quiet_paragon_spec, RandomStreams(100 + rep)
            )
            probe = sim.process(message_burst(platform, size, count, "out"))
            totals.append(sim.run_until(probe))
        actual = sum(totals) / len(totals)
        assert predicted == pytest.approx(actual, rel=0.30)

    def test_computation_prediction(self, paragon_cal, quiet_paragon_spec):
        slowdown = paragon_comp_slowdown(
            list(self.CONTENDERS), paragon_cal.delay_comm_sized
        )
        work = sor_sun_work(250, 30, quiet_paragon_spec)
        predicted = predict_frontend_time(work, slowdown)

        totals = []
        for rep in range(3):
            sim, platform = self._with_contenders(
                quiet_paragon_spec, RandomStreams(200 + rep)
            )
            probe = sim.process(frontend_program(platform, work))
            totals.append(sim.run_until(probe))
        actual = sum(totals) / len(totals)
        assert predicted == pytest.approx(actual, rel=0.25)

    def test_runtime_manager_matches_batch(self, paragon_cal):
        """The SlowdownManager's incremental answers equal the batch
        formulas over an arrival/departure history."""
        mgr = SlowdownManager(
            paragon_cal.delay_comp,
            paragon_cal.delay_comm,
            paragon_cal.delay_comm_sized,
        )
        mgr.arrive(self.CONTENDERS[0])
        mgr.arrive(self.CONTENDERS[1])
        mgr.arrive(ApplicationProfile("late", 0.8, 500))
        mgr.depart("c1")
        remaining = [self.CONTENDERS[1], ApplicationProfile("late", 0.8, 500)]
        assert mgr.comm_slowdown() == pytest.approx(
            paragon_comm_slowdown(remaining, paragon_cal.delay_comp, paragon_cal.delay_comm)
        )
        assert mgr.comp_slowdown() == pytest.approx(
            paragon_comp_slowdown(remaining, paragon_cal.delay_comm_sized)
        )


class TestTimeVaryingPipeline:
    def test_partial_contention_prediction(self, quiet_cm2_spec):
        """§4 scenario end-to-end on the simulator: a CPU-bound
        contender present for only part of a front-end task."""
        work = 2.0
        t_arrive, t_depart = 0.5, 1.5

        # Simulated actual.
        sim = Simulator()
        platform = SunCM2Platform(sim, spec=quiet_cm2_spec)

        def hog_window():
            yield sim.timeout(t_arrive)
            while sim.now < t_depart + 2.0:
                yield platform.frontend_cpu.execute(0.01, tag="hog")

        sim.process(hog_window(), daemon=True)
        probe = sim.process(frontend_program(platform, work, tag="probe"))
        actual = sim.run_until(probe)

        # Model: phase-integrated prediction. The hog's presence window
        # on the *wall clock* is [0.5, ~2.8]; the probe finishes inside
        # it, so approximating the window end loosely is fine.
        timeline = LoadTimeline()
        timeline.arrive(t_arrive, ApplicationProfile.cpu_bound("hog"))
        predicted = predict_elapsed(
            work, timeline, lambda ps: float(len(ps) + 1)
        )
        assert predicted == pytest.approx(actual, rel=0.1)
