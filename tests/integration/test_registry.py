"""Registry-wide integration: every experiment runs, renders, exports.

A single broad net that catches driver regressions anywhere in the
registry — each experiment must run in quick mode, produce a non-empty
renderable result, and survive every export format.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import EXPERIMENTS, run_experiment
from repro.experiments.export import to_csv, to_json, to_markdown
from repro.experiments.plots import chart_result


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_experiment_end_to_end(name, tmp_path):
    result = run_experiment(name, quick=True)
    assert result.experiment == name or name == "tables1_4"
    assert result.rows, f"{name} produced no rows"
    text = result.render()
    assert result.title in text

    payload = json.loads(to_json(result))
    assert payload["rows"]
    csv_text = to_csv(result)
    assert csv_text.count("\n") >= len(result.rows)
    md = to_markdown(result)
    assert md.startswith("## ")
    # Charting must never raise: either a chart or None.
    chart = chart_result(result)
    assert chart is None or isinstance(chart, str)


def test_reliability_api_exported_at_top_level():
    """The resilience entry points ship as first-class package API."""
    import repro
    from repro.reliability import degrade, faults, retry
    from repro.reliability import supervise as supervise_mod  # shadowed by the function

    assert repro.FaultPlan is faults.FaultPlan
    assert repro.Confidence is degrade.Confidence
    assert repro.retry_with_backoff is retry.retry_with_backoff
    assert repro.supervise is supervise_mod
    for name in ("FaultPlan", "Confidence", "retry_with_backoff", "supervise", "reliability"):
        assert name in repro.__all__
