"""Unit tests for unit conventions and the error hierarchy."""

from __future__ import annotations

import pytest

from repro import errors, units


class TestUnits:
    def test_word_conversions_roundtrip(self):
        assert units.bytes_to_words(units.words_to_bytes(123)) == 123

    def test_bytes_per_word(self):
        assert units.words_to_bytes(1) == 4

    def test_check_positive(self):
        assert units.check_positive(2, "x") == 2.0
        with pytest.raises(ValueError):
            units.check_positive(0, "x")
        with pytest.raises(ValueError):
            units.check_positive(float("nan"), "x")

    def test_check_nonnegative(self):
        assert units.check_nonnegative(0, "x") == 0.0
        with pytest.raises(ValueError):
            units.check_nonnegative(-1e-9, "x")

    def test_check_fraction(self):
        assert units.check_fraction(0.5, "x") == 0.5
        for bad in (-0.1, 1.1):
            with pytest.raises(ValueError):
                units.check_fraction(bad, "x")


class TestCheckFinite:
    def test_accepts_finite(self):
        assert units.check_finite(3.5, "x") == 3.5
        assert units.check_finite(0, "x") == 0.0

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(errors.ValidationError):
            units.check_finite(bad, "x")

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_all_checks_reject_non_finite(self, bad):
        # Every boundary check must refuse NaN/inf — a NaN admitted here
        # silently poisons every downstream prediction.
        for check in (units.check_positive, units.check_nonnegative, units.check_fraction):
            with pytest.raises(errors.ValidationError):
                check(bad, "x")

    def test_error_names_the_parameter(self):
        with pytest.raises(errors.ValidationError, match="bandwidth"):
            units.check_positive(float("nan"), "bandwidth")


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            errors.SimulationError,
            errors.DeadlockError,
            errors.CalibrationError,
            errors.ModelError,
            errors.ScheduleError,
            errors.WorkloadError,
        ):
            assert issubclass(exc, errors.ReproError)

    def test_deadlock_is_simulation_error(self):
        assert issubclass(errors.DeadlockError, errors.SimulationError)

    def test_validation_error_is_repro_and_value_error(self):
        # Callers catching ValueError (the historical contract) and
        # callers catching ReproError must both see validation failures.
        assert issubclass(errors.ValidationError, errors.ReproError)
        assert issubclass(errors.ValidationError, ValueError)

    def test_circuit_open_is_probe_error(self):
        assert issubclass(errors.CircuitOpenError, errors.ProbeError)
        assert issubclass(errors.CircuitOpenError, errors.CalibrationError)


class TestPublicAPI:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_core_exports_resolve(self):
        import repro.core as core

        for name in core.__all__:
            assert getattr(core, name) is not None

    def test_sim_exports_resolve(self):
        import repro.sim as sim

        for name in sim.__all__:
            assert getattr(sim, name) is not None

    def test_experiments_exports_resolve(self):
        import repro.experiments as experiments

        for name in experiments.__all__:
            assert getattr(experiments, name) is not None

    def test_ext_exports_resolve(self):
        import repro.ext as ext

        for name in ext.__all__:
            assert getattr(ext, name) is not None
