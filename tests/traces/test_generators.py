"""Unit tests for the SOR / GE / synthetic trace generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.traces.gauss import gauss_cm2_trace, gauss_flops
from repro.traces.instructions import Parallel, Reduction, Serial, Transfer
from repro.traces.sor import SOR_FLOPS_PER_POINT, sor_cm2_trace, sor_sun_work
from repro.traces.synthetic import synthetic_cm2_trace


class TestSorTraces:
    def test_cm2_trace_structure(self, quiet_cm2_spec):
        trace = sor_cm2_trace(64, iterations=20, spec=quiet_cm2_spec, check_every=10)
        parallels = [i for i in trace if isinstance(i, Parallel)]
        reductions = [i for i in trace if isinstance(i, Reduction)]
        assert len(parallels) == 20
        assert len(reductions) == 2
        assert all(
            p.work == pytest.approx(64 * 64 * quiet_cm2_spec.sor_parallel_per_point)
            for p in parallels
        )

    def test_cm2_trace_transfers(self, quiet_cm2_spec):
        trace = sor_cm2_trace(32, 5, quiet_cm2_spec, include_transfers=True)
        transfers = [i for i in trace if isinstance(i, Transfer)]
        assert len(transfers) == 2
        assert transfers[0].direction == "out" and transfers[1].direction == "in"
        assert transfers[0].count == 32 and transfers[0].size == 32.0

    def test_sun_work_formula(self, quiet_paragon_spec):
        work = sor_sun_work(100, 30, quiet_paragon_spec)
        assert work == pytest.approx(
            30 * 100 * 100 * SOR_FLOPS_PER_POINT * quiet_paragon_spec.sun_flop_time
        )

    def test_sun_work_quadratic_in_m(self, quiet_paragon_spec):
        assert sor_sun_work(200, 30, quiet_paragon_spec) == pytest.approx(
            4 * sor_sun_work(100, 30, quiet_paragon_spec)
        )

    def test_validation(self, quiet_cm2_spec, quiet_paragon_spec):
        with pytest.raises(WorkloadError):
            sor_cm2_trace(0, 10, quiet_cm2_spec)
        with pytest.raises(WorkloadError):
            sor_cm2_trace(10, 0, quiet_cm2_spec)
        with pytest.raises(WorkloadError):
            sor_sun_work(0, 10, quiet_paragon_spec)


class TestGaussTraces:
    def test_flops_cubic(self):
        assert gauss_flops(100) == pytest.approx(2 * 100**3 / 3, rel=0.05)

    def test_trace_serial_total(self, quiet_cm2_spec):
        m = 50
        trace = gauss_cm2_trace(m, quiet_cm2_spec)
        assert trace.total_serial == pytest.approx(m * quiet_cm2_spec.ge_serial_per_iter)

    def test_trace_parallel_constant_per_step(self, quiet_cm2_spec):
        """SIMD full-array updates: every elimination step issues the
        same amount of back-end work."""
        m = 40
        trace = gauss_cm2_trace(m, quiet_cm2_spec)
        parallels = [i for i in trace if isinstance(i, Parallel)]
        # m elimination steps + 1 back-substitution pass
        assert len(parallels) == m + 1
        step_work = m * (m + 1) * quiet_cm2_spec.ge_parallel_per_element
        assert all(p.work == pytest.approx(step_work) for p in parallels[:-1])

    def test_sync_every_controls_reductions(self, quiet_cm2_spec):
        trace = gauss_cm2_trace(128, quiet_cm2_spec, sync_every=32)
        reductions = [i for i in trace if isinstance(i, Reduction)]
        assert len(reductions) == 4

    def test_transfers_optional(self, quiet_cm2_spec):
        bare = gauss_cm2_trace(10, quiet_cm2_spec)
        with_xfer = gauss_cm2_trace(10, quiet_cm2_spec, include_transfers=True)
        assert bare.comm_pattern().total_messages == 0
        pattern = with_xfer.comm_pattern()
        assert pattern.to_backend[0].count == 10
        assert pattern.to_backend[0].size == 11.0

    def test_validation(self, quiet_cm2_spec):
        with pytest.raises(WorkloadError):
            gauss_cm2_trace(1, quiet_cm2_spec)
        with pytest.raises(WorkloadError):
            gauss_cm2_trace(10, quiet_cm2_spec, sync_every=0)


class TestSyntheticTraces:
    def test_totals_normalised(self, quiet_cm2_spec):
        rng = np.random.default_rng(3)
        trace = synthetic_cm2_trace(rng, total_work=2.0, serial_fraction=0.3,
                                    spec=quiet_cm2_spec)
        assert trace.total_serial == pytest.approx(0.6, rel=1e-9)
        assert trace.total_parallel == pytest.approx(1.4, rel=1e-9)

    def test_pure_serial(self, quiet_cm2_spec):
        rng = np.random.default_rng(3)
        trace = synthetic_cm2_trace(rng, 1.0, 1.0, quiet_cm2_spec)
        assert trace.total_parallel == 0.0

    def test_pure_parallel(self, quiet_cm2_spec):
        rng = np.random.default_rng(3)
        trace = synthetic_cm2_trace(rng, 1.0, 0.0, quiet_cm2_spec)
        assert trace.total_serial == 0.0

    def test_reduction_share(self, quiet_cm2_spec):
        rng = np.random.default_rng(3)
        none = synthetic_cm2_trace(rng, 1.0, 0.5, quiet_cm2_spec, reduction_share=0.0)
        assert not any(isinstance(i, Reduction) for i in none)
        rng = np.random.default_rng(3)
        every = synthetic_cm2_trace(rng, 1.0, 0.5, quiet_cm2_spec, reduction_share=1.0)
        assert not any(isinstance(i, Parallel) for i in every)

    def test_transfer_bookends(self, quiet_cm2_spec):
        rng = np.random.default_rng(3)
        trace = synthetic_cm2_trace(
            rng, 1.0, 0.5, quiet_cm2_spec, transfer_words=512
        )
        assert isinstance(trace.instructions[0], Transfer)
        assert isinstance(trace.instructions[-1], Transfer)

    def test_determinism_per_seed(self, quiet_cm2_spec):
        a = synthetic_cm2_trace(np.random.default_rng(9), 1.0, 0.4, quiet_cm2_spec)
        b = synthetic_cm2_trace(np.random.default_rng(9), 1.0, 0.4, quiet_cm2_spec)
        assert a.instructions == b.instructions

    def test_validation(self, quiet_cm2_spec):
        rng = np.random.default_rng(0)
        with pytest.raises(WorkloadError):
            synthetic_cm2_trace(rng, 0.0, 0.5, quiet_cm2_spec)
        with pytest.raises(WorkloadError):
            synthetic_cm2_trace(rng, 1.0, 1.5, quiet_cm2_spec)
