"""Tests for dedicated-mode trace measurement."""

from __future__ import annotations

import pytest

from repro.traces.analysis import measure_dedicated_cm2
from repro.traces.gauss import gauss_cm2_trace
from repro.traces.instructions import Parallel, Serial, Trace


class TestMeasureDedicated:
    def test_costs_consistent(self, quiet_cm2_spec):
        trace = Trace([Serial(0.01), Parallel(0.02)] * 10)
        m = measure_dedicated_cm2(trace, quiet_cm2_spec)
        assert m.costs.dcomp + m.costs.didle == pytest.approx(m.elapsed)
        assert m.costs.didle <= m.costs.dserial + 1e-9

    def test_serial_only_trace(self, quiet_cm2_spec):
        trace = Trace([Serial(0.05)])
        m = measure_dedicated_cm2(trace, quiet_cm2_spec)
        assert m.costs.dcomp == 0.0
        assert m.costs.dserial == pytest.approx(0.05, rel=1e-6)

    def test_parallel_dominated_trace(self, quiet_cm2_spec):
        trace = Trace([Parallel(0.1)] * 5)
        m = measure_dedicated_cm2(trace, quiet_cm2_spec)
        assert m.costs.dcomp == pytest.approx(
            0.5 + 5 * quiet_cm2_spec.decode_overhead, rel=1e-6
        )

    def test_gauss_measurement_scales(self, quiet_cm2_spec):
        small = measure_dedicated_cm2(gauss_cm2_trace(30, quiet_cm2_spec), quiet_cm2_spec)
        large = measure_dedicated_cm2(gauss_cm2_trace(60, quiet_cm2_spec), quiet_cm2_spec)
        # dcomp ~ M^3: doubling M gives ~8x.
        assert large.costs.dcomp / small.costs.dcomp == pytest.approx(8.0, rel=0.15)
        # dserial ~ M: doubling M gives ~2x.
        assert large.costs.dserial / small.costs.dserial == pytest.approx(2.0, rel=0.1)

    def test_deterministic(self, quiet_cm2_spec):
        trace = gauss_cm2_trace(20, quiet_cm2_spec)
        a = measure_dedicated_cm2(trace, quiet_cm2_spec)
        b = measure_dedicated_cm2(trace, quiet_cm2_spec)
        assert a.elapsed == b.elapsed
        assert a.costs == b.costs
