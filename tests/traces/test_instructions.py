"""Unit tests for the instruction IR."""

from __future__ import annotations

import pytest

from repro.core.datasets import DataSet
from repro.errors import WorkloadError
from repro.traces.instructions import Parallel, Reduction, Serial, Trace, Transfer


class TestInstructions:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            Serial(-1.0)
        with pytest.raises(WorkloadError):
            Parallel(-1.0)
        with pytest.raises(WorkloadError):
            Reduction(-1.0)
        with pytest.raises(WorkloadError):
            Transfer(size=-1)
        with pytest.raises(WorkloadError):
            Transfer(size=1, count=-1)
        with pytest.raises(WorkloadError):
            Transfer(size=1, direction="up")


class TestTrace:
    def test_totals(self):
        trace = Trace([Serial(1.0), Parallel(2.0), Reduction(0.5), Serial(0.25)])
        assert trace.total_serial == pytest.approx(1.25)
        assert trace.total_parallel == pytest.approx(2.5)
        assert trace.parallel_count == 2
        assert len(trace) == 4

    def test_rejects_non_instructions(self):
        with pytest.raises(WorkloadError):
            Trace([Serial(1.0), "junk"])  # type: ignore[list-item]

    def test_concatenation(self):
        a = Trace([Serial(1.0)])
        b = Trace([Parallel(1.0)])
        combined = a + b
        assert len(combined) == 2
        assert combined.total_serial == 1.0
        assert combined.total_parallel == 1.0

    def test_comm_pattern_merges_adjacent(self):
        trace = Trace(
            [
                Transfer(size=100, count=2, direction="out"),
                Transfer(size=100, count=3, direction="out"),
                Transfer(size=50, count=1, direction="out"),
                Transfer(size=100, count=4, direction="in"),
            ]
        )
        pattern = trace.comm_pattern()
        assert pattern.to_backend == (DataSet(5, 100), DataSet(1, 50))
        assert pattern.to_frontend == (DataSet(4, 100),)

    def test_comm_pattern_skips_empty_transfers(self):
        trace = Trace([Transfer(size=100, count=0)])
        assert trace.comm_pattern().total_messages == 0

    def test_scaled(self):
        trace = Trace([Serial(1.0), Parallel(2.0), Reduction(1.0), Transfer(size=10)])
        scaled = trace.scaled(serial=2.0, parallel=0.5)
        assert scaled.total_serial == pytest.approx(2.0)
        assert scaled.total_parallel == pytest.approx(1.5)
        # Transfers untouched.
        assert scaled.comm_pattern().total_words == 10

    def test_scaled_validation(self):
        with pytest.raises(WorkloadError):
            Trace([]).scaled(serial=-1)
