"""Tests for the library-task trace generators."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.traces.instructions import Parallel, Serial, Transfer
from repro.traces.library import (
    bitonic_cm2_trace,
    matmul_cm2_trace,
    matmul_sun_cost,
    sort_sun_cost,
)
from repro.workloads.sorting import bitonic_stages


class TestMatmulTrace:
    def test_structure(self, quiet_cm2_spec):
        n = 32
        trace = matmul_cm2_trace(n, quiet_cm2_spec)
        parallels = [i for i in trace if isinstance(i, Parallel)]
        assert len(parallels) == n
        assert all(
            p.work == pytest.approx(2 * n * n * quiet_cm2_spec.elementwise_op_time)
            for p in parallels
        )

    def test_shipping_volume(self, quiet_cm2_spec):
        n = 32
        pattern = matmul_cm2_trace(n, quiet_cm2_spec).comm_pattern()
        assert sum(d.total_words for d in pattern.to_backend) == pytest.approx(2 * n * n)
        assert sum(d.total_words for d in pattern.to_frontend) == pytest.approx(n * n)

    def test_transfers_optional(self, quiet_cm2_spec):
        trace = matmul_cm2_trace(16, quiet_cm2_spec, include_transfers=False)
        assert not any(isinstance(i, Transfer) for i in trace)

    def test_sun_cost_cubic(self, quiet_cm2_spec):
        assert matmul_sun_cost(64, quiet_cm2_spec) / matmul_sun_cost(
            32, quiet_cm2_spec
        ) == pytest.approx(8.0, rel=0.1)

    def test_validation(self, quiet_cm2_spec):
        with pytest.raises(WorkloadError):
            matmul_cm2_trace(0, quiet_cm2_spec)


class TestBitonicTrace:
    def test_one_parallel_per_stage(self, quiet_cm2_spec):
        n = 256
        trace = bitonic_cm2_trace(n, quiet_cm2_spec)
        parallels = [i for i in trace if isinstance(i, Parallel)]
        assert len(parallels) == bitonic_stages(n)

    def test_shipping_volume(self, quiet_cm2_spec):
        n = 2048
        pattern = bitonic_cm2_trace(n, quiet_cm2_spec).comm_pattern()
        assert sum(d.total_words for d in pattern.to_backend) == pytest.approx(n)
        assert sum(d.total_words for d in pattern.to_frontend) == pytest.approx(n)

    def test_power_of_two_required(self, quiet_cm2_spec):
        with pytest.raises(WorkloadError):
            bitonic_cm2_trace(1000, quiet_cm2_spec)

    def test_sun_cost_n_log_n(self, quiet_cm2_spec):
        ratio = sort_sun_cost(4096, quiet_cm2_spec) / sort_sun_cost(2048, quiet_cm2_spec)
        assert 2.0 < ratio < 2.4  # n log n doubling

    def test_serial_stream_scales_with_stages(self, quiet_cm2_spec):
        t_small = bitonic_cm2_trace(256, quiet_cm2_spec, include_transfers=False)
        t_large = bitonic_cm2_trace(1024, quiet_cm2_spec, include_transfers=False)
        assert t_large.total_serial / t_small.total_serial == pytest.approx(
            bitonic_stages(1024) / bitonic_stages(256)
        )
