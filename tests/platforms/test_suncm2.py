"""Behavioural tests for the Sun/CM2 platform simulator."""

from __future__ import annotations

import pytest

from repro.apps.contender import cpu_bound
from repro.platforms.suncm2 import SunCM2Platform
from repro.sim.engine import Simulator
from repro.sim.monitors import Timeline
from repro.traces.instructions import Parallel, Reduction, Serial, Trace, Transfer


def run_trace(spec, trace, p_hogs=0, timeline=None):
    sim = Simulator()
    platform = SunCM2Platform(sim, spec=spec)
    for i in range(p_hogs):
        platform.spawn(cpu_bound(platform, tag=f"hog{i}"), name=f"hog{i}")
    probe = sim.process(platform.run_trace(trace, tag="probe", timeline=timeline))
    return sim.run_until(probe)


class TestTransfer:
    def test_dedicated_transfer_time(self, quiet_cm2_spec):
        sim = Simulator()
        platform = SunCM2Platform(sim, spec=quiet_cm2_spec)

        def probe():
            elapsed = yield from platform.transfer(256, count=4)
            return elapsed

        p = sim.process(probe())
        elapsed = sim.run_until(p)
        assert elapsed == pytest.approx(4 * quiet_cm2_spec.message_cpu_time(256), rel=1e-6)

    def test_transfer_slows_with_cpu_contention(self, quiet_cm2_spec):
        """The §3.1.1 finding: CM2 transfers are CPU-resident, so p
        CPU-bound contenders slow them by ~(p + 1)."""
        def timed(p):
            sim = Simulator()
            platform = SunCM2Platform(sim, spec=quiet_cm2_spec)
            for i in range(p):
                platform.spawn(cpu_bound(platform, tag=f"h{i}"), name=f"h{i}")

            def probe():
                elapsed = yield from platform.transfer(512, count=64)
                return elapsed

            return sim.run_until(sim.process(probe()))

        dedicated = timed(0)
        # Context-switch overhead inflates the ratio ~5% above the
        # fluid p + 1 — exactly the kind of residual the paper's model
        # absorbs into its error budget.
        for p in (1, 3):
            assert timed(p) / dedicated == pytest.approx(p + 1, rel=0.08)

    def test_negative_count_rejected(self, quiet_cm2_spec):
        sim = Simulator()
        platform = SunCM2Platform(sim, spec=quiet_cm2_spec)

        def probe():
            yield from platform.transfer(1, count=-1)

        with pytest.raises(Exception):
            sim.run_until(sim.process(probe()))


class TestTraceExecution:
    def test_elapsed_equals_dcomp_plus_didle(self, quiet_cm2_spec):
        """By construction didle := elapsed − dcomp (§3.1.2 mapping)."""
        trace = Trace([Serial(0.01), Parallel(0.02), Serial(0.01), Parallel(0.02)])
        result = run_trace(quiet_cm2_spec, trace)
        assert result.cm2_busy + result.cm2_idle == pytest.approx(result.elapsed)

    def test_didle_le_dserial_invariant(self, quiet_cm2_spec):
        """§3.1.2: didle never exceeds dserial (lookahead overlap)."""
        for serial, parallel in [(0.01, 0.001), (0.001, 0.01), (0.005, 0.005)]:
            trace = Trace([Serial(serial), Parallel(parallel)] * 20)
            result = run_trace(quiet_cm2_spec, trace)
            assert result.cm2_idle <= result.sun_serial + 1e-9

    def test_parallel_work_accounted(self, quiet_cm2_spec):
        trace = Trace([Parallel(0.05), Parallel(0.05)])
        result = run_trace(quiet_cm2_spec, trace)
        expected = 0.1 + 2 * quiet_cm2_spec.decode_overhead
        assert result.cm2_busy == pytest.approx(expected, rel=1e-6)

    def test_serial_work_accounted(self, quiet_cm2_spec):
        trace = Trace([Serial(0.02), Parallel(0.01), Serial(0.03)])
        result = run_trace(quiet_cm2_spec, trace)
        expected = 0.05 + quiet_cm2_spec.issue_cost
        assert result.sun_serial == pytest.approx(expected, rel=1e-6)

    def test_transfer_work_tracked_separately(self, quiet_cm2_spec):
        trace = Trace([Transfer(size=100, count=2), Serial(0.01)])
        result = run_trace(quiet_cm2_spec, trace)
        assert result.sun_transfer == pytest.approx(
            2 * quiet_cm2_spec.message_cpu_time(100), rel=1e-6
        )
        assert result.sun_serial == pytest.approx(0.01, rel=1e-6)

    def test_reduction_blocks_frontend(self, quiet_cm2_spec):
        """A reduction forces the Sun to wait for the CM2's result, so
        elapsed >= reduction work even with no serial work after it."""
        trace = Trace([Reduction(0.1)])
        result = run_trace(quiet_cm2_spec, trace)
        assert result.elapsed >= 0.1

    def test_overlap_shortens_elapsed(self, quiet_cm2_spec):
        """Sun pre-executes serial code while the CM2 computes: the
        elapsed time is far below the serial+parallel sum."""
        trace = Trace([Serial(0.005), Parallel(0.005)] * 40)
        result = run_trace(quiet_cm2_spec, trace)
        total_work = trace.total_serial + trace.total_parallel
        assert result.elapsed < 0.75 * total_work

    def test_lookahead_bounds_runahead(self):
        """With lookahead 1 the Sun stalls on every parallel dispatch
        while the CM2 is busy; deeper lookahead strictly helps when
        serial work is scarce."""
        from repro.platforms.specs import CpuSpec, SunCM2Spec

        def elapsed_with(lookahead):
            spec = SunCM2Spec(
                cpu=CpuSpec(daemon_interval=0, daemon_work=0), lookahead=lookahead
            )
            trace = Trace([Serial(0.0001), Parallel(0.01)] * 30)
            return run_trace(spec, trace).elapsed

        assert elapsed_with(8) <= elapsed_with(1) + 1e-9

    def test_contended_run_matches_max_model_when_serial_bound(self, quiet_cm2_spec):
        """When dserial × (p+1) dominates, the §3.1.2 max() formula is
        a tight prediction."""
        trace = Trace([Serial(0.004), Parallel(0.001)] * 50)
        dedicated = run_trace(quiet_cm2_spec, trace)
        contended = run_trace(quiet_cm2_spec, trace, p_hogs=3)
        model = max(dedicated.cm2_busy + dedicated.cm2_idle, dedicated.sun_serial * 4)
        assert contended.elapsed == pytest.approx(model, rel=0.1)

    def test_sequencer_exclusivity(self, quiet_cm2_spec):
        """Two trace programs serialise on the single sequencer."""
        sim = Simulator()
        platform = SunCM2Platform(sim, spec=quiet_cm2_spec)
        trace = Trace([Parallel(0.05)])
        p1 = sim.process(platform.run_trace(trace, tag="a"))
        p2 = sim.process(platform.run_trace(trace, tag="b"))
        sim.run_until(p2)
        sim.run_until(p1)
        # Serial execution: total span >= 2x one run's parallel work.
        assert sim.now >= 0.1

    def test_timeline_recording(self, quiet_cm2_spec):
        timeline = Timeline()
        trace = Trace([Serial(0.01), Parallel(0.02), Reduction(0.01)])
        run_trace(quiet_cm2_spec, trace, timeline=timeline)
        actors = timeline.actors()
        assert "sun" in actors and "cm2" in actors
        assert timeline.time_in_state("cm2", "execute") > 0
        assert timeline.time_in_state("sun", "serial") > 0

    def test_empty_trace(self, quiet_cm2_spec):
        result = run_trace(quiet_cm2_spec, Trace([]))
        assert result.elapsed >= 0
        assert result.cm2_busy == 0
