"""Behavioural tests for the Sun/Paragon platform simulator."""

from __future__ import annotations

import pytest

from repro.apps.contender import continuous_comm, cpu_bound
from repro.errors import SimulationError, WorkloadError
from repro.platforms.sunparagon import SunParagonPlatform
from repro.sim.engine import Simulator


def send_one(spec, size, mode="1hop", direction="out"):
    sim = Simulator()
    platform = SunParagonPlatform(sim, spec=spec)

    def probe():
        timing = yield from platform.message(size, direction, mode=mode)
        return timing

    return sim.run_until(sim.process(probe()))


class TestMessagePrimitives:
    def test_send_total_matches_spec(self, quiet_paragon_spec):
        timing = send_one(quiet_paragon_spec, 200)
        assert timing.total == pytest.approx(
            quiet_paragon_spec.message_dedicated_time(200), rel=1e-6
        )

    def test_recv_total_matches_spec(self, quiet_paragon_spec):
        timing = send_one(quiet_paragon_spec, 200, direction="in")
        assert timing.total == pytest.approx(
            quiet_paragon_spec.message_dedicated_time(200), rel=1e-6
        )

    def test_2hops_adds_forward_leg(self, quiet_paragon_spec):
        t1 = send_one(quiet_paragon_spec, 200, mode="1hop")
        t2 = send_one(quiet_paragon_spec, 200, mode="2hops")
        assert t1.forward == 0.0
        assert t2.forward == pytest.approx(quiet_paragon_spec.nx_time(200), rel=1e-6)

    def test_breakdown_sums_to_total(self, quiet_paragon_spec):
        timing = send_one(quiet_paragon_spec, 512)
        parts = timing.conversion + timing.wire_queue + timing.wire + timing.forward
        # node handling is the only piece outside the breakdown
        assert timing.total == pytest.approx(
            parts + quiet_paragon_spec.node_handling, rel=1e-6
        )

    def test_fragmented_message(self, quiet_paragon_spec):
        """A 2048-word message pays two startups of everything."""
        t_small = send_one(quiet_paragon_spec, 1024)
        t_big = send_one(quiet_paragon_spec, 2048)
        assert t_big.total == pytest.approx(2 * t_small.total, rel=1e-6)

    def test_invalid_mode_rejected(self, quiet_paragon_spec):
        with pytest.raises(SimulationError):
            send_one(quiet_paragon_spec, 1, mode="3hops")

    def test_invalid_direction_rejected(self, quiet_paragon_spec):
        with pytest.raises(WorkloadError):
            send_one(quiet_paragon_spec, 1, direction="up")


class TestContentionChannels:
    def test_cpu_hogs_delay_conversion_only(self, quiet_paragon_spec):
        """CPU contention stretches the conversion stage (§3.2.1), not
        the wire occupancy."""
        sim = Simulator()
        platform = SunParagonPlatform(sim, spec=quiet_paragon_spec)
        platform.spawn(cpu_bound(platform, tag="hog"), name="hog")

        def probe():
            timing = yield from platform.send(200, tag="probe")
            return timing

        contended = sim.run_until(sim.process(probe()))
        dedicated = send_one(quiet_paragon_spec, 200)
        assert contended.conversion > dedicated.conversion * 1.5
        assert contended.wire == pytest.approx(dedicated.wire, rel=1e-6)

    def test_communicating_contender_queues_the_wire(self, quiet_paragon_spec):
        sim = Simulator()
        platform = SunParagonPlatform(sim, spec=quiet_paragon_spec)
        platform.spawn(
            continuous_comm(platform, 1024, "out", tag="gen"), name="gen"
        )

        def probe():
            yield sim.timeout(0.01)  # let the generator occupy the wire
            timing = yield from platform.send(200, tag="probe")
            return timing

        timing = sim.run_until(sim.process(probe()))
        assert timing.wire_queue > 0.0

    def test_half_duplex_wire_shared_between_directions(self, quiet_paragon_spec):
        sim = Simulator()
        platform = SunParagonPlatform(sim, spec=quiet_paragon_spec)
        done = []

        def sender():
            yield from platform.send(1024, tag="s")
            done.append(("out", sim.now))

        def receiver():
            yield from platform.recv(1024, tag="r")
            done.append(("in", sim.now))

        sim.process(sender())
        sim.process(receiver())
        sim.run(until=1.0)
        # Both complete, but their wire phases serialised: the total
        # span exceeds one message's wire time significantly.
        assert len(done) == 2

    def test_backend_compute_space_shared(self, quiet_paragon_spec):
        sim = Simulator()
        platform = SunParagonPlatform(sim, spec=quiet_paragon_spec)

        def probe():
            elapsed = yield from platform.backend_compute(16.0, nodes=16)
            return elapsed

        assert sim.run_until(sim.process(probe())) == pytest.approx(1.0)

    def test_backend_compute_validation(self, quiet_paragon_spec):
        sim = Simulator()
        platform = SunParagonPlatform(sim, spec=quiet_paragon_spec)

        def probe():
            yield from platform.backend_compute(1.0, nodes=0)

        with pytest.raises(WorkloadError):
            sim.run_until(sim.process(probe()))
