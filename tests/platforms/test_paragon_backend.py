"""Behavioural tests for the detailed Paragon back end."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.platforms.mesh import MeshSpec
from repro.platforms.paragon_backend import ParagonBackend
from repro.sim.engine import Simulator

SPEC = MeshSpec(rows=4, cols=4)


def run_task(backend, partition, **kwargs):
    sim = backend.sim

    def probe():
        result = yield from backend.run_task(partition, **kwargs)
        return result

    return sim.run_until(sim.process(probe()))


class TestSpaceShared:
    def test_compute_only_task(self):
        sim = Simulator()
        backend = ParagonBackend(sim, SPEC, node_flop_time=1e-7)
        part = backend.allocate(4)
        result = run_task(backend, part, supersteps=10, flops_per_node=1e6,
                          exchange_words=0)
        assert result.compute_time == pytest.approx(10 * 1e6 * 1e-7)
        assert result.comm_time == 0.0
        assert result.comm_fraction == 0.0

    def test_exchange_adds_comm_time(self):
        sim = Simulator()
        backend = ParagonBackend(sim, SPEC)
        part = backend.allocate(4)
        result = run_task(backend, part, supersteps=5, flops_per_node=1e5,
                          exchange_words=256)
        assert result.comm_time > 0
        assert result.elapsed == pytest.approx(result.compute_time + result.comm_time)

    def test_dedicated_estimate_close_for_contiguous(self):
        sim = Simulator()
        backend = ParagonBackend(sim, SPEC)
        part = backend.allocate(4, "contiguous")
        measured = run_task(backend, part, supersteps=20, flops_per_node=2e5,
                            exchange_words=128)
        estimate = backend.dedicated_estimate(4, 20, 2e5, 128)
        # The estimate ignores the ring wrap-around hop; stays within ~3x
        # on comm and tight on the total (compute dominates here).
        assert measured.elapsed == pytest.approx(estimate, rel=0.5)

    def test_single_node_partition_never_communicates(self):
        sim = Simulator()
        backend = ParagonBackend(sim, SPEC)
        part = backend.allocate(1)
        result = run_task(backend, part, supersteps=3, flops_per_node=1e5,
                          exchange_words=512)
        assert result.comm_time == 0.0

    def test_two_tasks_on_disjoint_rectangles_do_not_interact(self):
        sim = Simulator()
        backend = ParagonBackend(sim, SPEC)
        p1 = backend.allocate(4, "contiguous")
        p2 = backend.allocate(4, "contiguous")
        r1 = sim.process(backend.run_task(p1, 10, 1e5, 256, gang="a"))
        r2 = sim.process(backend.run_task(p2, 10, 1e5, 256, gang="b"))
        done = sim.all_of([r1, r2])
        sim.run_until(done)
        assert r1.value.elapsed == pytest.approx(r2.value.elapsed, rel=1e-6)

    def test_validation(self):
        sim = Simulator()
        backend = ParagonBackend(sim, SPEC)
        part = backend.allocate(2)
        with pytest.raises(WorkloadError):
            next(backend.run_task(part, 0, 1.0, 1.0))
        with pytest.raises(WorkloadError):
            ParagonBackend(sim, SPEC, node_flop_time=0.0)


class TestGangScheduled:
    def test_gang_sharing_slows_compute(self):
        def elapsed(background_gangs: int) -> float:
            sim = Simulator()
            backend = ParagonBackend(sim, SPEC, gang_quantum=0.05)
            part = backend.allocate(4)
            for g in range(background_gangs):
                def bg(tag=f"bg{g}"):
                    while True:
                        yield from backend._gang.run(tag, 1e9)

                sim.process(bg(), daemon=True)
            return run_task(
                backend, part, supersteps=4, flops_per_node=5e5, exchange_words=0
            ).elapsed

        assert elapsed(1) > 1.8 * elapsed(0)

    def test_gang_mode_still_finishes_exchange(self):
        sim = Simulator()
        backend = ParagonBackend(sim, SPEC, gang_quantum=0.05)
        part = backend.allocate(4)
        result = run_task(backend, part, supersteps=3, flops_per_node=1e5,
                          exchange_words=64)
        assert result.elapsed > 0
        assert result.comm_time > 0
