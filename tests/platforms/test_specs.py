"""Unit and property tests for the ground-truth platform specs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.platforms.specs import (
    CpuSpec,
    DEFAULT_SUNCM2,
    DEFAULT_SUNPARAGON,
    SunCM2Spec,
    SunParagonSpec,
    WireSpec,
)


class TestWireSpec:
    def test_small_message_single_fragment(self):
        wire = WireSpec()
        assert wire.fragment_sizes(100) == [100.0]
        assert wire.fragment_sizes(1024) == [1024.0]

    def test_large_message_fragments_evenly(self):
        wire = WireSpec()
        frags = wire.fragment_sizes(2048)
        assert len(frags) == 2
        assert frags == [1024.0, 1024.0]

    def test_uneven_split(self):
        wire = WireSpec()
        frags = wire.fragment_sizes(1500)
        assert len(frags) == 2
        assert sum(frags) == pytest.approx(1500)
        assert all(f <= 1024 for f in frags)

    def test_zero_size_is_one_empty_fragment(self):
        assert WireSpec().fragment_sizes(0) == [0.0]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            WireSpec().fragment_sizes(-1)

    @settings(max_examples=100, deadline=None)
    @given(st.floats(min_value=0, max_value=1e6))
    def test_fragments_conserve_payload(self, size):
        wire = WireSpec()
        frags = wire.fragment_sizes(size)
        assert sum(frags) == pytest.approx(size)
        assert all(0 <= f <= wire.buffer_words for f in frags)

    def test_message_wire_time_kink(self):
        """Per-fragment startups make the cost piecewise linear with a
        slope change exactly at the buffer size."""
        wire = WireSpec()
        below = wire.message_wire_time(1024)
        above = wire.message_wire_time(1025)
        assert above - below > wire.alpha * 0.9  # an extra startup appears

    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=1, max_value=1e5), st.floats(min_value=1, max_value=1e5))
    def test_wire_time_monotone(self, a, b):
        wire = WireSpec()
        lo, hi = min(a, b), max(a, b)
        assert wire.message_wire_time(lo) <= wire.message_wire_time(hi) + 1e-12


class TestCpuSpec:
    def test_defaults_valid(self):
        CpuSpec()

    def test_validation(self):
        with pytest.raises(ValueError):
            CpuSpec(quantum=0)
        with pytest.raises(ValueError):
            CpuSpec(capacity=-1)
        with pytest.raises(ValueError):
            CpuSpec(daemon_interval=-1)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_rejected(self, bad):
        with pytest.raises(ValueError):
            CpuSpec(capacity=bad)
        with pytest.raises(ValueError):
            CpuSpec(quantum=bad)


class TestWireSpecValidation:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_parameters_rejected(self, bad):
        with pytest.raises(ValueError):
            WireSpec(alpha=bad)
        with pytest.raises(ValueError):
            WireSpec(per_word=bad)
        with pytest.raises(ValueError):
            WireSpec(buffer_words=bad)


class TestSunCM2Spec:
    def test_message_cpu_time(self):
        spec = DEFAULT_SUNCM2
        assert spec.message_cpu_time(1000) == pytest.approx(
            spec.transfer_alpha + 1000 * spec.transfer_per_word
        )

    def test_lookahead_validation(self):
        with pytest.raises(ValueError):
            SunCM2Spec(lookahead=0)


class TestSunParagonSpec:
    def test_conversion_time(self):
        spec = DEFAULT_SUNPARAGON
        assert spec.conversion_cpu_time(500) == pytest.approx(
            spec.conv_fixed + 500 * spec.conv_per_word
        )

    def test_dedicated_message_time_small(self):
        spec = DEFAULT_SUNPARAGON
        expected = (
            spec.conversion_cpu_time(200)
            + spec.wire.occupancy(200)
            + spec.node_handling
        )
        assert spec.message_dedicated_time(200) == pytest.approx(expected)

    def test_dedicated_message_time_2hops_adds_nx(self):
        spec = DEFAULT_SUNPARAGON
        t1 = spec.message_dedicated_time(200, "1hop")
        t2 = spec.message_dedicated_time(200, "2hops")
        assert t2 - t1 == pytest.approx(spec.nx_time(200))

    def test_fragmented_message_saturates_per_word_cost(self):
        """Above the buffer, doubling the size doubles the cost: the
        per-unit-time behaviour no longer depends on message size."""
        spec = DEFAULT_SUNPARAGON
        t1 = spec.message_dedicated_time(2048)
        t2 = spec.message_dedicated_time(4096)
        assert t2 == pytest.approx(2 * t1, rel=1e-9)

    def test_service_node_capacity_validation(self):
        with pytest.raises(ValueError):
            SunParagonSpec(service_node_capacity=0)
