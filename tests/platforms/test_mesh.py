"""Unit and behavioural tests for the mesh interconnect and allocator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ScheduleError, SimulationError
from repro.platforms.mesh import MeshNetwork, MeshSpec, Partition, PartitionAllocator
from repro.sim.engine import Simulator

SPEC = MeshSpec(rows=4, cols=4)


class TestRouting:
    def test_xy_route_shape(self):
        sim = Simulator()
        mesh = MeshNetwork(sim, SPEC)
        path = mesh.route((0, 0), (2, 3))
        # Column corrected first, then row.
        assert path == [(0, 0), (0, 1), (0, 2), (0, 3), (1, 3), (2, 3)]

    def test_route_to_self(self):
        sim = Simulator()
        mesh = MeshNetwork(sim, SPEC)
        assert mesh.route((1, 1), (1, 1)) == [(1, 1)]

    def test_route_westward(self):
        sim = Simulator()
        mesh = MeshNetwork(sim, SPEC)
        path = mesh.route((3, 3), (3, 0))
        assert path == [(3, 3), (3, 2), (3, 1), (3, 0)]

    def test_out_of_mesh_rejected(self):
        sim = Simulator()
        mesh = MeshNetwork(sim, SPEC)
        with pytest.raises(SimulationError):
            mesh.route((0, 0), (4, 0))

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3), st.integers(0, 3))
    def test_route_length_is_manhattan(self, r1, c1, r2, c2):
        sim = Simulator()
        mesh = MeshNetwork(sim, SPEC)
        path = mesh.route((r1, c1), (r2, c2))
        assert len(path) - 1 == abs(r1 - r2) + abs(c1 - c2)


class TestTransfers:
    def test_single_hop_time(self):
        sim = Simulator()
        mesh = MeshNetwork(sim, SPEC)

        def probe():
            elapsed = yield from mesh.transfer((0, 0), (0, 1), 256)
            return elapsed

        elapsed = sim.run_until(sim.process(probe()))
        assert elapsed == pytest.approx(SPEC.hop_latency + 256 * SPEC.per_word)

    def test_multi_hop_store_and_forward(self):
        sim = Simulator()
        mesh = MeshNetwork(sim, SPEC)

        def probe():
            elapsed = yield from mesh.transfer((0, 0), (0, 3), 100)
            return elapsed

        elapsed = sim.run_until(sim.process(probe()))
        per_hop = SPEC.hop_latency + 100 * SPEC.per_word
        assert elapsed == pytest.approx(3 * per_hop)

    def test_packetisation(self):
        sim = Simulator()
        mesh = MeshNetwork(sim, SPEC)

        def probe():
            elapsed = yield from mesh.transfer((0, 0), (0, 1), 1024)
            return elapsed

        elapsed = sim.run_until(sim.process(probe()))
        # 1024 words > 512-word packets: two packets, two hop latencies.
        assert elapsed == pytest.approx(2 * (SPEC.hop_latency + 512 * SPEC.per_word))

    def test_same_node_transfer_is_free(self):
        sim = Simulator()
        mesh = MeshNetwork(sim, SPEC)

        def probe():
            elapsed = yield from mesh.transfer((1, 1), (1, 1), 100)
            return elapsed

        assert sim.run_until(sim.process(probe())) == 0.0

    def test_link_contention_serialises(self):
        """Two messages crossing the same link queue behind each other."""
        sim = Simulator()
        mesh = MeshNetwork(sim, SPEC)
        done = []

        def sender(src, dst, label):
            yield from mesh.transfer(src, dst, 512)
            done.append((label, sim.now))

        # Both routes need link (0,0)->(0,1) at t=0: one must wait.
        sim.process(sender((0, 0), (0, 2), "a"))
        sim.process(sender((0, 0), (0, 3), "b"))
        sim.run(until=1.0)
        assert len(done) == 2
        hold = SPEC.hop_latency + 512 * SPEC.per_word
        by_label = dict(done)
        assert by_label["a"] == pytest.approx(2 * hold)
        # b waits one hold for the shared link, then three hops.
        assert by_label["b"] == pytest.approx(4 * hold)

    def test_disjoint_routes_do_not_interact(self):
        sim = Simulator()
        mesh = MeshNetwork(sim, SPEC)
        done = []

        def sender(src, dst, label):
            yield from mesh.transfer(src, dst, 512)
            done.append((label, sim.now))

        sim.process(sender((0, 0), (0, 1), "a"))
        sim.process(sender((3, 0), (3, 1), "b"))
        sim.run(until=1.0)
        times = [t for _, t in done]
        assert times[0] == pytest.approx(times[1])

    def test_statistics(self):
        sim = Simulator()
        mesh = MeshNetwork(sim, SPEC)

        def probe():
            yield from mesh.transfer((0, 0), (1, 1), 10)

        sim.run_until(sim.process(probe()))
        assert mesh.messages == 1
        assert mesh.total_hops == 2
        assert mesh.links_used() == 2


class TestPartitionAllocator:
    def test_contiguous_rectangle(self):
        alloc = PartitionAllocator(SPEC)
        part = alloc.allocate(4, "contiguous")
        assert part.contiguous
        rows = {r for r, _ in part.nodes}
        cols = {c for _, c in part.nodes}
        assert len(part.nodes) == len(rows) * len(cols)  # a full rectangle

    def test_scattered_takes_first_free(self):
        alloc = PartitionAllocator(SPEC)
        part = alloc.allocate(3, "scattered")
        assert part.nodes == ((0, 0), (0, 1), (0, 2))
        assert not part.contiguous

    def test_release_returns_nodes(self):
        alloc = PartitionAllocator(SPEC)
        part = alloc.allocate(8, "contiguous")
        before = alloc.free_nodes
        alloc.release(part)
        assert alloc.free_nodes == before + len(part.nodes)

    def test_double_release_rejected(self):
        alloc = PartitionAllocator(SPEC)
        part = alloc.allocate(2, "scattered")
        alloc.release(part)
        with pytest.raises(ScheduleError):
            alloc.release(part)

    def test_overallocate_rejected(self):
        alloc = PartitionAllocator(SPEC)
        with pytest.raises(ScheduleError):
            alloc.allocate(17, "scattered")

    def test_fragmentation_blocks_contiguous_but_not_scattered(self):
        alloc = PartitionAllocator(SPEC)
        # Hold a checkerboard: no 8-node rectangle remains.
        held = []
        for r in range(4):
            for c in range(4):
                part = alloc.allocate(1, "scattered")
        # Everything is held; free half of it as a checkerboard by
        # rebuilding: easier with a fresh allocator and direct holds.
        alloc = PartitionAllocator(SPEC)
        holds = []
        for _ in range(16):
            holds.append(alloc.allocate(1, "scattered"))
        for k, part in enumerate(holds):
            if (part.nodes[0][0] + part.nodes[0][1]) % 2 == 0:
                alloc.release(part)
        assert alloc.free_nodes == 8
        with pytest.raises(ScheduleError):
            alloc.allocate(8, "contiguous")
        part = alloc.allocate(8, "scattered")
        assert len(part.nodes) == 8

    def test_unknown_policy_rejected(self):
        alloc = PartitionAllocator(SPEC)
        with pytest.raises(ScheduleError):
            alloc.allocate(2, "quantum")

    def test_empty_partition_rejected(self):
        with pytest.raises(ScheduleError):
            Partition(nodes=(), contiguous=True)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=4))
    def test_allocations_disjoint(self, sizes):
        alloc = PartitionAllocator(MeshSpec(rows=6, cols=6))
        seen: set = set()
        for size in sizes:
            try:
                part = alloc.allocate(size, "contiguous")
            except ScheduleError:
                continue
            assert not seen.intersection(part.nodes)
            seen.update(part.nodes)
