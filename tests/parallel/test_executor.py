"""Unit tests for the deterministic process-pool executor."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.obs import MetricsRegistry, ObsContext, Tracer, observed
from repro.obs import context as _obs
from repro.parallel import ParallelExecutor, default_workers
from repro.parallel.executor import _worker_seed


@dataclass(frozen=True)
class Square:
    """Picklable module-level callable for pool tests."""

    offset: int = 0

    def __call__(self, x: int) -> int:
        return x * x + self.offset


@dataclass(frozen=True)
class Observed:
    """Callable that emits a span and a counter per item."""

    def __call__(self, x: int) -> int:
        with _obs.span("item.work", kind="test", item=x):
            _obs.inc("items.done")
        return x + 1


class TestSerialPath:
    def test_workers_one_runs_inline(self):
        executor = ParallelExecutor(workers=1)
        assert executor.map(Square(), range(5)) == [0, 1, 4, 9, 16]

    def test_single_item_runs_inline_regardless_of_workers(self):
        executor = ParallelExecutor(workers=8)
        assert executor.map(Square(), [3]) == [9]

    def test_empty_items(self):
        assert ParallelExecutor(workers=4).map(Square(), []) == []

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError("no")

        with pytest.raises(RuntimeError):
            ParallelExecutor(workers=1).map(boom, [1, 2])


class TestPoolPath:
    def test_results_in_input_order(self):
        executor = ParallelExecutor(workers=3)
        items = list(range(17))
        assert executor.map(Square(offset=1), items) == [x * x + 1 for x in items]

    def test_explicit_chunk_size(self):
        executor = ParallelExecutor(workers=2, chunk_size=2)
        assert executor.map(Square(), range(7)) == [x * x for x in range(7)]

    def test_matches_serial_exactly(self):
        items = list(range(12))
        serial = ParallelExecutor(workers=1).map(Square(offset=3), items)
        parallel = ParallelExecutor(workers=4).map(Square(offset=3), items)
        assert parallel == serial

    def test_lambda_falls_back_to_serial(self):
        executor = ParallelExecutor(workers=4)
        assert executor.map(lambda x: x * 2, range(6)) == [0, 2, 4, 6, 8, 10]


class TestValidation:
    def test_chunk_size_must_be_positive(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=2, chunk_size=0)

    def test_default_workers_at_least_one(self):
        assert default_workers() >= 1
        assert ParallelExecutor().workers == default_workers()

    def test_worker_seed_never_collides_with_parent(self):
        seeds = {_worker_seed(7, index) for index in range(100)}
        assert len(seeds) == 100
        assert 7 not in {_worker_seed(0, 0)}  # offset keeps item 0 distinct


class TestObservabilityMerge:
    def test_counters_and_spans_merged_into_parent(self):
        ctx = ObsContext(tracer=Tracer(seed=5), metrics=MetricsRegistry())
        with observed(ctx):
            with ctx.tracer.span("parent.map", kind="test"):
                values = ParallelExecutor(workers=2).map(Observed(), range(4))
        assert values == [1, 2, 3, 4]
        snap = ctx.metrics.snapshot()
        assert snap.counters.get("items.done") == 4
        work = [s for s in ctx.tracer.spans if s.name == "item.work"]
        assert len(work) == 4
        # Worker spans are re-homed: parent trace id, parented under the
        # span active at merge time, no ID collisions.
        parent = next(s for s in ctx.tracer.spans if s.name == "parent.map")
        assert all(s.trace_id == ctx.tracer.trace_id for s in work)
        assert all(s.parent_id == parent.span_id for s in work)
        assert len({s.span_id for s in ctx.tracer.spans}) == len(ctx.tracer.spans)

    def test_unobserved_run_carries_no_context(self):
        values = ParallelExecutor(workers=2).map(Observed(), range(3))
        assert values == [1, 2, 3]
