"""Failure-containment tests: crashing, killed and wedged workers.

These tests exercise the :class:`~repro.parallel.FailurePolicy` path of
:meth:`ParallelExecutor.map`: tasks whose worker dies (``os._exit``,
``os.kill``) or exceeds the deadline must be retried and eventually
quarantined without disturbing the other tasks' ordered results.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

import pytest

from repro.obs import MetricsRegistry, ObsContext, Tracer, observed
from repro.parallel import FailurePolicy, ParallelExecutor, Quarantined
from repro.reliability.degrade import Confidence


@dataclass(frozen=True)
class Double:
    """Picklable well-behaved task."""

    def __call__(self, x: int) -> int:
        return 2 * x


@dataclass(frozen=True)
class ExitOn:
    """Kills its worker process (exit without cleanup) for one input.

    The short sleep lets innocent wave-mates finish first, so blame
    lands deterministically on the poison task.
    """

    poison: int

    def __call__(self, x: int) -> int:
        if x == self.poison:
            time.sleep(0.2)
            os._exit(17)
        return 2 * x


@dataclass(frozen=True)
class SigkillOn:
    """Kills its worker via os.kill(SIGKILL) — a real crash signal."""

    poison: int

    def __call__(self, x: int) -> int:
        if x == self.poison:
            time.sleep(0.2)
            os.kill(os.getpid(), signal.SIGKILL)
        return 2 * x


@dataclass(frozen=True)
class HangOn:
    """Wedges its worker far past any test deadline for one input."""

    poison: int

    def __call__(self, x: int) -> int:
        if x == self.poison:
            time.sleep(60.0)
        return 2 * x


@dataclass(frozen=True)
class RaiseOn:
    """Raises an ordinary exception — not an infrastructure failure."""

    poison: int

    def __call__(self, x: int) -> int:
        if x == self.poison:
            raise RuntimeError(f"bad input {x}")
        return 2 * x


class TestPolicyValidation:
    def test_rejects_nonpositive_deadline(self):
        with pytest.raises(ValueError):
            FailurePolicy(deadline=0.0)

    def test_rejects_zero_task_failures(self):
        with pytest.raises(ValueError):
            FailurePolicy(max_task_failures=0)

    def test_rejects_negative_rebuilds(self):
        with pytest.raises(ValueError):
            FailurePolicy(max_pool_rebuilds=-1)


class TestQuarantinedSentinel:
    def test_confidence_is_analytic(self):
        q = Quarantined(index=3, reason="worker crash", failures=2)
        assert q.confidence is Confidence.ANALYTIC

    def test_falsy_for_filtering(self):
        q = Quarantined(index=0, reason="deadline exceeded", failures=1)
        assert not q
        assert list(filter(None, [1.0, q, 2.0])) == [1.0, 2.0]


class TestContainedHappyPath:
    def test_policy_with_no_failures_matches_plain_map(self):
        executor = ParallelExecutor(workers=2)
        plain = executor.map(Double(), range(8))
        contained = executor.map(Double(), range(8), policy=FailurePolicy())
        assert contained == plain == [2 * x for x in range(8)]

    def test_policy_ignored_on_inline_path(self):
        executor = ParallelExecutor(workers=1)
        result = executor.map(Double(), range(4), policy=FailurePolicy(deadline=0.001))
        assert result == [0, 2, 4, 6]


class TestWorkerCrash:
    def test_exited_worker_is_quarantined_others_survive_in_order(self):
        executor = ParallelExecutor(workers=3)
        result = executor.map(
            ExitOn(poison=3), range(6), policy=FailurePolicy(max_task_failures=2)
        )
        assert isinstance(result[3], Quarantined)
        assert result[3].reason == "worker crash"
        assert result[3].failures == 2
        for x in (0, 1, 2, 4, 5):
            assert result[x] == 2 * x

    def test_sigkilled_worker_is_quarantined(self):
        executor = ParallelExecutor(workers=3)
        result = executor.map(
            SigkillOn(poison=1), range(5), policy=FailurePolicy(max_task_failures=2)
        )
        assert isinstance(result[1], Quarantined)
        assert [result[x] for x in (0, 2, 3, 4)] == [0, 4, 6, 8]

    def test_values_match_serial_fallback_for_survivors(self):
        # Serial-fallback equivalence: the surviving slots must hold
        # exactly what an inline run of the same fn computes.
        serial = [ExitOn(poison=99)(x) for x in range(6)]
        contained = ParallelExecutor(workers=2).map(
            ExitOn(poison=99), range(6), policy=FailurePolicy()
        )
        assert contained == serial

    def test_fn_exception_propagates_not_quarantined(self):
        executor = ParallelExecutor(workers=2)
        with pytest.raises(RuntimeError, match="bad input 2"):
            executor.map(RaiseOn(poison=2), range(4), policy=FailurePolicy())


class TestDeadline:
    def test_wedged_task_is_quarantined_with_deadline_reason(self):
        executor = ParallelExecutor(workers=3)
        result = executor.map(
            HangOn(poison=2),
            range(4),
            policy=FailurePolicy(deadline=1.0, max_task_failures=2),
        )
        assert isinstance(result[2], Quarantined)
        assert result[2].reason == "deadline exceeded"
        assert [result[x] for x in (0, 1, 3)] == [0, 2, 6]


class TestObsCounters:
    def test_crash_retry_and_quarantine_counters(self):
        ctx = ObsContext(tracer=Tracer(seed=5), metrics=MetricsRegistry())
        with observed(ctx):
            ParallelExecutor(workers=2).map(
                ExitOn(poison=1), range(4), policy=FailurePolicy(max_task_failures=2)
            )
        snap = ctx.snapshot().counters
        assert snap.get("parallel.quarantines") == 1
        assert snap.get("parallel.pool_rebuilds", 0) >= 2
        assert snap.get("parallel.worker_crashes", 0) >= 2
        assert snap.get("parallel.task_retries", 0) >= 1
