"""Unit tests for gang scheduling (T_p effects)."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.ext.gang import GangScheduler, gang_slowdown
from repro.sim.engine import Simulator


class TestGangSlowdown:
    def test_dedicated_partition(self):
        assert gang_slowdown(1) == 1.0

    def test_linear_in_gangs(self):
        assert gang_slowdown(3, quantum=0.1, switch_cost=0.0) == 3.0

    def test_switch_cost_inflates(self):
        assert gang_slowdown(2, quantum=0.1, switch_cost=0.01) == pytest.approx(2.2)

    def test_validation(self):
        with pytest.raises(ModelError):
            gang_slowdown(0)
        with pytest.raises(ValueError):
            gang_slowdown(2, quantum=0.0)


class TestGangScheduler:
    def test_dedicated_run(self):
        sim = Simulator()
        sched = GangScheduler(sim, nodes=8, quantum=0.1, switch_cost=0.0)

        def probe():
            elapsed = yield from sched.run("probe", 8.0)
            return elapsed

        assert sim.run_until(sim.process(probe())) == pytest.approx(1.0)

    def test_two_gangs_share(self):
        sim = Simulator()
        sched = GangScheduler(sim, nodes=4, quantum=0.05, switch_cost=0.0)

        def background():
            while True:
                yield from sched.run("bg", 1e6)

        sim.process(background(), daemon=True)

        def probe():
            elapsed = yield from sched.run("probe", 4.0)
            return elapsed

        elapsed = sim.run_until(sim.process(probe()))
        assert elapsed == pytest.approx(2.0, rel=0.1)

    def test_matches_analytical_model(self):
        for gangs in (1, 2, 3):
            sim = Simulator()
            sched = GangScheduler(sim, nodes=8, quantum=0.05, switch_cost=1e-3)
            for g in range(gangs - 1):
                def bg(tag=f"bg{g}"):
                    while True:
                        yield from sched.run(tag, 1e6)

                sim.process(bg(), daemon=True)

            def probe():
                elapsed = yield from sched.run("probe", 8.0)
                return elapsed

            actual = sim.run_until(sim.process(probe()))
            model = 1.0 * gang_slowdown(gangs, 0.05, 1e-3)
            assert actual == pytest.approx(model, rel=0.05)

    def test_whole_gang_switch_semantics(self):
        """Work within one gang does not pay context switches."""
        sim = Simulator()
        sched = GangScheduler(sim, nodes=2, quantum=0.05, switch_cost=0.01)

        def probe():
            for _ in range(5):
                yield from sched.run("probe", 0.2)
            return sim.now

        elapsed = sim.run_until(sim.process(probe()))
        assert elapsed == pytest.approx(0.5, rel=1e-6)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ModelError):
            GangScheduler(sim, nodes=0)
        sched = GangScheduler(sim, nodes=2)
        with pytest.raises(ModelError):
            next(sched.run("g", -1.0))
