"""Unit tests for the time-varying load extension."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.workload import ApplicationProfile
from repro.errors import ModelError
from repro.ext.timevarying import LoadTimeline, Phase, predict_elapsed


def count_slowdown(profiles) -> float:
    """Toy model: slowdown = p + 1 (the CM2 form)."""
    return float(len(profiles) + 1)


def prof(name: str, fraction: float = 0.0) -> ApplicationProfile:
    return ApplicationProfile(name, fraction, 100 if fraction else 0)


class TestLoadTimeline:
    def test_starts_empty(self):
        tl = LoadTimeline()
        assert tl.current_profiles == ()
        assert tl.phase_at(5.0).p == 0

    def test_arrive_depart(self):
        tl = LoadTimeline()
        tl.arrive(1.0, prof("x"))
        tl.arrive(2.0, prof("y"))
        tl.depart(3.0, "x")
        assert tl.phase_at(0.5).p == 0
        assert tl.phase_at(1.5).p == 1
        assert tl.phase_at(2.5).p == 2
        assert tl.phase_at(10.0).p == 1

    def test_phase_boundary_inclusive(self):
        tl = LoadTimeline()
        tl.arrive(2.0, prof("x"))
        assert tl.phase_at(2.0).p == 1

    def test_duplicate_arrival_rejected(self):
        tl = LoadTimeline()
        tl.arrive(1.0, prof("x"))
        with pytest.raises(ModelError):
            tl.arrive(2.0, prof("x"))

    def test_unknown_departure_rejected(self):
        with pytest.raises(ModelError):
            LoadTimeline().depart(1.0, "ghost")

    def test_time_must_not_decrease(self):
        tl = LoadTimeline()
        tl.arrive(5.0, prof("x"))
        with pytest.raises(ModelError):
            tl.arrive(4.0, prof("y"))

    def test_same_instant_changes_merge(self):
        tl = LoadTimeline()
        tl.arrive(1.0, prof("x"))
        tl.arrive(1.0, prof("y"))
        assert tl.phase_at(1.0).p == 2
        assert len(tl.phases) == 2  # initial empty + merged change

    def test_boundaries_after(self):
        tl = LoadTimeline()
        tl.arrive(1.0, prof("x"))
        tl.depart(4.0, "x")
        assert tl.boundaries_after(0.0) == [1.0, 4.0]
        assert tl.boundaries_after(1.0) == [4.0]

    def test_explicit_phases_validation(self):
        with pytest.raises(ModelError):
            LoadTimeline([Phase(1.0, ()), Phase(1.0, ())])

    def test_query_before_start_rejected(self):
        tl = LoadTimeline([Phase(5.0, ())])
        with pytest.raises(ModelError):
            tl.phase_at(1.0)


class TestPredictElapsed:
    def test_empty_timeline_is_dedicated(self):
        assert predict_elapsed(3.0, LoadTimeline(), count_slowdown) == pytest.approx(3.0)

    def test_constant_contention(self):
        tl = LoadTimeline()
        tl.arrive(0.0, prof("x"))
        assert predict_elapsed(3.0, tl, count_slowdown) == pytest.approx(6.0)

    def test_contender_for_part_of_execution(self):
        """The §4 scenario: a contender present only mid-execution."""
        tl = LoadTimeline()
        tl.arrive(1.0, prof("x"))
        tl.depart(3.0, "x")
        # 1s free (1 work) + 2s at x2 (1 work) + 2s free (2 work) = 5s.
        assert predict_elapsed(4.0, tl, count_slowdown) == pytest.approx(5.0)

    def test_task_finishes_before_load_change(self):
        tl = LoadTimeline()
        tl.arrive(10.0, prof("x"))
        assert predict_elapsed(2.0, tl, count_slowdown) == pytest.approx(2.0)

    def test_task_starting_mid_timeline(self):
        tl = LoadTimeline()
        tl.arrive(0.0, prof("x"))
        tl.depart(4.0, "x")
        # Start at t=3: 1s at x2 (0.5 work) + 1.5s free = 2.5s elapsed.
        assert predict_elapsed(2.0, tl, count_slowdown, start=3.0) == pytest.approx(2.5)

    def test_zero_work(self):
        assert predict_elapsed(0.0, LoadTimeline(), count_slowdown) == 0.0

    def test_negative_work_rejected(self):
        with pytest.raises(ModelError):
            predict_elapsed(-1.0, LoadTimeline(), count_slowdown)

    def test_bad_slowdown_function_rejected(self):
        with pytest.raises(ModelError):
            predict_elapsed(1.0, LoadTimeline(), lambda ps: 0.5)

    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=0.01, max_value=10.0),
        st.lists(st.floats(min_value=0.1, max_value=5.0), min_size=0, max_size=5),
    )
    def test_elapsed_at_least_work(self, work, gaps):
        """Contention can only stretch execution."""
        tl = LoadTimeline()
        t = 0.0
        for k, gap in enumerate(gaps):
            t += gap
            tl.arrive(t, prof(f"a{k}"))
        elapsed = predict_elapsed(work, tl, count_slowdown)
        assert elapsed >= work - 1e-12

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=0.01, max_value=5.0))
    def test_consistency_with_integral(self, work):
        """Progress integrated over the predicted window equals work."""
        tl = LoadTimeline()
        tl.arrive(1.0, prof("x"))
        tl.arrive(2.0, prof("y"))
        tl.depart(4.0, "x")
        elapsed = predict_elapsed(work, tl, count_slowdown)
        # Numerically integrate 1/slowdown over [0, elapsed] (midpoint rule).
        import numpy as np

        n = 4000
        ts = np.linspace(0, elapsed, n + 1)[:-1] + elapsed / (2 * n)
        rates = np.array([1.0 / count_slowdown(tl.phase_at(t).profiles) for t in ts])
        integral = rates.mean() * elapsed
        assert integral == pytest.approx(work, rel=5e-3, abs=5e-3)
