"""Behavioural tests for the adaptive in-simulation scheduler."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.ext.adaptive import AdaptiveRunner
from repro.sim.cpu import TimeSharedCPU
from repro.sim.engine import Simulator


def build(sim: Simulator, names=("m1", "m2"), **kwargs) -> AdaptiveRunner:
    cpus = {name: TimeSharedCPU(sim, discipline="ps", name=name) for name in names}
    return AdaptiveRunner(sim, cpus, **kwargs)


def hog(cpu: TimeSharedCPU, tag: str):
    while True:
        yield cpu.execute(0.05, tag=tag)


class TestAdaptiveRunner:
    def test_uncontended_run_is_dedicated(self):
        sim = Simulator()
        runner = build(sim)

        def main():
            outcome = yield from runner.run(2.0, "m1")
            return outcome

        outcome = sim.run_until(sim.process(main()))
        assert outcome.elapsed == pytest.approx(2.0, rel=1e-6)
        assert outcome.migrations == []
        assert outcome.finished_on == "m1"

    def test_migrates_away_from_contention(self):
        sim = Simulator()
        runner = build(sim, migration_cost=0.1)
        sim.process(hog(runner.cpus["m1"], "hog"), daemon=True)

        def main():
            outcome = yield from runner.run(4.0, "m1")
            return outcome

        outcome = sim.run_until(sim.process(main()))
        assert outcome.finished_on == "m2"
        assert len(outcome.migrations) == 1
        # Far faster than staying: staying would cost ~8s.
        assert outcome.elapsed < 6.0

    def test_adaptive_beats_static_under_midrun_arrival(self):
        """A contender arrives mid-run: the adaptive task escapes it."""

        def run(adaptive: bool) -> float:
            sim = Simulator()
            runner = build(sim, migration_cost=0.2)

            def late_hog():
                yield sim.timeout(1.0)
                while True:
                    yield runner.cpus["m1"].execute(0.05, tag="hog")

            sim.process(late_hog(), daemon=True)
            if adaptive:
                def main():
                    outcome = yield from runner.run(4.0, "m1")
                    return outcome.elapsed

                return sim.run_until(sim.process(main()))
            done = runner.cpus["m1"].execute(4.0, tag="static")
            sim.run_until(done)
            return sim.now

        static = run(adaptive=False)   # 1s free + 3s at x2 = ~7s
        adaptive = run(adaptive=True)  # migrates shortly after t=1
        assert adaptive < static - 1.0

    def test_hysteresis_prevents_thrash(self):
        sim = Simulator()
        runner = build(sim, migration_cost=0.0, min_gain=100.0)
        sim.process(hog(runner.cpus["m1"], "hog"), daemon=True)

        def main():
            outcome = yield from runner.run(1.0, "m1")
            return outcome

        outcome = sim.run_until(sim.process(main()))
        assert outcome.migrations == []

    def test_speed_ratio_respected(self):
        sim = Simulator()
        runner = build(sim, speed={"m2": 0.25})

        def main():
            outcome = yield from runner.run(1.0, "m2")
            return outcome

        outcome = sim.run_until(sim.process(main()))
        # m2 runs at quarter speed and m1 is idle: the runner should
        # hop to m1 almost immediately.
        assert outcome.finished_on == "m1"
        assert outcome.elapsed < 4.0 * 0.75

    def test_expensive_migration_keeps_task_put(self):
        sim = Simulator()
        runner = build(sim, migration_cost=1e6)
        sim.process(hog(runner.cpus["m1"], "hog"), daemon=True)

        def main():
            outcome = yield from runner.run(1.0, "m1")
            return outcome

        outcome = sim.run_until(sim.process(main()))
        assert outcome.finished_on == "m1"
        assert outcome.elapsed == pytest.approx(2.0, rel=0.1)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ModelError):
            AdaptiveRunner(sim, {})
        runner = build(sim)
        with pytest.raises(ModelError):
            next(runner.run(1.0, "nowhere"))
        with pytest.raises(ModelError):
            build(sim, chunk=0.0)
        with pytest.raises(ModelError):
            build(sim, speed={"m1": -1.0})
        with pytest.raises(ModelError):
            build(sim, speed={"zzz": 1.0})
