"""Unit tests for the multi-machine generalisation."""

from __future__ import annotations

import pytest

from repro.core.params import DelayTable, SizedDelayTable
from repro.core.workload import ApplicationProfile
from repro.errors import ModelError, ScheduleError
from repro.ext.multimachine import HeterogeneousSystem, MachineState

DELAY_COMP = DelayTable((0.5, 1.1, 1.8))
DELAY_COMM = DelayTable((0.2, 0.7, 1.3))
SIZED = SizedDelayTable(tables={500: DelayTable((0.4, 0.9, 1.4))})


def three_machine_system() -> HeterogeneousSystem:
    machines = [
        MachineState("ws1", delay_comp=DELAY_COMP, delay_comm=DELAY_COMM,
                     delay_comm_sized=SIZED),
        MachineState("ws2", delay_comp=DELAY_COMP, delay_comm=DELAY_COMM,
                     delay_comm_sized=SIZED),
        MachineState("mpp"),  # CM2-style: CPU-bound contention only
    ]
    comm = {
        (a, b): 2.0
        for a in ("ws1", "ws2", "mpp")
        for b in ("ws1", "ws2", "mpp")
        if a != b
    }
    return HeterogeneousSystem(machines, comm)


EXEC = {
    "t1": {"ws1": 10.0, "ws2": 12.0, "mpp": 4.0},
    "t2": {"ws1": 3.0, "ws2": 3.5, "mpp": 9.0},
}


class TestMachineState:
    def test_empty_machine_slowdowns_one(self):
        state = MachineState("m")
        assert state.comp_slowdown() == 1.0
        assert state.comm_slowdown() == 1.0

    def test_cpu_bound_degenerates_to_p_plus_one(self):
        state = MachineState("m")
        state.profiles = [ApplicationProfile.cpu_bound(f"h{i}") for i in range(2)]
        assert state.comp_slowdown() == 3.0
        assert state.comm_slowdown() == 3.0

    def test_communicating_without_tables_rejected(self):
        state = MachineState("m")
        state.profiles = [ApplicationProfile("c", 0.5, 100)]
        with pytest.raises(ModelError):
            state.comp_slowdown()
        with pytest.raises(ModelError):
            state.comm_slowdown()

    def test_with_tables_uses_paragon_formulas(self):
        state = MachineState(
            "m", delay_comp=DELAY_COMP, delay_comm=DELAY_COMM, delay_comm_sized=SIZED
        )
        state.profiles = [ApplicationProfile("c", 0.5, 500)]
        assert state.comp_slowdown() > 1.0
        assert state.comm_slowdown() > 1.0


class TestHeterogeneousSystem:
    def test_dedicated_mapping(self):
        system = three_machine_system()
        result = system.best_mapping(("t1", "t2"), EXEC)
        # t1 on mpp (4) + transfer (2) + t2 on ws1 (3) = 9 beats all.
        assert result.placement(("t1", "t2")) == {"t1": "mpp", "t2": "ws1"}
        assert result.elapsed == pytest.approx(9.0)

    def test_contention_flips_mapping(self):
        """Load the MPP's front end with CPU hogs: t1 moves away."""
        system = three_machine_system()
        for k in range(3):
            system.arrive("mpp", ApplicationProfile.cpu_bound(f"hog{k}"))
        result = system.best_mapping(("t1", "t2"), EXEC)
        assert result.placement(("t1", "t2"))["t1"] != "mpp"

    def test_transfer_scaled_by_busier_endpoint(self):
        system = three_machine_system()
        for k in range(2):
            system.arrive("ws1", ApplicationProfile.cpu_bound(f"hog{k}"))
        problem = system.adjusted_problem(("t1", "t2"), EXEC)
        # ws1 has calibrated tables: with two always-computing hogs,
        # comm slowdown = 1 + delay_comp^2 = 2.1.
        assert problem.comm_time[("ws2", "ws1")] == pytest.approx(2.0 * 2.1)
        assert problem.comm_time[("ws2", "mpp")] == pytest.approx(2.0)

    def test_arrive_depart(self):
        system = three_machine_system()
        system.arrive("ws1", ApplicationProfile.cpu_bound("h"))
        assert system.machines["ws1"].p == 1
        system.depart("ws1", "h")
        assert system.machines["ws1"].p == 0
        with pytest.raises(ModelError):
            system.depart("ws1", "h")

    def test_unknown_machine_rejected(self):
        system = three_machine_system()
        with pytest.raises(ScheduleError):
            system.arrive("nowhere", ApplicationProfile.cpu_bound("h"))

    def test_duplicate_machine_names_rejected(self):
        with pytest.raises(ScheduleError):
            HeterogeneousSystem([MachineState("m"), MachineState("m")], {})

    def test_empty_system_rejected(self):
        with pytest.raises(ScheduleError):
            HeterogeneousSystem([], {})
