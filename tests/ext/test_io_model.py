"""Unit tests for the I/O extension."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.params import DelayTable
from repro.errors import ModelError, WorkloadError
from repro.ext.io_model import (
    IOProfile,
    io_aware_comp_slowdown,
    io_bound,
    joint_activity_distribution,
)
from repro.platforms.sunparagon import SunParagonPlatform
from repro.sim.engine import Simulator
from repro.sim.resources import FifoResource

DELAY_COMM = DelayTable((0.4, 0.9, 1.4, 1.9, 2.4))
DELAY_IO = DelayTable((0.1, 0.2, 0.3, 0.4, 0.5))


def brute_force_joint(profiles: list[IOProfile]) -> np.ndarray:
    p = len(profiles)
    joint = np.zeros((p + 1, p + 1))
    for states in itertools.product(["comp", "comm", "other"], repeat=p):
        prob = 1.0
        for prof, s in zip(profiles, states):
            prob *= {
                "comp": prof.comp_fraction,
                "comm": prof.comm_fraction,
                "other": 1 - prof.comp_fraction - prof.comm_fraction,
            }[s]
        joint[states.count("comp"), states.count("comm")] += prob
    return joint


class TestIOProfile:
    def test_valid(self):
        IOProfile("x", 0.5, 0.3, 0.2)

    def test_oversum_rejected(self):
        with pytest.raises(ModelError):
            IOProfile("x", 0.5, 0.4, 0.2)

    def test_fraction_bounds(self):
        with pytest.raises(ModelError):
            IOProfile("x", -0.1)


class TestJointDistribution:
    def test_sums_to_one(self):
        profiles = [IOProfile("a", 0.5, 0.3, 0.2), IOProfile("b", 0.4, 0.4, 0.1)]
        assert joint_activity_distribution(profiles).sum() == pytest.approx(1.0)

    def test_empty(self):
        joint = joint_activity_distribution([])
        assert joint.shape == (1, 1)
        assert joint[0, 0] == 1.0

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1),
                st.floats(min_value=0, max_value=1),
                st.floats(min_value=0, max_value=1),
            ).map(lambda t: (t[0] / (sum(t) + 1e-9), t[1] / (sum(t) + 1e-9))),
            max_size=5,
        )
    )
    def test_matches_brute_force(self, specs):
        profiles = [IOProfile(f"a{i}", c, m) for i, (c, m) in enumerate(specs)]
        joint = joint_activity_distribution(profiles)
        assert joint == pytest.approx(brute_force_joint(profiles), abs=1e-10)

    def test_two_phase_reduces_to_poisson_binomial(self):
        """With io = 0, the comm marginal equals the base model's."""
        from repro.core.probability import overlap_distribution

        profiles = [IOProfile("a", 0.7, 0.3), IOProfile("b", 0.2, 0.8)]
        joint = joint_activity_distribution(profiles)
        assert joint.sum(axis=0) == pytest.approx(overlap_distribution([0.3, 0.8]))


class TestIOAwareSlowdown:
    def test_empty_is_one(self):
        assert io_aware_comp_slowdown([], DELAY_COMM) == 1.0

    def test_reduces_to_base_model_without_io(self):
        from repro.core.params import SizedDelayTable
        from repro.core.slowdown import paragon_comp_slowdown
        from repro.core.workload import ApplicationProfile

        base_profiles = [
            ApplicationProfile("a", 0.3, 200),
            ApplicationProfile("b", 0.8, 200),
        ]
        io_profiles = [IOProfile("a", 0.7, 0.3), IOProfile("b", 0.2, 0.8)]
        sized = SizedDelayTable(tables={200: DELAY_COMM})
        base = paragon_comp_slowdown(base_profiles, sized)
        extended = io_aware_comp_slowdown(io_profiles, DELAY_COMM)
        assert extended == pytest.approx(base)

    def test_io_bound_contender_interferes_less_than_cpu_bound(self):
        """An app spending half its time in I/O steals less CPU than a
        pure CPU hog — the motivating observation."""
        cpu_hog = [IOProfile("h", comp_fraction=1.0)]
        io_hog = [IOProfile("h", comp_fraction=0.5, io_fraction=0.5)]
        assert io_aware_comp_slowdown(io_hog, DELAY_COMM) < io_aware_comp_slowdown(
            cpu_hog, DELAY_COMM
        )

    def test_io_table_adds_disk_contention(self):
        profiles = [IOProfile("a", 0.4, 0.0, 0.6)]
        without = io_aware_comp_slowdown(profiles, DELAY_COMM)
        with_io = io_aware_comp_slowdown(profiles, DELAY_COMM, delay_io=DELAY_IO)
        assert with_io > without


class TestIOBoundGenerator:
    def test_runs_and_blocks_on_disk(self, quiet_paragon_spec):
        sim = Simulator()
        platform = SunParagonPlatform(sim, spec=quiet_paragon_spec)
        disk = FifoResource(sim, capacity=1, name="disk")
        platform.spawn(
            io_bound(platform, disk, io_service=0.005, compute_chunk=0.005,
                     io_fraction=0.5, tag="io"),
            name="io",
        )
        sim.run(until=2.0)
        cpu_share = platform.frontend_cpu.service_by_tag.get("io", 0.0) / 2.0
        assert 0.3 < cpu_share < 0.7  # roughly half computing, half I/O
        assert disk.total_grants > 0

    def test_validation(self, quiet_paragon_spec):
        sim = Simulator()
        platform = SunParagonPlatform(sim, spec=quiet_paragon_spec)
        disk = FifoResource(sim, 1)
        with pytest.raises(WorkloadError):
            next(io_bound(platform, disk, io_service=0.0))
        with pytest.raises(WorkloadError):
            next(io_bound(platform, disk, io_service=0.01, io_fraction=1.0))
