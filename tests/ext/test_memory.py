"""Unit tests for the memory-constraint extension."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelError
from repro.ext.memory import MemoryModel, memory_aware_slowdown


class TestMemoryModel:
    def test_no_penalty_when_everything_fits(self):
        model = MemoryModel(capacity=100.0, page_penalty=50.0)
        assert model.factor([30, 40, 30]) == 1.0
        assert model.factor([]) == 1.0

    def test_penalty_grows_with_overcommit(self):
        model = MemoryModel(capacity=100.0, page_penalty=10.0)
        mild = model.factor([60, 60])
        severe = model.factor([200, 200])
        assert 1.0 < mild < severe

    def test_exact_formula(self):
        model = MemoryModel(capacity=100.0, page_penalty=11.0)
        # demand 200 -> nonresident half -> 1 + 0.5 * 10 = 6
        assert model.factor([200]) == pytest.approx(6.0)

    def test_overcommit_ratio(self):
        model = MemoryModel(capacity=50.0)
        assert model.overcommit([25, 50]) == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryModel(capacity=0.0)
        with pytest.raises(ModelError):
            MemoryModel(capacity=1.0, page_penalty=0.5)
        with pytest.raises(ModelError):
            MemoryModel(capacity=1.0).factor([-5])

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=1e3), max_size=6))
    def test_factor_at_least_one_and_bounded(self, working_sets):
        model = MemoryModel(capacity=100.0, page_penalty=20.0)
        f = model.factor(working_sets)
        assert 1.0 <= f <= 20.0


class TestComposition:
    def test_multiplies_base(self):
        model = MemoryModel(capacity=100.0, page_penalty=11.0)
        assert memory_aware_slowdown(2.0, model, [200]) == pytest.approx(12.0)

    def test_fits_leaves_base_unchanged(self):
        model = MemoryModel(capacity=100.0)
        assert memory_aware_slowdown(3.0, model, [10]) == 3.0

    def test_base_validation(self):
        model = MemoryModel(capacity=100.0)
        with pytest.raises(ModelError):
            memory_aware_slowdown(0.5, model, [10])
