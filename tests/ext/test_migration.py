"""Unit tests for the task-migration extension."""

from __future__ import annotations

import pytest

from repro.core.workload import ApplicationProfile
from repro.errors import ModelError
from repro.ext.migration import MigrationPlanner, should_migrate
from repro.ext.timevarying import LoadTimeline


def prof(name: str) -> ApplicationProfile:
    return ApplicationProfile(name, 0.0)


class TestShouldMigrate:
    def test_clear_win(self):
        # stay: 10x3 = 30; move: 5 + 10x1 = 15.
        assert should_migrate(10.0, 3.0, 1.0, migration_cost=5.0)

    def test_cost_kills_marginal_win(self):
        # stay: 10x1.2 = 12; move: 5 + 10 = 15.
        assert not should_migrate(10.0, 1.2, 1.0, migration_cost=5.0)

    def test_little_remaining_work_never_pays(self):
        assert not should_migrate(0.1, 5.0, 1.0, migration_cost=2.0)

    def test_hysteresis(self):
        # saving = 10x2 - (0 + 10x1) = 10.
        assert should_migrate(10.0, 2.0, 1.0, 0.0, min_gain=9.0)
        assert not should_migrate(10.0, 2.0, 1.0, 0.0, min_gain=11.0)

    def test_validation(self):
        with pytest.raises(ModelError):
            should_migrate(-1.0, 2.0, 1.0, 0.0)
        with pytest.raises(ModelError):
            should_migrate(1.0, 0.5, 1.0, 0.0)
        with pytest.raises(ModelError):
            should_migrate(1.0, 1.0, 1.0, -1.0)


class TestMigrationPlanner:
    @staticmethod
    def planner(cost: float = 0.5, min_gain: float = 0.0) -> MigrationPlanner:
        # Machine "m1" is slowed by contenders; "m2" is always free but
        # its dedicated rate is encoded as a constant 1.5x slowdown.
        def slowdown_of(machine, profiles):
            if machine == "m1":
                return float(1 + len(profiles))
            return 1.5

        return MigrationPlanner(
            machines=("m1", "m2"),
            slowdown_of=slowdown_of,
            migration_cost=lambda a, b: cost,
            min_gain=min_gain,
        )

    def test_no_load_changes_no_migration(self):
        decisions = self.planner().plan(2.0, LoadTimeline(), start_machine="m1")
        assert len(decisions) == 1
        assert decisions[0].machine == "m1"
        assert not decisions[0].migrated

    def test_migrates_when_contention_arrives(self):
        tl = LoadTimeline()
        tl.arrive(1.0, prof("x"))  # m1 slowdown becomes 2 > 1.5
        decisions = self.planner().plan(10.0, tl, start_machine="m1")
        assert decisions[-1].machine == "m2"
        assert decisions[-1].migrated

    def test_stays_when_migration_too_expensive(self):
        tl = LoadTimeline()
        tl.arrive(1.0, prof("x"))
        decisions = self.planner(cost=100.0).plan(10.0, tl, start_machine="m1")
        assert all(d.machine == "m1" for d in decisions)

    def test_finishes_before_change_no_decision(self):
        tl = LoadTimeline()
        tl.arrive(50.0, prof("x"))
        decisions = self.planner().plan(1.0, tl, start_machine="m1")
        assert len(decisions) == 1

    def test_default_start_machine_is_best(self):
        tl = LoadTimeline()
        tl.arrive(0.0, prof("x"))  # m1 starts at slowdown 2 vs m2's 1.5
        decisions = self.planner().plan(1.0, tl)
        assert decisions[0].machine == "m2"

    def test_unknown_start_machine_rejected(self):
        with pytest.raises(ModelError):
            self.planner().plan(1.0, LoadTimeline(), start_machine="m9")

    def test_remaining_work_decreases(self):
        tl = LoadTimeline()
        tl.arrive(1.0, prof("x"))
        tl.depart(2.0, "x")
        tl.arrive(3.0, prof("y"))
        decisions = self.planner(cost=100.0).plan(10.0, tl, start_machine="m1")
        works = [d.remaining_work for d in decisions]
        assert works == sorted(works, reverse=True)
        assert all(w >= 0 for w in works)
