"""Unit and property tests for the load forecasters."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelError
from repro.ext.forecast import (
    AdaptiveForecaster,
    ExponentialSmoothing,
    LastValue,
    MedianWindow,
    RunningMean,
    SlidingWindowMean,
    forecast_series,
)

ALL_PREDICTORS = [
    LastValue,
    RunningMean,
    lambda: SlidingWindowMean(4),
    lambda: MedianWindow(4),
    lambda: ExponentialSmoothing(0.3),
    AdaptiveForecaster,
]


class TestBasics:
    def test_nan_before_data(self):
        for factory in ALL_PREDICTORS:
            assert math.isnan(factory().predict())

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=-100, max_value=100), st.integers(min_value=1, max_value=20))
    def test_constant_series_predicted_exactly(self, value, n):
        for factory in ALL_PREDICTORS:
            f = factory()
            for _ in range(n):
                f.update(value)
            assert f.predict() == pytest.approx(value)

    def test_last_value(self):
        f = LastValue()
        f.update(1.0)
        f.update(5.0)
        assert f.predict() == 5.0

    def test_running_mean(self):
        f = RunningMean()
        for v in (1.0, 2.0, 3.0):
            f.update(v)
        assert f.predict() == pytest.approx(2.0)

    def test_sliding_window_forgets(self):
        f = SlidingWindowMean(2)
        for v in (100.0, 1.0, 3.0):
            f.update(v)
        assert f.predict() == pytest.approx(2.0)

    def test_median_robust_to_outlier(self):
        f = MedianWindow(5)
        for v in (1.0, 1.0, 1.0, 1.0, 1000.0):
            f.update(v)
        assert f.predict() == 1.0

    def test_exponential_smoothing_tracks(self):
        f = ExponentialSmoothing(0.5)
        f.update(0.0)
        f.update(10.0)
        assert f.predict() == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ModelError):
            SlidingWindowMean(0)
        with pytest.raises(ModelError):
            MedianWindow(0)
        with pytest.raises(ModelError):
            ExponentialSmoothing(0.0)
        with pytest.raises(ModelError):
            AdaptiveForecaster([])


class TestAdaptive:
    def test_picks_last_value_on_trend(self):
        """On a strong trend, LastValue beats the long-memory means."""
        adaptive = AdaptiveForecaster()
        for v in np.linspace(0, 100, 60):
            adaptive.update(float(v))
        assert isinstance(adaptive.members[adaptive.best_index()], LastValue)

    def test_picks_robust_member_on_noise(self):
        """On zero-mean white noise, the long average beats LastValue."""
        rng = np.random.default_rng(3)
        adaptive = AdaptiveForecaster()
        for v in rng.normal(10.0, 2.0, 300):
            adaptive.update(float(v))
        mse = adaptive.mse()
        last_value_mse = mse[0]
        assert min(mse) < last_value_mse

    def test_adaptive_close_to_best_member(self):
        rng = np.random.default_rng(7)
        series = list(rng.normal(5.0, 1.0, 200))
        _, adaptive_rmse = forecast_series(series, AdaptiveForecaster())
        member_rmses = []
        for factory in ALL_PREDICTORS[:-1]:
            _, rmse = forecast_series(series, factory())
            member_rmses.append(rmse)
        assert adaptive_rmse <= min(member_rmses) * 1.2


class TestForecastSeries:
    def test_predictions_are_one_step_ahead(self):
        predictions, _ = forecast_series([1.0, 2.0, 3.0], LastValue())
        assert math.isnan(predictions[0])
        assert predictions[1] == 1.0
        assert predictions[2] == 2.0

    def test_rmse_computation(self):
        _, rmse = forecast_series([1.0, 2.0, 2.0], LastValue())
        # errors: (1-2)^2 and (2-2)^2 -> rmse = sqrt(0.5)
        assert rmse == pytest.approx(math.sqrt(0.5))

    def test_empty_series(self):
        predictions, rmse = forecast_series([], LastValue())
        assert predictions == []
        assert math.isnan(rmse)
