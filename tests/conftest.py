"""Shared fixtures.

``quiet_*`` specs disable the OS-daemon background noise so unit tests
see deterministic, analytically checkable timings; the calibration
fixtures are session-scoped because the suites are deliberately
"computed just once per platform" (and cost a couple of seconds).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.calibrate import calibrate_cm2, calibrate_paragon
from repro.platforms.specs import CpuSpec, SunCM2Spec, SunParagonSpec
from repro.sim.engine import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture(scope="session")
def quiet_cpu() -> CpuSpec:
    """Round-robin CPU without background daemon noise."""
    return CpuSpec(daemon_interval=0.0, daemon_work=0.0)


@pytest.fixture(scope="session")
def quiet_cm2_spec(quiet_cpu: CpuSpec) -> SunCM2Spec:
    return SunCM2Spec(cpu=quiet_cpu)


@pytest.fixture(scope="session")
def quiet_paragon_spec(quiet_cpu: CpuSpec) -> SunParagonSpec:
    return SunParagonSpec(cpu=quiet_cpu)


@pytest.fixture(scope="session")
def paragon_cal(quiet_paragon_spec: SunParagonSpec):
    """Full §3.2 calibration on the quiet platform (session-cached)."""
    return calibrate_paragon(quiet_paragon_spec, p_max=3)


@pytest.fixture(scope="session")
def cm2_cal(quiet_cm2_spec: SunCM2Spec):
    """§3.1.1 calibration on the quiet platform (session-cached)."""
    return calibrate_cm2(quiet_cm2_spec)
