"""Behavioural tests for probes, benchmarks and contention generators."""

from __future__ import annotations

import pytest

from repro.apps.burst import message_burst
from repro.apps.contender import alternating, continuous_comm, cpu_bound, dedicated_message_time
from repro.apps.pingpong import pingpong_burst, pingpong_burst_reverse
from repro.apps.program import frontend_program, transfer_program
from repro.errors import WorkloadError
from repro.platforms.suncm2 import SunCM2Platform
from repro.platforms.sunparagon import SunParagonPlatform
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


@pytest.fixture
def paragon(quiet_paragon_spec):
    sim = Simulator()
    return sim, SunParagonPlatform(sim, spec=quiet_paragon_spec)


class TestPingPong:
    def test_dedicated_burst_time(self, paragon, quiet_paragon_spec):
        sim, platform = paragon
        probe = sim.process(pingpong_burst(platform, 200, count=50))
        elapsed = sim.run_until(probe)
        expected = 50 * quiet_paragon_spec.message_dedicated_time(
            200
        ) + quiet_paragon_spec.message_dedicated_time(1)
        assert elapsed == pytest.approx(expected, rel=1e-6)

    def test_reverse_burst(self, paragon, quiet_paragon_spec):
        sim, platform = paragon
        probe = sim.process(pingpong_burst_reverse(platform, 200, count=50))
        elapsed = sim.run_until(probe)
        # Symmetric platform: same as the forward burst.
        expected = 50 * quiet_paragon_spec.message_dedicated_time(
            200
        ) + quiet_paragon_spec.message_dedicated_time(1)
        assert elapsed == pytest.approx(expected, rel=1e-6)

    def test_count_validation(self, paragon):
        sim, platform = paragon
        with pytest.raises(WorkloadError):
            sim.run_until(sim.process(pingpong_burst(platform, 200, count=0)))


class TestBurst:
    def test_burst_scales_linearly(self, paragon, quiet_paragon_spec):
        sim, platform = paragon
        p = sim.process(message_burst(platform, 100, count=30, direction="out"))
        elapsed = sim.run_until(p)
        assert elapsed == pytest.approx(
            30 * quiet_paragon_spec.message_dedicated_time(100), rel=1e-6
        )

    def test_burst_in_direction(self, paragon):
        sim, platform = paragon
        p = sim.process(message_burst(platform, 100, count=10, direction="in"))
        assert sim.run_until(p) > 0


class TestPrograms:
    def test_frontend_program_dedicated(self, paragon):
        sim, platform = paragon
        p = sim.process(frontend_program(platform, 0.5))
        assert sim.run_until(p) == pytest.approx(0.5, rel=1e-9)

    def test_transfer_program_round_trip(self, quiet_cm2_spec):
        sim = Simulator()
        platform = SunCM2Platform(sim, spec=quiet_cm2_spec)
        one_way = sim.process(
            transfer_program(platform, 128, 8, round_trip=False), name="a"
        )
        t1 = sim.run_until(one_way)
        sim2 = Simulator()
        platform2 = SunCM2Platform(sim2, spec=quiet_cm2_spec)
        both = sim2.process(transfer_program(platform2, 128, 8, round_trip=True))
        t2 = sim2.run_until(both)
        assert t2 == pytest.approx(2 * t1, rel=1e-6)


class TestContenders:
    def test_cpu_bound_keeps_cpu_busy(self, paragon):
        sim, platform = paragon
        platform.spawn(cpu_bound(platform, tag="hog"), name="hog")
        sim.run(until=1.0)
        assert platform.frontend_cpu.utilization(1.0) == pytest.approx(1.0, abs=0.01)

    def test_cpu_bound_chunk_validation(self, paragon):
        _, platform = paragon
        gen = cpu_bound(platform, chunk=0.0)
        with pytest.raises(WorkloadError):
            next(gen)

    def test_continuous_comm_saturates_link(self, paragon):
        sim, platform = paragon
        platform.spawn(continuous_comm(platform, 200, "out", tag="gen"), name="gen")
        sim.run(until=1.0)
        # Wire occupancy fraction for 200-word messages.
        spec = platform.spec
        cycle = spec.message_dedicated_time(200)
        expected = spec.wire.occupancy(200) / cycle
        assert platform.link.utilization(1.0) == pytest.approx(expected, rel=0.05)

    def test_alternating_longrun_fraction(self, quiet_paragon_spec):
        """The generator's long-run dedicated-equivalent communication
        fraction approximates its target when running alone."""
        sim = Simulator()
        platform = SunParagonPlatform(
            sim, spec=quiet_paragon_spec, streams=RandomStreams(7)
        )
        target = 0.4
        platform.spawn(
            alternating(platform, target, 200, platform.rng("c"), tag="alt"),
            name="alt",
        )
        horizon = 60.0
        sim.run(until=horizon)
        cpu_time = platform.frontend_cpu.service_by_tag.get("alt", 0.0)
        # Communication time = everything not spent computing. The
        # conversion stage is CPU too, so subtract it via message count.
        per_msg_conv = quiet_paragon_spec.conversion_cpu_time(200)
        messages = platform.link.messages_sent
        comp_time = cpu_time - messages * per_msg_conv
        comm_time = horizon - comp_time
        assert comm_time / horizon == pytest.approx(target, abs=0.08)

    def test_alternating_validation(self, paragon):
        _, platform = paragon
        import numpy as np

        rng = np.random.default_rng(0)
        with pytest.raises(WorkloadError):
            next(alternating(platform, 1.5, 100, rng))
        with pytest.raises(WorkloadError):
            next(alternating(platform, 0.5, 0, rng))
        with pytest.raises(WorkloadError):
            next(alternating(platform, 0.5, 100, rng, direction="sideways"))

    def test_dedicated_message_time_matches_spec(self, paragon, quiet_paragon_spec):
        _, platform = paragon
        assert dedicated_message_time(platform, 300) == pytest.approx(
            quiet_paragon_spec.message_dedicated_time(300)
        )

    def test_fixed_direction_contender(self, paragon):
        sim, platform = paragon
        platform.spawn(
            alternating(platform, 1.0, 100, platform.rng("c"), direction="out", tag="g"),
            name="g",
        )
        sim.run(until=0.5)
        assert platform.link.messages_sent > 0


class TestCyclicProgram:
    def test_dedicated_time_decomposes(self, paragon, quiet_paragon_spec):
        from repro.apps.program import cyclic_program

        sim, platform = paragon
        cycles, comp, msgs, size = 5, 0.02, 2, 300.0
        p = sim.process(cyclic_program(platform, cycles, comp, msgs, size))
        elapsed = sim.run_until(p)
        expected = cycles * (
            comp + msgs * quiet_paragon_spec.message_dedicated_time(size)
        )
        assert elapsed == pytest.approx(expected, rel=1e-6)

    def test_zero_messages_is_pure_compute(self, paragon):
        from repro.apps.program import cyclic_program

        sim, platform = paragon
        p = sim.process(cyclic_program(platform, 3, 0.1, 0, 100.0))
        assert sim.run_until(p) == pytest.approx(0.3, rel=1e-9)

    def test_validation(self, paragon):
        from repro.apps.program import cyclic_program
        from repro.errors import WorkloadError

        _, platform = paragon
        with pytest.raises(WorkloadError):
            next(cyclic_program(platform, 0, 0.1, 1, 100.0))
