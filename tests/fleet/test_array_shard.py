"""Differential suite: ArrayShard must be bit-identical to the object Shard.

The struct-of-arrays backend (:class:`repro.fleet.shard.ArrayShard`) is
only admissible because every observable — ``state_hash``, every tagged
slowdown triple, rebuild counts, error messages — matches the
object-backed :class:`~repro.fleet.shard.Shard` bit for bit. These
tests pin that equivalence over seeded churn streams (arrive/depart,
extreme fractions that force the O(p²) rebuild fallback, mid-stream
checkpoints) plus the :func:`~repro.fleet.shard.stream_step` chain
invariance properties the frame protocol's accounting relies on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.params import DelayTable, SizedDelayTable
from repro.errors import ModelError
from repro.fleet.shard import (
    STREAM_FIELDS,
    ArrayShard,
    ReplayCheckpoint,
    Shard,
    replay_stream,
    stream_step,
)

MACHINES = 6

DELAY_COMP = DelayTable((0.4, 0.9, 1.3), label="comp")
DELAY_COMM = DelayTable((0.2, 0.5), label="comm")
DELAY_SIZED = SizedDelayTable(
    {
        1: DelayTable((0.1, 0.3)),
        500: DelayTable((0.5, 1.1, 1.6)),
        1000: DelayTable((0.8,)),
    }
)

TABLE_SETS = {
    "analytic": (None, None, None),
    "calibrated": (DELAY_COMP, DELAY_COMM, DELAY_SIZED),
    "comm-only": (DELAY_COMP, DELAY_COMM, None),
    "comp-only": (None, None, DELAY_SIZED),
}


def churn_stream(seed: int, events: int = 120) -> list[dict]:
    """Seeded arrive/depart stream with rebuild-provoking fractions."""
    rng = np.random.default_rng(seed)
    live: list[tuple[str, int]] = []
    out: list[dict] = []
    serial = 0
    for _ in range(events):
        if live and rng.random() < 0.4:
            name, machine = live.pop(int(rng.integers(len(live))))
            out.append({"op": "depart", "app": name, "machine": machine})
            continue
        name = f"app-{seed}-{serial}"
        serial += 1
        machine = int(rng.integers(MACHINES))
        frac = float(
            rng.choice([0.0, 1.0, 0.5, 1e-12, 1.0 - 1e-12, float(rng.random())])
        )
        size = (
            float(rng.choice([0.0, 64.0, 500.0, 2048.0]))
            if frac == 0.0
            else float(rng.choice([64.0, 500.0, 1000.0, 2048.0]))
        )
        out.append(
            {
                "op": "arrive",
                "app": name,
                "tenant": "t",
                "machine": machine,
                "comm_fraction": frac,
                "message_size": size,
            }
        )
        live.append((name, machine))
    return out


class TestDifferentialStateHash:
    """≥100 seeded streams: hash, slowdowns and rebuilds stay identical."""

    @pytest.mark.parametrize("tables_key", sorted(TABLE_SETS))
    def test_bit_identity_over_seeded_streams(self, tables_key):
        tables = TABLE_SETS[tables_key]
        for seed in range(30):
            oracle = Shard(0, range(MACHINES), *tables)
            array = ArrayShard(0, range(MACHINES), *tables)
            for step, event in enumerate(churn_stream(seed)):
                oracle.apply(event)
                array.apply(event)
                if step % 10 == 0:
                    # Mid-stream checkpoint: hashes and every machine's
                    # tagged triple agree exactly, not just at the end.
                    assert array.state_hash() == oracle.state_hash()
                    for machine in range(MACHINES):
                        assert array.slowdowns(machine) == oracle.slowdowns(machine)
            assert array.state_hash() == oracle.state_hash()
            assert array.rebuilds == oracle.rebuilds
            assert array.population() == oracle.population()

    def test_batch_matches_scalar_queries(self):
        tables = TABLE_SETS["calibrated"]
        oracle = Shard(1, range(1, MACHINES, 2), *tables)
        array = ArrayShard(1, range(1, MACHINES, 2), *tables)
        for event in churn_stream(99):
            if event["machine"] % 2 == 0:
                continue
            oracle.apply(event)
            array.apply(event)
        machines = list(array.machine_ids)
        assert array.slowdowns_batch(machines) == oracle.slowdowns_batch(machines)

    def test_error_messages_match_oracle(self):
        oracle = Shard(0, [0, 2])
        array = ArrayShard(0, [0, 2])
        bad_events = [
            {"op": "arrive", "app": "a", "machine": 1, "comm_fraction": 0.2,
             "message_size": 64.0},
            {"op": "nonsense", "app": "a", "machine": 0},
            {"op": "depart", "app": "ghost", "machine": 0},
            # comm without a message size: profile validation
            {"op": "arrive", "app": "a", "machine": 0, "comm_fraction": 0.2,
             "message_size": 0.0},
        ]
        for event in bad_events:
            with pytest.raises(ModelError) as oracle_exc:
                oracle.apply(event)
            with pytest.raises(ModelError) as array_exc:
                array.apply(event)
            assert str(array_exc.value) == str(oracle_exc.value)
        good = {"op": "arrive", "app": "a", "machine": 0, "comm_fraction": 0.2,
                "message_size": 64.0}
        oracle.apply(good)
        array.apply(good)
        with pytest.raises(ModelError) as oracle_exc:
            oracle.apply(good)
        with pytest.raises(ModelError) as array_exc:
            array.apply(good)
        assert str(array_exc.value) == str(oracle_exc.value)

    def test_replay_stream_accepts_array_shard(self):
        events = [e for e in churn_stream(5) if e["machine"] < MACHINES]
        oracle = Shard(0, range(MACHINES), *TABLE_SETS["calibrated"])
        for event in events:
            oracle.apply(event)
        checkpoint_at = len(events) // 2
        probe = Shard(0, range(MACHINES), *TABLE_SETS["calibrated"])
        for event in events[:checkpoint_at]:
            probe.apply(event)
        checkpoint = ReplayCheckpoint(checkpoint_at, probe.state_hash())
        rebuilt = ArrayShard(0, range(MACHINES), *TABLE_SETS["calibrated"])
        result = replay_stream(rebuilt, events, checkpoint=checkpoint)
        assert result.checkpoint_ok, result.detail
        assert result.count == len(events)
        assert rebuilt.state_hash() == oracle.state_hash()

    def test_managers_view_compat(self):
        array = ArrayShard(0, range(MACHINES), *TABLE_SETS["calibrated"])
        oracle = Shard(0, range(MACHINES), *TABLE_SETS["calibrated"])
        for event in churn_stream(13):
            array.apply(event)
            oracle.apply(event)
        machine = next(m for m in range(MACHINES) if len(oracle.managers[m]))
        name = next(iter(oracle.managers[machine].snapshot()))
        assert name in array.managers[machine]
        assert len(array.managers[machine]) == len(oracle.managers[machine])
        assert array.managers[machine].snapshot() == oracle.managers[machine].snapshot()
        assert (
            array.managers[machine].pcomm.tobytes()
            == oracle.managers[machine].pcomm.tobytes()
        )
        # Out-of-band departure (the fleet experiment's desync probe)
        # must mutate state without advancing the dirty set or applied.
        applied = array.applied
        array.managers[machine].depart(name)
        oracle.managers[machine].depart(name)
        assert array.applied == applied
        assert array.state_hash() == oracle.state_hash()
        assert array.managers.get(10**9) is None
        with pytest.raises(KeyError):
            array.managers[10**9]


EVENT_VALUES = st.one_of(
    st.integers(min_value=-5, max_value=5),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=8),
)


class TestStreamChainInvariance:
    @settings(max_examples=100, deadline=None)
    @given(
        st.permutations(list(STREAM_FIELDS)),
        st.dictionaries(
            st.text(min_size=1, max_size=10).filter(lambda k: k not in STREAM_FIELDS),
            EVENT_VALUES,
            max_size=4,
        ),
        st.binary(max_size=16),
    )
    def test_key_order_and_extra_keys_do_not_move_the_chain(
        self, field_order, extras, chain
    ):
        base = {
            "op": "arrive",
            "app": "app-0",
            "tenant": "tenant-1",
            "machine": 3,
            "comm_fraction": 0.25,
            "message_size": 64.0,
        }
        reference = stream_step(chain, base)
        # Same fields inserted in a different order: dict iteration
        # order differs, canonical JSON must not.
        reordered = {field: base[field] for field in field_order}
        assert stream_step(chain, reordered) == reference
        # Extra non-stream keys (seq stamps, annotations) are ignored.
        noisy = dict(base)
        noisy.update(extras)
        assert stream_step(chain, noisy) == reference

    @settings(max_examples=50, deadline=None)
    @given(st.sampled_from(list(STREAM_FIELDS)), st.binary(max_size=16))
    def test_stream_fields_do_move_the_chain(self, field, chain):
        base = {
            "op": "arrive",
            "app": "app-0",
            "tenant": "tenant-1",
            "machine": 3,
            "comm_fraction": 0.25,
            "message_size": 64.0,
        }
        changed = dict(base)
        changed[field] = "different" if isinstance(base[field], str) else 7
        assert stream_step(chain, changed) != stream_step(chain, base)
