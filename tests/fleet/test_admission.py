"""Admission-control tests: buckets, quotas, bounded-queue backpressure."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fleet.admission import (
    AdmissionController,
    BoundedQueue,
    TenantQuota,
    TokenBucket,
)


class FakeClock:
    """Injectable monotonic clock the tests advance by hand."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestTokenBucket:
    def test_starts_full_and_spends(self):
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=FakeClock())
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        for _ in range(4):
            assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(1.0)  # +2 tokens
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.advance(1e6)
        assert bucket.tokens == pytest.approx(2.0)

    def test_zero_rate_never_refills(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=0.0, burst=1.0, clock=clock)
        assert bucket.try_acquire()
        clock.advance(1e6)
        assert not bucket.try_acquire()

    @pytest.mark.parametrize("kwargs", [{"rate": -1.0, "burst": 1.0}, {"rate": 1.0, "burst": 0.0}])
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            TokenBucket(**kwargs)


#: Dyadic rates make ``k / rate`` and ``elapsed * rate`` exact in
#: binary floating point, so the boundary properties below are sharp:
#: no tolerance, no approx — exactly k grants, never k+1.
DYADIC_RATES = st.sampled_from([0.25, 0.5, 1.0, 2.0, 4.0])


class TestTokenBucketProperties:
    """Anchor-based refill invariants over (rate, capacity, arrival-time)."""

    @given(rate=DYADIC_RATES, burst=st.integers(1, 8), k=st.integers(1, 16))
    def test_exactly_k_grants_after_k_over_rate_seconds(self, rate, burst, k):
        clock = FakeClock()
        bucket = TokenBucket(rate=rate, burst=float(burst), clock=clock)
        for _ in range(burst):
            assert bucket.try_acquire()
        assert not bucket.try_acquire()  # drained
        clock.advance(k / rate)  # accrues exactly k tokens (capped at burst)
        grants = min(k, burst)
        for _ in range(grants):
            assert bucket.try_acquire()
        assert not bucket.try_acquire()  # the (k+1)-th is refused

    @given(
        rate=st.sampled_from([0.1, 0.3, 0.7, 1.0, 2.5]),
        burst=st.floats(1.0, 8.0),
        schedule=st.lists(
            st.tuples(st.floats(0.0, 3.0), st.booleans()),
            min_size=1,
            max_size=32,
        ),
    )
    def test_polling_tokens_never_changes_grant_sequence(self, rate, burst, schedule):
        # Twin buckets see the same arrivals; one is also polled
        # between them. The lazy-refill drift bug this guards against:
        # a ``tokens`` read that truncates accrual at an awkward rate
        # (0.1, 0.7, ...) changes which later acquires succeed.
        quiet_clock, polled_clock = FakeClock(), FakeClock()
        quiet = TokenBucket(rate=rate, burst=burst, clock=quiet_clock)
        polled = TokenBucket(rate=rate, burst=burst, clock=polled_clock)
        for dt, poll in schedule:
            quiet_clock.advance(dt)
            polled_clock.advance(dt)
            if poll:
                polled.tokens
                polled.tokens
            assert quiet.try_acquire() == polled.try_acquire()
        assert quiet.tokens == polled.tokens

    @given(
        rate=DYADIC_RATES,
        burst=st.integers(1, 8),
        spend=st.integers(0, 8),
        n=st.floats(0.5, 16.0),
    )
    def test_refused_acquire_does_not_mutate(self, rate, burst, spend, n):
        clock = FakeClock()
        bucket = TokenBucket(rate=rate, burst=float(burst), clock=clock)
        for _ in range(min(spend, burst)):
            bucket.try_acquire()
        before = bucket.tokens
        if not bucket.try_acquire(n):
            assert bucket.tokens == before
            # and the refusal does not poison future accrual either
            clock.advance(1.0 / rate)
            assert bucket.tokens == min(before + 1.0, float(burst))


class TestTenantQuota:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"query_rate": -1.0},
            {"query_burst": 0.0},
            {"max_apps": -1},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            TenantQuota(**kwargs)


class TestAdmissionController:
    def test_default_quota_applies_to_unknown_tenants(self):
        ctl = AdmissionController(
            default=TenantQuota(query_rate=0.0, query_burst=2.0), clock=FakeClock()
        )
        assert ctl.admit_query("anyone")
        assert ctl.admit_query("anyone")
        assert not ctl.admit_query("anyone")

    def test_override_replaces_default(self):
        ctl = AdmissionController(
            default=TenantQuota(query_burst=1.0, query_rate=0.0),
            overrides={"vip": TenantQuota(query_burst=5.0, query_rate=0.0)},
            clock=FakeClock(),
        )
        assert sum(ctl.admit_query("vip") for _ in range(10)) == 5
        assert sum(ctl.admit_query("pleb") for _ in range(10)) == 1

    def test_tenants_metered_independently(self):
        ctl = AdmissionController(
            default=TenantQuota(query_rate=0.0, query_burst=1.0), clock=FakeClock()
        )
        assert ctl.admit_query("a")
        assert ctl.admit_query("b")  # a's empty bucket is not b's problem
        assert not ctl.admit_query("a")

    def test_app_cap(self):
        ctl = AdmissionController(default=TenantQuota(max_apps=3))
        assert ctl.admit_app("t", current_apps=2)
        assert not ctl.admit_app("t", current_apps=3)


class TestBoundedQueue:
    def test_offer_take_fifo(self):
        q = BoundedQueue(capacity=4)
        for i in range(3):
            assert q.offer(i)
        assert [q.take(), q.take(), q.take()] == [0, 1, 2]
        assert q.take() is None

    def test_full_queue_refuses_and_counts(self):
        q = BoundedQueue(capacity=2)
        assert q.offer("a") and q.offer("b")
        assert not q.offer("c")
        assert not q.offer("d")
        assert q.refusals == 2
        assert len(q) == 2  # never grew past capacity

    def test_take_frees_capacity(self):
        q = BoundedQueue(capacity=1)
        assert q.offer(1)
        assert not q.offer(2)
        assert q.take() == 1
        assert q.offer(2)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            BoundedQueue(capacity=0)
