"""Admission-control tests: buckets, quotas, bounded-queue backpressure."""

from __future__ import annotations

import pytest

from repro.fleet.admission import (
    AdmissionController,
    BoundedQueue,
    TenantQuota,
    TokenBucket,
)


class FakeClock:
    """Injectable monotonic clock the tests advance by hand."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestTokenBucket:
    def test_starts_full_and_spends(self):
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=FakeClock())
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        for _ in range(4):
            assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(1.0)  # +2 tokens
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.advance(1e6)
        assert bucket.tokens == pytest.approx(2.0)

    def test_zero_rate_never_refills(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=0.0, burst=1.0, clock=clock)
        assert bucket.try_acquire()
        clock.advance(1e6)
        assert not bucket.try_acquire()

    @pytest.mark.parametrize("kwargs", [{"rate": -1.0, "burst": 1.0}, {"rate": 1.0, "burst": 0.0}])
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            TokenBucket(**kwargs)


class TestTenantQuota:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"query_rate": -1.0},
            {"query_burst": 0.0},
            {"max_apps": -1},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            TenantQuota(**kwargs)


class TestAdmissionController:
    def test_default_quota_applies_to_unknown_tenants(self):
        ctl = AdmissionController(
            default=TenantQuota(query_rate=0.0, query_burst=2.0), clock=FakeClock()
        )
        assert ctl.admit_query("anyone")
        assert ctl.admit_query("anyone")
        assert not ctl.admit_query("anyone")

    def test_override_replaces_default(self):
        ctl = AdmissionController(
            default=TenantQuota(query_burst=1.0, query_rate=0.0),
            overrides={"vip": TenantQuota(query_burst=5.0, query_rate=0.0)},
            clock=FakeClock(),
        )
        assert sum(ctl.admit_query("vip") for _ in range(10)) == 5
        assert sum(ctl.admit_query("pleb") for _ in range(10)) == 1

    def test_tenants_metered_independently(self):
        ctl = AdmissionController(
            default=TenantQuota(query_rate=0.0, query_burst=1.0), clock=FakeClock()
        )
        assert ctl.admit_query("a")
        assert ctl.admit_query("b")  # a's empty bucket is not b's problem
        assert not ctl.admit_query("a")

    def test_app_cap(self):
        ctl = AdmissionController(default=TenantQuota(max_apps=3))
        assert ctl.admit_app("t", current_apps=2)
        assert not ctl.admit_app("t", current_apps=3)


class TestBoundedQueue:
    def test_offer_take_fifo(self):
        q = BoundedQueue(capacity=4)
        for i in range(3):
            assert q.offer(i)
        assert [q.take(), q.take(), q.take()] == [0, 1, 2]
        assert q.take() is None

    def test_full_queue_refuses_and_counts(self):
        q = BoundedQueue(capacity=2)
        assert q.offer("a") and q.offer("b")
        assert not q.offer("c")
        assert not q.offer("d")
        assert q.refusals == 2
        assert len(q) == 2  # never grew past capacity

    def test_take_frees_capacity(self):
        q = BoundedQueue(capacity=1)
        assert q.offer(1)
        assert not q.offer(2)
        assert q.take() == 1
        assert q.offer(2)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            BoundedQueue(capacity=0)
