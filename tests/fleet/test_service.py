"""Fleet-service tests: admission, shedding, quarantine, recovery."""

from __future__ import annotations

import pytest

from repro.errors import RecoveryError
from repro.experiments.journal import EventLog
from repro.fleet import (
    AdmissionController,
    FleetService,
    PlacementQuery,
    ShardPolicy,
    TenantQuota,
    synthetic_feed,
)
from repro.obs import MetricsRegistry, ObsContext, Tracer, observed
from repro.reliability.degrade import Confidence


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def arrive(app: str, machine: int, tenant: str = "t0", frac: float = 0.3) -> dict:
    return {
        "op": "arrive",
        "app": app,
        "tenant": tenant,
        "machine": machine,
        "comm_fraction": frac,
        "message_size": 100.0,
    }


QUERY = PlacementQuery(
    dcomp_frontend=1.0,
    backend_dcomp=0.4,
    backend_didle=0.1,
    backend_dserial=0.2,
    dcomm_out=0.05,
    dcomm_in=0.05,
)


def make_service(tmp_path=None, clock=None, **kwargs) -> FleetService:
    clock = clock if clock is not None else FakeClock()
    log = EventLog(tmp_path / "fleet.jsonl") if tmp_path is not None else None
    kwargs.setdefault(
        "admission",
        AdmissionController(
            default=TenantQuota(query_rate=0.0, query_burst=10.0, max_apps=50),
            clock=clock,
        ),
    )
    kwargs.setdefault("policy", ShardPolicy(failure_threshold=1, recovery_time=5.0))
    return FleetService(machines=8, num_shards=4, log=log, clock=clock, **kwargs)


class TestEventAdmission:
    def test_valid_arrive_and_depart(self):
        service = make_service()
        assert service.apply(arrive("a", 0))
        assert service.apply({"op": "depart", "app": "a"})
        assert service.admitted_events == 2
        assert len(service.registry) == 0

    @pytest.mark.parametrize(
        "event",
        [
            {"op": "arrive", "app": "a", "tenant": "t", "machine": 99,
             "comm_fraction": 0.3, "message_size": 10.0},  # machine range
            {"op": "arrive", "app": "a", "tenant": "t", "machine": 0,
             "comm_fraction": 1.5, "message_size": 10.0},  # bad fraction
            {"op": "arrive", "app": "a", "tenant": "t", "machine": 0,
             "comm_fraction": 0.5, "message_size": 0.0},  # comm w/o size
            {"op": "arrive", "app": "", "tenant": "t", "machine": 0,
             "comm_fraction": 0.3, "message_size": 10.0},  # empty name
            {"op": "depart", "app": "ghost"},  # unknown app
            {"op": "resize", "app": "a"},  # unknown op
            {},  # garbage
        ],
    )
    def test_malformed_events_rejected_not_raised(self, event):
        service = make_service()
        assert not service.apply(event)
        assert service.rejected_events == 1
        assert service.admitted_events == 0

    def test_duplicate_arrival_rejected(self):
        service = make_service()
        service.apply(arrive("a", 0))
        assert not service.apply(arrive("a", 1))

    def test_tenant_app_cap_enforced(self):
        service = make_service()
        for i in range(60):
            service.apply(arrive(f"a{i}", i % 8, tenant="greedy"))
        assert len(service.registry) == 50  # quota max_apps
        assert service.rejected_events == 10

    def test_backpressure_instead_of_growth(self):
        service = make_service(queue_capacity=4)
        accepted = [service.submit(arrive(f"a{i}", 0)) for i in range(10)]
        assert accepted.count(True) == 4
        assert len(service.queue) == 4
        assert service.queue.refusals == 6
        assert service.pump() == 4


class TestQueryPath:
    def test_served_query_picks_least_loaded_machine(self):
        service = make_service()
        for i in range(3):
            service.apply(arrive(f"a{i}", 0))
        answer = service.query("t0", QUERY)
        assert not answer.shed
        assert answer.machine != 0  # machine 0 carries all the load

    def test_candidates_restrict_the_grid(self):
        service = make_service()
        service.apply(arrive("a", 1))
        answer = service.query("t0", PlacementQuery(dcomp_frontend=1.0, candidates=(1,)))
        assert answer.machine == 1

    def test_out_of_range_candidates_fall_back_to_fleet(self):
        service = make_service()
        answer = service.query("t0", PlacementQuery(dcomp_frontend=1.0, candidates=(-3, 99)))
        assert 0 <= answer.machine < 8

    def test_inlined_grid_matches_placement_grid_kernel(self):
        """The query path's inlined Equation-(1) arithmetic is pinned,
        bit for bit, to the shared ``placement_grid`` kernel it avoids
        calling per query."""
        import numpy as np

        from repro.core.batch import placement_grid
        from repro.reliability.degrade import TaggedSlowdown

        rng = np.random.default_rng(31)
        service = make_service()
        for i in range(12):
            service.apply(arrive(f"a{i}", int(rng.integers(8)), frac=float(rng.uniform(0.1, 0.7))))
        for _ in range(50):
            candidates = tuple(int(m) for m in rng.choice(8, size=4, replace=False))
            query = PlacementQuery(
                dcomp_frontend=float(rng.uniform(0.1, 2.0)),
                backend_dcomp=float(rng.uniform(0.0, 1.0)),
                backend_didle=float(rng.uniform(0.0, 0.5)),
                backend_dserial=float(rng.uniform(0.0, 1.0)),
                dcomm_out=float(rng.uniform(0.0, 0.2)),
                dcomm_in=float(rng.uniform(0.0, 0.2)),
                candidates=candidates,
            )
            answer = service.query("t0", query)
            service._refresh()
            cands = np.asarray(candidates, dtype=np.int64)
            comp = service._comp[cands]
            comm = service._comm[cands]
            conf = Confidence(int(service._conf[cands].min()))
            grid = placement_grid(
                query.dcomp_frontend,
                query.backend_dcomp,
                query.backend_didle,
                query.backend_dserial,
                query.dcomm_out,
                query.dcomm_in,
                TaggedSlowdown(comp, conf),
                TaggedSlowdown(comm, conf),
            )
            best = int(np.argmin(grid.best_time))
            assert answer.machine == candidates[best]
            assert answer.best_time == float(grid.best_time[best])
            assert answer.offload == bool(grid.offload[best])

    def test_negative_query_costs_raise_like_the_kernel(self):
        service = make_service()
        with pytest.raises(ValueError, match="dcomm must be >= 0"):
            service.query("t0", PlacementQuery(dcomp_frontend=1.0, dcomm_out=-0.1))
        with pytest.raises(ValueError, match="dcomp must be >= 0"):
            service.query("t0", PlacementQuery(dcomp_frontend=-1.0))


class TestOverload:
    def test_ten_times_quota_never_raises_and_accounts(self):
        clock = FakeClock()
        service = make_service(clock=clock)
        for i in range(16):
            service.apply(arrive(f"a{i}", i % 8))
        burst = 10
        total = 10 * burst
        answers = [service.query("noisy", QUERY) for _ in range(total)]
        shed = [a for a in answers if a.shed]
        served = [a for a in answers if not a.shed]
        assert len(served) == burst  # the bucket's burst, nothing more
        assert len(shed) == total - burst
        # Every shed answer is a real ANALYTIC placement, not an error.
        assert all(a.confidence is Confidence.ANALYTIC for a in shed)
        assert all(0 <= a.machine < 8 and a.best_time > 0 for a in shed)
        # The counters account for every request.
        assert service.shed_queries == len(shed)
        assert service.served_queries == len(served)

    def test_shed_answer_matches_registry_aggregates(self):
        service = make_service()
        for i in range(6):
            service.apply(arrive(f"a{i}", 0))  # pile machine 0 high
        for _ in range(10):
            service.query("t0", QUERY)  # exhaust the bucket
        answer = service.query("t0", QUERY)
        assert answer.shed
        assert answer.machine != 0  # aggregates still steer placement

    def test_queries_refill_with_time(self):
        clock = FakeClock()
        service = make_service(
            clock=clock,
            admission=AdmissionController(
                default=TenantQuota(query_rate=1.0, query_burst=1.0), clock=clock
            ),
        )
        assert not service.query("t", QUERY).shed
        assert service.query("t", QUERY).shed
        clock.advance(1.0)
        assert not service.query("t", QUERY).shed


class TestQuarantine:
    def _desync(self, service, machine=0):
        """Corrupt the shard behind the service's back, then depart."""
        name = f"victim-{machine}"
        service.apply(arrive(name, machine))
        sid = service.shard_of(machine)
        service.shards[sid].managers[machine].depart(name)
        service.apply({"op": "depart", "app": name})
        return sid

    def test_desync_quarantines_without_raising(self, tmp_path):
        service = make_service(tmp_path)
        sid = self._desync(service)
        assert sid in service.quarantined
        assert service.quarantines == 1

    def test_quarantined_machines_answer_analytically(self, tmp_path):
        service = make_service(tmp_path)
        sid = self._desync(service, machine=0)
        assert sid == 0
        answer = service.query("t0", PlacementQuery(dcomp_frontend=1.0, candidates=(0,)))
        assert not answer.shed
        assert answer.confidence is Confidence.ANALYTIC
        assert service.degraded_queries == 1

    def test_events_keep_flowing_to_quarantined_shard_log(self, tmp_path):
        service = make_service(tmp_path)
        self._desync(service, machine=0)
        assert service.apply(arrive("later", 0))  # machine 0 = shard 0
        ops = [e["app"] for e in EventLog.replay(service.log.path)]
        assert "later" in ops  # write-ahead even while quarantined

    def test_recovery_gated_by_breaker_window(self, tmp_path):
        clock = FakeClock()
        service = make_service(tmp_path, clock=clock)
        sid = self._desync(service)
        assert not service.recover(sid)  # still open
        clock.advance(5.0)
        assert service.recover(sid)  # half-open probe admitted
        assert sid not in service.quarantined
        assert service.rebuilds == 1

    def test_recovered_shard_is_bit_identical_to_full_replay(self, tmp_path):
        clock = FakeClock()
        service = make_service(tmp_path, clock=clock)
        for event in synthetic_feed(seed=9, events=150, machines=8):
            service.apply(event)
        sid = self._desync(service)
        for event in synthetic_feed(seed=77, events=60, machines=8):
            service.apply(event)  # shard misses these while quarantined
        clock.advance(5.0)
        assert service.recover(sid)
        oracle = FleetService(machines=8, num_shards=4)
        for event in EventLog.replay(service.log.path):
            oracle.apply(event)
        assert service.shards[sid].state_hash() == oracle.shards[sid].state_hash()

    def test_exhausted_budget_means_analytic_forever(self, tmp_path):
        clock = FakeClock()
        service = make_service(
            tmp_path,
            clock=clock,
            policy=ShardPolicy(failure_threshold=1, recovery_time=1.0, budget=3.0),
        )
        sid = self._desync(service)
        clock.advance(10.0)  # budget spent
        assert not service.recover(sid)
        assert sid in service.quarantined
        answer = service.query("t0", PlacementQuery(dcomp_frontend=1.0, candidates=(0,)))
        assert answer.confidence is Confidence.ANALYTIC

    def test_recovery_without_log_restores_population(self):
        clock = FakeClock()
        service = make_service(clock=clock)  # no event log
        service.apply(arrive("keep", 0))
        sid = self._desync(service)
        clock.advance(5.0)
        assert service.recover(sid)
        assert "keep" in service.shards[sid].managers[0]


class SteppingClock(FakeClock):
    """Clock that advances *step* seconds on every read — makes every
    timed section look slow without sleeping."""

    def __init__(self, step: float = 0.0) -> None:
        super().__init__()
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestRecoveryVerification:
    """A rebuild is re-admitted only when it is provably bit-identical."""

    def _populate(self, service, events=120, seed=9):
        for event in synthetic_feed(seed=seed, events=events, machines=8):
            service.apply(event)

    def _desync(self, service, machine=0):
        name = f"victim-{machine}"
        service.apply(arrive(name, machine))
        sid = service.shard_of(machine)
        service.shards[sid].managers[machine].depart(name)
        service.apply({"op": "depart", "app": name})
        return sid

    def _tamper(self, path, sid, mutate, skip=5):
        """Rewrite the *skip*-th journal event owned by shard *sid*."""
        import json

        lines = path.read_text(encoding="utf-8").splitlines()
        seen = 0
        for i, line in enumerate(lines):
            event = json.loads(line)
            if event.get("op") == "arrive" and event.get("machine", 0) % 4 == sid:
                seen += 1
                if seen >= skip:
                    lines[i] = mutate(line, event)
                    break
        else:
            raise AssertionError(f"no journal line owned by shard {sid}")
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    def test_corrupted_journal_line_blocks_readmission(self, tmp_path):
        clock = FakeClock()
        service = make_service(tmp_path, clock=clock)
        self._populate(service)
        sid = self._desync(service)
        # One unparsable line: EventLog.replay stops there, silently
        # truncating the stream the rebuild sees.
        self._tamper(service.log.path, sid, lambda line, event: line[:-2] + "XX}")
        clock.advance(10.0)
        assert not service.recover(sid)
        assert sid in service.quarantined
        assert service.recovery_mismatches == 1
        error = service.last_recovery_error
        assert isinstance(error, RecoveryError)
        assert error.shard_id == sid
        assert error.replayed_events < error.expected_events

    def test_tampered_event_value_fails_the_stream_chain(self, tmp_path):
        import json

        clock = FakeClock()
        service = make_service(tmp_path, clock=clock)
        self._populate(service)
        sid = self._desync(service)

        def flip_fraction(line, event):
            event["comm_fraction"] = 0.42 if event["comm_fraction"] != 0.42 else 0.17
            return json.dumps(event, sort_keys=True)

        # Same event count, different payload: only the rolling stream
        # chain can catch this.
        self._tamper(service.log.path, sid, flip_fraction)
        clock.advance(10.0)
        assert not service.recover(sid)
        error = service.last_recovery_error
        assert isinstance(error, RecoveryError)
        assert error.replayed_events == error.expected_events

    def test_blowout_checkpoint_recorded_and_reproduced(self, tmp_path):
        clock = SteppingClock()
        service = make_service(tmp_path, clock=clock)
        self._populate(service)
        clock.step = 2.0  # every apply now blows the 1s deadline
        service.apply(arrive("slowpoke", 0))
        clock.step = 0.0
        sid = service.shard_of(0)
        assert sid in service.quarantined
        # Deadline blowouts leave trusted state: a mid-stream
        # checkpoint is pinned for the rebuild to reproduce.
        checkpoint = service._pre_quarantine[sid]
        assert checkpoint is not None
        assert checkpoint.count == service._stream_count[sid]
        clock.advance(10.0)
        assert service.recover(sid)
        assert service.recovery_mismatches == 0

    def test_blowout_checkpoint_detects_divergent_history(self, tmp_path):
        import json

        clock = SteppingClock()
        service = make_service(tmp_path, clock=clock)
        self._populate(service)
        clock.step = 2.0
        service.apply(arrive("slowpoke", 0))
        clock.step = 0.0
        sid = service.shard_of(0)
        assert service._pre_quarantine[sid] is not None

        def flip_fraction(line, event):
            event["comm_fraction"] = 0.42 if event["comm_fraction"] != 0.42 else 0.17
            return json.dumps(event, sort_keys=True)

        self._tamper(service.log.path, sid, flip_fraction)
        clock.advance(10.0)
        assert not service.recover(sid)
        error = service.last_recovery_error
        assert isinstance(error, RecoveryError)
        assert "checkpoint" in str(error)

    def test_successful_recovery_clears_error_state(self, tmp_path):
        clock = FakeClock()
        service = make_service(tmp_path, clock=clock)
        self._populate(service)
        sid = self._desync(service)
        clock.advance(10.0)
        assert service.recover(sid)
        assert service.last_recovery_error is None
        assert service.recovery_mismatches == 0
        assert service.counters()["recovery_mismatches"] == 0


class TestObsCounters:
    def test_fleet_counters_account_for_every_request(self, tmp_path):
        ctx = ObsContext(tracer=Tracer(seed=4), metrics=MetricsRegistry())
        with observed(ctx):
            clock = FakeClock()
            service = make_service(tmp_path, clock=clock)
            for i in range(12):
                service.apply(arrive(f"a{i}", i % 8))
            service.apply({"op": "depart", "app": "ghost"})  # rejected
            for _ in range(15):
                service.query("t", QUERY)  # 10 served + 5 shed
            service.shards[0].managers[0].depart("a0")
            service.apply({"op": "depart", "app": "a0"})  # quarantines
            clock.advance(5.0)
            service.recover(0)
        counters = ctx.snapshot().counters
        assert counters.get("fleet.admitted") == 13
        assert counters.get("fleet.rejected") == 1
        assert counters.get("fleet.served") == 10
        assert counters.get("fleet.shed") == 5
        assert counters.get("fleet.quarantines") == 1
        assert counters.get("fleet.rebuilds") == 1

    def test_gauges_track_registry_and_queue(self):
        ctx = ObsContext(tracer=Tracer(seed=4), metrics=MetricsRegistry())
        with observed(ctx):
            service = make_service()
            service.submit(arrive("a", 0))
            service.pump()
        gauges = ctx.snapshot().gauges
        assert gauges.get("fleet.registered") == 1.0
        assert gauges.get("fleet.queue_depth") == 0.0


class TestServiceValidation:
    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            FleetService(machines=0)
        with pytest.raises(ValueError):
            FleetService(machines=4, num_shards=0)

    def test_more_shards_than_machines_clamped(self):
        service = FleetService(machines=2, num_shards=16)
        assert service.num_shards == 2
