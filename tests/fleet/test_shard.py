"""Shard tests: event application, memoization, state hashing, policy."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.fleet.registry import synthetic_feed
from repro.fleet.shard import Shard, ShardPolicy
from repro.reliability.degrade import Confidence


def arrive(app: str, machine: int, frac: float = 0.3, size: float = 100.0) -> dict:
    return {
        "op": "arrive",
        "app": app,
        "tenant": "t",
        "machine": machine,
        "comm_fraction": frac,
        "message_size": size,
    }


def depart(app: str, machine: int) -> dict:
    return {"op": "depart", "app": app, "machine": machine}


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline": 0.0},
            {"failure_threshold": 0},
            {"recovery_time": -1.0},
            {"budget": -0.5},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            ShardPolicy(**kwargs)


class TestApply:
    def test_arrive_and_depart_update_population(self):
        shard = Shard(0, [0, 2, 4])
        shard.apply(arrive("a", 0))
        shard.apply(arrive("b", 2))
        assert shard.population() == 2
        shard.apply(depart("a", 0))
        assert shard.population() == 1
        assert shard.applied == 3

    def test_foreign_machine_rejected(self):
        shard = Shard(0, [0, 2])
        with pytest.raises(ModelError, match="not owned"):
            shard.apply(arrive("a", 1))

    def test_unknown_op_rejected(self):
        shard = Shard(0, [0])
        with pytest.raises(ModelError, match="unknown fleet event op"):
            shard.apply({"op": "explode", "app": "a", "machine": 0})

    def test_duplicate_arrival_rejected(self):
        shard = Shard(0, [0])
        shard.apply(arrive("a", 0))
        with pytest.raises(ModelError):
            shard.apply(arrive("a", 0))

    def test_unknown_departure_rejected(self):
        shard = Shard(0, [0])
        with pytest.raises(ModelError):
            shard.apply(depart("ghost", 0))


class TestSlowdownMemoization:
    def test_analytic_values_without_tables(self):
        shard = Shard(0, [0])
        shard.apply(arrive("a", 0))
        shard.apply(arrive("b", 0))
        comp, comm, conf = shard.slowdowns(0)
        assert comp == pytest.approx(3.0)  # p + 1
        assert comm == pytest.approx(1.6)  # 1 + 0.3 + 0.3
        assert conf is Confidence.ANALYTIC

    def test_empty_machine_is_calibrated_unity(self):
        shard = Shard(0, [0])
        comp, comm, conf = shard.slowdowns(0)
        assert (comp, comm) == (1.0, 1.0)
        assert conf is Confidence.CALIBRATED

    def test_cache_invalidation_is_per_machine(self):
        shard = Shard(0, [0, 1])
        shard.apply(arrive("a", 0))
        shard.slowdowns(0)
        shard.slowdowns(1)
        assert not shard._dirty
        shard.apply(arrive("b", 1))
        assert shard._dirty == {1}
        comp0, _, _ = shard.slowdowns(0)  # served from cache
        comp1, _, _ = shard.slowdowns(1)  # refreshed
        assert comp0 == pytest.approx(2.0)
        assert comp1 == pytest.approx(2.0)

    def test_memoized_answer_matches_fresh_manager_query(self):
        shard = Shard(0, [0])
        for i in range(5):
            shard.apply(arrive(f"a{i}", 0, frac=0.1 * (i + 1), size=50.0))
        comp, comm, _ = shard.slowdowns(0)
        manager = shard.managers[0]
        assert comp == manager.comp_slowdown_tagged().value
        assert comm == manager.comm_slowdown_tagged().value


class TestStateHash:
    def test_same_event_sequence_hashes_identically(self):
        a, b = Shard(0, range(4)), Shard(0, range(4))
        events = [e for e in synthetic_feed(seed=5, events=200, machines=4)]
        for e in events:
            a.apply(e)
            b.apply(e)
        assert a.state_hash() == b.state_hash()

    def test_different_history_same_population_hashes_differ(self):
        # Hash covers the distributions bit-for-bit, not just the
        # population: different arrival orders leave different bits.
        a, b = Shard(0, [0]), Shard(0, [0])
        a.apply(arrive("x", 0, frac=0.2))
        a.apply(arrive("y", 0, frac=0.7))
        b.apply(arrive("y", 0, frac=0.7))
        b.apply(arrive("x", 0, frac=0.2))
        # Same set of profiles; floating-point fold order differs.
        assert a.state_hash() != b.state_hash() or (
            a.managers[0].pcomm.tobytes() == b.managers[0].pcomm.tobytes()
        )

    def test_hash_changes_with_state(self):
        shard = Shard(0, [0])
        empty = shard.state_hash()
        shard.apply(arrive("a", 0))
        assert shard.state_hash() != empty

    def test_fresh_is_empty_with_same_shape(self):
        shard = Shard(3, [1, 5])
        shard.apply(arrive("a", 1))
        rebuilt = shard.fresh()
        assert rebuilt.shard_id == 3
        assert rebuilt.machine_ids == (1, 5)
        assert rebuilt.population() == 0
        assert rebuilt.state_hash() == Shard(3, [1, 5]).state_hash()
