"""Kill-and-replay recovery: SIGKILL a fleet mid-stream, rebuild, compare.

The process-level analogue of the shard-quarantine tests: the soak
driver (``python -m repro.fleet.soak``) is SIGKILLed mid-stream — no
flush, no atexit — and a ``--resume`` run replays the durable event log
before continuing the same deterministic feed. The recovered service's
state hash must equal an uninterrupted oracle run's **bit for bit**.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[2] / "src")


def run_soak(*args: str, check: bool = True) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.fleet.soak", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    if check and proc.returncode != 0:
        raise AssertionError(f"soak failed ({proc.returncode}): {proc.stderr}")
    return proc


class TestKillAndReplay:
    def test_sigkilled_run_resumes_bit_identically(self, tmp_path):
        oracle = run_soak(
            "--log", str(tmp_path / "oracle.jsonl"),
            "--events", "250", "--seed", "13",
        )
        oracle_hash = oracle.stdout.strip().splitlines()[-1]

        killed = run_soak(
            "--log", str(tmp_path / "killed.jsonl"),
            "--events", "250", "--seed", "13", "--kill-at", "120",
            check=False,
        )
        assert killed.returncode == -signal.SIGKILL

        recovered = run_soak(
            "--log", str(tmp_path / "killed.jsonl"),
            "--events", "250", "--seed", "13", "--resume",
        )
        recovered_hash = recovered.stdout.strip().splitlines()[-1]
        assert recovered_hash == oracle_hash

    def test_resume_tolerates_torn_final_line(self, tmp_path):
        oracle = run_soak(
            "--log", str(tmp_path / "oracle.jsonl"),
            "--events", "120", "--seed", "5",
        )
        oracle_hash = oracle.stdout.strip().splitlines()[-1]

        killed = run_soak(
            "--log", str(tmp_path / "killed.jsonl"),
            "--events", "120", "--seed", "5", "--kill-at", "60",
            check=False,
        )
        assert killed.returncode == -signal.SIGKILL
        # Simulate the torn write the fsync discipline makes rare.
        with open(tmp_path / "killed.jsonl", "a", encoding="utf-8") as fh:
            fh.write('{"v": 1, "seq": 99999, "op": "arr')

        recovered = run_soak(
            "--log", str(tmp_path / "killed.jsonl"),
            "--events", "120", "--seed", "5", "--resume",
        )
        assert recovered.stdout.strip().splitlines()[-1] == oracle_hash

    def test_kill_loses_at_most_the_inflight_event(self, tmp_path):
        from repro.experiments.journal import EventLog

        run_soak(
            "--log", str(tmp_path / "killed.jsonl"),
            "--events", "100", "--seed", "3", "--kill-at", "40",
            check=False,
        )
        durable = list(EventLog.replay(tmp_path / "killed.jsonl"))
        # Every event applied before the kill is durably on disk.
        assert len(durable) == 40
        assert [e["seq"] for e in durable] == list(range(40))


class TestWorkerKillSoak:
    def test_sigkilled_worker_soak_completes_bit_identically(self, tmp_path):
        """SIGKILL one shard *worker* mid-traffic; the run itself must
        complete, respawn the worker from the journal, and land on the
        exact hash of an uninterrupted run."""
        oracle = run_soak(
            "--log", str(tmp_path / "oracle.jsonl"),
            "--events", "300", "--seed", "17",
        )
        oracle_hash = oracle.stdout.strip().splitlines()[-1]

        clean = run_soak(
            "--log", str(tmp_path / "clean.jsonl"),
            "--events", "300", "--seed", "17", "--supervised",
        )
        assert clean.stdout.strip().splitlines()[-1] == oracle_hash

        killed = run_soak(
            "--log", str(tmp_path / "killed.jsonl"),
            "--events", "300", "--seed", "17",
            "--kill-worker-at", "120", "--kill-shard", "1",
        )
        assert killed.stdout.strip().splitlines()[-1] == oracle_hash
        stats = killed.stderr.strip().splitlines()[-1]
        respawns = int(stats.split("respawns=")[1].split()[0])
        assert respawns >= 1
        assert "recovery_mismatches=0" in stats


@pytest.mark.parametrize("shards", [1, 3])
def test_state_hash_stable_across_shard_counts_per_shard(tmp_path, shards):
    """Sanity: the soak is deterministic for any shard layout."""
    a = run_soak(
        "--log", str(tmp_path / "a.jsonl"), "--events", "80",
        "--seed", "2", "--shards", str(shards),
    ).stdout.strip().splitlines()[-1]
    b = run_soak(
        "--log", str(tmp_path / "b.jsonl"), "--events", "80",
        "--seed", "2", "--shards", str(shards),
    ).stdout.strip().splitlines()[-1]
    assert a == b
