"""Supervision-tree tests: worker processes, failover, verified respawn.

Every test drives a real multi-process fleet
(:class:`~repro.fleet.supervisor.SupervisedFleetService`), kills or
wedges real workers, and holds the recovered service to the same
standard as the in-process recovery tests: the rebuilt state must be
**bit-identical** to an uninterrupted oracle, failover answers must be
ANALYTIC, and the service must never raise.
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.errors import RecoveryError
from repro.experiments.journal import EventLog
from repro.fleet import (
    AdmissionController,
    FleetService,
    PlacementQuery,
    ShardPolicy,
    SupervisedFleetService,
    SupervisorPolicy,
    TenantQuota,
    synthetic_feed,
)
from repro.fleet.worker import WorkerHandle
from repro.parallel.containment import FailurePolicy
from repro.reliability.degrade import Confidence

MACHINES = 16
SHARDS = 4


def admission() -> AdmissionController:
    return AdmissionController(default=TenantQuota(max_apps=10**9))


def make_supervised(tmp_path, name="fleet.jsonl", **overrides) -> SupervisedFleetService:
    supervisor = overrides.pop(
        "supervisor",
        SupervisorPolicy(
            heartbeat_interval=0.3,
            heartbeat_timeout=2.0,
            containment=FailurePolicy(deadline=1.5),
        ),
    )
    return SupervisedFleetService(
        machines=MACHINES,
        num_shards=SHARDS,
        admission=admission(),
        policy=ShardPolicy(failure_threshold=1, recovery_time=0.1),
        log=EventLog(tmp_path / name, sync=False),
        supervisor=supervisor,
        **overrides,
    )


def oracle_hash(tmp_path, seed: int, events: int) -> str:
    service = FleetService(
        machines=MACHINES,
        num_shards=SHARDS,
        admission=admission(),
        log=EventLog(tmp_path / "oracle.jsonl", sync=False),
    )
    for event in synthetic_feed(seed=seed, events=events, machines=MACHINES):
        service.apply(event)
    return service.state_hash()


def feed_through(service, seed: int, events: int, hooks=None) -> None:
    hooks = dict(hooks or {})
    for i, event in enumerate(synthetic_feed(seed=seed, events=events, machines=MACHINES)):
        if not service.submit(event):
            service.pump()
            service.submit(event)
        service.pump()
        if i in hooks:
            hooks.pop(i)(service)
    service.pump()


class TestSupervisedParity:
    def test_requires_a_durable_log(self):
        with pytest.raises(ValueError, match="EventLog"):
            SupervisedFleetService(machines=MACHINES, num_shards=SHARDS)

    def test_clean_run_matches_in_process_oracle(self, tmp_path):
        expected = oracle_hash(tmp_path, seed=21, events=300)
        with make_supervised(tmp_path) as service:
            feed_through(service, seed=21, events=300)
            assert service.state_hash() == expected
            assert service.counters()["respawns"] == 0

    def test_close_reaps_every_worker(self, tmp_path):
        service = make_supervised(tmp_path)
        pids = [service.worker_pid(sid) for sid in range(SHARDS)]
        service.close()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if all(service._workers[s].process.is_alive() is False for s in range(SHARDS)):
                break
            time.sleep(0.05)
        for sid, pid in enumerate(pids):
            assert pid is not None
            assert not service._workers[sid].process.is_alive()


class TestFailover:
    def _kill(self, sid):
        def hook(service):
            os.kill(service.worker_pid(sid), signal.SIGKILL)

        return hook

    def test_sigkilled_worker_respawns_bit_identical(self, tmp_path):
        expected = oracle_hash(tmp_path, seed=31, events=300)
        with make_supervised(tmp_path) as service:
            feed_through(service, seed=31, events=300, hooks={100: self._kill(1)})
            assert service.await_recovery(timeout=60.0)
            counters = service.counters()
            assert counters["respawns"] >= 1
            assert counters["worker_failures"] >= 1
            assert counters["recovery_mismatches"] == 0
            assert service.state_hash() == expected

    @pytest.mark.parametrize("kind", ["exit", "raise", "hang"])
    def test_injected_faults_respawn_bit_identical(self, tmp_path, kind):
        expected = oracle_hash(tmp_path, seed=37, events=260)
        with make_supervised(tmp_path) as service:
            feed_through(
                service,
                seed=37,
                events=260,
                hooks={90: lambda s: s.inject_fault(2, kind, after=1)},
            )
            assert service.await_recovery(timeout=60.0)
            assert service.counters()["respawns"] >= 1
            assert service.state_hash() == expected

    def test_quarantined_shard_answers_analytic_never_blocks(self, tmp_path):
        with make_supervised(tmp_path) as service:
            feed_through(service, seed=41, events=120)
            os.kill(service.worker_pid(1), signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            while 1 not in service.quarantined and time.monotonic() < deadline:
                service.tick(force=True)
                time.sleep(0.01)
            assert 1 in service.quarantined
            before = service.counters()["failover_answers"]
            start = time.monotonic()
            answer = service.query(
                "t0",
                PlacementQuery(dcomp_frontend=1.0, candidates=(1, 5, 9, 13)),
            )
            assert time.monotonic() - start < 5.0  # no blocking on the dead worker
            assert answer.confidence is Confidence.ANALYTIC
            assert service.counters()["failover_answers"] == before + 1
            assert service.await_recovery(timeout=60.0)

    def test_hang_past_heartbeat_deadline_counts_missed_heartbeat(self, tmp_path):
        # The apply deadline is generous (5s) but heartbeats are strict:
        # the queued ping expires first, so the hang is detected *as* a
        # missed heartbeat, not an apply timeout.
        supervisor = SupervisorPolicy(
            heartbeat_interval=0.1,
            heartbeat_timeout=0.5,
            containment=FailurePolicy(deadline=5.0),
        )
        with make_supervised(tmp_path, supervisor=supervisor) as service:
            feed_through(service, seed=43, events=80)
            service.inject_fault(0, "hang", after=1)
            # One apply to shard 0's slice trips the hang.
            victim = next(
                e
                for e in synthetic_feed(seed=44, events=40, machines=MACHINES)
                if e["op"] == "arrive" and e["machine"] % SHARDS == 0
            )
            service.apply(victim)
            deadline = time.monotonic() + 30.0
            while service.counters()["heartbeats_missed"] == 0:
                assert time.monotonic() < deadline, "hang never detected"
                service.tick(force=True)
                time.sleep(0.02)
            assert 0 in service.quarantined
            assert service.await_recovery(timeout=60.0)


class TestChaosProof:
    def test_seeded_kill_schedule_never_raises_and_stays_bit_identical(self, tmp_path):
        expected = oracle_hash(tmp_path, seed=53, events=1200)
        hooks = {
            300: lambda s: os.kill(s.worker_pid(0), signal.SIGKILL),
            600: lambda s: s.inject_fault(1, "raise", after=1),
            900: lambda s: s.inject_fault(2, "exit", after=1),
        }
        probed = []
        with make_supervised(tmp_path) as service:
            for i, event in enumerate(
                synthetic_feed(seed=53, events=1200, machines=MACHINES)
            ):
                if not service.submit(event):
                    service.pump()
                    service.submit(event)
                service.pump()
                if i in hooks:
                    hooks.pop(i)(service)
                for sid in sorted(service.quarantined - set(probed)):
                    answer = service.query(
                        "chaos",
                        PlacementQuery(
                            dcomp_frontend=1.0,
                            candidates=tuple(range(sid, MACHINES, SHARDS)),
                        ),
                    )
                    assert answer.confidence is Confidence.ANALYTIC
                    probed.append(sid)
            service.pump()
            assert service.await_recovery(timeout=120.0)
            counters = service.counters()
            assert counters["respawns"] >= 3
            assert counters["worker_failures"] >= 3
            assert counters["recovery_mismatches"] == 0
            assert probed  # at least one quarantine was observed and probed
            assert service.state_hash() == expected


class TestRecoveryVerification:
    def test_corrupted_journal_line_keeps_shard_quarantined(self, tmp_path):
        with make_supervised(tmp_path, name="corrupt.jsonl") as service:
            feed_through(service, seed=61, events=200)
            path = service.log.path
            lines = path.read_text(encoding="utf-8").splitlines()
            victim = next(
                i
                for i, line in enumerate(lines)
                if i > 10 and json.loads(line).get("machine", 0) % SHARDS == 1
            )
            lines[victim] = lines[victim][:-2] + 'XX}'
            path.write_text("\n".join(lines) + "\n", encoding="utf-8")
            os.kill(service.worker_pid(1), signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            while service.counters()["recovery_mismatches"] == 0:
                assert time.monotonic() < deadline, "mismatch never surfaced"
                service.tick(force=True)
                time.sleep(0.01)
            assert 1 in service.quarantined
            error = service.last_recovery_error
            assert isinstance(error, RecoveryError)
            assert error.shard_id == 1
            assert error.replayed_events < error.expected_events
            # The quarantined slice still answers, analytically.
            answer = service.query(
                "t0", PlacementQuery(dcomp_frontend=1.0, candidates=(1, 5, 9, 13))
            )
            assert answer.confidence is Confidence.ANALYTIC


class TestBackpressureAccounting:
    def test_worker_depth_and_states_exposed(self, tmp_path):
        with make_supervised(tmp_path) as service:
            feed_through(service, seed=71, events=60)
            for sid in range(SHARDS):
                assert service.worker_state(sid) == WorkerHandle.LIVE
                assert service.worker_depth(sid) >= 0
                assert isinstance(service.worker_pid(sid), int)

    def test_send_to_wedged_worker_stalls_out_instead_of_deadlocking(self):
        """A worker that stops reading must not wedge the supervisor.

        Once the kernel pipe buffer fills behind a hung worker, a plain
        ``Connection.send`` blocks forever inside ``write(2)`` — before
        any tick can enforce the apply deadline that would have failed
        the worker (batched frames fill the buffer in a handful of
        sends). ``WorkerHandle`` must instead surface the stall as
        ``WorkerUnavailable`` within the request deadline.
        """
        import multiprocessing

        from repro.fleet.worker import WorkerUnavailable

        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        handle = WorkerHandle(
            ctx, 0, range(4), (None, None, None), None, max_inflight=256, now=0.0
        )
        try:
            # Wedge the worker on its next applied event.
            assert handle.request(("inject", "hang", 1), "inject", 5.0, 0.0)
            event = {
                "op": "arrive",
                "app": "a0",
                "tenant": "t",
                "machine": 0,
                "comm_fraction": 0.3,
                "message_size": 64.0,
            }
            assert handle.request(("apply", [event]), "apply", 5.0, 0.0)
            # Flood the pipe with frames the sleeping worker never
            # reads. Far more than any kernel pipe buffer holds; with a
            # blocking send this loop never returns.
            frame = [dict(event, app=f"a{i}") for i in range(2000)]
            start = time.monotonic()
            with pytest.raises(WorkerUnavailable, match="stalled"):
                for _ in range(64):
                    handle.request(("apply", frame), "apply", 1.0, 0.0)
            assert time.monotonic() - start < 30.0
        finally:
            handle.kill()
