"""Unit tests for the ASCII chart renderer."""

from __future__ import annotations

import pytest

from repro.experiments.plots import ascii_chart, chart_result
from repro.experiments.report import ExperimentResult


class TestAsciiChart:
    def test_basic_render(self):
        chart = ascii_chart([1, 2, 3], {"a": [1.0, 2.0, 3.0]}, width=20, height=6)
        assert "o" in chart
        assert "o = a" in chart

    def test_two_series_distinct_glyphs(self):
        chart = ascii_chart(
            [1, 2, 3], {"up": [1, 2, 3], "down": [3, 2, 1]}, width=20, height=6
        )
        assert "o = up" in chart and "x = down" in chart
        assert "o" in chart and "x" in chart

    def test_log_axis_labels(self):
        chart = ascii_chart([1, 2], {"a": [10.0, 1000.0]}, logy=True, width=20, height=6)
        assert "1e+03" in chart or "1000" in chart

    def test_title_included(self):
        chart = ascii_chart([1, 2], {"a": [1, 2]}, title="my chart", width=20, height=6)
        assert chart.splitlines()[0] == "my chart"

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {})
        with pytest.raises(ValueError):
            ascii_chart([1], {"a": [1.0]})
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"a": [1.0]})
        with pytest.raises(ValueError):
            ascii_chart([1, 1], {"a": [1.0, 2.0]})
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"a": [1.0, 2.0]}, width=2)

    def test_constant_series_renders(self):
        chart = ascii_chart([1, 2, 3], {"flat": [5.0, 5.0, 5.0]}, width=20, height=6)
        assert "o" in chart

    def test_nonpositive_skipped_on_log_axis(self):
        chart = ascii_chart([1, 2, 3], {"a": [0.0, 10.0, 100.0]}, logy=True,
                            width=20, height=6)
        assert "o" in chart


class TestChartResult:
    def test_known_experiment(self):
        result = ExperimentResult(
            experiment="fig5",
            title="t",
            headers=("size (words)", "dedicated", "actual", "std", "model", "err %"),
            rows=[(16, 1.0, 2.0, 0.1, 1.9, -5.0), (64, 1.2, 2.4, 0.1, 2.3, -4.0)],
        )
        chart = chart_result(result)
        assert chart is not None
        assert "actual" in chart

    def test_unknown_experiment_returns_none(self):
        result = ExperimentResult("tables1_4", "t", ("a",), [(1,)])
        assert chart_result(result) is None

    def test_missing_columns_returns_none(self):
        result = ExperimentResult("fig5", "t", ("other",), [(1,)])
        assert chart_result(result) is None
