"""Band tests for the assumption-sensitivity experiments."""

from __future__ import annotations

from repro.experiments.sensitivity import cycle_length_sensitivity, fraction_sensitivity


class TestCycleSensitivity:
    def test_variance_grows_with_cycle_length(self, quiet_paragon_spec):
        result = cycle_length_sensitivity(
            spec=quiet_paragon_spec,
            cycles=(0.05, 1.0),
            count=300,
            repetitions=4,
        )
        assert result.metrics["cv_longest_cycle"] > result.metrics["cv_shortest_cycle"]

    def test_model_constant_across_cycles(self, quiet_paragon_spec):
        result = cycle_length_sensitivity(spec=quiet_paragon_spec, quick=True)
        models = result.column("model")
        assert len(set(models)) == 1


class TestFractionSensitivity:
    def test_error_band(self, quiet_paragon_spec):
        result = fraction_sensitivity(spec=quiet_paragon_spec, quick=True)
        # Paper band: typical <= 15%, intensive communicators worse but
        # bounded (~30%).
        assert result.metrics["mean_abs_err_pct"] < 20.0
        assert result.metrics["max_abs_err_pct"] < 35.0


class TestForecastExperiment:
    def test_adaptive_tracks_best_single(self, quiet_paragon_spec):
        from repro.experiments.sensitivity import forecast_experiment

        result = forecast_experiment(spec=quiet_paragon_spec, quick=True)
        assert result.metrics["samples"] > 10
        # The adaptive forecaster stays close to the best single
        # predictor on the recorded series.
        assert result.metrics["adaptive_over_best"] < 1.5


class TestMixedWorkload:
    def test_long_term_model_band(self, quiet_paragon_spec):
        from repro.experiments.sensitivity import mixed_workload_experiment

        result = mixed_workload_experiment(spec=quiet_paragon_spec, quick=True)
        assert result.metrics["mean_abs_err_pct"] < 20.0
        # The probe slows down under contention at every mix.
        for row in result.rows:
            assert row[2] > row[1]  # actual > dedicated
