"""The unified ``simulate()`` entry point and ``BatchResult``.

Covers the API-redesign contract: backend resolution (argument > env
var > vector default), counted automatic fallback to the object
oracle, vector/object statistical parity, bit-identical lane chunking
under workers, non-finite quarantine masking, the ToDict round trip,
journaled replay, and the ``repeat_mean`` deprecation shim.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.workload import ApplicationProfile
from repro.experiments.journal import RunJournal, journaled
from repro.experiments.runner import Replication, repeat_mean
from repro.experiments.simulate import (
    BACKEND_ENV,
    BatchResult,
    BurstProbe,
    ComputeProbe,
    CyclicProbe,
    SimSpec,
    resolve_backend,
    simulate,
)
from repro.obs import MetricsRegistry, ObsContext, Tracer, observed
from repro.platforms.specs import CpuSpec, DEFAULT_SUNPARAGON, SunParagonSpec
from repro.reliability.degrade import Confidence

PS_SPEC = SunParagonSpec(cpu=CpuSpec(discipline="ps"))
CONTENDERS = (
    ApplicationProfile("c25", comm_fraction=0.25, message_size=200),
    ApplicationProfile("c76", comm_fraction=0.76, message_size=200),
)


def _spec(probe=None, **kw):
    return SimSpec(
        platform=PS_SPEC,
        probe=probe if probe is not None else BurstProbe(200, 30, "out"),
        contenders=CONTENDERS,
        **kw,
    )


#: An uncovered-but-runnable spec: 2hops routing through a service node
#: with capacity 2 is outside the vector envelope, fine on the object
#: engine — the fallback tests need something that actually executes.
_2HOPS_CAP2_SPEC = SimSpec(
    platform=SunParagonSpec(cpu=CpuSpec(discipline="ps"), service_node_capacity=2),
    probe=BurstProbe(200, 10),
    contenders=CONTENDERS,
    mode="2hops",
)


class TestBackendResolution:
    def test_default_is_vector(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend(None) == "vector"

    def test_env_var_applies(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "object")
        assert resolve_backend(None) == "object"

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "object")
        assert resolve_backend("vector") == "vector"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("quantum")

    def test_reps_validated(self):
        with pytest.raises(ValueError):
            simulate(_spec(), reps=0)


class TestVectorObjectParity:
    def test_means_agree_within_tolerance(self):
        vec = simulate(_spec(), reps=4, seed=5, backend="vector")
        obj = simulate(_spec(), reps=4, seed=5, backend="object")
        assert vec.backend == "vector" and vec.fallback_reason is None
        assert obj.backend == "object"
        assert np.allclose(vec.values, obj.values, rtol=1e-9, atol=0.0)

    def test_all_probe_shapes_run_on_vector(self):
        for probe in (
            BurstProbe(200, 20, "in"),
            ComputeProbe(0.5),
            CyclicProbe(3, 0.05, 2, 200.0),
        ):
            res = simulate(_spec(probe=probe), reps=2, seed=1, backend="vector")
            assert res.backend == "vector", probe
            assert res.n == 2 and all(np.isfinite(res.values))

    def test_workers_chunking_bit_identical(self):
        serial = simulate(_spec(), reps=5, seed=11, backend="vector", workers=1)
        chunked = simulate(_spec(), reps=5, seed=11, backend="vector", workers=3)
        assert chunked.values == serial.values


class TestFallback:
    def test_default_rr_spec_runs_on_vector_with_zero_fallbacks(self):
        """The production spec (rr discipline) no longer leaves the vector path."""
        ctx = ObsContext(tracer=Tracer(seed=0), metrics=MetricsRegistry())
        with observed(ctx):
            res = simulate(
                SimSpec(
                    platform=DEFAULT_SUNPARAGON,
                    probe=BurstProbe(200, 10),
                    contenders=CONTENDERS,
                ),
                reps=2,
                backend="vector",
            )
        assert res.requested_backend == "vector"
        assert res.backend == "vector"
        assert res.fallback_reason is None
        assert ctx.metrics.counter("simulate.fallback").value == 0

    def test_uncovered_spec_falls_back_with_reason(self):
        res = simulate(_2HOPS_CAP2_SPEC, reps=2, backend="vector")
        assert res.requested_backend == "vector"
        assert res.backend == "object"
        assert "service_node_capacity" in res.fallback_reason

    def test_unknown_discipline_reported_as_unsupported(self):
        spec = SimSpec(
            platform=SunParagonSpec(cpu=CpuSpec(discipline="fcfs")),
            probe=BurstProbe(200, 10),
        )
        from repro.experiments.simulate import _vector_workload
        from repro.sim import vector as _vector

        contenders, probe, reason = _vector_workload(spec)
        assert reason is None
        reason = _vector.unsupported_reason(spec.platform, contenders, probe)
        assert reason is not None and "discipline" in reason

    def test_opaque_measure_falls_back(self):
        res = simulate(lambda s: 1.0, reps=2, backend="vector")
        assert res.backend == "object"
        assert "SimSpec" in res.fallback_reason

    def test_fallback_is_counted_and_labeled(self):
        ctx = ObsContext(tracer=Tracer(seed=0), metrics=MetricsRegistry())
        with observed(ctx):
            simulate(lambda s: 1.0, reps=2, backend="vector")
            simulate(_2HOPS_CAP2_SPEC, reps=2, backend="vector")
            simulate(_spec(), reps=2, backend="vector")  # no fallback
        assert ctx.metrics.counter("simulate.fallback").value == 2
        assert ctx.metrics.counter("simulate.fallback.opaque_measure").value == 1
        assert ctx.metrics.counter("simulate.fallback.service_capacity").value == 1

    def test_explicit_object_is_not_a_fallback(self):
        ctx = ObsContext(tracer=Tracer(seed=0), metrics=MetricsRegistry())
        with observed(ctx):
            res = simulate(_spec(), reps=2, backend="object")
        assert res.fallback_reason is None
        assert ctx.metrics.counter("simulate.fallback").value == 0

    def test_fallback_values_match_explicit_object(self):
        fell = simulate(_2HOPS_CAP2_SPEC, reps=3, seed=2, backend="vector")
        forced = simulate(_2HOPS_CAP2_SPEC, reps=3, seed=2, backend="object")
        assert fell.values == forced.values

    def test_rr_vector_matches_object_oracle(self):
        spec = SimSpec(
            platform=DEFAULT_SUNPARAGON, probe=BurstProbe(200, 10), contenders=CONTENDERS
        )
        vec = simulate(spec, reps=3, seed=2, backend="vector")
        obj = simulate(spec, reps=3, seed=2, backend="object")
        assert vec.backend == "vector" and obj.backend == "object"
        assert np.allclose(vec.values, obj.values, rtol=1e-9, atol=0.0)


def _sweep_points():
    return [
        _spec(probe=BurstProbe(size, 10, "out"))
        for size in (64, 200, 512, 1024)
    ]


class TestSweepLanes:
    def test_sweep_matches_per_point_bitwise(self):
        points = _sweep_points()
        batch = simulate(sweep=points, reps=3, seed=9, backend="vector")
        assert len(batch) == len(points)
        for sp, res in zip(points, batch):
            solo = simulate(sp, reps=3, seed=9, backend="vector")
            assert res.backend == "vector" and res.fallback_reason is None
            assert res.values == solo.values

    def test_sweep_env_disable_is_bit_identical(self, monkeypatch):
        from repro.experiments.simulate import SWEEP_ENV

        points = _sweep_points()
        lanes = simulate(sweep=points, reps=2, seed=4, backend="vector")
        monkeypatch.setenv(SWEEP_ENV, "0")
        loop = simulate(sweep=points, reps=2, seed=4, backend="vector")
        assert [r.values for r in lanes] == [r.values for r in loop]

    def test_spec_and_sweep_mutually_exclusive(self):
        with pytest.raises(ValueError):
            simulate(_spec(), sweep=_sweep_points(), reps=2)
        with pytest.raises(ValueError):
            simulate(reps=2)

    def test_sweep_with_workers_bit_identical(self):
        points = _sweep_points()
        serial = simulate(sweep=points, reps=3, seed=6, backend="vector", workers=1)
        chunked = simulate(sweep=points, reps=3, seed=6, backend="vector", workers=3)
        assert [r.values for r in serial] == [r.values for r in chunked]

    def test_mixed_eligible_and_fallback_points(self):
        points = [_spec(), _2HOPS_CAP2_SPEC, _spec(probe=BurstProbe(512, 10))]
        batch = simulate(sweep=points, reps=2, seed=3, backend="vector")
        assert [r.backend for r in batch] == ["vector", "object", "vector"]
        assert batch[1].fallback_reason is not None
        for sp, res in zip(points, batch):
            assert res.values == simulate(sp, reps=2, seed=3, backend="vector").values

    def test_heterogeneous_probe_kinds_in_one_sweep(self):
        points = [
            _spec(probe=BurstProbe(200, 10)),
            _spec(probe=ComputeProbe(0.5)),
            _spec(probe=CyclicProbe(3, 0.05, 2, 200.0)),
        ]
        batch = simulate(sweep=points, reps=2, seed=8, backend="vector")
        for sp, res in zip(points, batch):
            assert res.backend == "vector"
            assert res.values == simulate(sp, reps=2, seed=8, backend="vector").values

    def test_sweep_journal_interop_with_per_point(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        points = _sweep_points()
        with journaled(RunJournal(path, resume=False)):
            fresh = simulate(sweep=points, reps=2, seed=12, backend="vector")
        journal = RunJournal(path, resume=True)
        with journaled(journal):
            replayed = [
                simulate(sp, reps=2, seed=12, backend="vector") for sp in points
            ]
        assert [r.values for r in replayed] == [r.values for r in fresh]
        assert journal.hits == len(points) and journal.misses == 0

    def test_per_point_journal_replays_into_sweep(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        points = _sweep_points()
        with journaled(RunJournal(path, resume=False)):
            fresh = [simulate(sp, reps=2, seed=12, backend="vector") for sp in points]
        journal = RunJournal(path, resume=True)
        with journaled(journal):
            replayed = simulate(sweep=points, reps=2, seed=12, backend="vector")
        assert [r.values for r in replayed] == [r.values for r in fresh]
        assert journal.hits == len(points) and journal.misses == 0

    def test_empty_sweep(self):
        assert simulate(sweep=[], reps=2, backend="vector") == []


class TestQuarantineMasking:
    def test_nan_measurement_degrades_not_poisons(self):
        # Replication k=1 produces a non-finite value; the rest are 2.0.
        calls = iter(range(10))
        res = simulate(
            lambda s: float("nan") if next(calls) == 1 else 2.0,
            reps=4,
            backend="object",
        )
        assert res.values == (2.0, 2.0, 2.0)
        assert np.isfinite(res.mean)
        assert res.confidence is Confidence.EXTRAPOLATED
        [q] = res.quarantined
        assert q.index == 1 and "non-finite" in q.reason

    def test_all_quarantined_is_analytic(self):
        res = simulate(lambda s: float("inf"), reps=2, backend="object")
        assert res.values == ()
        assert res.confidence is Confidence.ANALYTIC
        assert np.isnan(res.mean)


class TestBatchResult:
    def test_is_a_replication(self):
        res = simulate(_spec(), reps=3, seed=7, backend="vector")
        assert isinstance(res, Replication)
        assert res.n == 3
        lo, hi = res.ci95()
        assert lo <= res.mean <= hi

    def test_to_dict_round_trip(self):
        res = simulate(_spec(), reps=3, seed=7, backend="vector")
        payload = res.to_dict()
        assert payload["backend"] == "vector"
        assert BatchResult.from_dict(payload) == res

    def test_round_trip_with_quarantine(self):
        res = simulate(lambda s: float("nan"), reps=2, backend="object")
        clone = BatchResult.from_dict(res.to_dict())
        assert clone == res
        assert clone.quarantined == res.quarantined


class TestJournaledReplay:
    def test_vector_batch_replays_bit_identically(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with journaled(RunJournal(path, resume=False)):
            fresh = simulate(_spec(), reps=3, seed=13, backend="vector")
        journal = RunJournal(path, resume=True)
        with journaled(journal):
            replayed = simulate(_spec(), reps=3, seed=13, backend="vector")
        assert replayed.values == fresh.values
        assert journal.hits == 1 and journal.misses == 0

    def test_backend_participates_in_the_key(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with journaled(RunJournal(path, resume=False)):
            simulate(_spec(), reps=3, seed=13, backend="vector")
        journal = RunJournal(path, resume=True)
        with journaled(journal):
            simulate(_spec(), reps=3, seed=13, backend="object")
        assert journal.misses == 1


class TestDeprecatedAlias:
    def test_repeat_mean_warns_and_forwards(self):
        with pytest.warns(DeprecationWarning, match="repeat_mean"):
            rep = repeat_mean(lambda s: 4.0, repetitions=3, seed=0)
        assert isinstance(rep, BatchResult)
        assert rep.backend == "object"
        assert rep.values == (4.0, 4.0, 4.0)

    def test_alias_matches_simulate(self):
        def measure(streams):
            return float(streams.get("x").random())

        with pytest.warns(DeprecationWarning):
            old = repeat_mean(measure, repetitions=4, seed=3)
        new = simulate(measure, reps=4, seed=3, backend="object")
        assert old.values == new.values


class TestCLIBackendThreading:
    def test_driver_kwargs_passes_backend_when_declared(self):
        from repro.experiments.cli import _driver_kwargs

        def driver(quick=False, workers=1, backend=None):
            pass

        kwargs = _driver_kwargs(driver, quick=True, workers=1, backend="object")
        assert kwargs == {"quick": True, "backend": "object"}

    def test_driver_kwargs_omits_backend_when_not_declared(self):
        from repro.experiments.cli import _driver_kwargs

        def driver(quick=False):
            pass

        assert _driver_kwargs(driver, True, 2, "vector") == {"quick": True}

    def test_parser_accepts_backend_flag(self, capsys):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main(["--backend", "quantum", "--list"])
        assert main(["--backend", "object", "--list"]) == 0
