"""Smoke + band tests for the robustness experiments."""

from __future__ import annotations

import pytest

from repro.experiments.robustness import (
    robustness_paragon_comm,
    robustness_paragon_comp,
    saturation_sweep,
    synthetic_cm2_experiment,
)


class TestSyntheticCM2:
    def test_error_band(self, quiet_cm2_spec):
        result = synthetic_cm2_experiment(spec=quiet_cm2_spec, quick=True)
        # Paper: within 15%; allow some headroom at quick scale.
        assert result.metrics["mean_abs_err_pct"] < 20.0

    def test_covers_both_branches(self, quiet_cm2_spec):
        """Sweeping serial fraction must exercise both branches of the
        max() formula: at low fraction the model equals the dedicated
        elapsed; at high fraction it's serial-bound."""
        result = synthetic_cm2_experiment(
            spec=quiet_cm2_spec, serial_fractions=(0.05, 0.9), total_work=0.5
        )
        rows = result.rows
        low, high = rows[0], rows[-1]
        assert low[3] == pytest.approx(low[1], rel=0.05)  # model == dedicated
        assert high[3] > high[1] * 2  # serial-bound model >> dedicated


class TestRobustnessParagon:
    def test_comm_band(self, quiet_paragon_spec):
        result = robustness_paragon_comm(spec=quiet_paragon_spec, quick=True)
        assert result.metrics["max_abs_err_pct"] < 45.0

    def test_comp_band(self, quiet_paragon_spec):
        result = robustness_paragon_comp(spec=quiet_paragon_spec, quick=True)
        assert result.metrics["max_abs_err_pct"] < 40.0


class TestSaturation:
    def test_delay_flat_beyond_buffer(self, quiet_paragon_spec):
        result = saturation_sweep(spec=quiet_paragon_spec, quick=True)
        rows = dict(result.rows)
        # j = 2000 fragments into two 1000-word packets: identical
        # steady-state interference to j = 1000.
        assert rows[2000] == pytest.approx(rows[1000], rel=0.05)
        # ... and well above the 1-word generator's delay.
        assert rows[1000] > rows[1] * 1.5
