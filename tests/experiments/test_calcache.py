"""Unit tests for the on-disk calibration cache."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.experiments import calcache
from repro.experiments.calibrate import (
    DEFAULT_SWEEP_SIZES,
    ParagonCalibration,
    _calibrate_paragon_cached,
)
from repro.core.params import (
    DelayTable,
    LinearCommParams,
    PiecewiseCommParams,
    SizedDelayTable,
)
from repro.obs import MetricsRegistry, ObsContext, Tracer, observed
from repro.platforms.specs import DEFAULT_SUNPARAGON


@pytest.fixture
def cache_dir(tmp_path):
    """Point the module cache at a temp dir, restoring the off state."""
    calcache.set_cache_dir(tmp_path)
    yield tmp_path
    calcache.set_cache_dir(None)


def sample_calibration() -> ParagonCalibration:
    linear = LinearCommParams(alpha=1.5e-3, beta=1.1e6)
    piecewise = PiecewiseCommParams(
        threshold=1024.0, small=linear, large=LinearCommParams(alpha=2.5e-3, beta=0.9e6)
    )
    return ParagonCalibration(
        mode="1hop",
        params_out=piecewise,
        params_in=piecewise,
        delay_comp=DelayTable(delays=(0.4, 1.0, 1.6), label="delay_comp"),
        delay_comm=DelayTable(delays=(0.6, 1.3), label="delay_comm"),
        delay_comm_sized=SizedDelayTable(
            tables={
                1: DelayTable(delays=(0.1, 0.2), label="j1"),
                500: DelayTable(delays=(0.5, 0.9), label="j500"),
            },
            saturation=1000.0,
        ),
    )


class TestKeying:
    def test_key_is_stable(self):
        key = calcache.paragon_key(DEFAULT_SUNPARAGON, "1hop", 4, DEFAULT_SWEEP_SIZES)
        assert key == calcache.paragon_key(
            DEFAULT_SUNPARAGON, "1hop", 4, DEFAULT_SWEEP_SIZES
        )

    def test_key_depends_on_every_input(self):
        base = calcache.paragon_key(DEFAULT_SUNPARAGON, "1hop", 4, (1, 2))
        spec2 = dataclasses.replace(DEFAULT_SUNPARAGON, nx_alpha=0.123)
        assert calcache.paragon_key(spec2, "1hop", 4, (1, 2)) != base
        assert calcache.paragon_key(DEFAULT_SUNPARAGON, "2hops", 4, (1, 2)) != base
        assert calcache.paragon_key(DEFAULT_SUNPARAGON, "1hop", 5, (1, 2)) != base
        assert calcache.paragon_key(DEFAULT_SUNPARAGON, "1hop", 4, (1, 3)) != base


class TestEntryIO:
    def test_round_trip_is_exact(self, cache_dir):
        cal = sample_calibration()
        path = calcache.store_paragon("k1", cal)
        assert path is not None and path.exists()
        loaded = calcache.load_paragon("k1")
        assert loaded == cal  # frozen dataclasses: field-exact equality

    def test_missing_entry_is_none(self, cache_dir):
        assert calcache.load_paragon("nope") is None

    def test_corrupt_entry_is_none(self, cache_dir):
        (cache_dir / "paragon-bad.json").write_text("{not json")
        assert calcache.load_paragon("bad") is None

    def test_version_mismatch_is_none(self, cache_dir):
        calcache.store_paragon("k2", sample_calibration())
        path = cache_dir / "paragon-k2.json"
        data = json.loads(path.read_text())
        data["version"] = calcache.CACHE_VERSION + 1
        path.write_text(json.dumps(data))
        assert calcache.load_paragon("k2") is None

    def test_disabled_cache_is_inert(self):
        calcache.set_cache_dir(None)
        assert calcache.store_paragon("k3", sample_calibration()) is None
        assert calcache.load_paragon("k3") is None

    def test_clear_cache(self, cache_dir):
        calcache.store_paragon("a", sample_calibration())
        calcache.store_paragon("b", sample_calibration())
        assert calcache.clear_cache() == 2
        assert calcache.load_paragon("a") is None

    def test_clear_missing_dir_is_zero(self, tmp_path):
        assert calcache.clear_cache(tmp_path / "absent") == 0


class TestCalibrateIntegration:
    def test_miss_then_hit_across_memory_cache_resets(self, cache_dir):
        """Simulates two processes: calling past the lru_cache (via
        ``__wrapped__``) forces each call to the disk layer, so the
        second one must hit.  The lru_cache itself is left untouched —
        other tests rely on its object identity."""
        uncached = _calibrate_paragon_cached.__wrapped__
        spec = dataclasses.replace(DEFAULT_SUNPARAGON, nx_alpha=0.000312)
        sizes = tuple(DEFAULT_SWEEP_SIZES)
        ctx = ObsContext(tracer=Tracer(seed=1), metrics=MetricsRegistry())
        with observed(ctx):
            first = uncached(spec, "1hop", 2, sizes)
        snap = ctx.metrics.snapshot()
        assert snap.counters.get("calibration.cache.miss") == 1
        assert "calibration.cache.hit" not in snap.counters

        ctx2 = ObsContext(tracer=Tracer(seed=2), metrics=MetricsRegistry())
        with observed(ctx2):
            second = uncached(spec, "1hop", 2, sizes)
        snap2 = ctx2.metrics.snapshot()
        assert snap2.counters.get("calibration.cache.hit") == 1
        assert "calibration.cache.miss" not in snap2.counters
        assert second == first  # loaded bit-identical to computed
