"""Run-journal tests: keying, durability, resume bit-identity."""

from __future__ import annotations

import json
from dataclasses import dataclass

import pytest

from repro.experiments import journal as journal_mod
from repro.experiments.journal import (
    JOURNAL_VERSION,
    RunJournal,
    active,
    describe_task,
    journaled,
    point,
    point_key,
)
from repro.experiments.runner import repeat_mean
from repro.sim.rng import RandomStreams


def _draw(streams: RandomStreams) -> float:
    return float(streams.get("x").random())


@dataclass(frozen=True)
class Probe:
    """A describable frozen-dataclass task."""

    size: int
    mode: str

    def __call__(self, streams: RandomStreams) -> float:
        return float(self.size)


class TestPointKey:
    def test_stable_across_calls(self):
        a = point_key("sweep", {"m": 3, "p": 2})
        b = point_key("sweep", {"m": 3, "p": 2})
        assert a == b
        assert len(a) == 32  # blake2b digest_size=16, hex

    def test_key_ordering_insensitive(self):
        assert point_key("k", {"a": 1, "b": 2}) == point_key("k", {"b": 2, "a": 1})

    def test_kind_and_params_distinguish(self):
        base = point_key("sweep", {"m": 3})
        assert point_key("other", {"m": 3}) != base
        assert point_key("sweep", {"m": 4}) != base


class TestDescribeTask:
    def test_primitives_and_containers(self):
        assert describe_task({"a": (1, 2.5), "b": None}) == {"a": [1, 2.5], "b": None}

    def test_frozen_dataclass(self):
        desc = describe_task(Probe(size=8, mode="1hop"))
        assert desc["task"].endswith("Probe")
        assert desc["fields"] == {"size": 8, "mode": "1hop"}

    def test_module_level_function(self):
        desc = describe_task(_draw)
        assert desc == {"callable": f"{_draw.__module__}._draw"}

    def test_lambda_rejected(self):
        assert describe_task(lambda s: 0.0) is None

    def test_closure_rejected(self):
        def outer():
            captured = 3.0

            def inner(streams):
                return captured

            return inner

        assert describe_task(outer()) is None

    def test_dataclass_with_undescribable_field_rejected(self):
        @dataclass(frozen=True)
        class Bad:
            fn: object

        assert describe_task(Bad(fn=lambda: 1)) is None


class TestRunJournal:
    def test_fresh_journal_truncates(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("stale garbage\n")
        with RunJournal(path, resume=False) as journal:
            assert len(journal) == 0
        assert path.read_text() == ""

    def test_record_returns_json_round_trip(self, tmp_path):
        with RunJournal(tmp_path / "run.jsonl") as journal:
            value = journal.record("k1", "test", {"m": 1}, {"values": (1.0, 2.0)})
        assert value == {"values": [1.0, 2.0]}  # tuple became list

    def test_point_hits_and_misses(self, tmp_path):
        with RunJournal(tmp_path / "run.jsonl") as journal:
            first = journal.point("test", {"m": 1}, lambda: 42.0)
            second = journal.point("test", {"m": 1}, lambda: pytest.fail("recomputed"))
        assert first == second == 42.0
        assert journal.misses == 1
        assert journal.hits == 1

    def test_resume_replays_completed_points(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.point("test", {"m": 1}, lambda: 1.5)
            journal.point("test", {"m": 2}, lambda: 2.5)
        with RunJournal(path, resume=True) as resumed:
            assert len(resumed) == 2
            assert resumed.point("test", {"m": 1}, lambda: pytest.fail("hit")) == 1.5
            assert resumed.point("test", {"m": 3}, lambda: 3.5) == 3.5
        # The new point was appended, not rewritten.
        with RunJournal(path, resume=True) as again:
            assert len(again) == 3

    def test_torn_last_line_is_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.point("test", {"m": 1}, lambda: 1.5)
            journal.point("test", {"m": 2}, lambda: 2.5)
        # Simulate a kill -9 mid-write: truncate the last line.
        torn = path.read_text()[:-20]
        path.write_text(torn)
        with RunJournal(path, resume=True) as resumed:
            assert len(resumed) == 1
            assert resumed.skipped == 1

    def test_foreign_version_is_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        record = {"v": JOURNAL_VERSION + 1, "key": "k", "kind": "t", "params": {}, "value": 1.0}
        path.write_text(json.dumps(record) + "\n")
        with RunJournal(path, resume=True) as resumed:
            assert len(resumed) == 0
            assert resumed.skipped == 1

    def test_version_participates_in_key(self):
        # Bumping JOURNAL_VERSION must invalidate every old key.
        k = point_key("t", {"m": 1})
        original = journal_mod.JOURNAL_VERSION
        try:
            journal_mod.JOURNAL_VERSION = original + 1
            assert point_key("t", {"m": 1}) != k
        finally:
            journal_mod.JOURNAL_VERSION = original


class TestAmbientJournal:
    def test_journaled_installs_and_restores(self, tmp_path):
        assert active() is None
        with RunJournal(tmp_path / "run.jsonl") as journal:
            with journaled(journal):
                assert active() is journal
            assert active() is None

    def test_point_without_journal_round_trips(self):
        # The invariant that makes journaling safe to enable: even with
        # no journal, values pass through JSON exactly once.
        assert point("t", {}, lambda: {"values": (1.0, 2.0)}) == {"values": [1.0, 2.0]}

    def test_point_with_journal_records(self, tmp_path):
        with RunJournal(tmp_path / "run.jsonl") as journal, journaled(journal):
            assert point("t", {"m": 1}, lambda: 5.0) == 5.0
        assert journal.misses == 1


class TestRepeatMeanJournaling:
    def test_replay_is_bit_identical_and_skips_compute(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal, journaled(journal):
            fresh = repeat_mean(_draw, repetitions=4, seed=11)
        assert journal.misses == 1
        with RunJournal(path, resume=True) as resumed, journaled(resumed):
            replayed = repeat_mean(_draw, repetitions=4, seed=11)
        assert resumed.hits == 1 and resumed.misses == 0
        assert replayed.values == fresh.values

    def test_journaled_equals_unjournaled(self, tmp_path):
        bare = repeat_mean(_draw, repetitions=3, seed=4)
        with RunJournal(tmp_path / "run.jsonl") as journal, journaled(journal):
            journaled_rep = repeat_mean(_draw, repetitions=3, seed=4)
        assert journaled_rep.values == bare.values

    def test_key_covers_seed_and_repetitions(self, tmp_path):
        with RunJournal(tmp_path / "run.jsonl") as journal, journaled(journal):
            repeat_mean(_draw, repetitions=2, seed=1)
            repeat_mean(_draw, repetitions=2, seed=2)
            repeat_mean(_draw, repetitions=3, seed=1)
        assert journal.misses == 3

    def test_undescribable_measure_computes_unjournaled(self, tmp_path):
        with RunJournal(tmp_path / "run.jsonl") as journal, journaled(journal):
            rep = repeat_mean(lambda s: 7.0, repetitions=2, seed=0)
        assert rep.mean == 7.0
        assert journal.misses == 0 and len(journal) == 0


class TestSweepResume:
    def test_saturation_sweep_resume_equivalence(self, tmp_path):
        from repro.experiments.robustness import saturation_sweep

        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal, journaled(journal):
            fresh = saturation_sweep(quick=True)
        assert journal.misses > 0
        with RunJournal(path, resume=True) as resumed, journaled(resumed):
            replayed = saturation_sweep(quick=True)
        assert resumed.misses == 0
        assert replayed.rows == fresh.rows
        assert replayed.metrics == fresh.metrics


class TestEventLog:
    def _events(self, n):
        return [{"op": "arrive", "app": f"a{i}", "machine": i % 3} for i in range(n)]

    def test_append_stamps_monotone_seq(self, tmp_path):
        from repro.experiments.journal import EventLog

        with EventLog(tmp_path / "ev.jsonl") as log:
            stamped = [log.append(e) for e in self._events(4)]
        assert [e["seq"] for e in stamped] == [0, 1, 2, 3]
        assert all(e["v"] == JOURNAL_VERSION for e in stamped)

    def test_replay_yields_appended_events_in_order(self, tmp_path):
        from repro.experiments.journal import EventLog

        path = tmp_path / "ev.jsonl"
        with EventLog(path) as log:
            stamped = [log.append(e) for e in self._events(5)]
        assert list(EventLog.replay(path)) == stamped

    def test_append_returns_json_roundtrip(self, tmp_path):
        # Live application and replayed recovery must see identical
        # data, so append returns what replay will yield.
        from repro.experiments.journal import EventLog

        with EventLog(tmp_path / "ev.jsonl") as log:
            out = log.append({"op": "arrive", "app": "a", "comm_fraction": 0.1})
        assert out["comm_fraction"] == json.loads(json.dumps(0.1))

    def test_replay_stops_at_torn_final_line(self, tmp_path):
        from repro.experiments.journal import EventLog

        path = tmp_path / "ev.jsonl"
        with EventLog(path) as log:
            for e in self._events(3):
                log.append(e)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"v": 1, "seq": 3, "op": "arr')  # torn mid-write
        assert [e["seq"] for e in EventLog.replay(path)] == [0, 1, 2]

    def test_replay_stops_at_sequence_gap(self, tmp_path):
        # Events after a hole could double-apply; replay refuses them.
        from repro.experiments.journal import EventLog

        path = tmp_path / "ev.jsonl"
        with EventLog(path) as log:
            for e in self._events(2):
                log.append(e)
        lines = path.read_text(encoding="utf-8").splitlines()
        gap = json.dumps({"v": JOURNAL_VERSION, "seq": 5, "op": "arrive"})
        path.write_text("\n".join([*lines, gap, lines[0]]) + "\n", encoding="utf-8")
        assert [e["seq"] for e in EventLog.replay(path)] == [0, 1]

    def test_resume_truncates_torn_tail_and_continues_seq(self, tmp_path):
        from repro.experiments.journal import EventLog

        path = tmp_path / "ev.jsonl"
        with EventLog(path) as log:
            for e in self._events(3):
                log.append(e)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"torn')
        with EventLog(path, resume=True) as log:
            assert log.next_seq == 3
            log.append({"op": "depart", "app": "a0"})
        seqs = [e["seq"] for e in EventLog.replay(path)]
        assert seqs == [0, 1, 2, 3]

    def test_missing_file_replays_empty(self, tmp_path):
        from repro.experiments.journal import EventLog

        assert list(EventLog.replay(tmp_path / "nope.jsonl")) == []

    def test_fresh_log_truncates(self, tmp_path):
        from repro.experiments.journal import EventLog

        path = tmp_path / "ev.jsonl"
        with EventLog(path) as log:
            log.append({"op": "arrive", "app": "a"})
        with EventLog(path) as log:
            assert log.next_seq == 0
        assert list(EventLog.replay(path)) == []
