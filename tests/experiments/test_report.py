"""Unit tests for result rendering and error metrics."""

from __future__ import annotations

import math

import pytest

from repro.experiments.report import (
    ExperimentResult,
    max_abs_pct_error,
    mean_abs_pct_error,
    pct_error,
    render_table,
)


class TestErrorMetrics:
    def test_pct_error_signed(self):
        assert pct_error(100.0, 110.0) == pytest.approx(10.0)
        assert pct_error(100.0, 90.0) == pytest.approx(-10.0)

    def test_pct_error_zero_actual(self):
        assert pct_error(0.0, 0.0) == 0.0
        assert math.isinf(pct_error(0.0, 1.0))

    def test_mean_abs(self):
        assert mean_abs_pct_error([100, 100], [110, 80]) == pytest.approx(15.0)

    def test_max_abs(self):
        assert max_abs_pct_error([100, 100], [110, 80]) == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_abs_pct_error([], [])
        with pytest.raises(ValueError):
            mean_abs_pct_error([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            mean_abs_pct_error([0.0], [1.0])


class TestRenderTable:
    def test_alignment_and_separator(self):
        text = render_table(("name", "value"), [("a", 1.0), ("bb", 22.5)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert set(lines[1]) <= {"-", "+"}

    def test_row_length_checked(self):
        with pytest.raises(ValueError):
            render_table(("a", "b"), [("only-one",)])

    def test_float_formatting(self):
        text = render_table(("x",), [(1.23456789,), (1.2e-7,), (float("nan"),)])
        assert "1.235" in text
        assert "1.200e-07" in text
        assert "-" in text


class TestExperimentResult:
    def test_render_contains_everything(self):
        result = ExperimentResult(
            experiment="figX",
            title="a title",
            headers=("m", "v"),
            rows=[(1, 2.0)],
            metrics={"err": 3.5},
            paper_claim="the paper says so",
            notes="a note",
        )
        text = result.render()
        assert "figX" in text and "a title" in text
        assert "err: 3.5" in text
        assert "the paper says so" in text
        assert "a note" in text

    def test_column_extraction(self):
        result = ExperimentResult("e", "t", ("m", "v"), [(1, 2.0), (3, 4.0)])
        assert result.column("v") == [2.0, 4.0]
        with pytest.raises(ValueError):
            result.column("zzz")
