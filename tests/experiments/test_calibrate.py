"""Tests for the calibration suites against ground truth.

The core honesty check of the reproduction: parameters estimated by
running the paper's benchmarks on the simulator must recover the
(hidden) ground-truth spec within benchmark-procedure tolerances.
"""

from __future__ import annotations

import pytest

from repro.experiments.calibrate import (
    calibrate_cm2,
    measure_delay_comm_sized,
    pingpong_sweep,
)


class TestCM2Calibration:
    def test_recovers_ground_truth(self, cm2_cal, quiet_cm2_spec):
        truth_beta = 1.0 / quiet_cm2_spec.transfer_per_word
        assert cm2_cal.params_out.beta == pytest.approx(truth_beta, rel=0.02)
        assert cm2_cal.params_out.alpha == pytest.approx(
            quiet_cm2_spec.transfer_alpha, rel=0.02
        )

    def test_symmetric_directions(self, cm2_cal):
        assert cm2_cal.params_in.beta == pytest.approx(cm2_cal.params_out.beta, rel=0.01)

    def test_cached_per_spec(self, quiet_cm2_spec):
        assert calibrate_cm2(quiet_cm2_spec) is calibrate_cm2(quiet_cm2_spec)


class TestParagonCalibration:
    def test_threshold_found_at_buffer_size(self, paragon_cal, quiet_paragon_spec):
        """The fitted piecewise threshold lands on the transport buffer."""
        assert paragon_cal.params_out.threshold == quiet_paragon_spec.wire.buffer_words
        assert paragon_cal.params_in.threshold == quiet_paragon_spec.wire.buffer_words

    def test_small_piece_matches_ground_truth(self, paragon_cal, quiet_paragon_spec):
        """Below the threshold, effective per-word time = conversion +
        wire per-word costs."""
        spec = quiet_paragon_spec
        truth_per_word = spec.conv_per_word + spec.wire.per_word
        fitted_per_word = 1.0 / paragon_cal.params_out.small.beta
        assert fitted_per_word == pytest.approx(truth_per_word, rel=0.03)

    def test_predicts_dedicated_bursts(self, paragon_cal, quiet_paragon_spec):
        """The fitted model reproduces unseen dedicated measurements."""
        sweep = pingpong_sweep(quiet_paragon_spec, sizes=(48, 300, 900, 1800), count=100)
        for size, measured in sweep.items():
            predicted = paragon_cal.params_out.message_time(size)
            assert predicted == pytest.approx(measured, rel=0.05)

    def test_delay_tables_monotone_in_contention(self, paragon_cal):
        for table in (paragon_cal.delay_comp, paragon_cal.delay_comm):
            delays = table.delays
            assert all(b >= a - 1e-9 for a, b in zip(delays, delays[1:]))

    def test_delay_comp_positive(self, paragon_cal):
        assert paragon_cal.delay_comp.delays[0] > 0

    def test_sized_tables_have_paper_buckets(self, paragon_cal):
        assert paragon_cal.delay_comm_sized.buckets == (1, 500, 1000)

    def test_bigger_j_not_smaller_delay_at_high_contention(self, paragon_cal):
        """delay^{i,1} < delay^{i,500} for all i — tiny-message
        generators steal the least CPU per unit time."""
        sized = paragon_cal.delay_comm_sized
        for i in range(1, 4):
            assert sized.delay_for_bucket(i, 1) < sized.delay_for_bucket(i, 500)

    def test_saturation_beyond_buffer(self, quiet_paragon_spec):
        """delay^{i,j} identical for j = 1024 and j = 2048: fragmentation
        makes big messages behave as back-to-back buffer-fulls."""
        sized = measure_delay_comm_sized(
            quiet_paragon_spec, p_max=2, j_values=(1024, 2048), work=0.4
        )
        d1 = sized.tables[1024].delays
        d2 = sized.tables[2048].delays
        assert d2 == pytest.approx(d1, rel=0.02)
