"""Band tests for the T_p experiments and the dispatch case study."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.backend import (
    fragment_pool,
    gang_experiment,
    mesh_contention_experiment,
)
from repro.experiments.dispatch import library_dispatch_experiment
from repro.platforms.mesh import MeshSpec, PartitionAllocator


class TestFragmentPool:
    def test_holds_about_half(self):
        alloc = PartitionAllocator(MeshSpec(rows=4, cols=8))
        held = fragment_pool(alloc, np.random.default_rng(0), hold_fraction=0.5)
        assert len(held) == 16
        assert alloc.free_nodes == 16


class TestMeshExperiment:
    def test_policy_tradeoff(self, ):
        result = mesh_contention_experiment(quick=True)
        # Contiguous rectangles: no inter-partition interference.
        assert result.metrics["contiguous_slowdown"] == pytest.approx(1.0, abs=0.02)
        # Scattered interleaving: measurable interference.
        assert result.metrics["scattered_slowdown"] > 1.03
        # Fragmentation blocks the contiguous allocator outright.
        outcomes = {row[0]: row[1] for row in result.rows}
        assert "REJECTED" in outcomes["contiguous (fragmented pool)"]


class TestGangExperiment:
    def test_model_tracks_simulator(self):
        result = gang_experiment(quick=True)
        assert result.metrics["mean_abs_err_pct"] < 5.0
        # T_p multiplier grows with the number of gangs.
        actuals = result.column("actual (s)")
        assert actuals == sorted(actuals)


class TestDispatchExperiment:
    def test_aware_scheduler_never_worse(self, quiet_cm2_spec):
        result = library_dispatch_experiment(spec=quiet_cm2_spec, quick=True)
        assert result.metrics["aware_correct"] >= result.metrics["oblivious_correct"]
        assert result.metrics["aware_correct"] >= result.metrics["tasks"] - 1

    def test_contention_flips_a_gauss_task(self, quiet_cm2_spec):
        """The paper's thesis: the load changes where GE should run."""
        result = library_dispatch_experiment(
            spec=quiet_cm2_spec, quick=False,
            matmul_sizes=(), sort_sizes=(), gauss_sizes=(200,),
        )
        row = result.rows[0]
        aware, oblivious = row[4], row[5]
        assert aware == "cm2" and oblivious == "sun"
        assert result.metrics["time_saved_by_awareness_s"] > 0

    def test_small_tasks_stay_on_frontend(self, quiet_cm2_spec):
        result = library_dispatch_experiment(
            spec=quiet_cm2_spec, matmul_sizes=(16,), sort_sizes=(1024,), gauss_sizes=()
        )
        for row in result.rows:
            assert row[3] == "sun"  # true winner
            assert row[4] == "sun"  # aware agrees


class TestTpPlacement:
    def test_crossover_exists(self):
        from repro.experiments.backend import tp_placement_experiment

        result = tp_placement_experiment(quick=True)
        winners = result.column("winner")
        # Small grids stay on the Sun, large ones move to the Paragon.
        assert winners[0] == "sun"
        assert winners[-1] == "paragon"
        assert result.metrics["crossover_M"] > 0


class TestSequencerQueueing:
    def test_jobs_serialise(self):
        from repro.experiments.backend import sequencer_queueing_experiment

        result = sequencer_queueing_experiment(quick=True)
        # Completion times step up by ~1x single-job time each.
        assert result.metrics["max_serialisation_err"] < 0.1
        ratios = result.column("completion / single")
        assert ratios == sorted(ratios)
