"""Smoke + accuracy-band tests for every figure driver.

Each driver runs in ``quick`` mode; assertions target the *shape* the
paper reports (who wins, where crossovers fall, error bands), with
generous tolerances so stochastic repetitions stay stable.
"""

from __future__ import annotations

import pytest

from repro.experiments.cli import EXPERIMENTS, run_experiment
from repro.experiments.figures import (
    fig1_cm2_communication,
    fig2_interleaving,
    fig3_gauss_cm2,
    fig4_paragon_dedicated,
    fig5_paragon_comm_out,
    fig6_paragon_comm_in,
    fig7_sor_sun,
    fig8_sor_sun,
)

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")


class TestFig1:
    def test_quick(self, quiet_cm2_spec):
        result = fig1_cm2_communication(spec=quiet_cm2_spec, quick=True)
        # Paper: within 11-15% average error; our simulated production
        # system is cleaner, so the band is comfortably met.
        assert result.metrics["mean_abs_err_contended_pct"] < 15.0
        assert result.metrics["mean_abs_err_dedicated_pct"] < 15.0
        # Contention slows transfers by ~p+1.
        actual0 = result.column("actual p=0")
        actual3 = result.column("actual p=3")
        for a0, a3 in zip(actual0, actual3):
            assert a3 / a0 == pytest.approx(4.0, rel=0.15)


class TestFig2:
    def test_interleaving_invariant(self, quiet_cm2_spec):
        result = fig2_interleaving(spec=quiet_cm2_spec)
        assert result.metrics["didle_le_dserial"] == 1.0
        # The rendered timeline shows both overlap and a wait phase.
        states = {row[2] for row in result.rows}
        assert "serial" in states and "wait" in states
        cm2_states = {row[3] for row in result.rows}
        assert "execute" in cm2_states and "idle" in cm2_states


class TestFig3:
    def test_crossover_behaviour(self, quiet_cm2_spec):
        result = fig3_gauss_cm2(spec=quiet_cm2_spec, sizes=(50, 150, 300), p=3)
        assert result.metrics["mean_abs_err_pct"] < 15.0
        slower = result.column("slower?")
        # Contention hurts at small M and stops mattering at large M.
        assert slower[0] == "yes"
        assert slower[-1] == "no"


class TestFig4:
    def test_modes_similar_and_piecewise(self, quiet_paragon_spec):
        result = fig4_paragon_dedicated(
            spec=quiet_paragon_spec, sizes=(16, 256, 1024, 2048, 4096), count=200
        )
        assert result.metrics["max_2hops_over_1hop_ratio"] < 1.5
        # Piecewise linearity: incremental cost per word changes at the
        # 1024-word threshold.
        sizes = result.column("size (words)")
        t = result.column("1hop out")
        slope_small = (t[2] - t[1]) / (sizes[2] - sizes[1])
        slope_large = (t[4] - t[3]) / (sizes[4] - sizes[3])
        assert slope_large > slope_small * 1.2


class TestFig5and6:
    def test_fig5_error_band(self, quiet_paragon_spec):
        result = fig5_paragon_comm_out(spec=quiet_paragon_spec, quick=True)
        # Paper: 12% average; allow headroom for the quick sweep.
        assert result.metrics["mean_abs_err_pct"] < 30.0
        assert result.metrics["model_slowdown"] > 1.3

    def test_fig6_error_band(self, quiet_paragon_spec):
        result = fig6_paragon_comm_in(spec=quiet_paragon_spec, quick=True)
        assert result.metrics["mean_abs_err_pct"] < 30.0

    def test_contention_visible(self, quiet_paragon_spec):
        result = fig5_paragon_comm_out(spec=quiet_paragon_spec, quick=True)
        for dedicated, actual in zip(result.column("dedicated"), result.column("actual")):
            assert actual > dedicated * 1.2


class TestFig7and8:
    def test_fig7_j_ordering(self, quiet_paragon_spec):
        """Paper: j=1 is the bad choice for big-message contenders."""
        result = fig7_sor_sun(spec=quiet_paragon_spec, quick=True)
        assert result.metrics["mean_abs_err_j1_pct"] > result.metrics["mean_abs_err_j1000_pct"]
        assert result.metrics["mean_abs_err_j1000_pct"] < 20.0
        assert result.metrics["auto_bucket_j"] == 1000

    def test_fig8_auto_bucket(self, quiet_paragon_spec):
        """Paper: with 500/200-word contenders, j=500 is the bucket."""
        result = fig8_sor_sun(spec=quiet_paragon_spec, quick=True)
        assert result.metrics["auto_bucket_j"] == 500
        assert result.metrics["mean_abs_err_auto_pct"] < 20.0
        assert result.metrics["mean_abs_err_j1_pct"] > result.metrics["mean_abs_err_auto_pct"]


class TestCLIRegistry:
    def test_all_experiments_registered(self):
        expected = {
            "tables1_4", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
            "fig7", "fig8", "synthetic_cm2", "robustness_comm",
            "robustness_comp", "saturation", "mesh", "gang", "dispatch",
            "cycle_sensitivity", "fraction_sensitivity", "tp_placement", "forecast", "mixed_workload", "sequencer",
            "chaos", "fleet",
        }
        assert expected == set(EXPERIMENTS)

    def test_unknown_experiment_exits(self):
        with pytest.raises(SystemExit):
            run_experiment("nope")
