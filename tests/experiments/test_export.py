"""Unit tests for JSON/CSV export and the CLI entry point."""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import main
from repro.experiments.export import to_csv, to_json, write_results
from repro.experiments.report import ExperimentResult


@pytest.fixture
def result() -> ExperimentResult:
    return ExperimentResult(
        experiment="demo",
        title="a demo",
        headers=("x", "y"),
        rows=[(1, 2.5), (2, float("nan"))],
        metrics={"err": 3.25, "bad": float("inf")},
        paper_claim="claims",
        notes="notes",
    )


class TestJson:
    def test_roundtrip(self, result):
        payload = json.loads(to_json(result))
        assert payload["experiment"] == "demo"
        assert payload["headers"] == ["x", "y"]
        assert payload["rows"][0] == [1, 2.5]
        assert payload["metrics"]["err"] == 3.25

    def test_non_finite_become_null(self, result):
        payload = json.loads(to_json(result))
        assert payload["rows"][1][1] is None
        assert payload["metrics"]["bad"] is None


class TestCsv:
    def test_headers_and_rows(self, result):
        lines = to_csv(result).strip().splitlines()
        assert lines[0] == "x,y"
        assert lines[1] == "1,2.5"


class TestWriteResults:
    def test_files_on_disk(self, result, tmp_path):
        written = write_results([result], tmp_path)
        names = {p.name for p in written}
        assert names == {"demo.json", "demo.csv", "demo.md", "summary.json"}
        summary = json.loads((tmp_path / "summary.json").read_text())
        assert summary["demo"]["metrics"]["err"] == 3.25

    def test_creates_directory(self, result, tmp_path):
        target = tmp_path / "nested" / "run1"
        write_results([result], target)
        assert (target / "demo.json").exists()


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "tables1_4" in out

    def test_run_one_quick(self, capsys):
        assert main(["tables1_4", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Motivating example" in out
        assert "A->M2 B->M1" in out

    def test_outdir(self, capsys, tmp_path):
        assert main(["tables1_4", "--quick", "--outdir", str(tmp_path)]) == 0
        assert (tmp_path / "tables1_4.json").exists()
        assert (tmp_path / "summary.json").exists()

    def test_chart_flag(self, capsys, quiet_cm2_spec, monkeypatch):
        # fig2 has no chart spec; gang does. Run gang quick with chart.
        assert main(["gang", "--quick", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "o = actual (s)" in out

    def test_unknown_name_fails(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])


class TestMarkdown:
    def test_structure(self, result):
        from repro.experiments.export import to_markdown

        text = to_markdown(result)
        assert text.startswith("## demo")
        assert "| x | y |" in text
        assert "**err**: 3.25" in text
        assert "- paper: claims" in text

    def test_non_finite_rendered_as_dash(self, result):
        from repro.experiments.export import to_markdown

        assert "| 2 | - |" in to_markdown(result)

    def test_written_by_write_results(self, result, tmp_path):
        from repro.experiments.export import write_results

        write_results([result], tmp_path)
        assert (tmp_path / "demo.md").exists()
