"""Fleet-experiment driver tests: equilibrium, overload proof, recovery."""

from __future__ import annotations

from repro.experiments.fleet import fleet_experiment
from repro.experiments.journal import RunJournal, journaled


class TestFleetExperiment:
    def test_quick_run_proves_the_robustness_contract(self):
        result = fleet_experiment(quick=True)
        m = result.metrics
        # Selfish re-placement reached a fixed point.
        assert m["equilibrium_rounds"] <= 12
        assert result.rows[-1][1] == 0  # final round moved nothing
        # Overload: 10x the quota sheds analytically, raises nothing.
        assert m["overload_raised"] == 0.0
        assert m["overload_shed"] > 0
        assert m["overload_shed_analytic"] == m["overload_shed"]
        # Quarantine → breaker-gated recovery → bit-identical replay.
        assert m["quarantined"] == 1.0
        assert m["recover_gated_by_breaker"] == 1.0
        assert m["recovered"] == 1.0
        assert m["replay_identical"] == 1.0

    def test_journal_resume_is_bit_identical(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal, journaled(journal):
            fresh = fleet_experiment(quick=True)
        assert journal.misses == 1
        with RunJournal(path, resume=True) as resumed, journaled(resumed):
            replayed = fleet_experiment(quick=True)
        assert resumed.misses == 0
        assert replayed.rows == fresh.rows
        assert replayed.metrics == fresh.metrics
