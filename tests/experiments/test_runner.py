"""Unit tests for the repetition harness."""

from __future__ import annotations

import pytest

from repro.experiments.runner import Replication, repeat_mean
from repro.sim.rng import RandomStreams


class TestReplication:
    def test_statistics(self):
        rep = Replication((1.0, 2.0, 3.0))
        assert rep.mean == pytest.approx(2.0)
        assert rep.n == 3
        assert rep.std > 0
        assert rep.cv == pytest.approx(rep.std / 2.0)

    def test_single_value_zero_std(self):
        rep = Replication((5.0,))
        assert rep.std == 0.0

    def test_cv_zero_mean_nonzero_spread_is_infinite(self):
        # A zero mean with dispersion has unbounded *relative* variation;
        # reporting 0.0 here used to masquerade as "noiseless".
        rep = Replication((-1.0, 1.0))
        assert rep.mean == 0.0
        assert rep.std > 0.0
        assert rep.cv == float("inf")

    def test_cv_degenerate_zero_sample_is_zero(self):
        rep = Replication((0.0, 0.0, 0.0))
        assert rep.cv == 0.0


class TestRepeatMean:
    def test_deterministic_function(self):
        rep = repeat_mean(lambda streams: 7.0, repetitions=4)
        assert rep.mean == 7.0
        assert rep.std == 0.0

    def test_streams_differ_across_reps(self):
        seen = []

        def measure(streams: RandomStreams) -> float:
            value = float(streams.get("x").random())
            seen.append(value)
            return value

        repeat_mean(measure, repetitions=3, seed=1)
        assert len(set(seen)) == 3

    def test_reproducible_across_calls(self):
        def measure(streams: RandomStreams) -> float:
            return float(streams.get("x").random())

        a = repeat_mean(measure, repetitions=3, seed=9)
        b = repeat_mean(measure, repetitions=3, seed=9)
        assert a.values == b.values

    def test_validation(self):
        with pytest.raises(ValueError):
            repeat_mean(lambda s: 0.0, repetitions=0)

    def test_parallel_values_bit_identical_to_serial(self):
        serial = repeat_mean(_stream_draw, repetitions=6, seed=21, workers=1)
        parallel = repeat_mean(_stream_draw, repetitions=6, seed=21, workers=4)
        assert parallel.values == serial.values

    def test_unpicklable_measure_falls_back_to_serial(self):
        # A lambda cannot cross the process-pool boundary; the executor
        # must transparently re-run serially with identical values.
        serial = repeat_mean(lambda s: float(s.get("x").random()), repetitions=3, seed=2)
        fallback = repeat_mean(
            lambda s: float(s.get("x").random()), repetitions=3, seed=2, workers=4
        )
        assert fallback.values == serial.values


def _stream_draw(streams: RandomStreams) -> float:
    return float(streams.get("x").random())


class TestConfidenceInterval:
    def test_ci_contains_mean(self):
        rep = Replication((1.0, 1.2, 0.9, 1.1))
        lo, hi = rep.ci95()
        assert lo < rep.mean < hi
        assert rep.within(rep.mean)

    def test_single_sample_degenerates(self):
        rep = Replication((5.0,))
        assert rep.ci95() == (5.0, 5.0)
        assert rep.within(5.0)
        assert not rep.within(5.1)

    def test_tighter_with_more_samples(self):
        narrow = Replication(tuple([1.0, 1.1] * 10))
        wide = Replication((1.0, 1.1))
        n_lo, n_hi = narrow.ci95()
        w_lo, w_hi = wide.ci95()
        assert (n_hi - n_lo) < (w_hi - w_lo)
