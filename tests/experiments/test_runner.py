"""Unit tests for the repetition harness."""

from __future__ import annotations

import pytest

from repro.experiments.runner import Replication, repeat_mean
from repro.sim.rng import RandomStreams


class TestReplication:
    def test_statistics(self):
        rep = Replication((1.0, 2.0, 3.0))
        assert rep.mean == pytest.approx(2.0)
        assert rep.n == 3
        assert rep.std > 0
        assert rep.cv == pytest.approx(rep.std / 2.0)

    def test_single_value_zero_std(self):
        rep = Replication((5.0,))
        assert rep.std == 0.0


class TestRepeatMean:
    def test_deterministic_function(self):
        rep = repeat_mean(lambda streams: 7.0, repetitions=4)
        assert rep.mean == 7.0
        assert rep.std == 0.0

    def test_streams_differ_across_reps(self):
        seen = []

        def measure(streams: RandomStreams) -> float:
            value = float(streams.get("x").random())
            seen.append(value)
            return value

        repeat_mean(measure, repetitions=3, seed=1)
        assert len(set(seen)) == 3

    def test_reproducible_across_calls(self):
        def measure(streams: RandomStreams) -> float:
            return float(streams.get("x").random())

        a = repeat_mean(measure, repetitions=3, seed=9)
        b = repeat_mean(measure, repetitions=3, seed=9)
        assert a.values == b.values

    def test_validation(self):
        with pytest.raises(ValueError):
            repeat_mean(lambda s: 0.0, repetitions=0)


class TestConfidenceInterval:
    def test_ci_contains_mean(self):
        rep = Replication((1.0, 1.2, 0.9, 1.1))
        lo, hi = rep.ci95()
        assert lo < rep.mean < hi
        assert rep.within(rep.mean)

    def test_single_sample_degenerates(self):
        rep = Replication((5.0,))
        assert rep.ci95() == (5.0, 5.0)
        assert rep.within(5.0)
        assert not rep.within(5.1)

    def test_tighter_with_more_samples(self):
        narrow = Replication(tuple([1.0, 1.1] * 10))
        wide = Replication((1.0, 1.1))
        n_lo, n_hi = narrow.ci95()
        w_lo, w_hi = wide.ci95()
        assert (n_hi - n_lo) < (w_hi - w_lo)
