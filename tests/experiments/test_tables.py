"""Tests for the Tables 1-4 reproduction."""

from __future__ import annotations

from repro.experiments.tables import example_problem, tables_experiment


class TestTablesExperiment:
    def test_all_three_scenarios_match_paper(self):
        result = tables_experiment()
        assert result.metrics["scenarios_matching_paper"] == 3.0
        assert all(row[5] == "yes" for row in result.rows)

    def test_reported_times(self):
        result = tables_experiment()
        times = result.column("time")
        assert times == [16.0, 38.0, 48.0]

    def test_example_problem_matches_tables_1_2(self):
        prob = example_problem()
        assert prob.exec_time["A"]["M1"] == 12.0
        assert prob.exec_time["B"]["M2"] == 30.0
        assert prob.comm_time[("M1", "M2")] == 7.0
        assert prob.comm_time[("M2", "M1")] == 8.0

    def test_render_smoke(self):
        text = tables_experiment().render()
        assert "tables1_4" in text
        assert "A->M2 B->M1" in text
