"""Calibration robustness under heavier production noise.

The paper measured on loaded SDSC machines; the reproduction's
default daemon adds ~2 % background load. These tests crank the noise
up and verify the whole pipeline degrades gracefully instead of
breaking: calibration still lands near ground truth and the model
stays inside a widened error band.
"""

from __future__ import annotations

import pytest

from repro.apps.contender import cpu_bound
from repro.apps.program import transfer_program
from repro.core.prediction import predict_comm_cost
from repro.core.slowdown import cm2_slowdown
from repro.experiments.calibrate import calibrate_cm2, calibrate_paragon_comm
from repro.platforms.specs import CpuSpec, SunCM2Spec, SunParagonSpec
from repro.platforms.suncm2 import SunCM2Platform
from repro.sim.engine import Simulator

#: A machine with 10% stochastic background load (5x the default).
NOISY_CPU = CpuSpec(daemon_interval=0.1, daemon_work=0.01)


class TestNoisyCalibration:
    def test_cm2_parameters_absorb_noise(self):
        spec = SunCM2Spec(cpu=NOISY_CPU)
        cal = calibrate_cm2(spec)
        # The fitted beta reflects the *effective* rate on the noisy
        # machine: ground-truth beta deflated by the ~10% daemon share.
        truth_beta = 1.0 / spec.transfer_per_word
        assert cal.params_out.beta == pytest.approx(truth_beta * 0.9, rel=0.1)

    def test_paragon_threshold_survives_noise(self):
        spec = SunParagonSpec(cpu=NOISY_CPU)
        params_out, _ = calibrate_paragon_comm(spec)
        assert params_out.threshold == spec.wire.buffer_words

    def test_model_still_tracks_noisy_system(self):
        """fig1-style check on the 10%-noise machine: calibration and
        measurement share the noise, so the model keeps working."""
        spec = SunCM2Spec(cpu=NOISY_CPU)
        cal = calibrate_cm2(spec)
        m, p = 256, 3
        dcomm = 2 * m * cal.params_out.message_time(float(m))

        sim = Simulator()
        platform = SunCM2Platform(sim, spec=spec)
        for i in range(p):
            platform.spawn(cpu_bound(platform, tag=f"h{i}"), name=f"h{i}")
        probe = sim.process(transfer_program(platform, float(m), m, round_trip=True))
        actual = sim.run_until(probe)
        predicted = predict_comm_cost(dcomm, cm2_slowdown(p))
        assert predicted == pytest.approx(actual, rel=0.2)
