"""Correctness tests for the real Gaussian elimination solver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.workloads.gauss import GaussResult, augment, solve_gauss
from repro.workloads.generators import random_dominant_system, random_spd_system


class TestSolveGauss:
    def test_known_system(self):
        a = np.array([[2.0, 1.0], [1.0, 3.0]])
        b = np.array([3.0, 5.0])
        result = solve_gauss(a, b)
        assert result.solution == pytest.approx(np.linalg.solve(a, b))
        assert result.residual < 1e-12

    def test_identity(self):
        b = np.array([1.0, 2.0, 3.0])
        result = solve_gauss(np.eye(3), b)
        assert result.solution == pytest.approx(b)

    def test_pivoting_required_system(self):
        """Zero leading pivot: only partial pivoting survives."""
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        b = np.array([2.0, 3.0])
        result = solve_gauss(a, b, pivoting=True)
        assert result.solution == pytest.approx([3.0, 2.0])
        with pytest.raises(WorkloadError, match="singular"):
            solve_gauss(a, b, pivoting=False)

    def test_no_pivot_on_dominant_system(self):
        a, b = random_dominant_system(20, np.random.default_rng(0))
        result = solve_gauss(a, b, pivoting=False)
        assert result.solution == pytest.approx(np.linalg.solve(a, b), rel=1e-8)

    def test_singular_detected(self):
        a = np.array([[1.0, 2.0], [2.0, 4.0]])
        with pytest.raises(WorkloadError, match="singular"):
            solve_gauss(a, np.array([1.0, 2.0]))

    def test_pivot_rows_recorded(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        result = solve_gauss(a, np.array([1.0, 1.0]))
        assert result.pivots[0] == 1

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=10_000))
    def test_matches_numpy_on_random_systems(self, m, seed):
        a, b = random_dominant_system(m, np.random.default_rng(seed))
        result = solve_gauss(a, b)
        expected = np.linalg.solve(a, b)
        assert result.solution == pytest.approx(expected, rel=1e-7, abs=1e-9)
        assert result.residual < 1e-8 * max(1.0, np.abs(b).max())

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=2, max_value=25), st.integers(min_value=0, max_value=10_000))
    def test_spd_systems(self, m, seed):
        a, b = random_spd_system(m, np.random.default_rng(seed))
        result = solve_gauss(a, b)
        assert result.solution == pytest.approx(np.linalg.solve(a, b), rel=1e-6, abs=1e-8)

    def test_inputs_not_mutated(self):
        a = np.array([[2.0, 1.0], [1.0, 3.0]])
        b = np.array([3.0, 5.0])
        a0, b0 = a.copy(), b.copy()
        solve_gauss(a, b)
        assert np.array_equal(a, a0) and np.array_equal(b, b0)


class TestAugment:
    def test_shape(self):
        a, b = np.eye(3), np.ones(3)
        assert augment(a, b).shape == (3, 4)

    def test_nonsquare_rejected(self):
        with pytest.raises(WorkloadError):
            augment(np.ones((2, 3)), np.ones(2))

    def test_mismatched_b_rejected(self):
        with pytest.raises(WorkloadError):
            augment(np.eye(3), np.ones(2))


class TestGenerators:
    def test_dominant_system_is_dominant(self):
        a, _ = random_dominant_system(15, np.random.default_rng(1))
        diag = np.abs(np.diag(a))
        off = np.abs(a).sum(axis=1) - diag
        assert np.all(diag > off)

    def test_spd_system_is_spd(self):
        a, _ = random_spd_system(10, np.random.default_rng(1))
        assert np.allclose(a, a.T)
        assert np.all(np.linalg.eigvalsh(a) > 0)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            random_dominant_system(0, np.random.default_rng(0))
