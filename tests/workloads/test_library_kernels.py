"""Correctness tests for the §2 library kernels (matmul, sorting)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.workloads.matmul import blocked_matmul, matmul_flops, matmul_words
from repro.workloads.sorting import bitonic_sort, bitonic_stages, sort_compare_ops


class TestBlockedMatmul:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        a, b = rng.standard_normal((40, 60)), rng.standard_normal((60, 30))
        assert np.allclose(blocked_matmul(a, b, block=16), a @ b)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=64),
    )
    def test_matches_numpy_property(self, m, k, n, block):
        rng = np.random.default_rng(m * 1000 + k * 10 + n)
        a, b = rng.standard_normal((m, k)), rng.standard_normal((k, n))
        assert np.allclose(blocked_matmul(a, b, block=block), a @ b)

    def test_shape_validation(self):
        with pytest.raises(WorkloadError):
            blocked_matmul(np.ones((2, 3)), np.ones((2, 3)))
        with pytest.raises(WorkloadError):
            blocked_matmul(np.ones((2, 2)), np.ones((2, 2)), block=0)

    def test_counts(self):
        assert matmul_flops(10) == 2 * 1000 - 100
        assert matmul_words(10) == 300
        with pytest.raises(WorkloadError):
            matmul_flops(0)


class TestBitonicSort:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=9), st.integers(min_value=0, max_value=10_000))
    def test_sorts_correctly(self, k, seed):
        n = 2**k
        values = np.random.default_rng(seed).standard_normal(n)
        assert np.array_equal(bitonic_sort(values), np.sort(values))

    def test_descending(self):
        values = np.array([3.0, 1.0, 2.0, 0.0])
        assert np.array_equal(bitonic_sort(values, descending=True), [3.0, 2.0, 1.0, 0.0])

    def test_duplicates(self):
        values = np.array([2.0, 2.0, 1.0, 1.0])
        assert np.array_equal(bitonic_sort(values), np.sort(values))

    def test_empty(self):
        assert bitonic_sort(np.array([])).size == 0

    def test_non_power_of_two_rejected(self):
        with pytest.raises(WorkloadError):
            bitonic_sort(np.arange(5.0))

    def test_input_not_mutated(self):
        values = np.array([3.0, 1.0])
        bitonic_sort(values)
        assert np.array_equal(values, [3.0, 1.0])

    def test_stage_count(self):
        # log2(16) = 4 -> 4*5/2 = 10 stages.
        assert bitonic_stages(16) == 10
        with pytest.raises(WorkloadError):
            bitonic_stages(10)

    def test_compare_ops(self):
        assert sort_compare_ops(1024, "bitonic") == bitonic_stages(1024) * 512
        assert sort_compare_ops(1024, "quicksort") > 1024
        with pytest.raises(WorkloadError):
            sort_compare_ops(10, "bogo")
