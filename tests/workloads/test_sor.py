"""Correctness tests for the real SOR solver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.workloads.generators import laplace_boundary_hot_edge, laplace_boundary_linear
from repro.workloads.sor import laplace_residual, optimal_omega, solve_laplace_sor


class TestSolveLaplace:
    def test_linear_ramp_exact_solution(self):
        """Laplace with linear boundary values has the linear solution."""
        m = 15
        result = solve_laplace_sor(laplace_boundary_linear(m), tolerance=1e-10)
        assert result.converged
        exact = np.tile(np.linspace(0, 1, m + 2)[:, None], (1, m + 2))
        assert np.abs(result.grid - exact).max() < 1e-7

    def test_constant_boundary_gives_constant(self):
        grid = np.full((10, 10), 7.0)
        grid[1:-1, 1:-1] = 0.0
        result = solve_laplace_sor(grid, tolerance=1e-10)
        assert result.converged
        assert np.abs(result.grid - 7.0).max() < 1e-7

    def test_hot_edge_properties(self):
        """Maximum principle: interior values lie strictly between the
        boundary extremes; solution is symmetric left-right."""
        result = solve_laplace_sor(laplace_boundary_hot_edge(12, hot=100.0),
                                   tolerance=1e-9)
        assert result.converged
        interior = result.grid[1:-1, 1:-1]
        assert interior.min() > 0.0
        assert interior.max() < 100.0
        assert np.allclose(result.grid, result.grid[:, ::-1], atol=1e-6)

    def test_residual_decreases(self):
        grid = laplace_boundary_hot_edge(10)
        initial = laplace_residual(grid)
        result = solve_laplace_sor(grid, tolerance=1e-12, max_iterations=5)
        assert result.residual < initial

    def test_iteration_cap_reported(self):
        result = solve_laplace_sor(laplace_boundary_hot_edge(20), tolerance=1e-14,
                                   max_iterations=2)
        assert not result.converged
        assert result.iterations == 2

    def test_optimal_omega_converges_faster_than_gauss_seidel(self):
        grid = laplace_boundary_hot_edge(20)
        optimal = solve_laplace_sor(grid, tolerance=1e-8)
        gauss_seidel = solve_laplace_sor(grid, omega=1.0, tolerance=1e-8)
        assert optimal.iterations < gauss_seidel.iterations

    def test_input_not_mutated(self):
        grid = laplace_boundary_linear(8)
        before = grid.copy()
        solve_laplace_sor(grid, tolerance=1e-6)
        assert np.array_equal(grid, before)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            solve_laplace_sor(np.zeros((2, 2)))
        with pytest.raises(WorkloadError):
            solve_laplace_sor(np.zeros((5, 5)), omega=2.5)
        with pytest.raises(WorkloadError):
            solve_laplace_sor(np.zeros((5, 5)), tolerance=0.0)
        with pytest.raises(WorkloadError):
            solve_laplace_sor(np.zeros((5, 5)), max_iterations=0)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=4, max_value=20), st.floats(min_value=-10, max_value=10))
    def test_linear_ramp_property(self, m, top):
        result = solve_laplace_sor(
            laplace_boundary_linear(m, top=top, bottom=0.0), tolerance=1e-9
        )
        exact = np.tile(np.linspace(0.0, top, m + 2)[:, None], (1, m + 2))
        assert np.abs(result.grid - exact).max() < 1e-5 * max(1.0, abs(top))


class TestOptimalOmega:
    def test_in_valid_range(self):
        for m in (1, 10, 100, 1000):
            assert 1.0 <= optimal_omega(m) < 2.0

    def test_increases_with_grid_size(self):
        assert optimal_omega(100) > optimal_omega(10)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            optimal_omega(0)
