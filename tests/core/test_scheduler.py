"""Unit and property tests for the contention-aware mapper."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scheduler import MappingProblem, best_mapping, evaluate_mapping, rank_mappings
from repro.errors import ScheduleError


def paper_problem() -> MappingProblem:
    return MappingProblem(
        tasks=("A", "B"),
        machines=("M1", "M2"),
        exec_time={"A": {"M1": 12, "M2": 18}, "B": {"M1": 4, "M2": 30}},
        comm_time={("M1", "M2"): 7, ("M2", "M1"): 8},
    )


class TestEvaluateMapping:
    def test_same_machine_no_comm(self):
        assert evaluate_mapping(paper_problem(), ("M1", "M1")) == 16

    def test_split_pays_transfer(self):
        assert evaluate_mapping(paper_problem(), ("M2", "M1")) == 18 + 8 + 4

    def test_all_four_mappings(self):
        prob = paper_problem()
        expected = {
            ("M1", "M1"): 16,
            ("M1", "M2"): 12 + 7 + 30,
            ("M2", "M1"): 18 + 8 + 4,
            ("M2", "M2"): 48,
        }
        for combo, cost in expected.items():
            assert evaluate_mapping(prob, combo) == cost

    def test_wrong_length_rejected(self):
        with pytest.raises(ScheduleError):
            evaluate_mapping(paper_problem(), ("M1",))

    def test_unknown_machine_rejected(self):
        with pytest.raises(ScheduleError):
            evaluate_mapping(paper_problem(), ("M1", "M3"))

    def test_missing_comm_pair_rejected(self):
        prob = MappingProblem(
            tasks=("A", "B"),
            machines=("M1", "M2"),
            exec_time={"A": {"M1": 1, "M2": 1}, "B": {"M1": 1, "M2": 1}},
            comm_time={},
        )
        with pytest.raises(ScheduleError):
            evaluate_mapping(prob, ("M1", "M2"))


class TestPaperTables:
    def test_tables_1_2_dedicated(self):
        result = best_mapping(paper_problem())
        assert result.assignment == ("M1", "M1")
        assert result.elapsed == 16

    def test_table_3_cpu_contention(self):
        problem = paper_problem().with_slowdowns({"M1": 3.0})
        assert problem.exec_time["A"]["M1"] == 36
        assert problem.exec_time["B"]["M1"] == 12
        result = best_mapping(problem)
        assert result.assignment == ("M2", "M1")
        assert result.elapsed == 38

    def test_table_4_link_contention_too(self):
        problem = paper_problem().with_slowdowns({"M1": 3.0}, 3.0)
        assert problem.comm_time[("M1", "M2")] == 21
        assert problem.comm_time[("M2", "M1")] == 24
        result = best_mapping(problem)
        assert result.assignment == ("M1", "M1")
        assert result.elapsed == 48

    def test_per_pair_comm_slowdown(self):
        problem = paper_problem().with_slowdowns({}, {("M1", "M2"): 2.0})
        assert problem.comm_time[("M1", "M2")] == 14
        assert problem.comm_time[("M2", "M1")] == 8

    def test_slowdown_below_one_rejected(self):
        with pytest.raises(ScheduleError):
            paper_problem().with_slowdowns({"M1": 0.5})
        with pytest.raises(ScheduleError):
            paper_problem().with_slowdowns({}, 0.9)


class TestSearch:
    def test_rank_is_sorted(self):
        ranked = rank_mappings(paper_problem())
        assert len(ranked) == 4
        costs = [r.elapsed for r in ranked]
        assert costs == sorted(costs)

    def test_best_agrees_with_rank(self):
        assert best_mapping(paper_problem()).result == rank_mappings(paper_problem())[0]

    def test_search_space_guard(self):
        prob = MappingProblem(
            tasks=tuple("t%d" % i for i in range(10)),
            machines=("a", "b", "c"),
            exec_time={f"t{i}": {"a": 1, "b": 1, "c": 1} for i in range(10)},
            comm_time={
                (x, y): 1.0 for x in "abc" for y in "abc" if x != y
            },
        )
        with pytest.raises(ScheduleError):
            best_mapping(prob, max_candidates=100)
        # And succeeds when the limit allows it.
        assert best_mapping(prob, max_candidates=100_000).elapsed == 10

    def test_placement_dict(self):
        result = best_mapping(paper_problem())
        assert result.placement(("A", "B")) == {"A": "M1", "B": "M1"}

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_branch_and_bound_equals_exhaustive(self, data):
        n_tasks = data.draw(st.integers(min_value=1, max_value=4))
        n_machines = data.draw(st.integers(min_value=1, max_value=3))
        tasks = tuple(f"t{i}" for i in range(n_tasks))
        machines = tuple(f"m{j}" for j in range(n_machines))
        cost = st.floats(min_value=0.0, max_value=100.0)
        exec_time = {
            t: {m: data.draw(cost) for m in machines} for t in tasks
        }
        comm_time = {
            (a, b): data.draw(cost)
            for a in machines
            for b in machines
            if a != b
        }
        prob = MappingProblem(tasks, machines, exec_time, comm_time)
        best = best_mapping(prob)
        ranked_best = rank_mappings(prob)[0]
        # The DFS accumulates costs incrementally, so equal mappings can
        # differ in the last float bits; compare values with tolerance
        # and check the reported cost is consistent with the assignment.
        assert best.elapsed == pytest.approx(ranked_best.elapsed, rel=1e-9, abs=1e-9)
        assert evaluate_mapping(prob, best.assignment) == pytest.approx(
            best.elapsed, rel=1e-9, abs=1e-9
        )


class TestValidation:
    def test_empty_tasks_rejected(self):
        with pytest.raises(ScheduleError):
            MappingProblem((), ("m",), {}, {})

    def test_missing_exec_time_rejected(self):
        with pytest.raises(ScheduleError):
            MappingProblem(("A",), ("M1", "M2"), {"A": {"M1": 1}}, {})

    def test_negative_exec_time_rejected(self):
        with pytest.raises(ScheduleError):
            MappingProblem(("A",), ("M1",), {"A": {"M1": -1}}, {})


class TestSlowdownInvariance:
    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=1.0, max_value=10.0),
        st.floats(min_value=1.0, max_value=10.0),
    )
    def test_unit_slowdown_is_identity(self, f1, f2):
        """with_slowdowns(factor 1.0 everywhere) changes nothing."""
        prob = paper_problem()
        same = prob.with_slowdowns({"M1": 1.0, "M2": 1.0}, 1.0)
        assert same.exec_time == prob.exec_time
        assert same.comm_time == prob.comm_time

    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=1.0, max_value=20.0))
    def test_uniform_slowdown_preserves_optimum(self, factor):
        """Scaling every machine and link by the same factor scales
        the makespan but cannot change the best assignment."""
        prob = paper_problem()
        scaled = prob.with_slowdowns({"M1": factor, "M2": factor}, factor)
        base = best_mapping(prob)
        after = best_mapping(scaled)
        assert after.assignment == base.assignment
        assert after.elapsed == pytest.approx(base.elapsed * factor)

    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=1.0, max_value=20.0))
    def test_slowdown_composition(self, factor):
        """Applying slowdowns twice multiplies the factors."""
        prob = paper_problem()
        once = prob.with_slowdowns({"M1": factor})
        twice = once.with_slowdowns({"M1": factor})
        direct = prob.with_slowdowns({"M1": factor * factor})
        for task in prob.tasks:
            assert twice.exec_time[task]["M1"] == pytest.approx(
                direct.exec_time[task]["M1"]
            )


class TestSortedExpansionRegression:
    """The cheapest-step-first DFS ordering must not change results.

    Randomized instance set: on continuous random costs the optimum is
    unique with probability 1, so the pruned search must return exactly
    the assignment exhaustive ranking finds.
    """

    def _random_problem(self, rng, tasks: int, machines: int) -> MappingProblem:
        task_names = tuple(f"t{i}" for i in range(tasks))
        machine_names = tuple(f"m{j}" for j in range(machines))
        exec_time = {
            t: {m: float(rng.uniform(0.5, 20.0)) for m in machine_names}
            for t in task_names
        }
        comm_time = {
            (a, b): float(rng.uniform(0.1, 10.0))
            for a in machine_names
            for b in machine_names
            if a != b
        }
        return MappingProblem(
            tasks=task_names,
            machines=machine_names,
            exec_time=exec_time,
            comm_time=comm_time,
        )

    def test_assignment_unchanged_on_randomized_instances(self):
        import numpy as np

        rng = np.random.default_rng(2024)
        for _ in range(40):
            tasks = int(rng.integers(1, 5))
            machines = int(rng.integers(1, 5))
            problem = self._random_problem(rng, tasks, machines)
            expected = rank_mappings(problem)[0]
            got = best_mapping(problem)
            assert got.assignment == expected.assignment
            # The DFS folds exec+transfer per level before accumulating,
            # so its float association differs from evaluate_mapping's
            # by at most an ulp or two.
            assert got.elapsed == pytest.approx(expected.elapsed, rel=1e-12)
