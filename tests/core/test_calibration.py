"""Unit and property tests for parameter estimation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.calibration import (
    build_delay_table,
    build_sized_delay_table,
    estimate_cm2_params,
    find_saturation_threshold,
    fit_linear,
    fit_piecewise,
    relative_delays,
)
from repro.core.params import LinearCommParams, PiecewiseCommParams
from repro.errors import CalibrationError


class TestEstimateCM2:
    def test_recovers_parameters(self):
        """Synthetic benchmark times from known (α, β) round-trip."""
        alpha, beta = 1.2e-3, 5e5
        bulk_words, burst = 1e6, 1e6
        bulk_time = (alpha + bulk_words / beta) + (alpha + 1 / beta)
        startup_time = 2 * burst * (alpha + 1 / beta)
        out, inn = estimate_cm2_params(bulk_time, bulk_time, startup_time)
        # The procedure's bulk-dominance approximation leaves ~0.1-0.2%
        # bias in beta and a small bias in alpha.
        assert out.beta == pytest.approx(beta, rel=3e-3)
        assert out.alpha == pytest.approx(alpha, rel=1e-2)
        assert inn.beta == pytest.approx(beta, rel=3e-3)

    def test_asymmetric_betas(self):
        # Startup benchmark consistent with alpha = 1e-3 given the betas:
        # per message 2*alpha + 1/beta_sun + 1/beta_cm2 = 2.006e-3.
        out, inn = estimate_cm2_params(2.0, 4.0, 2.006, bulk_words=1e6, burst_messages=1e3)
        assert out.beta == pytest.approx(5e5)
        assert inn.beta == pytest.approx(2.5e5)
        assert out.alpha == pytest.approx(1e-3)

    def test_invalid_times_rejected(self):
        with pytest.raises(CalibrationError):
            estimate_cm2_params(0.0, 1.0, 1.0)
        with pytest.raises(CalibrationError):
            estimate_cm2_params(1.0, 1.0, -1.0)

    def test_violated_assumption_detected(self):
        # A startup benchmark faster than the bandwidth terms implies
        # negative alpha -> must be flagged, not silently returned.
        with pytest.raises(CalibrationError, match="negative latency"):
            estimate_cm2_params(1.0, 1.0, 1e-9, bulk_words=1e6, burst_messages=1e6)


class TestFitLinear:
    def test_exact_recovery(self):
        truth = LinearCommParams(alpha=2e-3, beta=8e5)
        sizes = np.array([1, 10, 100, 1000, 4000])
        times = [truth.message_time(s) for s in sizes]
        fit = fit_linear(sizes, times)
        assert fit.alpha == pytest.approx(truth.alpha, rel=1e-9)
        assert fit.beta == pytest.approx(truth.beta, rel=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=1e-2),
        st.floats(min_value=1e4, max_value=1e7),
    )
    def test_recovery_property(self, alpha, beta):
        truth = LinearCommParams(alpha=alpha, beta=beta)
        sizes = [1, 64, 512, 2048]
        fit = fit_linear(sizes, [truth.message_time(s) for s in sizes])
        assert fit.message_time(300) == pytest.approx(truth.message_time(300), rel=1e-6)

    def test_noise_tolerance(self):
        rng = np.random.default_rng(0)
        truth = LinearCommParams(alpha=1e-3, beta=1e6)
        sizes = np.linspace(1, 4096, 40)
        times = np.array([truth.message_time(s) for s in sizes])
        noisy = times * (1 + rng.normal(0, 0.02, times.shape))
        fit = fit_linear(sizes, noisy)
        assert fit.beta == pytest.approx(truth.beta, rel=0.1)

    def test_negative_intercept_clamped(self):
        # Times through the origin: intercept ~0, never negative.
        fit = fit_linear([100, 200, 300], [1e-4, 2e-4, 3e-4])
        assert fit.alpha >= 0.0

    def test_too_few_points_rejected(self):
        with pytest.raises(CalibrationError):
            fit_linear([100], [1e-3])

    def test_degenerate_sizes_rejected(self):
        with pytest.raises(CalibrationError):
            fit_linear([100, 100], [1e-3, 2e-3])

    def test_decreasing_times_rejected(self):
        with pytest.raises(CalibrationError):
            fit_linear([1, 1000], [1.0, 0.5])


class TestFitPiecewise:
    TRUTH = PiecewiseCommParams(
        threshold=1024,
        small=LinearCommParams(alpha=0.8e-3, beta=8e5),
        large=LinearCommParams(alpha=2.0e-3, beta=1.25e6),
    )
    SIZES = (16, 32, 64, 128, 256, 512, 1024, 1536, 2048, 3072, 4096)

    def _times(self):
        return [self.TRUTH.message_time(s) for s in self.SIZES]

    def test_threshold_search_finds_truth(self):
        fit = fit_piecewise(self.SIZES, self._times())
        assert fit.threshold == 1024
        assert fit.small.alpha == pytest.approx(0.8e-3, rel=1e-6)
        assert fit.large.beta == pytest.approx(1.25e6, rel=1e-6)

    def test_fixed_threshold(self):
        fit = fit_piecewise(self.SIZES, self._times(), threshold=1024)
        assert fit.small.beta == pytest.approx(8e5, rel=1e-6)

    def test_bad_fixed_threshold_rejected(self):
        with pytest.raises(CalibrationError):
            fit_piecewise(self.SIZES, self._times(), threshold=20)  # 1 point below

    def test_too_few_sizes_rejected(self):
        with pytest.raises(CalibrationError):
            fit_piecewise([1, 2, 3], [1.0, 2.0, 3.0])

    def test_unsorted_input_accepted(self):
        order = np.random.default_rng(1).permutation(len(self.SIZES))
        sizes = np.array(self.SIZES)[order]
        times = np.array(self._times())[order]
        fit = fit_piecewise(sizes, times)
        assert fit.threshold == 1024


class TestDelayTables:
    def test_relative_delays(self):
        assert relative_delays(2.0, [3.0, 4.0]) == pytest.approx([0.5, 1.0])

    def test_noise_clamped_to_zero(self):
        assert relative_delays(2.0, [1.9]) == [0.0]

    def test_invalid_dedicated_rejected(self):
        with pytest.raises(CalibrationError):
            relative_delays(0.0, [1.0])

    def test_build_delay_table(self):
        table = build_delay_table(1.0, [1.5, 2.0, 2.5], label="t")
        assert table.delays == (0.5, 1.0, 1.5)
        assert table.label == "t"

    def test_build_empty_rejected(self):
        with pytest.raises(CalibrationError):
            build_delay_table(1.0, [])

    def test_build_sized(self):
        sized = build_sized_delay_table(
            1.0,
            {1: [1.2, 1.4], 500: [1.5, 2.0], 1000: [1.55, 2.05]},
        )
        assert sized.buckets == (1, 500, 1000)
        assert sized.tables[500].delays == (0.5, 1.0)
        # 500 -> 1000 delays within 5%: saturation detected at 500.
        assert sized.saturation == 500

    def test_build_sized_empty_rejected(self):
        with pytest.raises(CalibrationError):
            build_sized_delay_table(1.0, {})


class TestSaturationThreshold:
    def test_plateau_found(self):
        sizes = [1, 100, 500, 1000, 2000, 4000]
        delays = [0.1, 0.4, 0.8, 1.0, 1.01, 1.0]
        assert find_saturation_threshold(sizes, delays) == 1000

    def test_never_settles(self):
        assert find_saturation_threshold([1, 2, 3], [1.0, 2.0, 4.0]) is None

    def test_single_point(self):
        assert find_saturation_threshold([1], [0.5]) is None

    def test_all_flat(self):
        assert find_saturation_threshold([1, 2, 3], [1.0, 1.0, 1.0]) == 1

    def test_last_point_alone_does_not_count(self):
        sizes = [1, 10, 100]
        delays = [0.1, 9.0, 1.0]
        assert find_saturation_threshold(sizes, delays) is None

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(CalibrationError):
            find_saturation_threshold([1, 2], [1.0])
