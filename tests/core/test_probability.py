"""Unit and property tests for the Poisson-binomial machinery."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.probability import (
    add_application,
    comm_comp_distributions,
    expected_active,
    overlap_distribution,
    remove_application,
)
from repro.errors import ModelError

fractions_lists = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=0, max_size=8
)


def brute_force(fractions: list[float]) -> np.ndarray:
    """Enumerate all 2^p activity subsets (the definition)."""
    p = len(fractions)
    dist = np.zeros(p + 1)
    for active in itertools.product([0, 1], repeat=p):
        prob = 1.0
        for f, a in zip(fractions, active):
            prob *= f if a else (1.0 - f)
        dist[sum(active)] += prob
    return dist


class TestOverlapDistribution:
    def test_paper_worked_example(self):
        """§3.2.1: p = 2, comm fractions 0.2 and 0.3."""
        pcomm, pcomp = comm_comp_distributions([0.2, 0.3])
        assert pcomm[1] == pytest.approx(0.2 * 0.7 + 0.3 * 0.8)
        assert pcomm[2] == pytest.approx(0.2 * 0.3)
        assert pcomp[1] == pytest.approx(0.2 * 0.7 + 0.3 * 0.8)
        assert pcomp[2] == pytest.approx(0.7 * 0.8)

    def test_empty_population(self):
        dist = overlap_distribution([])
        assert dist.tolist() == [1.0]

    def test_single_application(self):
        dist = overlap_distribution([0.3])
        assert dist == pytest.approx([0.7, 0.3])

    def test_all_always_active(self):
        dist = overlap_distribution([1.0, 1.0, 1.0])
        assert dist[-1] == pytest.approx(1.0)
        assert dist[:-1] == pytest.approx([0.0, 0.0, 0.0])

    def test_all_never_active(self):
        dist = overlap_distribution([0.0, 0.0])
        assert dist[0] == pytest.approx(1.0)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            overlap_distribution([1.5])
        with pytest.raises(ValueError):
            overlap_distribution([-0.1])

    @settings(max_examples=100, deadline=None)
    @given(fractions_lists)
    def test_matches_brute_force(self, fractions):
        dist = overlap_distribution(fractions)
        assert dist == pytest.approx(brute_force(fractions), abs=1e-12)

    @settings(max_examples=100, deadline=None)
    @given(fractions_lists)
    def test_sums_to_one(self, fractions):
        assert overlap_distribution(fractions).sum() == pytest.approx(1.0)

    @settings(max_examples=100, deadline=None)
    @given(fractions_lists)
    def test_expected_active_is_sum_of_fractions(self, fractions):
        dist = overlap_distribution(fractions)
        assert expected_active(dist) == pytest.approx(sum(fractions), abs=1e-9)

    def test_pcomp_is_reverse_of_pcomm(self):
        """Two-phase apps: #comp = p - #comm exactly."""
        pcomm, pcomp = comm_comp_distributions([0.2, 0.5, 0.9])
        assert pcomp == pytest.approx(pcomm[::-1])


class TestIncrementalUpdates:
    @settings(max_examples=100, deadline=None)
    @given(fractions_lists, st.floats(min_value=0.0, max_value=1.0))
    def test_add_matches_rebuild(self, fractions, extra):
        incremental = add_application(overlap_distribution(fractions), extra)
        rebuilt = overlap_distribution(fractions + [extra])
        assert incremental == pytest.approx(rebuilt, abs=1e-12)

    @settings(max_examples=100, deadline=None)
    @given(fractions_lists, st.floats(min_value=0.01, max_value=0.99))
    def test_add_remove_roundtrip(self, fractions, extra):
        base = overlap_distribution(fractions)
        roundtrip = remove_application(add_application(base, extra), extra)
        assert roundtrip == pytest.approx(base, abs=1e-9)

    def test_remove_extreme_fraction_zero(self):
        base = overlap_distribution([0.5])
        out = remove_application(add_application(base, 0.0), 0.0)
        assert out == pytest.approx(base)

    def test_remove_extreme_fraction_one(self):
        base = overlap_distribution([0.5])
        out = remove_application(add_application(base, 1.0), 1.0)
        assert out == pytest.approx(base)

    def test_remove_from_empty_rejected(self):
        with pytest.raises(ModelError):
            remove_application(np.array([1.0]), 0.5)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.05, max_value=0.95), min_size=2, max_size=6),
        st.integers(min_value=0, max_value=5),
    )
    def test_remove_any_member(self, fractions, idx):
        """Removing any member yields the distribution of the rest."""
        idx = idx % len(fractions)
        full = overlap_distribution(fractions)
        rest = fractions[:idx] + fractions[idx + 1 :]
        removed = remove_application(full, fractions[idx])
        assert removed == pytest.approx(overlap_distribution(rest), abs=1e-8)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=0.99), min_size=1, max_size=40
        ),
        st.randoms(use_true_random=False),
    )
    def test_long_churn_stays_near_fresh_rebuild(self, fractions, rng):
        """Satellite hardening: arrive/depart churn must not drift.

        A long random interleaving of O(p) incremental adds and O(p)
        deconvolution removals (the fleet's hot event-feed path) must
        leave the distribution within 1e-12 of a brand-new O(p²)
        rebuild from the surviving fractions — any removal whose
        round-trip residual exceeds the accuracy budget raises instead,
        which is the caller's signal to rebuild.
        """
        live: list[float] = []
        dist = np.array([1.0])
        for f in fractions:
            if live and rng.random() < 0.4:
                idx = rng.randrange(len(live))
                gone = live.pop(idx)
                try:
                    dist = remove_application(dist, gone)
                except ModelError:
                    dist = overlap_distribution(live)
            else:
                live.append(f)
                dist = add_application(dist, f)
        fresh = overlap_distribution(live)
        assert dist == pytest.approx(fresh, abs=1e-12)

    def test_remove_clamps_subepsilon_negatives_and_renormalizes(self):
        # A distribution perturbed by one ulp of negative mass must
        # come back clamped to a true probability vector.
        dist = add_application(overlap_distribution([0.3, 0.7]), 0.5)
        dist[0] -= 1e-17  # sub-epsilon corruption
        out = remove_application(dist, 0.5)
        assert np.all(out >= 0.0)
        assert out.sum() == pytest.approx(1.0, abs=1e-15)

    def test_remove_rejects_drifted_distribution(self):
        # Removing a fraction that was never added produces a large
        # round-trip residual (or negative mass): the tightened guard
        # must trip the rebuild fallback instead of returning garbage.
        dist = overlap_distribution([0.1, 0.1, 0.1])
        with pytest.raises(ModelError):
            remove_application(dist, 0.9)

    def test_exact_branch_renormalizes(self):
        # The near-0/1 exact-division branch used to skip verification;
        # it must now return a normalized vector too.
        base = overlap_distribution([0.4, 0.6])
        out = remove_application(add_application(base, 1e-12), 1e-12)
        assert out.sum() == pytest.approx(1.0, abs=1e-15)
        assert out == pytest.approx(base, abs=1e-9)
