"""Unit and property tests for the run-time slowdown manager."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.params import DelayTable, SizedDelayTable
from repro.core.probability import overlap_distribution
from repro.core.runtime import SlowdownManager
from repro.core.slowdown import paragon_comm_slowdown, paragon_comp_slowdown
from repro.core.workload import ApplicationProfile
from repro.errors import ModelError

DELAY_COMP = DelayTable((0.5, 1.1, 1.8, 2.5, 3.2))
DELAY_COMM = DelayTable((0.2, 0.7, 1.3, 1.9, 2.5))
SIZED = SizedDelayTable(
    tables={
        1: DelayTable((0.1, 0.25, 0.4, 0.6, 0.8)),
        500: DelayTable((0.4, 0.9, 1.4, 1.9, 2.4)),
        1000: DelayTable((0.5, 1.1, 1.7, 2.3, 2.9)),
    }
)


def manager() -> SlowdownManager:
    return SlowdownManager(DELAY_COMP, DELAY_COMM, SIZED)


def profile(name: str, fraction: float, size: float = 200) -> ApplicationProfile:
    return ApplicationProfile(name, fraction, size if fraction > 0 else 0.0)


class TestPopulation:
    def test_empty_slowdowns_are_one(self):
        mgr = manager()
        assert mgr.comm_slowdown() == 1.0
        assert mgr.comp_slowdown() == 1.0
        assert mgr.p == 0

    def test_arrive_depart_roundtrip(self):
        mgr = manager()
        mgr.arrive(profile("a", 0.3))
        mgr.arrive(profile("b", 0.7))
        assert mgr.p == 2
        mgr.depart("a")
        assert mgr.p == 1
        assert "b" in mgr and "a" not in mgr

    def test_duplicate_arrival_rejected(self):
        mgr = manager()
        mgr.arrive(profile("a", 0.3))
        with pytest.raises(ModelError):
            mgr.arrive(profile("a", 0.5))

    def test_unknown_departure_rejected(self):
        with pytest.raises(ModelError):
            manager().depart("ghost")

    def test_cpu_bound_count(self):
        mgr = manager()
        mgr.arrive(ApplicationProfile.cpu_bound("h1"))
        mgr.arrive(profile("c", 0.5))
        assert mgr.cpu_bound_count() == 1

    def test_max_message_size(self):
        mgr = manager()
        mgr.arrive(profile("a", 0.5, 800))
        mgr.arrive(profile("b", 0.5, 300))
        assert mgr.max_message_size() == 800

    def test_snapshot_is_copy(self):
        mgr = manager()
        mgr.arrive(profile("a", 0.5))
        snap = mgr.snapshot()
        mgr.depart("a")
        assert "a" in snap


class TestConsistencyWithBatchFormulas:
    """The incremental manager must agree with the one-shot formulas."""

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0.02, max_value=0.98), min_size=0, max_size=5))
    def test_comm_slowdown_matches(self, fractions):
        mgr = manager()
        profiles = [profile(f"a{i}", f) for i, f in enumerate(fractions)]
        for p in profiles:
            mgr.arrive(p)
        assert mgr.comm_slowdown() == pytest.approx(
            paragon_comm_slowdown(profiles, DELAY_COMP, DELAY_COMM)
        )

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0.02, max_value=0.98), min_size=0, max_size=5))
    def test_comp_slowdown_matches(self, fractions):
        mgr = manager()
        profiles = [profile(f"a{i}", f) for i, f in enumerate(fractions)]
        for p in profiles:
            mgr.arrive(p)
        assert mgr.comp_slowdown() == pytest.approx(
            paragon_comp_slowdown(profiles, SIZED)
        )

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.02, max_value=0.98), min_size=2, max_size=6),
        st.integers(min_value=0, max_value=5),
    )
    def test_departure_keeps_distributions_exact(self, fractions, idx):
        idx = idx % len(fractions)
        mgr = manager()
        for i, f in enumerate(fractions):
            mgr.arrive(profile(f"a{i}", f))
        mgr.depart(f"a{idx}")
        rest = [f for i, f in enumerate(fractions) if i != idx]
        assert mgr.pcomm == pytest.approx(overlap_distribution(rest), abs=1e-8)
        assert mgr.pcomp == pytest.approx(
            overlap_distribution([1 - f for f in rest]), abs=1e-8
        )

    def test_arrivals_never_rebuild(self):
        """Paper claim: O(p) incremental updates on arrival."""
        mgr = manager()
        for i in range(5):
            mgr.arrive(profile(f"a{i}", 0.1 * (i + 1)))
        assert mgr.rebuilds == 0

    def test_extreme_fraction_departure_falls_back_cleanly(self):
        mgr = manager()
        mgr.arrive(profile("edge", 1.0))
        mgr.arrive(profile("mid", 0.5))
        mgr.depart("edge")
        assert mgr.pcomm == pytest.approx(overlap_distribution([0.5]), abs=1e-9)

    def test_explicit_j_query(self):
        mgr = manager()
        mgr.arrive(profile("a", 0.5, 800))
        assert mgr.comp_slowdown(j=1) != mgr.comp_slowdown(j=1000)
