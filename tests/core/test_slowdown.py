"""Unit tests for the three slowdown formulas."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.params import DelayTable, SizedDelayTable
from repro.core.probability import comm_comp_distributions
from repro.core.slowdown import (
    cm2_slowdown,
    paragon_comm_slowdown,
    paragon_comp_slowdown,
    weighted_delay,
)
from repro.core.workload import ApplicationProfile
from repro.errors import ModelError

DELAY_COMP = DelayTable((0.5, 1.1, 1.8, 2.5), label="comp")
DELAY_COMM = DelayTable((0.2, 0.7, 1.3, 1.9), label="comm")
SIZED = SizedDelayTable(
    tables={
        1: DelayTable((0.1, 0.25, 0.4, 0.6)),
        500: DelayTable((0.4, 0.9, 1.4, 1.9)),
        1000: DelayTable((0.5, 1.1, 1.7, 2.3)),
    }
)


def profiles(*specs):
    return [
        ApplicationProfile(f"a{i}", comm_fraction=f, message_size=s)
        for i, (f, s) in enumerate(specs)
    ]


class TestCM2Slowdown:
    def test_p_plus_one(self):
        for p in range(5):
            assert cm2_slowdown(p) == p + 1

    def test_negative_rejected(self):
        with pytest.raises(ModelError):
            cm2_slowdown(-1)


class TestWeightedDelay:
    def test_hand_computed(self):
        pcomm, _ = comm_comp_distributions([0.2, 0.3])
        expected = pcomm[1] * 0.2 + pcomm[2] * 0.7
        assert weighted_delay(pcomm, DELAY_COMM) == pytest.approx(expected)

    def test_index_zero_ignored(self):
        import numpy as np

        dist = np.array([1.0])  # nobody ever active
        assert weighted_delay(dist, DELAY_COMM) == 0.0


class TestParagonCommSlowdown:
    def test_dedicated_is_one(self):
        assert paragon_comm_slowdown([], DELAY_COMP, DELAY_COMM) == 1.0

    def test_paper_structure(self):
        """1 + Σ pcomp·delay_comp + Σ pcomm·delay_comm, by hand."""
        apps = profiles((0.2, 200), (0.3, 200))
        pcomm, pcomp = comm_comp_distributions([0.2, 0.3])
        expected = (
            1.0
            + pcomp[1] * 0.5
            + pcomp[2] * 1.1
            + pcomm[1] * 0.2
            + pcomm[2] * 0.7
        )
        assert paragon_comm_slowdown(apps, DELAY_COMP, DELAY_COMM) == pytest.approx(expected)

    def test_all_cpu_bound_uses_only_comp_table(self):
        apps = [ApplicationProfile.cpu_bound(f"c{i}") for i in range(2)]
        # pcomp = [0,0,1]: both always compute.
        assert paragon_comm_slowdown(apps, DELAY_COMP, DELAY_COMM) == pytest.approx(1.0 + 1.1)

    def test_always_communicating(self):
        apps = profiles((1.0, 100), (1.0, 100))
        assert paragon_comm_slowdown(apps, DELAY_COMP, DELAY_COMM) == pytest.approx(1.0 + 0.7)

    def test_at_least_one(self):
        apps = profiles((0.5, 100))
        assert paragon_comm_slowdown(apps, DELAY_COMP, DELAY_COMM) >= 1.0

    def test_out_of_range_level_raises_without_extrapolate(self):
        apps = profiles(*[(0.5, 100)] * 6)
        with pytest.raises(ModelError):
            paragon_comm_slowdown(apps, DELAY_COMP, DELAY_COMM)
        # ... and works with extrapolation enabled.
        value = paragon_comm_slowdown(apps, DELAY_COMP, DELAY_COMM, extrapolate=True)
        assert value > 1.0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=3))
    def test_monotone_under_more_contenders(self, fractions):
        apps = profiles(*[(f, 100 if f > 0 else 0) for f in fractions])
        base = paragon_comm_slowdown(apps, DELAY_COMP, DELAY_COMM)
        more = paragon_comm_slowdown(
            apps + profiles((0.5, 100)), DELAY_COMP, DELAY_COMM
        )
        assert more >= base - 1e-12


class TestParagonCompSlowdown:
    def test_dedicated_is_one(self):
        assert paragon_comp_slowdown([], SIZED) == 1.0

    def test_pure_cpu_contenders_reduce_to_p_plus_one(self):
        """With only CPU-bound contenders, Σ pcomp_i · i = p."""
        apps = [ApplicationProfile.cpu_bound(f"c{i}") for i in range(3)]
        assert paragon_comp_slowdown(apps, SIZED) == pytest.approx(4.0)

    def test_hand_computed_mixed(self):
        apps = profiles((0.66, 800), (0.33, 1200))
        pcomm, pcomp = comm_comp_distributions([0.66, 0.33])
        # j defaults to max message size (1200) -> bucket 1000.
        expected = (
            1.0
            + pcomp[1] * 1
            + pcomp[2] * 2
            + pcomm[1] * 0.5
            + pcomm[2] * 1.1
        )
        assert paragon_comp_slowdown(apps, SIZED) == pytest.approx(expected)

    def test_force_bucket_changes_value(self):
        apps = profiles((0.66, 800), (0.33, 1200))
        j1 = paragon_comp_slowdown(apps, SIZED, force_bucket=1)
        j1000 = paragon_comp_slowdown(apps, SIZED, force_bucket=1000)
        assert j1 < j1000  # bigger contender messages steal more CPU

    def test_explicit_j_overrides_max_size(self):
        apps = profiles((0.5, 1200))
        explicit = paragon_comp_slowdown(apps, SIZED, j=500)
        forced = paragon_comp_slowdown(apps, SIZED, force_bucket=500)
        assert explicit == pytest.approx(forced)

    def test_bad_bucket_rejected(self):
        apps = profiles((0.5, 100))
        with pytest.raises(ModelError):
            paragon_comp_slowdown(apps, SIZED, force_bucket=123)
