"""Unit tests for performance predictions and Equation (1)."""

from __future__ import annotations

import pytest

from repro.core.prediction import (
    BackendTaskCosts,
    decide_placement,
    predict_backend_time,
    predict_comm_cost,
    predict_frontend_time,
    should_offload,
)
from repro.errors import ModelError


class TestBackendTaskCosts:
    def test_dedicated_elapsed(self):
        costs = BackendTaskCosts(dcomp=2.0, didle=0.5, dserial=1.0)
        assert costs.dedicated_elapsed == pytest.approx(2.5)

    def test_serial_dominated_dedicated(self):
        costs = BackendTaskCosts(dcomp=1.0, didle=0.0, dserial=3.0)
        assert costs.dedicated_elapsed == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BackendTaskCosts(dcomp=-1, didle=0, dserial=0)


class TestPredictions:
    def test_frontend_scales_with_slowdown(self):
        assert predict_frontend_time(2.0, 3.0) == pytest.approx(6.0)

    def test_frontend_dedicated(self):
        assert predict_frontend_time(2.0, 1.0) == pytest.approx(2.0)

    def test_slowdown_below_one_rejected(self):
        with pytest.raises(ModelError):
            predict_frontend_time(1.0, 0.5)

    def test_backend_max_formula_parallel_bound(self):
        """§3.1.2: T = max(dcomp + didle, dserial × slowdown)."""
        costs = BackendTaskCosts(dcomp=10.0, didle=1.0, dserial=2.0)
        assert predict_backend_time(costs, 4.0) == pytest.approx(11.0)

    def test_backend_max_formula_serial_bound(self):
        costs = BackendTaskCosts(dcomp=2.0, didle=0.5, dserial=2.0)
        assert predict_backend_time(costs, 4.0) == pytest.approx(8.0)

    def test_backend_dedicated_reduces_to_elapsed(self):
        costs = BackendTaskCosts(dcomp=2.0, didle=0.7, dserial=1.5)
        assert predict_backend_time(costs, 1.0) == pytest.approx(costs.dedicated_elapsed)

    def test_comm_cost(self):
        assert predict_comm_cost(0.5, 3.0) == pytest.approx(1.5)


class TestEquationOne:
    def test_offload_when_backend_wins(self):
        assert should_offload(t_frontend=10.0, t_backend=3.0, c_out=2.0, c_in=2.0)

    def test_stay_when_transfers_dominate(self):
        assert not should_offload(t_frontend=10.0, t_backend=3.0, c_out=4.0, c_in=4.0)

    def test_tie_stays_on_frontend(self):
        """Eq (1) uses strict '>': ties do not justify the move."""
        assert not should_offload(10.0, 6.0, 2.0, 2.0)


class TestDecidePlacement:
    def test_full_pipeline(self):
        costs = BackendTaskCosts(dcomp=3.0, didle=0.5, dserial=1.0)
        pred = decide_placement(
            dcomp_frontend=20.0,
            backend_costs=costs,
            dcomm_out=1.0,
            dcomm_in=1.0,
            comp_slowdown=2.0,
            comm_slowdown=2.0,
        )
        assert pred.t_frontend == pytest.approx(40.0)
        assert pred.t_backend == pytest.approx(3.5)
        assert pred.backend_total == pytest.approx(3.5 + 2.0 + 2.0)
        assert pred.offload
        assert pred.best_time == pytest.approx(7.5)
        assert pred.advantage == pytest.approx(32.5)

    def test_contention_flips_decision(self):
        """The paper's core story: contention changes where to run."""
        costs = BackendTaskCosts(dcomp=4.0, didle=0.0, dserial=0.5)

        def decision(comp_slow, comm_slow):
            return decide_placement(
                dcomp_frontend=6.0,
                backend_costs=costs,
                dcomm_out=2.0,
                dcomm_in=2.0,
                comp_slowdown=comp_slow,
                comm_slowdown=comm_slow,
            ).offload

        assert not decision(1.0, 1.0)  # dedicated: 6 < 4 + 4 -> stay
        assert decision(3.0, 1.0)  # CPU contention: 18 > 4 + 4 -> offload
        # Link contention heavy enough outweighs the CPU gain (the
        # Table 4 effect): 6x3 = 18 vs 4 + (3+3)x3 = 22 -> stay.
        assert not decide_placement(
            dcomp_frontend=6.0,
            backend_costs=costs,
            dcomm_out=3.0,
            dcomm_in=3.0,
            comp_slowdown=3.0,
            comm_slowdown=3.0,
        ).offload  # 6x3=18 vs 4 + 18 = 22 -> stay

    def test_separate_backend_serial_slowdown(self):
        costs = BackendTaskCosts(dcomp=1.0, didle=0.0, dserial=2.0)
        pred = decide_placement(
            dcomp_frontend=1.0,
            backend_costs=costs,
            dcomm_out=0.0,
            dcomm_in=0.0,
            comp_slowdown=1.0,
            comm_slowdown=1.0,
            backend_serial_slowdown=5.0,
        )
        assert pred.t_backend == pytest.approx(10.0)


class TestMixedPrediction:
    def test_decomposition(self):
        from repro.core.prediction import predict_mixed_time

        value = predict_mixed_time(2.0, 0.5, 0.5, 3.0, 2.0)
        assert value == pytest.approx(2.0 * 3.0 + 1.0 * 2.0)

    def test_dedicated_reduces_to_sum(self):
        from repro.core.prediction import predict_mixed_time

        assert predict_mixed_time(1.0, 0.3, 0.2, 1.0, 1.0) == pytest.approx(1.5)
