"""Property tests for the vectorized kernels in `repro.core.batch`.

The batch kernels are the single home of the model's arithmetic; every
scalar entry point delegates to them. These tests pin the contract from
both sides:

* against *independent* pure-Python reference implementations, element
  for element, to within 1 ulp (in practice bitwise — same IEEE-754
  operations in the same order);
* against the scalar entry points themselves, bitwise;
* at the piecewise threshold boundary and with NaN/inf sentinels;
* on the validation contracts (exception types match the scalar path).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import batch
from repro.core.params import LinearCommParams, PiecewiseCommParams
from repro.core.prediction import (
    BackendTaskCosts,
    decide_placement,
    predict_backend_time,
    predict_comm_cost,
    predict_frontend_time,
    predict_mixed_time,
)
from repro.core.slowdown import cm2_slowdown
from repro.errors import ModelError
from repro.platforms.specs import DEFAULT_SUNPARAGON
from repro.reliability.degrade import Confidence, TaggedSlowdown

LINEAR = LinearCommParams(alpha=3.2e-3, beta=0.9e6)
PIECEWISE = PiecewiseCommParams(
    threshold=1024.0,
    small=LinearCommParams(alpha=2.1e-3, beta=1.3e6),
    large=LinearCommParams(alpha=3.7e-3, beta=1.05e6),
)


def assert_ulp_close(actual: np.ndarray, expected: list[float]) -> None:
    """Element-for-element equality to within 1 ulp (NaN matches NaN)."""
    actual = np.atleast_1d(actual)
    assert actual.size == len(expected)
    for got, want in zip(actual.tolist(), expected):
        if math.isnan(want):
            assert math.isnan(got)
        elif got != want:
            assert abs(got - want) <= math.ulp(want), (got, want)


def random_sizes(n: int = 300, seed: int = 1) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 5000.0, n)


# ---------------------------------------------------------------------------
# Communication cost curves
# ---------------------------------------------------------------------------


def test_linear_matches_reference_over_random_grid():
    sizes = random_sizes()
    expected = [LINEAR.alpha + s / LINEAR.beta for s in sizes.tolist()]
    assert_ulp_close(batch.linear_message_times(sizes, LINEAR), expected)


def test_piecewise_matches_reference_over_random_grid():
    sizes = random_sizes(seed=2)

    def ref(s: float) -> float:
        piece = PIECEWISE.small if s <= PIECEWISE.threshold else PIECEWISE.large
        return piece.alpha + s / piece.beta

    expected = [ref(s) for s in sizes.tolist()]
    assert_ulp_close(batch.piecewise_message_times(sizes, PIECEWISE), expected)


def test_piecewise_threshold_boundary():
    """Sizes straddling the threshold pick the correct regime exactly."""
    t = PIECEWISE.threshold
    boundary = [0.0, np.nextafter(t, -np.inf), t, np.nextafter(t, np.inf), 2 * t]
    times = batch.piecewise_message_times(boundary, PIECEWISE)
    for s, got in zip(boundary, times.tolist()):
        piece = PIECEWISE.piece_for(s)
        assert got == piece.alpha + s / piece.beta
    # At the threshold itself, the small regime applies (<=).
    assert times[2] == PIECEWISE.small.alpha + t / PIECEWISE.small.beta


def test_message_times_dispatches_on_parameterisation():
    sizes = [1.0, 100.0, 2000.0]
    assert np.array_equal(
        batch.message_times(sizes, LINEAR), batch.linear_message_times(sizes, LINEAR)
    )
    assert np.array_equal(
        batch.message_times(sizes, PIECEWISE),
        batch.piecewise_message_times(sizes, PIECEWISE),
    )


def test_scalar_message_time_is_the_batch_kernel():
    for s in (0.0, 1.0, 512.0, 1024.0, 1025.0, 4096.0):
        assert LINEAR.message_time(s) == float(batch.linear_message_times(s, LINEAR))
        assert PIECEWISE.message_time(s) == float(
            batch.piecewise_message_times(s, PIECEWISE)
        )


def test_nan_and_inf_sentinels_propagate():
    out = batch.piecewise_message_times([float("nan"), float("inf")], PIECEWISE)
    assert math.isnan(out[0])
    assert out[1] == float("inf")
    lin = batch.linear_message_times([float("nan"), float("inf")], LINEAR)
    assert math.isnan(lin[0])
    assert lin[1] == float("inf")


def test_negative_sizes_raise_model_error():
    with pytest.raises(ModelError):
        batch.linear_message_times([1.0, -2.0], LINEAR)
    with pytest.raises(ModelError):
        batch.piecewise_message_times(-1.0, PIECEWISE)


def test_fragmented_matches_spec_reference():
    spec = DEFAULT_SUNPARAGON
    wire = spec.wire
    sizes = random_sizes(seed=3)
    fixed = spec.conv_fixed + wire.alpha + spec.node_handling
    per_word = spec.conv_per_word + wire.per_word

    def ref(s: float) -> float:
        count = 1.0 if s <= wire.buffer_words else math.ceil(s / wire.buffer_words)
        return count * (fixed + (s / count) * per_word)

    expected = [ref(s) for s in sizes.tolist()]
    got = batch.fragmented_message_times(sizes, wire.buffer_words, fixed, per_word)
    assert_ulp_close(got, expected)
    # The scalar spec method delegates to the same kernel.
    for s in (0.0, 1.0, 1024.0, 1025.0, 5000.0):
        assert spec.message_dedicated_time(s) == float(
            batch.fragmented_message_times(s, wire.buffer_words, fixed, per_word)
        )


def test_fragmented_negative_raises_value_error():
    with pytest.raises(ValueError):
        batch.fragmented_message_times([-1.0], 1024.0, 1e-3, 1e-6)


# ---------------------------------------------------------------------------
# Slowdown / elapsed-time kernels
# ---------------------------------------------------------------------------


def test_cm2_slowdowns_match_scalar():
    levels = list(range(0, 10))
    got = batch.cm2_slowdowns(levels)
    assert got.tolist() == [cm2_slowdown(p) for p in levels]
    with pytest.raises(ModelError):
        batch.cm2_slowdowns([-1])


def test_elapsed_kernels_match_scalar_predictions():
    rng = np.random.default_rng(4)
    n = 200
    dcomp = rng.uniform(0.0, 5.0, n)
    didle = rng.uniform(0.0, 1.0, n)
    dserial = rng.uniform(0.0, 2.0, n)
    dcomm = rng.uniform(0.0, 1.0, n)
    slow = rng.uniform(1.0, 6.0, n)

    front = batch.frontend_times(dcomp, slow)
    back = batch.backend_times(dcomp, didle, dserial, slow)
    comm = batch.comm_costs(dcomm, slow)
    for k in range(n):
        costs = BackendTaskCosts(dcomp=dcomp[k], didle=didle[k], dserial=dserial[k])
        assert front[k] == predict_frontend_time(dcomp[k], slow[k])
        assert back[k] == predict_backend_time(costs, slow[k])
        assert comm[k] == predict_comm_cost(dcomm[k], slow[k])


def test_mixed_times_match_scalar():
    rng = np.random.default_rng(5)
    n = 100
    dcomp = rng.uniform(0.0, 5.0, n)
    out = rng.uniform(0.0, 1.0, n)
    inn = rng.uniform(0.0, 1.0, n)
    s_comp = rng.uniform(1.0, 4.0, n)
    s_comm = rng.uniform(1.0, 4.0, n)
    got = batch.mixed_times(dcomp, out, inn, s_comp, s_comm)
    for k in range(n):
        assert got[k] == predict_mixed_time(dcomp[k], out[k], inn[k], s_comp[k], s_comm[k])


def test_sub_one_slowdowns_raise_model_error():
    with pytest.raises(ModelError):
        batch.frontend_times([1.0], [0.5])
    with pytest.raises(ModelError):
        batch.backend_times([1.0], [0.0], [1.0], [0.99])
    with pytest.raises(ModelError):
        batch.comm_costs([1.0], [0.0])


def test_negative_durations_raise_value_error():
    with pytest.raises(ValueError):
        batch.frontend_times([-1.0], [2.0])
    with pytest.raises(ValueError):
        batch.backend_times([1.0], [-0.1], [1.0], [2.0])


# ---------------------------------------------------------------------------
# Placement grids
# ---------------------------------------------------------------------------


def test_placement_grid_matches_scalar_decide_placement():
    rng = np.random.default_rng(6)
    n = 250
    args = dict(
        dcomp_frontend=rng.uniform(0.5, 5.0, n),
        backend_dcomp=rng.uniform(0.1, 2.0, n),
        backend_didle=rng.uniform(0.0, 0.5, n),
        backend_dserial=rng.uniform(0.05, 1.0, n),
        dcomm_out=rng.uniform(0.01, 0.5, n),
        dcomm_in=rng.uniform(0.01, 0.5, n),
    )
    results = batch.decide_placement_batch(
        comp_slowdown=3.0, comm_slowdown=2.0, **args
    )
    assert len(results) == n
    for k, got in enumerate(results):
        want = decide_placement(
            args["dcomp_frontend"][k],
            BackendTaskCosts(
                dcomp=args["backend_dcomp"][k],
                didle=args["backend_didle"][k],
                dserial=args["backend_dserial"][k],
            ),
            args["dcomm_out"][k],
            args["dcomm_in"][k],
            comp_slowdown=3.0,
            comm_slowdown=2.0,
        )
        assert got.t_frontend == want.t_frontend
        assert got.t_backend == want.t_backend
        assert got.c_out == want.c_out
        assert got.c_in == want.c_in
        assert got.offload == want.offload
        assert got.best_time == want.best_time
        assert got.confidence == want.confidence


def test_placement_grid_broadcasts_and_tags_confidence():
    grid = batch.placement_grid(
        dcomp_frontend=np.array([1.0, 2.0, 3.0]),
        backend_dcomp=0.5,
        backend_didle=0.0,
        backend_dserial=0.2,
        dcomm_out=0.1,
        dcomm_in=0.1,
        comp_slowdown=TaggedSlowdown(value=2.0, confidence=Confidence.ANALYTIC),
        comm_slowdown=1.5,
    )
    assert grid.size == 3
    assert grid.confidence is Confidence.ANALYTIC
    assert grid.offload.shape == (3,)
    assert all(p.confidence is Confidence.ANALYTIC for p in grid.placements())


def test_placement_grid_requires_both_slowdowns():
    with pytest.raises(ModelError):
        batch.placement_grid(1.0, 0.5, 0.0, 0.2, 0.1, 0.1, None, 2.0)
    with pytest.raises(ModelError):
        batch.placement_grid(1.0, 0.5, 0.0, 0.2, 0.1, 0.1, 2.0, None)
