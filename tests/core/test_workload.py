"""Unit tests for application profiles."""

from __future__ import annotations

import pytest

from repro.core.datasets import CommPattern, DataSet
from repro.core.workload import ApplicationProfile, comm_fractions, max_message_size
from repro.errors import ModelError


class TestApplicationProfile:
    def test_comp_fraction_complements(self):
        p = ApplicationProfile("x", comm_fraction=0.3, message_size=100)
        assert p.comp_fraction == pytest.approx(0.7)

    def test_cpu_bound_factory(self):
        p = ApplicationProfile.cpu_bound("hog")
        assert p.comm_fraction == 0.0
        assert p.comp_fraction == 1.0

    def test_from_costs(self):
        """The paper's derivation: fraction = dcomm / (dcomp + dcomm)."""
        p = ApplicationProfile.from_costs("x", dedicated_comp=8.0, dedicated_comm=2.0,
                                          message_size=100)
        assert p.comm_fraction == pytest.approx(0.2)

    def test_from_costs_zero_total_rejected(self):
        with pytest.raises(ModelError):
            ApplicationProfile.from_costs("x", 0.0, 0.0)

    def test_from_pattern_takes_max_size(self):
        pattern = CommPattern(to_backend=(DataSet(1, 100), DataSet(1, 700)))
        p = ApplicationProfile.from_pattern("x", 1.0, 1.0, pattern)
        assert p.message_size == 700

    def test_communicating_without_size_rejected(self):
        with pytest.raises(ModelError):
            ApplicationProfile("x", comm_fraction=0.5, message_size=0.0)

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            ApplicationProfile("x", comm_fraction=1.5, message_size=1)

    def test_with_fraction(self):
        p = ApplicationProfile("x", 0.3, 100)
        q = p.with_fraction(0.6)
        assert q.comm_fraction == 0.6
        assert q.name == "x" and q.message_size == 100


class TestHelpers:
    def test_comm_fractions_order(self):
        ps = [ApplicationProfile("a", 0.1, 10), ApplicationProfile("b", 0.9, 10)]
        assert comm_fractions(ps) == [0.1, 0.9]

    def test_max_message_size(self):
        ps = [ApplicationProfile("a", 0.5, 800), ApplicationProfile("b", 0.5, 1200)]
        assert max_message_size(ps) == 1200

    def test_max_message_size_empty(self):
        assert max_message_size([]) == 0.0
