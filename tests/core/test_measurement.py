"""Tests for observation-derived application profiles."""

from __future__ import annotations

import pytest

from repro.apps.contender import alternating, cpu_bound
from repro.apps.program import frontend_program
from repro.core.measurement import UsageMonitor
from repro.core.slowdown import paragon_comp_slowdown
from repro.errors import ModelError
from repro.platforms.sunparagon import SunParagonPlatform
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def platform_with(spec, streams_seed=5):
    sim = Simulator()
    return sim, SunParagonPlatform(sim, spec=spec, streams=RandomStreams(streams_seed))


class TestUsageMonitor:
    def test_recovers_comm_fraction_solo(self, quiet_paragon_spec):
        """A lone alternating app's observed fraction matches its target."""
        sim, plat = platform_with(quiet_paragon_spec)
        plat.spawn(alternating(plat, 0.4, 300, plat.rng("a"), tag="app"), name="app")
        monitor = UsageMonitor(plat)
        sim.run(until=60.0)
        profile = monitor.profile("app")
        assert profile.comm_fraction == pytest.approx(0.4, abs=0.06)
        assert profile.message_size == 300.0

    def test_cpu_bound_app_observed_as_pure_compute(self, quiet_paragon_spec):
        sim, plat = platform_with(quiet_paragon_spec)
        plat.spawn(cpu_bound(plat, tag="hog"), name="hog")
        monitor = UsageMonitor(plat)
        sim.run(until=5.0)
        profile = monitor.profile("hog")
        assert profile.comm_fraction == 0.0

    def test_snapshot_orders_by_activity_and_excludes_os(self, quiet_paragon_spec):
        sim, plat = platform_with(quiet_paragon_spec)
        plat.spawn(cpu_bound(plat, tag="big"), name="big")
        plat.spawn(
            alternating(plat, 0.3, 100, plat.rng("s"), mean_cycle=0.5, tag="small"),
            name="small",
        )
        monitor = UsageMonitor(plat)
        sim.run(until=10.0)
        profiles = monitor.snapshot()
        names = [p.name for p in profiles]
        assert "_os" not in names
        assert set(names) == {"big", "small"}

    def test_window_only_counts_new_activity(self, quiet_paragon_spec):
        sim, plat = platform_with(quiet_paragon_spec)
        plat.spawn(alternating(plat, 0.5, 200, plat.rng("a"), tag="app"), name="app")
        sim.run(until=20.0)
        monitor = UsageMonitor(plat)  # opens window at t=20
        sim.run(until=21.0)
        usage = monitor.usage()["app"]
        # One second of window cannot contain 20 seconds of activity.
        assert usage.cpu_service + usage.comm_dedicated < 1.5

    def test_unknown_tag_rejected(self, quiet_paragon_spec):
        sim, plat = platform_with(quiet_paragon_spec)
        monitor = UsageMonitor(plat)
        sim.run(until=0.1)
        with pytest.raises(ModelError):
            monitor.profile("ghost")

    def test_empty_window_rejected(self, quiet_paragon_spec):
        _, plat = platform_with(quiet_paragon_spec)
        with pytest.raises(ModelError):
            UsageMonitor(plat).snapshot()


class TestClosedLoop:
    def test_observe_predict_validate(self, quiet_paragon_spec, paragon_cal):
        """The full autonomous pipeline of §2: the resource manager
        observes the running applications, derives their profiles,
        computes the slowdown, and the prediction matches an
        independent measured run."""
        # Phase 1: observe the contenders for a while.
        sim, plat = platform_with(quiet_paragon_spec, streams_seed=11)
        plat.spawn(alternating(plat, 0.35, 200, plat.rng("a"), tag="a"), name="a")
        plat.spawn(alternating(plat, 0.7, 200, plat.rng("b"), tag="b"), name="b")
        monitor = UsageMonitor(plat)
        sim.run(until=60.0)
        profiles = monitor.snapshot()
        assert len(profiles) == 2

        slowdown = paragon_comp_slowdown(profiles, paragon_cal.delay_comm_sized)

        # Phase 2: an independent run measures a compute probe under
        # the same contender population.
        work = 1.5
        totals = []
        for rep in range(3):
            sim2, plat2 = platform_with(quiet_paragon_spec, streams_seed=100 + rep)
            plat2.spawn(alternating(plat2, 0.35, 200, plat2.rng("a"), tag="a"), name="a")
            plat2.spawn(alternating(plat2, 0.7, 200, plat2.rng("b"), tag="b"), name="b")
            probe = sim2.process(frontend_program(plat2, work))
            totals.append(sim2.run_until(probe))
        actual = sum(totals) / len(totals)
        predicted = work * slowdown
        assert predicted == pytest.approx(actual, rel=0.25)
