"""Unit and property tests for the DAG mapper."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dag import TaskGraph, critical_path_bound, eft_mapping, evaluate_dag_mapping
from repro.core.scheduler import MappingProblem, evaluate_mapping
from repro.errors import ScheduleError

MACHINES = ("m1", "m2")
EXEC = {
    "a": {"m1": 2.0, "m2": 3.0},
    "b": {"m1": 4.0, "m2": 1.0},
    "c": {"m1": 1.0, "m2": 5.0},
    "d": {"m1": 2.0, "m2": 2.0},
}
COMM = {("m1", "m2"): 1.0, ("m2", "m1"): 1.5}

DIAMOND = TaskGraph(
    tasks=("a", "b", "c", "d"),
    edges={("a", "b"): 1.0, ("a", "c"): 1.0, ("b", "d"): 1.0, ("c", "d"): 1.0},
)


class TestTaskGraph:
    def test_topological_order_valid(self):
        order = DIAMOND.topological_order()
        pos = {t: k for k, t in enumerate(order)}
        for (a, b) in DIAMOND.edges:
            assert pos[a] < pos[b]

    def test_cycle_detected(self):
        with pytest.raises(ScheduleError, match="cycle"):
            TaskGraph(tasks=("a", "b"), edges={("a", "b"): 1.0, ("b", "a"): 1.0})

    def test_chain_factory(self):
        chain = TaskGraph.chain(["t1", "t2", "t3"])
        assert set(chain.edges) == {("t1", "t2"), ("t2", "t3")}

    def test_unknown_edge_task_rejected(self):
        with pytest.raises(ScheduleError):
            TaskGraph(tasks=("a",), edges={("a", "z"): 1.0})

    def test_self_edge_rejected(self):
        with pytest.raises(ScheduleError):
            TaskGraph(tasks=("a",), edges={("a", "a"): 1.0})

    def test_duplicate_tasks_rejected(self):
        with pytest.raises(ScheduleError):
            TaskGraph(tasks=("a", "a"))

    def test_predecessors_successors(self):
        assert {p for p, _ in DIAMOND.predecessors("d")} == {"b", "c"}
        assert {s for s, _ in DIAMOND.successors("a")} == {"b", "c"}


class TestEvaluate:
    def test_serial_chain_matches_chain_scheduler(self):
        """A path DAG under serial evaluation == the paper's chain model."""
        chain = TaskGraph.chain(["a", "b", "c"])
        problem = MappingProblem(
            tasks=("a", "b", "c"),
            machines=MACHINES,
            exec_time={t: EXEC[t] for t in ("a", "b", "c")},
            comm_time=COMM,
        )
        for combo in itertools.product(MACHINES, repeat=3):
            assignment = dict(zip(("a", "b", "c"), combo))
            assert evaluate_dag_mapping(chain, EXEC, COMM, assignment) == pytest.approx(
                evaluate_mapping(problem, combo)
            )

    def test_concurrent_overlaps_independent_tasks(self):
        graph = TaskGraph(tasks=("a", "b"))  # no edges
        assignment = {"a": "m1", "b": "m2"}
        serial = evaluate_dag_mapping(graph, EXEC, COMM, assignment, concurrent=False)
        concurrent = evaluate_dag_mapping(graph, EXEC, COMM, assignment, concurrent=True)
        assert concurrent == pytest.approx(max(2.0, 1.0))
        assert serial == pytest.approx(2.0 + 1.0)

    def test_concurrent_machine_serialisation(self):
        graph = TaskGraph(tasks=("a", "b"))
        assignment = {"a": "m1", "b": "m1"}
        assert evaluate_dag_mapping(graph, EXEC, COMM, assignment, concurrent=True) == (
            pytest.approx(6.0)
        )

    def test_concurrent_diamond_hand_computed(self):
        assignment = {"a": "m1", "b": "m2", "c": "m1", "d": "m2"}
        # a on m1 ends 2; b: arrives 2+1=3, ends 4; c on m1: machine free
        # at 2, ends 3; d on m2: inputs b@4, c@3+1=4; machine free 4 -> ends 6.
        value = evaluate_dag_mapping(DIAMOND, EXEC, COMM, assignment, concurrent=True)
        assert value == pytest.approx(6.0)

    def test_edge_scale_multiplies_transfer(self):
        graph = TaskGraph(tasks=("a", "b"), edges={("a", "b"): 3.0})
        assignment = {"a": "m1", "b": "m2"}
        value = evaluate_dag_mapping(graph, EXEC, COMM, assignment)
        assert value == pytest.approx(2.0 + 3.0 * 1.0 + 1.0)

    def test_missing_assignment_rejected(self):
        with pytest.raises(ScheduleError):
            evaluate_dag_mapping(DIAMOND, EXEC, COMM, {"a": "m1"})

    def test_missing_comm_pair_rejected(self):
        graph = TaskGraph.chain(["a", "b"])
        with pytest.raises(ScheduleError):
            evaluate_dag_mapping(graph, EXEC, {}, {"a": "m1", "b": "m2"})


class TestBoundsAndHeuristic:
    def test_critical_path_is_a_lower_bound(self):
        bound = critical_path_bound(DIAMOND, EXEC)
        for combo in itertools.product(MACHINES, repeat=4):
            assignment = dict(zip(DIAMOND.tasks, combo))
            value = evaluate_dag_mapping(DIAMOND, EXEC, COMM, assignment, concurrent=True)
            assert value >= bound - 1e-9

    def test_eft_respects_precedence_and_quality(self):
        assignment = eft_mapping(DIAMOND, EXEC, COMM)
        assert set(assignment) == set(DIAMOND.tasks)
        value = evaluate_dag_mapping(DIAMOND, EXEC, COMM, assignment, concurrent=True)
        best = min(
            evaluate_dag_mapping(
                DIAMOND, EXEC, COMM, dict(zip(DIAMOND.tasks, combo)), concurrent=True
            )
            for combo in itertools.product(MACHINES, repeat=4)
        )
        # A good list scheduler lands within 50% of optimal on this toy.
        assert value <= best * 1.5

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_eft_never_beats_the_bound_and_matches_eval(self, data):
        n = data.draw(st.integers(min_value=1, max_value=6))
        tasks = tuple(f"t{i}" for i in range(n))
        # Random DAG: edges only from lower to higher index (acyclic).
        edges = {}
        for i in range(n):
            for j in range(i + 1, n):
                if data.draw(st.booleans()):
                    edges[(tasks[i], tasks[j])] = data.draw(
                        st.floats(min_value=0.0, max_value=3.0)
                    )
        graph = TaskGraph(tasks=tasks, edges=edges)
        exec_time = {
            t: {m: data.draw(st.floats(min_value=0.1, max_value=10.0)) for m in MACHINES}
            for t in tasks
        }
        assignment = eft_mapping(graph, exec_time, COMM)
        value = evaluate_dag_mapping(graph, exec_time, COMM, assignment, concurrent=True)
        assert value >= critical_path_bound(graph, exec_time) - 1e-9
