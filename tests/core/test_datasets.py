"""Unit tests for data sets and communication patterns."""

from __future__ import annotations

import pytest

from repro.core.datasets import CommPattern, DataSet, matrix_transfer
from repro.errors import ModelError


class TestDataSet:
    def test_total_words(self):
        assert DataSet(count=10, size=256).total_words == 2560

    def test_validation(self):
        with pytest.raises(ModelError):
            DataSet(count=-1, size=10)
        with pytest.raises(ModelError):
            DataSet(count=1, size=-10)

    def test_zero_count_allowed(self):
        assert DataSet(count=0, size=10).total_words == 0


class TestCommPattern:
    def test_totals(self):
        pattern = CommPattern(
            to_backend=(DataSet(2, 100),),
            to_frontend=(DataSet(3, 50),),
        )
        assert pattern.total_words == 350
        assert pattern.total_messages == 5

    def test_symmetric(self):
        pattern = CommPattern.symmetric([DataSet(4, 64)])
        assert pattern.to_backend == pattern.to_frontend
        assert pattern.total_words == 2 * 4 * 64

    def test_iteration_directions(self):
        pattern = CommPattern(to_backend=(DataSet(1, 10),), to_frontend=(DataSet(2, 20),))
        assert list(pattern) == [("out", DataSet(1, 10)), ("in", DataSet(2, 20))]

    def test_max_message_size(self):
        pattern = CommPattern(
            to_backend=(DataSet(1, 100),), to_frontend=(DataSet(1, 900),)
        )
        assert pattern.max_message_size() == 900

    def test_max_message_size_empty(self):
        assert CommPattern().max_message_size() == 0.0


class TestMatrixTransfer:
    def test_row_messages(self):
        pattern = matrix_transfer(64)
        assert pattern.to_backend == (DataSet(count=64, size=64.0),)
        assert pattern.total_words == 2 * 64 * 64

    def test_single_message(self):
        pattern = matrix_transfer(64, row_messages=False)
        assert pattern.to_backend == (DataSet(count=1, size=4096.0),)

    def test_validation(self):
        with pytest.raises(ModelError):
            matrix_transfer(0)
