"""Unit tests for the system-parameter containers."""

from __future__ import annotations

import pytest
from hypothesis import given as _hyp_given, settings as _hyp_settings, strategies as _hyp_st

from repro.core.params import (
    DelayTable,
    LinearCommParams,
    PiecewiseCommParams,
    SMALL_MESSAGE_CUTOFF,
    SizedDelayTable,
)
from repro.errors import ModelError


class TestLinearCommParams:
    def test_message_time(self):
        p = LinearCommParams(alpha=1e-3, beta=1e6)
        assert p.message_time(1000) == pytest.approx(2e-3)

    def test_zero_size(self):
        p = LinearCommParams(alpha=1e-3, beta=1e6)
        assert p.message_time(0) == pytest.approx(1e-3)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ModelError):
            LinearCommParams(alpha=-1e-3, beta=1e6)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_alpha_rejected(self, bad):
        with pytest.raises(ModelError):
            LinearCommParams(alpha=bad, beta=1e6)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_beta_rejected(self, bad):
        with pytest.raises(ValueError):
            LinearCommParams(alpha=0.0, beta=bad)

    def test_nonpositive_beta_rejected(self):
        with pytest.raises(ValueError):
            LinearCommParams(alpha=0.0, beta=0.0)

    def test_negative_size_rejected(self):
        p = LinearCommParams(alpha=0.0, beta=1.0)
        with pytest.raises(ModelError):
            p.message_time(-1)


class TestPiecewiseCommParams:
    @pytest.fixture
    def params(self):
        return PiecewiseCommParams(
            threshold=1024,
            small=LinearCommParams(alpha=1e-3, beta=5e5),
            large=LinearCommParams(alpha=2e-3, beta=1e6),
        )

    def test_piece_selection(self, params):
        assert params.piece_for(100) is params.small
        assert params.piece_for(1024) is params.small  # boundary inclusive
        assert params.piece_for(1025) is params.large

    def test_message_time_uses_correct_piece(self, params):
        assert params.message_time(500) == pytest.approx(1e-3 + 500 / 5e5)
        assert params.message_time(2048) == pytest.approx(2e-3 + 2048 / 1e6)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            PiecewiseCommParams(
                threshold=0,
                small=LinearCommParams(0, 1),
                large=LinearCommParams(0, 1),
            )


class TestDelayTable:
    def test_lookup(self):
        t = DelayTable((0.5, 1.0, 1.5))
        assert t.delay(1) == 0.5
        assert t.delay(3) == 1.5
        assert t.max_level == 3

    def test_level_zero_rejected(self):
        t = DelayTable((0.5,))
        with pytest.raises(ModelError):
            t.delay(0)

    def test_out_of_range_rejected_by_default(self):
        t = DelayTable((0.5, 1.0))
        with pytest.raises(ModelError):
            t.delay(3)

    def test_linear_extrapolation(self):
        t = DelayTable((0.5, 1.0))
        assert t.delay(4, extrapolate=True) == pytest.approx(2.0)

    def test_extrapolation_clamps_at_zero(self):
        t = DelayTable((1.0, 0.5))  # decreasing table
        assert t.delay(5, extrapolate=True) == 0.0

    def test_single_entry_extrapolates_flat(self):
        t = DelayTable((0.7,))
        assert t.delay(9, extrapolate=True) == 0.7

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            DelayTable(())

    def test_negative_delay_rejected(self):
        with pytest.raises(ModelError):
            DelayTable((-0.1,))

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_delay_rejected(self, bad):
        with pytest.raises(ModelError):
            DelayTable((0.5, bad))


class TestSizedDelayTable:
    @pytest.fixture
    def sized(self):
        return SizedDelayTable(
            tables={
                1: DelayTable((0.1, 0.2)),
                500: DelayTable((0.4, 0.8)),
                1000: DelayTable((0.5, 1.0)),
            }
        )

    def test_buckets_sorted(self, sized):
        assert sized.buckets == (1, 500, 1000)

    def test_closest_bucket(self, sized):
        assert sized.select_bucket(400) == 500
        assert sized.select_bucket(800) == 1000
        assert sized.select_bucket(600) == 500

    def test_footnote2_small_cutoff(self, sized):
        """j = 1 is only used for message sizes below 95 words."""
        assert sized.select_bucket(10) == 1
        assert sized.select_bucket(94) == 1
        assert sized.select_bucket(95) == 500
        assert sized.select_bucket(200) == 500

    def test_saturation_above_largest_bucket(self, sized):
        assert sized.select_bucket(4096) == 1000

    def test_delay_dispatch(self, sized):
        assert sized.delay(2, 450) == 0.8
        assert sized.delay(1, 10) == 0.1

    def test_force_bucket(self, sized):
        assert sized.delay_for_bucket(2, 1) == 0.2
        with pytest.raises(ModelError):
            sized.delay_for_bucket(1, 777)

    def test_negative_size_rejected(self, sized):
        with pytest.raises(ModelError):
            sized.select_bucket(-5)

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            SizedDelayTable(tables={})

    def test_single_bucket_always_selected(self):
        sized = SizedDelayTable(tables={500: DelayTable((0.4,))})
        assert sized.select_bucket(1) == 500
        assert sized.select_bucket(10_000) == 500

    def test_cutoff_constant_matches_paper(self):
        assert SMALL_MESSAGE_CUTOFF == 95


class TestBucketSelectionProperties:
    @_hyp_settings(max_examples=100, deadline=None)
    @_hyp_given(_hyp_st.floats(min_value=0, max_value=10_000))
    def test_selection_total_and_stable(self, size):
        """Every size maps to exactly one available bucket, and mapping
        a bucket's own size returns that bucket (idempotence)."""
        sized = SizedDelayTable(
            tables={
                1: DelayTable((0.1,)),
                500: DelayTable((0.4,)),
                1000: DelayTable((0.5,)),
            }
        )
        bucket = sized.select_bucket(size)
        assert bucket in sized.buckets
        assert sized.select_bucket(bucket) == bucket
