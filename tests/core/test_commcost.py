"""Unit tests for the dedicated communication cost formulas."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.commcost import (
    dedicated_comm_cost,
    dedicated_dataset_cost,
    dedicated_pattern_cost,
)
from repro.core.datasets import CommPattern, DataSet
from repro.core.params import LinearCommParams, PiecewiseCommParams

LINEAR = LinearCommParams(alpha=1e-3, beta=1e6)
PIECEWISE = PiecewiseCommParams(
    threshold=1024,
    small=LinearCommParams(alpha=1e-3, beta=5e5),
    large=LinearCommParams(alpha=3e-3, beta=2e6),
)


class TestDatasetCost:
    def test_formula(self):
        """N_i × (α + size_i / β) — the §3.1.1 formula verbatim."""
        ds = DataSet(count=10, size=500)
        assert dedicated_dataset_cost(ds, LINEAR) == pytest.approx(10 * (1e-3 + 500 / 1e6))

    def test_piecewise_uses_correct_piece_per_dataset(self):
        small = DataSet(count=1, size=100)
        large = DataSet(count=1, size=2048)
        assert dedicated_dataset_cost(small, PIECEWISE) == pytest.approx(1e-3 + 100 / 5e5)
        assert dedicated_dataset_cost(large, PIECEWISE) == pytest.approx(3e-3 + 2048 / 2e6)

    def test_zero_count_costs_nothing(self):
        assert dedicated_dataset_cost(DataSet(0, 100), LINEAR) == 0.0


class TestCommCost:
    def test_sums_over_datasets(self):
        datasets = [DataSet(2, 100), DataSet(3, 200)]
        expected = sum(dedicated_dataset_cost(d, LINEAR) for d in datasets)
        assert dedicated_comm_cost(datasets, LINEAR) == pytest.approx(expected)

    def test_empty_is_zero(self):
        assert dedicated_comm_cost([], LINEAR) == 0.0

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=100),
                st.floats(min_value=0, max_value=1e5),
            ),
            max_size=8,
        )
    )
    def test_additive_and_nonnegative(self, specs):
        datasets = [DataSet(c, s) for c, s in specs]
        total = dedicated_comm_cost(datasets, PIECEWISE)
        assert total >= 0
        parts = sum(dedicated_comm_cost([d], PIECEWISE) for d in datasets)
        assert total == pytest.approx(parts)

    def test_monotone_in_size(self):
        base = dedicated_comm_cost([DataSet(5, 100)], LINEAR)
        bigger = dedicated_comm_cost([DataSet(5, 200)], LINEAR)
        assert bigger > base


class TestPatternCost:
    def test_directions_use_their_params(self):
        pattern = CommPattern(
            to_backend=(DataSet(1, 100),), to_frontend=(DataSet(1, 100),)
        )
        params_in = LinearCommParams(alpha=2e-3, beta=1e6)
        out_cost, in_cost = dedicated_pattern_cost(pattern, LINEAR, params_in)
        assert out_cost == pytest.approx(1e-3 + 1e-4)
        assert in_cost == pytest.approx(2e-3 + 1e-4)

    def test_params_in_defaults_to_out(self):
        pattern = CommPattern.symmetric([DataSet(1, 100)])
        out_cost, in_cost = dedicated_pattern_cost(pattern, LINEAR)
        assert out_cost == in_cost
