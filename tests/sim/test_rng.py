"""Unit tests for deterministic random streams."""

from __future__ import annotations

import numpy as np

from repro.sim.rng import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(seed=42).get("x").random(10)
        b = RandomStreams(seed=42).get("x").random(10)
        assert np.array_equal(a, b)

    def test_different_names_independent(self):
        streams = RandomStreams(seed=42)
        a = streams.get("x").random(10)
        b = streams.get("y").random(10)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).get("x").random(10)
        b = RandomStreams(seed=2).get("x").random(10)
        assert not np.array_equal(a, b)

    def test_generator_cached(self):
        streams = RandomStreams(seed=0)
        assert streams.get("x") is streams.get("x")

    def test_fork_deterministic(self):
        a = RandomStreams(seed=5).fork(3).get("x").random(5)
        b = RandomStreams(seed=5).fork(3).get("x").random(5)
        assert np.array_equal(a, b)

    def test_fork_differs_from_parent(self):
        parent = RandomStreams(seed=5)
        child = parent.fork(1)
        assert not np.array_equal(parent.get("x").random(5), child.get("x").random(5))

    def test_forks_mutually_independent(self):
        parent = RandomStreams(seed=5)
        a = parent.fork(1).get("x").random(5)
        b = parent.fork(2).get("x").random(5)
        assert not np.array_equal(a, b)

    def test_name_hash_is_process_independent(self):
        # The key derivation must not rely on salted hash(): verify the
        # well-known value stays stable across interpreter runs by
        # checking it is a pure function of the inputs.
        from repro.sim.rng import _stable_key

        assert _stable_key("contender-0") == _stable_key("contender-0")
        assert _stable_key("a") != _stable_key("b")
