"""Differential proof of the vectorized Monte-Carlo backend.

:mod:`repro.sim.vector` advances N independent replication lanes in
lockstep with array ops; the object engine run once per lane is the
oracle. The contract mirrors the fast-forward scheduler's
(``test_fastforward``): on any supported workload, per-lane completion
times agree within 1e-9 *relative*, and lanes are fully independent —
a batch of N lanes is bit-for-bit the concatenation of N single-lane
batches given the same per-lane seeds.

240 seeded comparisons: 8 chunks × 10 random scenarios × 3 lanes.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.burst import message_burst
from repro.apps.contender import alternating
from repro.apps.program import cyclic_program, frontend_program
from repro.errors import WorkloadError
from repro.platforms.specs import CpuSpec, DEFAULT_SUNPARAGON, SunParagonSpec
from repro.platforms.sunparagon import SunParagonPlatform
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.vector import (
    SweepPoint,
    VectorBurstProbe,
    VectorComputeProbe,
    VectorContender,
    VectorCyclicProbe,
    run_lanes,
    run_sweep,
    unsupported_reason,
)

TOL = 1e-9

# ---------------------------------------------------------------------------
# Scenario generation and the differential runner
# ---------------------------------------------------------------------------


def object_run(spec, contenders, probe, seed):
    """The oracle: one object-engine replication of the same workload."""
    streams = RandomStreams(seed)
    sim = Simulator()
    platform = SunParagonPlatform(sim, spec, streams)
    for i, c in enumerate(contenders):
        sim.process(
            alternating(
                platform, c.comm_fraction, c.message_size,
                platform.rng(f"contender-{i}"),
                mean_cycle=c.mean_cycle, direction=c.direction,
                tag=f"c{i}", mode=c.mode,
            )
        )
    if isinstance(probe, VectorBurstProbe):
        gen = message_burst(platform, probe.size_words, probe.count, probe.direction, mode=probe.mode)
    elif isinstance(probe, VectorComputeProbe):
        gen = frontend_program(platform, probe.work)
    else:
        gen = cyclic_program(
            platform, probe.cycles, probe.comp_per_cycle,
            probe.messages_per_cycle, probe.message_size, mode=probe.mode,
        )
    return sim.run_until(sim.process(gen))


def random_scenario(rnd: random.Random):
    """One seeded workload across the vector engine's whole envelope.

    Mixes hop modes, daemon on/off, 0–3 contenders of varied fraction/
    size/cycle/direction, and all three probe shapes.
    """
    mode = rnd.choice(["1hop", "2hops"])
    cpu = CpuSpec(
        discipline="ps",
        daemon_interval=rnd.choice([0.0, 0.25]),
        daemon_work=rnd.choice([0.0, 5e-3]),
    )
    spec = SunParagonSpec(cpu=cpu)
    cons = []
    for i in range(rnd.randint(0, 3)):
        cons.append(
            VectorContender(
                comm_fraction=rnd.choice([0.0, 0.25, 0.5, 0.76, 0.9]),
                message_size=rnd.choice([50, 200, 800, 1500, 4000]),
                stream=f"sunparagon/contender-{i}",
                mean_cycle=rnd.choice([0.1, 0.25, 0.5]),
                direction=rnd.choice(["out", "in", "both"]),
                mode=mode,
            )
        )
    kind = rnd.choice(["burst", "compute", "cyclic"])
    if kind == "burst":
        probe = VectorBurstProbe(
            rnd.choice([16, 200, 1024, 2048]), rnd.randint(5, 60),
            rnd.choice(["out", "in"]), mode,
        )
    elif kind == "compute":
        probe = VectorComputeProbe(rnd.choice([0.0, 0.5, 3.0]))
    else:
        probe = VectorCyclicProbe(
            rnd.randint(1, 6), rnd.choice([0.0, 0.05, 0.3]),
            rnd.randint(0, 4), rnd.choice([100, 1000]), mode,
        )
    return spec, cons, probe


def rr_scenario(rnd: random.Random):
    """A :func:`random_scenario` workload on a random *rr* front end.

    Random quantum and context-switch overhead exercise the vectorized
    epoch-plan math (head slice, switch-patterned cycle, rotation
    skips); contender tags exercise the session-continuation credit.
    """
    spec, cons, probe = random_scenario(rnd)
    cpu = CpuSpec(
        discipline="rr",
        quantum=rnd.choice([1e-3, 5e-3, 2e-2]),
        context_switch=rnd.choice([0.0, 5e-5, 1e-3]),
        daemon_interval=spec.cpu.daemon_interval,
        daemon_work=spec.cpu.daemon_work,
    )
    cons = [
        VectorContender(
            c.comm_fraction, c.message_size, c.stream,
            c.mean_cycle, c.direction, c.mode, tag=f"c{i}",
        )
        for i, c in enumerate(cons)
    ]
    return SunParagonSpec(cpu=cpu), cons, probe


# 8 chunks x 10 scenarios x 3 lanes = 240 seeded vector-vs-object runs.
@pytest.mark.parametrize("chunk", range(8))
def test_differential_vector_vs_object(chunk):
    for s in range(chunk * 10, (chunk + 1) * 10):
        rnd = random.Random(20260807 + s)
        spec, cons, probe = random_scenario(rnd)
        lane_seeds = [RandomStreams(1000 + s).fork(k).seed for k in range(3)]
        vec = run_lanes(spec, cons, probe, lane_seeds)
        obj = np.array([object_run(spec, cons, probe, ls) for ls in lane_seeds])
        scale = max(1e-12, float(np.max(np.abs(obj))))
        rel = float(np.max(np.abs(vec - obj))) / scale
        assert rel <= TOL, (
            f"scenario {s}: relative divergence {rel:.3e} "
            f"(probe={type(probe).__name__}, ncon={len(cons)})"
        )


# 8 chunks x 10 scenarios x 3 lanes = 240 seeded RR vector-vs-object runs.
@pytest.mark.parametrize("chunk", range(8))
def test_differential_rr_vector_vs_object(chunk):
    for s in range(chunk * 10, (chunk + 1) * 10):
        rnd = random.Random(20260808 + s)
        spec, cons, probe = rr_scenario(rnd)
        lane_seeds = [RandomStreams(2000 + s).fork(k).seed for k in range(3)]
        vec = run_lanes(spec, cons, probe, lane_seeds)
        obj = np.array([object_run(spec, cons, probe, ls) for ls in lane_seeds])
        scale = max(1e-12, float(np.max(np.abs(obj))))
        rel = float(np.max(np.abs(vec - obj))) / scale
        assert rel <= TOL, (
            f"rr scenario {s}: relative divergence {rel:.3e} "
            f"(probe={type(probe).__name__}, ncon={len(cons)}, cpu={spec.cpu})"
        )


# ---------------------------------------------------------------------------
# Sweep-level lanes: ragged heterogeneous points in one batch
# ---------------------------------------------------------------------------


def _sweep_points(disc: str, count: int, seed0: int):
    """Ragged sweep points: varied contender counts, daemon on/off, sizes."""
    points, seeds = [], []
    for s in range(count):
        rnd = random.Random(seed0 + s)
        if disc == "rr":
            spec, cons, probe = rr_scenario(rnd)
        else:
            spec, cons, probe = random_scenario(rnd)
        # Uniform probe kind per batch (run_sweep's contract): burst.
        mode = cons[0].mode if cons else "1hop"
        probe = VectorBurstProbe(
            rnd.choice([16, 200, 1024]), rnd.randint(5, 30),
            rnd.choice(["out", "in"]), mode,
        )
        points.append(SweepPoint(spec, tuple(cons), probe))
        seeds.append(RandomStreams(seed0 + 7 * s).fork(0).seed)
    return points, seeds


@pytest.mark.parametrize("disc", ["ps", "rr"])
def test_sweep_matches_per_point_bitwise(disc):
    """A ragged sweep batch == the concatenation of its per-point runs."""
    points, seeds = _sweep_points(disc, 8, 4200)
    batched = run_sweep(points, seeds)
    singles = np.array([run_sweep([pt], [sd])[0] for pt, sd in zip(points, seeds)])
    assert (batched == singles).all(), (batched, singles)


@pytest.mark.parametrize("disc", ["ps", "rr"])
def test_sweep_matches_object_oracle(disc):
    """Every lane of a ragged sweep matches its own object-engine run."""
    points, seeds = _sweep_points(disc, 6, 5300)
    batched = run_sweep(points, seeds)
    for pt, sd, got in zip(points, seeds, batched):
        obj = object_run(pt.spec, pt.contenders, pt.probe, sd)
        rel = abs(got - obj) / max(1e-12, abs(obj))
        assert rel <= TOL, (pt, rel)


class TestSweepValidation:
    def test_point_count_must_match_lane_count(self):
        points, seeds = _sweep_points("ps", 3, 6000)
        with pytest.raises(WorkloadError):
            run_sweep(points, seeds[:2])

    def test_mixed_disciplines_rejected(self):
        p_ps, s_ps = _sweep_points("ps", 1, 6100)
        p_rr, s_rr = _sweep_points("rr", 1, 6200)
        with pytest.raises(WorkloadError):
            run_sweep(p_ps + p_rr, s_ps + s_rr)

    def test_mixed_probe_kinds_rejected(self):
        points, seeds = _sweep_points("ps", 2, 6300)
        mixed = [points[0], SweepPoint(points[1].spec, points[1].contenders, VectorComputeProbe(0.5))]
        with pytest.raises(WorkloadError):
            run_sweep(mixed, seeds)

    def test_empty_sweep(self):
        assert run_sweep([], []).shape == (0,)


# ---------------------------------------------------------------------------
# Lane independence (the property the batch API stands on)
# ---------------------------------------------------------------------------

_PROP_SPEC = SunParagonSpec(cpu=CpuSpec(discipline="ps"))
_PROP_CONS = (
    VectorContender(0.25, 200, "sunparagon/contender-0"),
    VectorContender(0.76, 200, "sunparagon/contender-1"),
)
_PROP_PROBE = VectorBurstProbe(200, 10, "out")


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=1, max_value=6), seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_lane_independence_bit_for_bit(n, seed):
    """Running lanes [0..N) in one batch == N single-lane batches, exactly."""
    lane_seeds = [RandomStreams(seed).fork(k).seed for k in range(n)]
    batch = run_lanes(_PROP_SPEC, _PROP_CONS, _PROP_PROBE, lane_seeds)
    singles = np.array(
        [run_lanes(_PROP_SPEC, _PROP_CONS, _PROP_PROBE, [ls])[0] for ls in lane_seeds]
    )
    assert batch.shape == (n,)
    assert (batch == singles).all(), (batch, singles)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1), drop=st.integers(min_value=0, max_value=3))
def test_lane_subset_invariance(seed, drop):
    """A lane's result does not depend on which other lanes share the batch."""
    lane_seeds = [RandomStreams(seed).fork(k).seed for k in range(4)]
    full = run_lanes(_PROP_SPEC, _PROP_CONS, _PROP_PROBE, lane_seeds)
    subset = lane_seeds[:drop] + lane_seeds[drop + 1:]
    partial = run_lanes(_PROP_SPEC, _PROP_CONS, _PROP_PROBE, subset)
    expected = np.concatenate([full[:drop], full[drop + 1:]])
    assert (partial == expected).all()


_RR_PROP_CONS = (
    VectorContender(0.25, 200, "sunparagon/contender-0", tag="c25"),
    VectorContender(0.76, 200, "sunparagon/contender-1", tag="c76"),
)


def _rr_spec(quantum: float, context_switch: float = 5e-5) -> SunParagonSpec:
    return SunParagonSpec(
        cpu=CpuSpec(discipline="rr", quantum=quantum, context_switch=context_switch)
    )


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    drop=st.integers(min_value=0, max_value=3),
    quantum=st.sampled_from([5e-4, 1e-3, 4e-3, 1.6e-2]),
)
def test_rr_lane_subset_invariance(seed, drop, quantum):
    """RR lanes are bit-independent: dropping a lane moves no other lane."""
    spec = _rr_spec(quantum)
    lane_seeds = [RandomStreams(seed).fork(k).seed for k in range(4)]
    full = run_lanes(spec, _RR_PROP_CONS, _PROP_PROBE, lane_seeds)
    subset = lane_seeds[:drop] + lane_seeds[drop + 1:]
    partial = run_lanes(spec, _RR_PROP_CONS, _PROP_PROBE, subset)
    expected = np.concatenate([full[:drop], full[drop + 1:]])
    assert (partial == expected).all()


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    quantum=st.floats(min_value=2e-4, max_value=5e-2),
    context_switch=st.sampled_from([0.0, 5e-5, 1e-3]),
)
def test_rr_quantum_invariance_vs_object(seed, quantum, context_switch):
    """For *any* quantum, the vector RR engine matches the object oracle."""
    spec = _rr_spec(quantum, context_switch)
    lane_seed = RandomStreams(seed).fork(0).seed
    vec = run_lanes(spec, _RR_PROP_CONS, _PROP_PROBE, [lane_seed])[0]
    obj = object_run(spec, _RR_PROP_CONS, _PROP_PROBE, lane_seed)
    assert abs(vec - obj) / max(1e-12, abs(obj)) <= TOL


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    perm=st.permutations(list(range(4))),
)
def test_rr_ragged_sweep_padding_never_leaks(seed, perm):
    """In a ragged sweep, each lane equals its solo run — padding rows,
    absent contenders and batch-mates' quanta leak nothing across lanes."""
    variants = [
        SweepPoint(_rr_spec(1e-3), _RR_PROP_CONS, _PROP_PROBE),
        SweepPoint(_rr_spec(4e-3), _RR_PROP_CONS[:1], _PROP_PROBE),
        SweepPoint(_rr_spec(1e-3, 0.0), (), _PROP_PROBE),
        SweepPoint(
            SunParagonSpec(
                cpu=CpuSpec(discipline="rr", quantum=2e-3, daemon_interval=0.0, daemon_work=0.0)
            ),
            _RR_PROP_CONS,
            VectorBurstProbe(1024, 8, "in"),
        ),
    ]
    points = [variants[i] for i in perm]
    seeds = [RandomStreams(seed).fork(k).seed for k in range(len(points))]
    batched = run_sweep(points, seeds)
    solos = np.array([run_sweep([pt], [sd])[0] for pt, sd in zip(points, seeds)])
    assert (batched == solos).all()


# ---------------------------------------------------------------------------
# Quarantine and coverage boundaries
# ---------------------------------------------------------------------------


class TestQuarantine:
    def test_stalled_lanes_return_nan_not_garbage(self):
        """A lane that exhausts the iteration budget is NaN, not a wrong number."""
        out = run_lanes(
            _PROP_SPEC, _PROP_CONS, VectorBurstProbe(200, 500, "out"),
            [RandomStreams(3).fork(k).seed for k in range(3)],
            max_iters=10,
        )
        assert np.isnan(out).all()

    def test_finished_lanes_unaffected_by_budget(self):
        lane_seeds = [RandomStreams(9).fork(k).seed for k in range(2)]
        free = run_lanes(_PROP_SPEC, _PROP_CONS, _PROP_PROBE, lane_seeds)
        assert np.isfinite(free).all()

    def test_empty_lane_list(self):
        out = run_lanes(_PROP_SPEC, _PROP_CONS, _PROP_PROBE, [])
        assert out.shape == (0,)


class TestUnsupportedReason:
    def test_ps_burst_supported(self):
        assert unsupported_reason(_PROP_SPEC, _PROP_CONS, _PROP_PROBE) is None

    def test_rr_discipline_supported(self):
        """The default production spec (rr) is inside the envelope now."""
        assert unsupported_reason(DEFAULT_SUNPARAGON, _RR_PROP_CONS, _PROP_PROBE) is None

    def test_rr_untagged_contenders_unsupported(self):
        """RR sessions are tag-keyed; anonymous contenders fall back."""
        reason = unsupported_reason(DEFAULT_SUNPARAGON, _PROP_CONS, _PROP_PROBE)
        assert reason is not None and "tag" in reason

    def test_unknown_discipline_unsupported(self):
        spec = SunParagonSpec(cpu=CpuSpec(discipline="fcfs"))
        reason = unsupported_reason(spec, _PROP_CONS, _PROP_PROBE)
        assert reason is not None and "discipline" in reason

    def test_foreign_spec_unsupported(self):
        class NotASpec:
            pass

        assert unsupported_reason(NotASpec(), (), _PROP_PROBE) is not None

    def test_foreign_probe_unsupported(self):
        assert unsupported_reason(_PROP_SPEC, _PROP_CONS, object()) is not None

    def test_run_lanes_raises_workload_error(self):
        spec = SunParagonSpec(cpu=CpuSpec(discipline="fcfs"))
        with pytest.raises(WorkloadError):
            run_lanes(spec, _PROP_CONS, _PROP_PROBE, [1, 2])
