"""Differential proof of the vectorized Monte-Carlo backend.

:mod:`repro.sim.vector` advances N independent replication lanes in
lockstep with array ops; the object engine run once per lane is the
oracle. The contract mirrors the fast-forward scheduler's
(``test_fastforward``): on any supported workload, per-lane completion
times agree within 1e-9 *relative*, and lanes are fully independent —
a batch of N lanes is bit-for-bit the concatenation of N single-lane
batches given the same per-lane seeds.

240 seeded comparisons: 8 chunks × 10 random scenarios × 3 lanes.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.burst import message_burst
from repro.apps.contender import alternating
from repro.apps.program import cyclic_program, frontend_program
from repro.errors import WorkloadError
from repro.platforms.specs import CpuSpec, DEFAULT_SUNPARAGON, SunParagonSpec
from repro.platforms.sunparagon import SunParagonPlatform
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.vector import (
    VectorBurstProbe,
    VectorComputeProbe,
    VectorContender,
    VectorCyclicProbe,
    run_lanes,
    unsupported_reason,
)

TOL = 1e-9

# ---------------------------------------------------------------------------
# Scenario generation and the differential runner
# ---------------------------------------------------------------------------


def object_run(spec, contenders, probe, seed):
    """The oracle: one object-engine replication of the same workload."""
    streams = RandomStreams(seed)
    sim = Simulator()
    platform = SunParagonPlatform(sim, spec, streams)
    for i, c in enumerate(contenders):
        sim.process(
            alternating(
                platform, c.comm_fraction, c.message_size,
                platform.rng(f"contender-{i}"),
                mean_cycle=c.mean_cycle, direction=c.direction,
                tag=f"c{i}", mode=c.mode,
            )
        )
    if isinstance(probe, VectorBurstProbe):
        gen = message_burst(platform, probe.size_words, probe.count, probe.direction, mode=probe.mode)
    elif isinstance(probe, VectorComputeProbe):
        gen = frontend_program(platform, probe.work)
    else:
        gen = cyclic_program(
            platform, probe.cycles, probe.comp_per_cycle,
            probe.messages_per_cycle, probe.message_size, mode=probe.mode,
        )
    return sim.run_until(sim.process(gen))


def random_scenario(rnd: random.Random):
    """One seeded workload across the vector engine's whole envelope.

    Mixes hop modes, daemon on/off, 0–3 contenders of varied fraction/
    size/cycle/direction, and all three probe shapes.
    """
    mode = rnd.choice(["1hop", "2hops"])
    cpu = CpuSpec(
        discipline="ps",
        daemon_interval=rnd.choice([0.0, 0.25]),
        daemon_work=rnd.choice([0.0, 5e-3]),
    )
    spec = SunParagonSpec(cpu=cpu)
    cons = []
    for i in range(rnd.randint(0, 3)):
        cons.append(
            VectorContender(
                comm_fraction=rnd.choice([0.0, 0.25, 0.5, 0.76, 0.9]),
                message_size=rnd.choice([50, 200, 800, 1500, 4000]),
                stream=f"sunparagon/contender-{i}",
                mean_cycle=rnd.choice([0.1, 0.25, 0.5]),
                direction=rnd.choice(["out", "in", "both"]),
                mode=mode,
            )
        )
    kind = rnd.choice(["burst", "compute", "cyclic"])
    if kind == "burst":
        probe = VectorBurstProbe(
            rnd.choice([16, 200, 1024, 2048]), rnd.randint(5, 60),
            rnd.choice(["out", "in"]), mode,
        )
    elif kind == "compute":
        probe = VectorComputeProbe(rnd.choice([0.0, 0.5, 3.0]))
    else:
        probe = VectorCyclicProbe(
            rnd.randint(1, 6), rnd.choice([0.0, 0.05, 0.3]),
            rnd.randint(0, 4), rnd.choice([100, 1000]), mode,
        )
    return spec, cons, probe


# 8 chunks x 10 scenarios x 3 lanes = 240 seeded vector-vs-object runs.
@pytest.mark.parametrize("chunk", range(8))
def test_differential_vector_vs_object(chunk):
    for s in range(chunk * 10, (chunk + 1) * 10):
        rnd = random.Random(20260807 + s)
        spec, cons, probe = random_scenario(rnd)
        lane_seeds = [RandomStreams(1000 + s).fork(k).seed for k in range(3)]
        vec = run_lanes(spec, cons, probe, lane_seeds)
        obj = np.array([object_run(spec, cons, probe, ls) for ls in lane_seeds])
        scale = max(1e-12, float(np.max(np.abs(obj))))
        rel = float(np.max(np.abs(vec - obj))) / scale
        assert rel <= TOL, (
            f"scenario {s}: relative divergence {rel:.3e} "
            f"(probe={type(probe).__name__}, ncon={len(cons)})"
        )


# ---------------------------------------------------------------------------
# Lane independence (the property the batch API stands on)
# ---------------------------------------------------------------------------

_PROP_SPEC = SunParagonSpec(cpu=CpuSpec(discipline="ps"))
_PROP_CONS = (
    VectorContender(0.25, 200, "sunparagon/contender-0"),
    VectorContender(0.76, 200, "sunparagon/contender-1"),
)
_PROP_PROBE = VectorBurstProbe(200, 10, "out")


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=1, max_value=6), seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_lane_independence_bit_for_bit(n, seed):
    """Running lanes [0..N) in one batch == N single-lane batches, exactly."""
    lane_seeds = [RandomStreams(seed).fork(k).seed for k in range(n)]
    batch = run_lanes(_PROP_SPEC, _PROP_CONS, _PROP_PROBE, lane_seeds)
    singles = np.array(
        [run_lanes(_PROP_SPEC, _PROP_CONS, _PROP_PROBE, [ls])[0] for ls in lane_seeds]
    )
    assert batch.shape == (n,)
    assert (batch == singles).all(), (batch, singles)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1), drop=st.integers(min_value=0, max_value=3))
def test_lane_subset_invariance(seed, drop):
    """A lane's result does not depend on which other lanes share the batch."""
    lane_seeds = [RandomStreams(seed).fork(k).seed for k in range(4)]
    full = run_lanes(_PROP_SPEC, _PROP_CONS, _PROP_PROBE, lane_seeds)
    subset = lane_seeds[:drop] + lane_seeds[drop + 1:]
    partial = run_lanes(_PROP_SPEC, _PROP_CONS, _PROP_PROBE, subset)
    expected = np.concatenate([full[:drop], full[drop + 1:]])
    assert (partial == expected).all()


# ---------------------------------------------------------------------------
# Quarantine and coverage boundaries
# ---------------------------------------------------------------------------


class TestQuarantine:
    def test_stalled_lanes_return_nan_not_garbage(self):
        """A lane that exhausts the iteration budget is NaN, not a wrong number."""
        out = run_lanes(
            _PROP_SPEC, _PROP_CONS, VectorBurstProbe(200, 500, "out"),
            [RandomStreams(3).fork(k).seed for k in range(3)],
            max_iters=10,
        )
        assert np.isnan(out).all()

    def test_finished_lanes_unaffected_by_budget(self):
        lane_seeds = [RandomStreams(9).fork(k).seed for k in range(2)]
        free = run_lanes(_PROP_SPEC, _PROP_CONS, _PROP_PROBE, lane_seeds)
        assert np.isfinite(free).all()

    def test_empty_lane_list(self):
        out = run_lanes(_PROP_SPEC, _PROP_CONS, _PROP_PROBE, [])
        assert out.shape == (0,)


class TestUnsupportedReason:
    def test_ps_burst_supported(self):
        assert unsupported_reason(_PROP_SPEC, _PROP_CONS, _PROP_PROBE) is None

    def test_rr_discipline_unsupported(self):
        reason = unsupported_reason(DEFAULT_SUNPARAGON, _PROP_CONS, _PROP_PROBE)
        assert reason is not None and "discipline" in reason

    def test_foreign_spec_unsupported(self):
        class NotASpec:
            pass

        assert unsupported_reason(NotASpec(), (), _PROP_PROBE) is not None

    def test_foreign_probe_unsupported(self):
        assert unsupported_reason(_PROP_SPEC, _PROP_CONS, object()) is not None

    def test_run_lanes_raises_workload_error(self):
        with pytest.raises(WorkloadError):
            run_lanes(DEFAULT_SUNPARAGON, _PROP_CONS, _PROP_PROBE, [1, 2])
