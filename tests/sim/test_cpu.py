"""Unit and property tests for the time-shared CPU models."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.engine import Simulator
from repro.sim.cpu import TimeSharedCPU


def _run_jobs(discipline: str, works: list[float], quantum: float = 0.01, cs: float = 0.0,
              priorities: list[int] | None = None):
    """Submit all jobs at t=0; return (completion_times, cpu)."""
    sim = Simulator()
    cpu = TimeSharedCPU(sim, discipline=discipline, quantum=quantum, context_switch=cs)
    priorities = priorities or [0] * len(works)
    events = [cpu.execute(w, priority=pr, tag=f"job{i}") for i, (w, pr) in enumerate(zip(works, priorities))]
    sim.run(until=10_000)
    return [ev.value if ev.triggered else None for ev in events], cpu, sim


class TestProcessorSharing:
    def test_single_job_runs_at_full_speed(self):
        times, cpu, _ = _run_jobs("ps", [3.0])
        assert times[0] == pytest.approx(3.0)

    def test_two_equal_jobs_share_equally(self):
        times, _, _ = _run_jobs("ps", [1.0, 1.0])
        assert times == [pytest.approx(2.0), pytest.approx(2.0)]

    def test_p_plus_one_slowdown(self):
        # One 1s job against p=3 long jobs: finishes at ~4s while the
        # hogs still run — the paper's slowdown = p + 1.
        times, _, _ = _run_jobs("ps", [1.0, 10.0, 10.0, 10.0])
        assert times[0] == pytest.approx(4.0)

    def test_short_job_departure_speeds_up_rest(self):
        # 1s and 3s job: share until t=2 (each got 1s), then the long
        # job runs alone: finishes at 2 + 2 = 4.
        times, _, _ = _run_jobs("ps", [1.0, 3.0])
        assert times == [pytest.approx(2.0), pytest.approx(4.0)]

    def test_strict_priority_starves_lower_class(self):
        times, _, _ = _run_jobs("ps", [2.0, 2.0], priorities=[0, 1])
        assert times[0] == pytest.approx(2.0)
        assert times[1] == pytest.approx(4.0)

    def test_zero_work_completes_immediately(self, sim):
        cpu = TimeSharedCPU(sim, discipline="ps")
        ev = cpu.execute(0.0)
        assert ev.triggered
        assert ev.value == 0.0

    def test_negative_work_rejected(self, sim):
        cpu = TimeSharedCPU(sim, discipline="ps")
        with pytest.raises(ValueError):
            cpu.execute(-1.0)

    def test_late_arrival(self):
        sim = Simulator()
        cpu = TimeSharedCPU(sim, discipline="ps")

        def scenario(sim, cpu):
            first = cpu.execute(2.0, tag="first")
            yield sim.timeout(1.0)
            second = cpu.execute(2.0, tag="second")
            yield sim.all_of([first, second])
            return sim.now

        # first runs alone 0-1 (1s done), shares 1-3 (1s more) -> done t=3;
        # second: 1s served by t=3, runs alone 3-4.
        assert sim.run_process(scenario(sim, cpu)) == pytest.approx(4.0)

    def test_busy_time_accounting(self):
        times, cpu, sim = _run_jobs("ps", [1.0, 1.0])
        assert cpu.busy_time == pytest.approx(2.0)
        assert cpu.utilization(4.0) == pytest.approx(0.5)

    def test_service_by_tag(self):
        _, cpu, _ = _run_jobs("ps", [1.0, 2.0])
        assert cpu.service_by_tag["job0"] == pytest.approx(1.0)
        assert cpu.service_by_tag["job1"] == pytest.approx(2.0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=6))
    def test_work_conservation(self, works):
        """Total service delivered equals total work submitted, and the
        CPU is never idle while jobs remain (makespan == total work)."""
        times, cpu, sim = _run_jobs("ps", works)
        assert all(t is not None for t in times)
        assert cpu.busy_time == pytest.approx(sum(works), rel=1e-9)
        assert max(times) == pytest.approx(sum(works), rel=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0.05, max_value=3.0), min_size=2, max_size=5))
    def test_equal_jobs_finish_together(self, works):
        """Identical jobs submitted together finish at the same time."""
        w = works[0]
        times, _, _ = _run_jobs("ps", [w] * len(works))
        assert all(t == pytest.approx(times[0]) for t in times)


class TestRoundRobin:
    def test_single_job_exact(self):
        times, _, _ = _run_jobs("rr", [1.0], quantum=0.01)
        assert times[0] == pytest.approx(1.0)

    def test_two_jobs_approximate_fair_share(self):
        times, _, _ = _run_jobs("rr", [1.0, 1.0], quantum=0.01)
        # Both finish within one quantum of the fluid limit (t=2).
        assert times[0] == pytest.approx(2.0, abs=0.02)
        assert times[1] == pytest.approx(2.0, abs=0.02)

    def test_context_switch_overhead(self):
        times_no_cs, _, _ = _run_jobs("rr", [1.0, 1.0], quantum=0.01, cs=0.0)
        times_cs, cpu_cs, _ = _run_jobs("rr", [1.0, 1.0], quantum=0.01, cs=0.001)
        assert max(times_cs) > max(times_no_cs)
        assert cpu_cs.switches > 0

    def test_work_conservation_without_cs(self):
        works = [0.5, 1.5, 0.25]
        times, cpu, _ = _run_jobs("rr", works, quantum=0.01)
        assert cpu.busy_time == pytest.approx(sum(works), rel=1e-9)
        assert max(times) == pytest.approx(sum(works), rel=1e-9)

    def test_session_continuation_keeps_cpu(self):
        """A tag submitting back-to-back small jobs keeps its slot: the
        total latency of N sequential small jobs matches one combined
        job of the same total size, instead of paying a rotation each."""

        def sequential_latency(chunks: int, total: float) -> float:
            sim = Simulator()
            cpu = TimeSharedCPU(sim, discipline="rr", quantum=0.01)
            hog = cpu.execute(100.0, tag="hog")

            def probe(sim, cpu):
                start = sim.now
                for _ in range(chunks):
                    yield cpu.execute(total / chunks, tag="probe")
                return sim.now - start

            p = sim.process(probe(sim, cpu))
            return sim.run_until(p)

        one_chunk = sequential_latency(1, 0.05)
        many_chunks = sequential_latency(10, 0.05)
        # Without sessions, 10 chunks would cost ~10 rotations (~0.1s
        # extra against one hog); with sessions they cost about the same.
        assert many_chunks == pytest.approx(one_chunk, rel=0.25)

    def test_priority_classes(self):
        times, _, _ = _run_jobs("rr", [0.5, 0.5], quantum=0.01, priorities=[1, 0])
        assert times[1] == pytest.approx(0.5, abs=0.02)
        assert times[0] == pytest.approx(1.0, abs=0.03)

    def test_p_plus_one_approximation(self):
        """The paper's slowdown model: a task against p CPU-bound jobs
        runs ~(p+1)x slower under round robin."""
        for p in (1, 2, 3):
            times, _, _ = _run_jobs("rr", [1.0] + [50.0] * p, quantum=0.001)
            assert times[0] == pytest.approx(p + 1.0, rel=0.02)

    def test_invalid_discipline(self, sim):
        with pytest.raises(ValueError):
            TimeSharedCPU(sim, discipline="fifo")

    def test_load_property(self, sim):
        cpu = TimeSharedCPU(sim, discipline="rr")
        cpu.execute(1.0)
        cpu.execute(1.0)
        assert cpu.load == 2

    def test_jobs_completed_counter(self):
        _, cpu, _ = _run_jobs("rr", [0.1, 0.2, 0.3])
        assert cpu.jobs_completed == 3
