"""Unit tests for FIFO resources and stores."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.resources import FifoResource, Store


class TestFifoResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            FifoResource(sim, capacity=0)

    def test_immediate_grant_under_capacity(self, sim):
        res = FifoResource(sim, capacity=2)

        def proc(sim, res):
            r1, r2 = res.request(), res.request()
            yield r1
            yield r2
            return sim.now

        assert sim.run_process(proc(sim, res)) == 0.0
        assert res.in_use == 2

    def test_serialisation(self, sim):
        res = FifoResource(sim, capacity=1)
        finish = []

        def user(sim, res, label):
            yield from res.acquire(1.0)
            finish.append((label, sim.now))

        for label in "abc":
            sim.process(user(sim, res, label))
        sim.run()
        assert finish == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_fifo_order(self, sim):
        res = FifoResource(sim, capacity=1)
        order = []

        def user(sim, res, label, arrive):
            yield sim.timeout(arrive)
            yield from res.acquire(1.0)
            order.append(label)

        sim.process(user(sim, res, "first", 0.0))
        sim.process(user(sim, res, "second", 0.1))
        sim.process(user(sim, res, "third", 0.2))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_release_wrong_resource_rejected(self, sim):
        res1, res2 = FifoResource(sim, 1, "a"), FifoResource(sim, 1, "b")
        req = res1.request()
        with pytest.raises(SimulationError):
            res2.release(req)

    def test_cancel_queued_request(self, sim):
        res = FifoResource(sim, capacity=1)
        held = res.request()  # granted
        queued = res.request()
        assert not queued.triggered
        res.release(queued)  # cancel while waiting
        assert res.queue_length == 0
        res.release(held)
        assert res.in_use == 0

    def test_double_release_detected(self, sim):
        res = FifoResource(sim, capacity=1)
        req = res.request()
        res.release(req)
        with pytest.raises(SimulationError):
            res.release(req)

    def test_utilization(self, sim):
        res = FifoResource(sim, capacity=1)

        def user(sim, res):
            yield from res.acquire(2.0)
            yield sim.timeout(2.0)

        sim.process(user(sim, res))
        sim.run()
        assert res.utilization() == pytest.approx(0.5)

    def test_mean_queue_length(self, sim):
        res = FifoResource(sim, capacity=1)

        def user(sim, res):
            yield from res.acquire(1.0)

        sim.process(user(sim, res))
        sim.process(user(sim, res))
        sim.run()
        # Second user waits 1s over a 2s horizon.
        assert res.mean_queue_length() == pytest.approx(0.5)

    def test_total_grants(self, sim):
        res = FifoResource(sim, capacity=1)

        def user(sim, res):
            yield from res.acquire(0.1)

        for _ in range(5):
            sim.process(user(sim, res))
        sim.run()
        assert res.total_grants == 5


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)

        def proc(sim, store):
            yield store.put("item")
            value = yield store.get()
            return value

        assert sim.run_process(proc(sim, store)) == "item"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)

        def consumer(sim, store):
            value = yield store.get()
            return (value, sim.now)

        def producer(sim, store):
            yield sim.timeout(2.0)
            yield store.put("late")

        c = sim.process(consumer(sim, store))
        sim.process(producer(sim, store))
        sim.run()
        assert c.value == ("late", 2.0)

    def test_bounded_put_blocks(self, sim):
        store = Store(sim, capacity=1)
        log = []

        def producer(sim, store):
            for k in range(3):
                yield store.put(k)
                log.append(("put", k, sim.now))

        def consumer(sim, store):
            while True:
                yield sim.timeout(1.0)
                item = yield store.get()
                log.append(("got", item, sim.now))
                if item == 2:
                    return

        sim.process(producer(sim, store))
        sim.process(consumer(sim, store))
        sim.run()
        puts = [entry for entry in log if entry[0] == "put"]
        # put 0 immediate; put 1 immediate into buffer? capacity 1: put0 at 0,
        # put1 blocks until get at t=1, put2 blocks until get at t=2.
        assert puts[0][2] == 0.0
        assert puts[1][2] == 1.0
        assert puts[2][2] == 2.0

    def test_fifo_item_order(self, sim):
        store = Store(sim)

        def proc(sim, store):
            for k in range(3):
                yield store.put(k)
            items = []
            for _ in range(3):
                items.append((yield store.get()))
            return items

        assert sim.run_process(proc(sim, store)) == [0, 1, 2]

    def test_len_and_full(self, sim):
        store = Store(sim, capacity=2)
        store.put("a")
        store.put("b")
        assert len(store) == 2
        assert store.is_full

    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)

    def test_handoff_to_waiting_getter(self, sim):
        store = Store(sim, capacity=1)

        def consumer(sim, store):
            value = yield store.get()
            return value

        c = sim.process(consumer(sim, store))
        sim.run(until=1.0)
        store.put("direct")
        sim.run(until=2.0)
        assert c.value == "direct"
        assert len(store) == 0
