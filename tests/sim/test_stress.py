"""Cross-validation stress tests for the kernel and the PS CPU.

Two independent references keep the substrate honest:

* random fork/join process trees, checked against a recursive
  closed-form evaluation of their finish times;
* the fluid processor-sharing CPU under staggered arrivals, checked
  against a small-step Euler integration of the same fluid dynamics —
  a genuinely independent numerical method.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.cpu import TimeSharedCPU
from repro.sim.engine import Simulator

# --- fork/join trees -------------------------------------------------------

tree_strategy = st.recursive(
    st.floats(min_value=0.0, max_value=5.0),  # leaf: a plain timeout
    lambda children: st.tuples(
        st.floats(min_value=0.0, max_value=5.0),  # own work before the join
        st.lists(children, min_size=1, max_size=3),
    ),
    max_leaves=12,
)


def expected_finish(tree) -> float:
    """Closed form: own delay + max over children's finish times."""
    if isinstance(tree, float):
        return tree
    own, children = tree
    return own + max(expected_finish(c) for c in children)


def spawn(sim: Simulator, tree):
    if isinstance(tree, float):
        def leaf():
            yield sim.timeout(tree)
            return sim.now

        return sim.process(leaf())

    own, children = tree

    def node():
        yield sim.timeout(own)
        procs = [spawn(sim, child_tree) for child_tree in children]
        yield sim.all_of(procs)
        return sim.now

    return sim.process(node())


class TestForkJoinTrees:
    @settings(max_examples=60, deadline=None)
    @given(tree_strategy)
    def test_finish_time_matches_closed_form(self, tree):
        sim = Simulator()
        root = spawn(sim, tree)
        sim.run()
        assert root.value == pytest.approx(expected_finish(tree), abs=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(tree_strategy, min_size=2, max_size=4))
    def test_parallel_trees_independent(self, trees):
        sim = Simulator()
        roots = [spawn(sim, t) for t in trees]
        sim.run()
        for root, tree in zip(roots, trees):
            assert root.value == pytest.approx(expected_finish(tree), abs=1e-9)


# --- fluid PS vs Euler reference -------------------------------------------------


def euler_ps_reference(jobs: list[tuple[float, float]], dt: float = 2e-4) -> list[float]:
    """Integrate the PS fluid: each resident job drains at rate 1/n.

    *jobs* is ``[(arrival, work), ...]``; returns completion times in
    job order. O(horizon/dt) — keep the scenarios small.
    """
    remaining = [w for _, w in jobs]
    done = [None] * len(jobs)
    t = 0.0
    while any(d is None for d in done):
        active = [
            k
            for k in range(len(jobs))
            if done[k] is None and jobs[k][0] <= t and remaining[k] > 0
        ]
        if active:
            rate = 1.0 / len(active)
            for k in active:
                remaining[k] -= rate * dt
                if remaining[k] <= 0:
                    done[k] = t + dt
        t += dt
        if t > 1e4:  # pragma: no cover - safety valve
            raise RuntimeError("reference integration diverged")
    return done  # type: ignore[return-value]


class TestFluidPSAgainstEuler:
    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=2.0),  # arrival
                st.floats(min_value=0.05, max_value=2.0),  # work
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_completion_times_match(self, jobs):
        sim = Simulator()
        cpu = TimeSharedCPU(sim, discipline="ps")
        events = {}

        def submitter(k, arrival, work):
            yield sim.timeout(arrival)
            events[k] = cpu.execute(work, tag=f"job{k}")

        for k, (arrival, work) in enumerate(jobs):
            sim.process(submitter(k, arrival, work))
        sim.run(until=1000.0)

        reference = euler_ps_reference(jobs)
        for k, (arrival, _work) in enumerate(jobs):
            simulated_finish = arrival + 0  # arrival + response
            assert events[k].triggered
            response = events[k].value
            finish = arrival + response
            assert finish == pytest.approx(reference[k], abs=0.01)

    def test_textbook_scenario(self):
        """Arrivals at 0 and 1 with works 2 and 2: finishes at 3 and 4."""
        jobs = [(0.0, 2.0), (1.0, 2.0)]
        sim = Simulator()
        cpu = TimeSharedCPU(sim, discipline="ps")
        events = {}

        def submitter(k, arrival, work):
            yield sim.timeout(arrival)
            events[k] = cpu.execute(work, tag=f"job{k}")

        for k, (arrival, work) in enumerate(jobs):
            sim.process(submitter(k, arrival, work))
        sim.run(until=100.0)
        # Job0: 1s alone (1 done) + shares until both have 1 left ->
        # at t=3 job0 done (1 + 2x1); job1 finishes alone at t=4.
        assert 0.0 + events[0].value == pytest.approx(3.0)
        assert 1.0 + events[1].value == pytest.approx(4.0)
