"""Unit tests for the contended link."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.sim.link import Link


def _wire(s: float) -> float:
    return 1e-3 + s * 1e-6


class TestLink:
    def test_occupancy_matches_curve(self, sim):
        link = Link(sim, wire_time=_wire)
        assert link.occupancy(1000) == pytest.approx(2e-3)

    def test_negative_size_rejected(self, sim):
        link = Link(sim, wire_time=_wire)
        with pytest.raises(ValueError):
            link.occupancy(-1)

    def test_negative_wire_time_detected(self, sim):
        link = Link(sim, wire_time=lambda s: -1.0)
        with pytest.raises(ValueError):
            link.occupancy(10)

    def test_single_transfer_time(self, sim):
        link = Link(sim, wire_time=_wire)

        def proc(sim, link):
            queued = yield from link.transfer(1000, "out")
            return (sim.now, queued)

        now, queued = sim.run_process(proc(sim, link))
        assert now == pytest.approx(2e-3)
        assert queued == 0.0

    def test_half_duplex_serialises_directions(self, sim):
        link = Link(sim, wire_time=lambda s: 1.0)
        done = []

        def sender(sim, link, direction):
            yield from link.transfer(1, direction)
            done.append((direction, sim.now))

        sim.process(sender(sim, link, "out"))
        sim.process(sender(sim, link, "in"))
        sim.run()
        assert done == [("out", 1.0), ("in", 2.0)]

    def test_full_duplex_parallel_directions(self, sim):
        link = Link(sim, wire_time=lambda s: 1.0, full_duplex=True)
        done = []

        def sender(sim, link, direction):
            yield from link.transfer(1, direction)
            done.append((direction, sim.now))

        sim.process(sender(sim, link, "out"))
        sim.process(sender(sim, link, "in"))
        sim.run()
        assert done == [("out", 1.0), ("in", 1.0)]

    def test_queueing_delay_reported(self, sim):
        link = Link(sim, wire_time=lambda s: 1.0)

        def first(sim, link):
            yield from link.transfer(1, "out")

        def second(sim, link):
            queued = yield from link.transfer(1, "out")
            return queued

        sim.process(first(sim, link))
        p = sim.process(second(sim, link))
        sim.run()
        assert p.value == pytest.approx(1.0)

    def test_fifo_order_across_apps(self, sim):
        link = Link(sim, wire_time=lambda s: 0.5)
        order = []

        def sender(sim, link, label, arrive):
            yield sim.timeout(arrive)
            yield from link.transfer(1, "out")
            order.append(label)

        sim.process(sender(sim, link, "b", 0.1))
        sim.process(sender(sim, link, "a", 0.0))
        sim.process(sender(sim, link, "c", 0.2))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_invalid_direction(self, sim):
        link = Link(sim, wire_time=_wire)

        def proc(sim, link):
            yield from link.transfer(1, "sideways")

        with pytest.raises(ValueError):
            sim.run_process(proc(sim, link))

    def test_statistics(self, sim):
        link = Link(sim, wire_time=lambda s: 0.5)

        def proc(sim, link):
            for _ in range(4):
                yield from link.transfer(100, "out")
            yield sim.timeout(2.0)

        sim.process(proc(sim, link))
        sim.run()
        assert link.messages_sent == 4
        assert link.words_sent == 400
        assert link.wire_busy == pytest.approx(2.0)
        assert link.utilization() == pytest.approx(0.5)
