"""Unit and property tests for the measurement instruments."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.monitors import Interval, Tally, Timeline, TimeWeighted


class TestTally:
    def test_empty(self):
        t = Tally()
        assert t.count == 0
        assert math.isnan(t.mean)
        assert math.isnan(t.variance)

    def test_single_observation(self):
        t = Tally()
        t.record(5.0)
        assert t.mean == 5.0
        assert math.isnan(t.variance)
        assert t.minimum == t.maximum == 5.0

    def test_known_values(self):
        t = Tally()
        t.extend([1.0, 2.0, 3.0, 4.0])
        assert t.mean == pytest.approx(2.5)
        assert t.variance == pytest.approx(np.var([1, 2, 3, 4], ddof=1))
        assert t.total == 10.0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=50))
    def test_matches_numpy(self, values):
        t = Tally()
        t.extend(values)
        assert t.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-9)
        assert t.std == pytest.approx(np.std(values, ddof=1), rel=1e-9, abs=1e-6)
        assert t.minimum == min(values)
        assert t.maximum == max(values)


class TestTimeWeighted:
    def test_constant_signal(self):
        tw = TimeWeighted(initial=3.0)
        assert tw.average(10.0) == pytest.approx(3.0)

    def test_step_signal(self):
        tw = TimeWeighted()
        tw.record(0.0, 1.0)
        tw.record(5.0, 3.0)
        assert tw.average(10.0) == pytest.approx(2.0)

    def test_time_must_not_decrease(self):
        tw = TimeWeighted()
        tw.record(5.0, 1.0)
        with pytest.raises(ValueError):
            tw.record(4.0, 2.0)

    def test_horizon_before_last_change_rejected(self):
        tw = TimeWeighted()
        tw.record(5.0, 1.0)
        with pytest.raises(ValueError):
            tw.average(4.0)

    def test_current(self):
        tw = TimeWeighted()
        tw.record(1.0, 7.0)
        assert tw.current == 7.0


class TestTimeline:
    def test_add_and_query(self):
        tl = Timeline()
        tl.add(0.0, 1.0, "sun", "serial")
        tl.add(1.0, 3.0, "sun", "wait")
        tl.add(0.0, 3.0, "cm2", "execute")
        assert tl.time_in_state("sun", "serial") == pytest.approx(1.0)
        assert tl.time_in_state("sun", "wait") == pytest.approx(2.0)
        assert tl.time_in_state("cm2", "execute") == pytest.approx(3.0)
        assert tl.actors() == ["sun", "cm2"]
        assert tl.span == pytest.approx(3.0)

    def test_zero_length_intervals_dropped(self):
        tl = Timeline()
        tl.add(1.0, 1.0, "sun", "serial")
        assert tl.intervals == []

    def test_backwards_interval_rejected(self):
        tl = Timeline()
        with pytest.raises(ValueError):
            tl.add(2.0, 1.0, "sun", "serial")

    def test_interval_duration(self):
        iv = Interval(1.0, 3.5, "sun", "serial")
        assert iv.duration == pytest.approx(2.5)

    def test_for_actor_filters(self):
        tl = Timeline()
        tl.add(0.0, 1.0, "a", "x")
        tl.add(0.0, 1.0, "b", "y")
        assert [iv.actor for iv in tl.for_actor("a")] == ["a"]

    def test_empty_span(self):
        assert Timeline().span == 0.0


class TestGantt:
    def _timeline(self):
        tl = Timeline()
        tl.add(0.0, 1.0, "sun", "serial")
        tl.add(1.0, 3.0, "sun", "wait")
        tl.add(0.5, 3.0, "cm2", "execute")
        tl.add(0.0, 0.5, "cm2", "idle")
        return tl

    def test_renders_rows_and_legend(self):
        text = self._timeline().render_gantt(width=20)
        lines = text.splitlines()
        assert lines[0].startswith("sun |")
        assert lines[1].startswith("cm2 |")
        assert "s = serial" in text and "w = wait" in text
        assert "e = execute" in text and "i = idle" in text

    def test_glyph_collisions_resolved(self):
        tl = Timeline()
        tl.add(0.0, 1.0, "a", "serial")
        tl.add(1.0, 2.0, "a", "send")  # both start with 's'
        text = tl.render_gantt(width=16)
        assert "s = " in text and "t = send" in text or "serial" in text
        # Two distinct glyphs must appear in the legend.
        legend = text.splitlines()[-2]
        assert legend.count("=") == 2

    def test_custom_glyphs(self):
        text = self._timeline().render_gantt(width=16, glyphs={"serial": "#"})
        assert "# = serial" in text

    def test_empty_timeline(self):
        assert Timeline().render_gantt() == "(empty timeline)"

    def test_width_validation(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            self._timeline().render_gantt(width=4)
