"""Unit tests for the DES kernel."""

from __future__ import annotations

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    PRIORITY_LATE,
    PRIORITY_URGENT,
    Simulator,
)


class TestEventLifecycle:
    def test_new_event_is_untriggered(self, sim):
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed

    def test_succeed_sets_value(self, sim):
        ev = sim.event()
        ev.succeed(42)
        assert ev.triggered
        assert ev.value == 42
        assert ev.ok

    def test_fail_stores_exception(self, sim):
        ev = sim.event()
        exc = RuntimeError("boom")
        ev.fail(exc)
        assert ev.triggered
        assert not ev.ok
        assert ev.value is exc

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError())

    def test_fail_requires_exception(self, sim):
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")  # type: ignore[arg-type]

    def test_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value
        with pytest.raises(SimulationError):
            _ = ev.ok

    def test_unwaited_failed_event_surfaces_at_run(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("lost"))
        with pytest.raises(RuntimeError, match="lost"):
            sim.run()


class TestTimeout:
    def test_timeout_advances_clock(self, sim):
        sim.timeout(5.0)
        sim.run()
        assert sim.now == 5.0

    def test_timeout_carries_value(self, sim):
        def proc(sim):
            got = yield sim.timeout(1.0, value="hello")
            return got

        assert sim.run_process(proc(sim)) == "hello"

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_zero_delay_fires_at_now(self, sim):
        def proc(sim):
            yield sim.timeout(0.0)
            return sim.now

        assert sim.run_process(proc(sim)) == 0.0


class TestProcess:
    def test_return_value(self, sim):
        def proc(sim):
            yield sim.timeout(1.0)
            return "done"

        assert sim.run_process(proc(sim)) == "done"

    def test_sequential_timeouts_accumulate(self, sim):
        def proc(sim):
            yield sim.timeout(1.0)
            yield sim.timeout(2.5)
            return sim.now

        assert sim.run_process(proc(sim)) == 3.5

    def test_process_is_event(self, sim):
        def child(sim):
            yield sim.timeout(2.0)
            return 7

        def parent(sim):
            value = yield sim.process(child(sim))
            return value * 2

        assert sim.run_process(parent(sim)) == 14

    def test_exception_propagates_to_waiter(self, sim):
        def child(sim):
            yield sim.timeout(1.0)
            raise ValueError("child died")

        def parent(sim):
            try:
                yield sim.process(child(sim))
            except ValueError as exc:
                return str(exc)
            return "no error"

        assert sim.run_process(parent(sim)) == "child died"

    def test_failed_process_reraised_by_run_process(self, sim):
        def proc(sim):
            yield sim.timeout(0.5)
            raise KeyError("gone")

        with pytest.raises(KeyError):
            sim.run_process(proc(sim))

    def test_yield_non_event_fails_process(self, sim):
        def proc(sim):
            yield 42  # type: ignore[misc]

        with pytest.raises(SimulationError, match="must yield Event"):
            sim.run_process(proc(sim))

    def test_wait_on_already_processed_event(self, sim):
        ev = sim.event()
        ev.succeed("early")

        def late_waiter(sim, ev):
            yield sim.timeout(3.0)
            value = yield ev
            return value

        assert sim.run_process(late_waiter(sim, ev)) == "early"

    def test_cross_simulator_event_rejected(self):
        sim1, sim2 = Simulator(), Simulator()
        foreign = sim2.event()

        def proc(sim):
            yield foreign

        with pytest.raises(SimulationError, match="different Simulator"):
            sim1.run_process(proc(sim1))

    def test_process_requires_generator(self, sim):
        with pytest.raises(TypeError):
            sim.process(lambda: None)  # type: ignore[arg-type]

    def test_is_alive(self, sim):
        def proc(sim):
            yield sim.timeout(1.0)

        p = sim.process(proc(sim))
        assert p.is_alive
        sim.run()
        assert not p.is_alive


class TestInterrupt:
    def test_interrupt_delivers_cause(self, sim):
        def victim(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupt as intr:
                return ("interrupted", intr.cause, sim.now)
            return "finished"

        def attacker(sim, target):
            yield sim.timeout(2.0)
            target.interrupt("stop it")

        v = sim.process(victim(sim))
        sim.process(attacker(sim, v))
        sim.run()
        assert v.value == ("interrupted", "stop it", 2.0)

    def test_unhandled_interrupt_fails_process(self, sim):
        def victim(sim):
            yield sim.timeout(100.0)

        def attacker(sim, target):
            yield sim.timeout(1.0)
            target.interrupt()

        v = sim.process(victim(sim))
        sim.process(attacker(sim, v))
        sim.run(until=10)
        assert v.triggered and not v.ok
        assert isinstance(v.value, Interrupt)

    def test_interrupt_dead_process_rejected(self, sim):
        def victim(sim):
            yield sim.timeout(1.0)

        v = sim.process(victim(sim))
        sim.run()
        with pytest.raises(SimulationError):
            v.interrupt()

    def test_interrupted_process_can_continue(self, sim):
        def victim(sim):
            total = 0.0
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                pass
            yield sim.timeout(5.0)
            return sim.now

        def attacker(sim, target):
            yield sim.timeout(2.0)
            target.interrupt()

        v = sim.process(victim(sim))
        sim.process(attacker(sim, v))
        sim.run()
        assert v.value == 7.0


class TestConditions:
    def test_all_of_waits_for_all(self, sim):
        def proc(sim):
            t1, t2 = sim.timeout(1.0, value="a"), sim.timeout(3.0, value="b")
            results = yield sim.all_of([t1, t2])
            return (sim.now, sorted(results.values()))

        assert sim.run_process(proc(sim)) == (3.0, ["a", "b"])

    def test_any_of_fires_on_first(self, sim):
        def proc(sim):
            t1, t2 = sim.timeout(1.0, value="fast"), sim.timeout(3.0, value="slow")
            results = yield sim.any_of([t1, t2])
            return (sim.now, list(results.values()))

        assert sim.run_process(proc(sim)) == (1.0, ["fast"])

    def test_all_of_empty_fires_immediately(self, sim):
        def proc(sim):
            yield sim.all_of([])
            return sim.now

        assert sim.run_process(proc(sim)) == 0.0

    def test_all_of_propagates_failure(self, sim):
        def failing(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("bad")

        def proc(sim):
            p = sim.process(failing(sim))
            t = sim.timeout(5.0)
            try:
                yield sim.all_of([p, t])
            except RuntimeError:
                return "failed"
            return "ok"

        assert sim.run_process(proc(sim)) == "failed"


class TestScheduling:
    def test_priority_order_at_same_time(self, sim):
        order = []

        def recorder(sim, label, priority):
            yield sim.timeout(1.0, priority=priority)
            order.append(label)

        sim.process(recorder(sim, "late", PRIORITY_LATE))
        sim.process(recorder(sim, "urgent", PRIORITY_URGENT))
        sim.process(recorder(sim, "normal", 1))
        sim.run()
        assert order == ["urgent", "normal", "late"]

    def test_fifo_within_priority(self, sim):
        order = []

        def recorder(sim, label):
            yield sim.timeout(1.0)
            order.append(label)

        for label in "abc":
            sim.process(recorder(sim, label))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_run_until_time(self, sim):
        def ticker(sim):
            while True:
                yield sim.timeout(1.0)

        sim.process(ticker(sim))
        sim.run(until=5.5)
        assert sim.now == 5.5

    def test_run_until_past_rejected(self, sim):
        sim.timeout(1.0)
        sim.run()
        with pytest.raises(ValueError):
            sim.run(until=0.5)

    def test_peek_and_step(self, sim):
        sim.timeout(2.0)
        assert sim.peek() == 2.0
        sim.step()
        assert sim.now == 2.0
        assert sim.peek() == float("inf")

    def test_step_on_empty_queue_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.step()

    def test_deadlock_detection(self, sim):
        def stuck(sim):
            yield sim.event()  # never triggered

        sim.process(stuck(sim))
        with pytest.raises(DeadlockError):
            sim.run()

    def test_run_until_event(self, sim):
        def ticker(sim):
            while True:
                yield sim.timeout(1.0)

        def probe(sim):
            yield sim.timeout(3.0)
            return "done"

        sim.process(ticker(sim))
        p = sim.process(probe(sim))
        assert sim.run_until(p) == "done"
        assert sim.now == 3.0

    def test_run_until_limit(self, sim):
        def slow(sim):
            yield sim.timeout(100.0)

        p = sim.process(slow(sim))
        with pytest.raises(DeadlockError):
            sim.run_until(p, limit=10.0)

    def test_determinism(self):
        def build_and_run() -> list[tuple[str, float]]:
            sim = Simulator()
            log = []

            def worker(sim, name, delay):
                for _ in range(3):
                    yield sim.timeout(delay)
                    log.append((name, sim.now))

            sim.process(worker(sim, "x", 1.0))
            sim.process(worker(sim, "y", 1.0))
            sim.process(worker(sim, "z", 0.5))
            sim.run()
            return log

        assert build_and_run() == build_and_run()
