"""Edge cases across the substrate: interrupts vs resources, zero sizes.

These document (and pin) the intended semantics of awkward-but-legal
situations an extension author will eventually hit.
"""

from __future__ import annotations

import pytest

from repro.sim.engine import Interrupt, Simulator
from repro.sim.resources import FifoResource
from repro.platforms.sunparagon import SunParagonPlatform
from repro.platforms.suncm2 import SunCM2Platform


class TestInterruptResourceInteraction:
    def test_interrupted_waiter_cancels_its_request(self, sim):
        """The canonical pattern: catch the interrupt, release the
        still-queued request, and the resource stays consistent."""
        res = FifoResource(sim, capacity=1)
        order = []

        def holder():
            yield from res.acquire(5.0)
            order.append(("holder-done", sim.now))

        def waiter():
            req = res.request()
            try:
                yield req
            except Interrupt:
                res.release(req)  # cancel the queued request
                order.append(("waiter-cancelled", sim.now))
                return
            res.release(req)

        def third():
            yield sim.timeout(2.0)
            yield from res.acquire(1.0)
            order.append(("third-done", sim.now))

        sim.process(holder())
        w = sim.process(waiter())

        def interrupter():
            yield sim.timeout(1.0)
            w.interrupt("changed my mind")

        sim.process(interrupter())
        sim.process(third())
        sim.run()
        assert ("waiter-cancelled", 1.0) in order
        # The third process gets the resource right after the holder,
        # unobstructed by the cancelled request.
        assert ("third-done", 6.0) in order

    def test_interrupt_while_holding_does_not_leak(self, sim):
        res = FifoResource(sim, capacity=1)

        def holder():
            req = res.request()
            yield req
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                pass
            finally:
                res.release(req)

        h = sim.process(holder())

        def interrupter():
            yield sim.timeout(1.0)
            h.interrupt()

        sim.process(interrupter())
        sim.run()
        assert res.in_use == 0


class TestZeroSizeMessages:
    def test_paragon_zero_size_message_still_costs_startup(self, quiet_paragon_spec):
        sim = Simulator()
        platform = SunParagonPlatform(sim, spec=quiet_paragon_spec)

        def probe():
            timing = yield from platform.send(0.0, tag="z")
            return timing

        timing = sim.run_until(sim.process(probe()))
        assert timing.total == pytest.approx(
            quiet_paragon_spec.message_dedicated_time(0.0), rel=1e-9
        )
        assert timing.total > 0

    def test_cm2_zero_count_transfer_is_free(self, quiet_cm2_spec):
        sim = Simulator()
        platform = SunCM2Platform(sim, spec=quiet_cm2_spec)

        def probe():
            elapsed = yield from platform.transfer(100.0, count=0, tag="z")
            return elapsed

        assert sim.run_until(sim.process(probe())) == 0.0


class TestSimultaneousEverything:
    def test_many_processes_at_one_instant(self, sim):
        """A thousand zero-delay processes resolve deterministically."""
        results = []

        def proc(k):
            yield sim.timeout(0.0)
            results.append(k)

        for k in range(1000):
            sim.process(proc(k))
        sim.run()
        assert results == list(range(1000))

    def test_chained_immediate_events(self, sim):
        """Events triggering each other at one instant all resolve."""
        depth = 200
        events = [sim.event(name=f"e{k}") for k in range(depth)]

        def chain(k):
            yield events[k]
            if k + 1 < depth:
                events[k + 1].succeed()

        for k in range(depth):
            sim.process(chain(k))
        events[0].succeed()
        sim.run()
        assert sim.now == 0.0
        assert all(ev.processed for ev in events)
