"""Differential proof of the event-horizon fast-forward scheduler.

The fast-forward round-robin CPU (:mod:`repro.sim.cpu`) must be
*semantically invisible*: completion times, ``busy_time``, context
``switches``, and per-tag service charges must match the quantum-
stepping oracle (``exact_stepping=True``) to 1e-9 on any workload.
These tests drive both implementations over 200+ seeded random
workloads (mixed tags, priority classes, context-switch costs,
zero-work jobs, simultaneous arrivals, late arrivals) plus targeted
edge cases, and pin the headline property: the fast-forward event
count is O(#arrivals + #completions), independent of the quantum.
"""

from __future__ import annotations

import random

import pytest

from repro.obs import MetricsSnapshot, observed
from repro.sim.cpu import TimeSharedCPU
from repro.sim.engine import PRIORITY_LATE, Simulator

TOL = 1e-9

# ---------------------------------------------------------------------------
# Workload generation and the differential runner
# ---------------------------------------------------------------------------

TAGS = ["a", "b", "c", None]


def random_workload(seed: int):
    """One seeded workload: CPU parameters plus (arrival, work, tag, prio)."""
    rng = random.Random(seed)
    params = {
        "context_switch": rng.choice([0.0, 0.0005, 0.002]),
        "quantum": rng.choice([0.001, 0.01, 0.037]),
        "capacity": rng.choice([1.0, 2.5]),
    }
    jobs = []
    for _ in range(rng.randint(1, 5)):
        work = 0.0 if rng.random() < 0.1 else rng.uniform(0.0, 0.5)
        jobs.append((0.0, work, rng.choice(TAGS), rng.choice([0, 0, 1])))
    arrivals = sorted(rng.uniform(0.0, 1.0) for _ in range(rng.randint(0, 4)))
    if len(arrivals) >= 2 and rng.random() < 0.5:
        arrivals[1] = arrivals[0]  # simultaneous late arrivals
    for t in arrivals:
        work = 0.0 if rng.random() < 0.1 else rng.uniform(0.0, 0.5)
        jobs.append((t, work, rng.choice(TAGS), rng.choice([0, 0, 1])))
    return params, jobs


def run_workload(params, jobs, exact: bool):
    """Run one workload; return every observable the oracle must match."""
    sim = Simulator()
    cpu = TimeSharedCPU(sim, discipline="rr", exact_stepping=exact, **params)
    completions: dict[int, float] = {}

    def submit(idx, t, work, tag, prio):
        def proc():
            if t > 0:
                yield sim.timeout(t)
            yield cpu.execute(work, tag=tag, priority=prio)
            completions[idx] = sim.now

        sim.process(proc(), name=f"job{idx}")

    for idx, (t, work, tag, prio) in enumerate(jobs):
        submit(idx, t, work, tag, prio)
    sim.run()
    return {
        "completions": completions,
        "busy_time": cpu.busy_time,
        "switches": cpu.switches,
        "service_by_tag": dict(cpu.service_by_tag),
        "jobs_completed": cpu.jobs_completed,
        "events": sim.events_processed,
        "epochs": sim.fastforward_epochs,
    }


def assert_agree(a, b, label=""):
    assert set(a["completions"]) == set(b["completions"]), label
    for k, t_exact in a["completions"].items():
        assert abs(t_exact - b["completions"][k]) <= TOL, (label, k)
    assert abs(a["busy_time"] - b["busy_time"]) <= TOL, label
    assert a["switches"] == b["switches"], label
    assert a["jobs_completed"] == b["jobs_completed"], label
    assert set(a["service_by_tag"]) == set(b["service_by_tag"]), label
    for tag, svc in a["service_by_tag"].items():
        assert abs(svc - b["service_by_tag"][tag]) <= TOL, (label, tag)


# 8 chunks x 30 seeds = 240 seeded random workloads.
@pytest.mark.parametrize("chunk", range(8))
def test_differential_random_workloads(chunk):
    for seed in range(chunk * 30, (chunk + 1) * 30):
        params, jobs = random_workload(seed)
        exact = run_workload(params, jobs, exact=True)
        fast = run_workload(params, jobs, exact=False)
        assert_agree(exact, fast, label=f"seed {seed}")
        # The oracle steps every quantum; fast-forward must not (only
        # zero-work-only workloads never reach the scheduler at all).
        if any(work > 0 for _, work, _, _ in jobs):
            assert fast["epochs"] > 0, f"seed {seed}: no fast-forward epochs recorded"


# ---------------------------------------------------------------------------
# Targeted edge cases
# ---------------------------------------------------------------------------


def _both(params, jobs):
    exact = run_workload(params, jobs, exact=True)
    fast = run_workload(params, jobs, exact=False)
    assert_agree(exact, fast)
    return exact, fast


def test_zero_work_jobs_complete_instantly():
    # Zero-work submissions complete synchronously at their submission
    # instant (response time 0.0) without entering the rotation — under
    # both implementations, busy or idle.
    params = {"quantum": 0.01, "context_switch": 0.001, "capacity": 1.0}
    jobs = [(0.0, 0.0, "z", 0), (0.0, 0.3, "a", 0), (0.4, 0.0, "z", 0)]
    exact, fast = _both(params, jobs)
    assert fast["jobs_completed"] == 1  # only the real job is scheduled
    assert fast["completions"][0] == 0.0
    assert fast["completions"][2] == pytest.approx(0.4, abs=TOL)


def test_simultaneous_arrivals_keep_fifo_order():
    params = {"quantum": 0.005, "context_switch": 0.0005, "capacity": 1.0}
    jobs = [(0.1, 0.2, "a", 0), (0.1, 0.2, "b", 0), (0.1, 0.2, "c", 0)]
    _both(params, jobs)


def test_priority_classes_starve_lower_class():
    params = {"quantum": 0.01, "context_switch": 0.0, "capacity": 1.0}
    jobs = [(0.0, 0.3, "hi", 0), (0.0, 0.3, "hi2", 0), (0.0, 0.1, "lo", 3)]
    exact, fast = _both(params, jobs)
    # Lower class only runs after both class-0 jobs finish.
    assert fast["completions"][2] == pytest.approx(0.7, rel=1e-12)


def test_session_continuation_same_tag_reclaims_credit():
    # Two same-tag jobs: when the first finishes mid-quantum the second
    # inherits the leftover credit without a context switch.
    params = {"quantum": 0.01, "context_switch": 0.002, "capacity": 1.0}
    jobs = [(0.0, 0.013, "s", 0), (0.0, 0.2, "s", 0), (0.0, 0.2, "other", 0)]
    _both(params, jobs)


def test_heavy_context_switch_cost():
    params = {"quantum": 0.001, "context_switch": 0.01, "capacity": 2.5}
    jobs = [(0.0, 0.05, "a", 0), (0.0, 0.05, "b", 0), (0.02, 0.05, "c", 0)]
    exact, fast = _both(params, jobs)
    assert fast["switches"] > 0


def test_single_job_no_switches():
    params = {"quantum": 0.001, "context_switch": 0.005, "capacity": 2.0}
    jobs = [(0.0, 1.0, "solo", 0)]
    exact, fast = _both(params, jobs)
    assert fast["switches"] == 0
    assert fast["completions"][0] == pytest.approx(0.5, rel=1e-12)


def test_arrival_mid_epoch_replans():
    # A late arrival lands strictly inside a long fast-forward epoch and
    # must interrupt it; the oracle proves the re-plan is exact.
    params = {"quantum": 0.05, "context_switch": 0.001, "capacity": 1.0}
    jobs = [(0.0, 1.0, "a", 0), (0.37, 0.2, "b", 0), (0.371, 0.1, "a", 0)]
    _both(params, jobs)


def test_mid_run_counter_reads_are_settled():
    """sync() exposes the same mid-run view the oracle maintains."""
    samples = {}

    def run(exact):
        sim = Simulator()
        cpu = TimeSharedCPU(
            sim, discipline="rr", quantum=0.01, context_switch=0.001, exact_stepping=exact
        )
        cpu.execute(0.5, tag="a")
        cpu.execute(0.5, tag="b")

        def probe():
            yield sim.timeout(0.25)
            cpu.sync()
            samples[exact] = (
                cpu.busy_time,
                cpu.switches,
                dict(cpu.service_by_tag),
                cpu.utilization(),
            )

        sim.process(probe(), name="probe")
        sim.run()

    run(True)
    run(False)
    exact_s, fast_s = samples[True], samples[False]
    assert exact_s[0] == pytest.approx(fast_s[0], abs=TOL)
    assert exact_s[1] == fast_s[1]
    for tag in exact_s[2]:
        assert exact_s[2][tag] == pytest.approx(fast_s[2][tag], abs=TOL)
    assert exact_s[3] == pytest.approx(fast_s[3], abs=TOL)


# ---------------------------------------------------------------------------
# The headline property: event count independent of quantum
# ---------------------------------------------------------------------------


def test_event_count_independent_of_quantum():
    """Fast-forward event count is O(#arrivals + #completions)."""
    params_jobs = [(0.0, 0.5, f"t{k}", 0) for k in range(4)]

    def events_for(quantum, exact):
        params = {"quantum": quantum, "context_switch": 0.0005, "capacity": 1.0}
        out = run_workload(params, params_jobs, exact=exact)
        return out["events"]

    fast_coarse = events_for(0.01, exact=False)
    fast_fine = events_for(0.0001, exact=False)
    # Identical event counts across a 100x quantum change…
    assert fast_fine == fast_coarse
    # …and a small constant factor of the structural event count
    # (4 submissions + 4 completions), not the millions of slices the
    # fine quantum implies.
    assert fast_fine <= 12 * len(params_jobs)
    # The oracle, by contrast, scales with 1/quantum.
    exact_coarse = events_for(0.01, exact=True)
    assert exact_coarse > 10 * fast_coarse


def test_fastforward_epochs_counter_exported_through_obs():
    with observed(seed=7) as ctx:
        params = {"quantum": 0.001, "context_switch": 0.0005, "capacity": 1.0}
        jobs = [(0.0, 0.3, "a", 0), (0.0, 0.3, "b", 0), (0.1, 0.2, "c", 0)]
        run_workload(params, jobs, exact=False)
        snap = ctx.metrics.snapshot()
    assert snap.counters.get("sim.fastforward_epochs", 0) > 0
    assert snap.counters.get("sim.events", 0) > 0
    # Monitor snapshots round-trip through the ToDict protocol.
    clone = MetricsSnapshot.from_dict(snap.to_dict())
    assert clone.to_dict() == snap.to_dict()
    assert clone.counters["sim.fastforward_epochs"] == snap.counters["sim.fastforward_epochs"]


# ---------------------------------------------------------------------------
# Supporting kernel features the fast-forward path leans on
# ---------------------------------------------------------------------------


def test_lazy_timeout_cancellation_tombstones():
    sim = Simulator()
    fired = []
    t1 = sim.timeout(1.0, value="a")
    t2 = sim.timeout(2.0, value="b")

    def waiter():
        got = yield t2
        fired.append(got)

    sim.process(waiter())
    t1.cancel()
    t1.cancel()  # idempotent
    sim.run()
    assert fired == ["b"]
    assert sim.timeouts_cancelled == 1
    assert sim.now == 2.0


def test_timeout_at_is_bit_exact():
    sim = Simulator()
    sim.run(until=0.30000000000000004)
    target = 0.9300000000000002
    done = []

    def waiter(ev):
        yield ev
        done.append(sim.now)

    sim.process(waiter(sim.timeout_at(target)))
    sim.run()
    assert done[0] == target  # no now + (t - now) rounding drift

    with pytest.raises(ValueError):
        sim.timeout_at(sim.now - 1.0)


def test_step_driven_run_matches_turbo_run():
    """The turbo/pending-lane shortcuts are invisible to step() drivers."""

    def build():
        sim = Simulator()
        cpu = TimeSharedCPU(sim, discipline="rr", quantum=0.01, context_switch=0.001)
        cpu.execute(0.25, tag="a")
        cpu.execute(0.4, tag="b")

        def late():
            yield sim.timeout(0.1)
            yield cpu.execute(0.2, tag="c")

        sim.process(late(), name="late")
        return sim, cpu

    sim_a, cpu_a = build()
    sim_a.run()

    sim_b, cpu_b = build()
    while sim_b._pend is not None or sim_b._next is not None or sim_b._heap:
        sim_b.step()
    assert sim_b.now == sim_a.now
    assert cpu_b.busy_time == cpu_a.busy_time
    assert cpu_b.switches == cpu_a.switches
    assert cpu_b.service_by_tag == cpu_a.service_by_tag


def test_timeout_pool_recycling_does_not_leak_values():
    sim = Simulator()
    seen = []

    def ping(n):
        for k in range(n):
            got = yield sim.timeout(0.5, value=k)
            seen.append(got)

    sim.process(ping(50))
    sim.run()
    assert seen == list(range(50))
    assert sim.now == 25.0


def test_late_priority_timeout_orders_after_normal():
    sim = Simulator()
    order = []

    def a():
        yield sim.timeout(1.0, priority=PRIORITY_LATE)
        order.append("late")

    def b():
        yield sim.timeout(1.0)
        order.append("normal")

    sim.process(a())
    sim.process(b())
    sim.run()
    assert order == ["normal", "late"]


def test_ps_discipline_fast_forward_is_deterministic():
    def run():
        sim = Simulator()
        cpu = TimeSharedCPU(sim, discipline="ps", quantum=0.01)
        done = {}

        def submit(idx, t, work):
            def proc():
                if t > 0:
                    yield sim.timeout(t)
                yield cpu.execute(work, tag=f"j{idx}")
                done[idx] = sim.now

            sim.process(proc())

        submit(0, 0.0, 1.0)
        submit(1, 0.0, 0.5)
        submit(2, 0.7, 0.25)
        sim.run()
        return done, cpu.busy_time, sim.events_processed

    first = run()
    second = run()
    assert first == second
    # Processor sharing: jobs 0 and 1 halve the CPU until t=0.7, when
    # job 2 makes it a three-way split — job 1 has 0.15 work left and
    # drains it at rate 1/3, finishing at 0.7 + 0.45 = 1.15 exactly.
    assert first[0][1] == pytest.approx(1.15, rel=1e-12)
