"""Metric instruments, the registry, and snapshot/diff semantics.

Includes the ``repro.sim.monitors`` edge cases exercised *through the
shim*: the simulator's ``Tally``/``TimeWeighted`` now live in
``repro.obs.metrics`` and ``monitors`` re-exports them, so these tests
pin both the behaviour and the aliasing.
"""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    Tally,
    TimeWeighted,
)


class TestMonitorsShim:
    """The moved accumulators stay importable from their old home."""

    def test_monitors_reexports_same_classes(self):
        from repro.sim import monitors

        assert monitors.Tally is Tally
        assert monitors.TimeWeighted is TimeWeighted

    def test_empty_tally_mean_and_variance_are_nan(self):
        t = Tally()
        assert t.count == 0
        assert math.isnan(t.mean)
        assert math.isnan(t.variance)
        assert math.isnan(t.std)

    def test_single_sample_variance_is_nan(self):
        t = Tally()
        t.record(3.0)
        assert t.mean == 3.0
        assert math.isnan(t.variance)

    def test_tally_statistics(self):
        t = Tally()
        t.extend([1.0, 2.0, 3.0, 4.0])
        assert t.count == 4
        assert t.mean == pytest.approx(2.5)
        assert t.variance == pytest.approx(5.0 / 3.0)
        assert t.minimum == 1.0
        assert t.maximum == 4.0
        assert t.total == 10.0

    def test_time_weighted_zero_elapsed_returns_current(self):
        tw = TimeWeighted(start_time=5.0, initial=2.0)
        assert tw.average(5.0) == 2.0

    def test_time_weighted_average(self):
        tw = TimeWeighted()
        tw.record(1.0, 10.0)  # 0 on [0,1), 10 on [1,3)
        assert tw.average(3.0) == pytest.approx(20.0 / 3.0)
        assert tw.current == 10.0

    def test_time_weighted_rejects_time_reversal(self):
        tw = TimeWeighted()
        tw.record(2.0, 1.0)
        with pytest.raises(ValueError):
            tw.record(1.0, 1.0)


class TestInstruments:
    def test_counter_monotone(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_and_add(self):
        g = Gauge()
        g.set(3.0)
        g.add(-1.5)
        assert g.value == 1.5

    def test_histogram_wraps_tally(self):
        h = Histogram()
        h.observe(1.0)
        h.observe(3.0)
        assert h.count == 2
        assert h.mean == pytest.approx(2.0)


class TestRegistry:
    def test_instruments_created_once(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("y") is reg.gauge("y")
        assert reg.histogram("z") is reg.histogram("z")
        assert reg.names() == ["x", "y", "z"]

    def test_name_bound_to_one_kind(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already a counter"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="already a counter"):
            reg.histogram("x")

    def test_snapshot_freezes_values(self):
        reg = MetricsRegistry()
        reg.counter("events").inc(7)
        reg.gauge("depth").set(2.0)
        reg.histogram("lat").observe(1.0)
        snap = reg.snapshot()
        reg.counter("events").inc(100)  # after the snapshot
        assert snap.counters == {"events": 7}
        assert snap.gauges == {"depth": 2.0}
        assert snap.histograms["lat"]["count"] == 1
        assert snap.histograms["lat"]["mean"] == 1.0

    def test_empty_histogram_snapshot_has_nan_extremes(self):
        reg = MetricsRegistry()
        reg.histogram("lat")
        stats = reg.snapshot().histograms["lat"]
        assert stats["count"] == 0
        assert math.isnan(stats["mean"])
        assert math.isnan(stats["min"])
        assert math.isnan(stats["max"])


class TestSnapshotDiff:
    def test_counters_subtract(self):
        before = MetricsSnapshot(counters={"a": 3})
        after = MetricsSnapshot(counters={"a": 10, "b": 2})
        d = after.diff(before)
        assert d.counters == {"a": 7, "b": 2}

    def test_gauges_keep_later_level(self):
        before = MetricsSnapshot(gauges={"g": 5.0})
        after = MetricsSnapshot(gauges={"g": 2.0})
        assert after.diff(before).gauges == {"g": 2.0}

    def test_histograms_subtract_counts_and_totals(self):
        before = MetricsSnapshot(
            histograms={"h": {"count": 2, "total": 4.0, "mean": 2.0, "min": 1.0, "max": 3.0}}
        )
        after = MetricsSnapshot(
            histograms={"h": {"count": 5, "total": 19.0, "mean": 3.8, "min": 1.0, "max": 9.0}}
        )
        d = after.diff(before).histograms["h"]
        assert d["count"] == 3
        assert d["total"] == 15.0
        assert d["mean"] == pytest.approx(5.0)
        assert math.isnan(d["min"]) and math.isnan(d["max"])

    def test_empty_delta_mean_is_nan(self):
        snap = MetricsSnapshot(
            histograms={"h": {"count": 1, "total": 2.0, "mean": 2.0, "min": 2.0, "max": 2.0}}
        )
        assert math.isnan(snap.diff(snap).histograms["h"]["mean"])

    def test_to_from_dict_round_trip(self):
        snap = MetricsSnapshot(
            counters={"a": 3},
            gauges={"g": 1.5},
            histograms={"h": {"count": 2, "total": 4.0, "mean": 2.0, "min": 1.0, "max": 3.0}},
        )
        assert MetricsSnapshot.from_dict(snap.to_dict()) == snap


class TestStateMerge:
    def test_tally_merge_matches_single_stream(self):
        import numpy as np

        rng = np.random.default_rng(8)
        a_vals = rng.uniform(0.0, 5.0, 40).tolist()
        b_vals = rng.uniform(2.0, 9.0, 25).tolist()
        a, b, whole = Tally(), Tally(), Tally()
        for v in a_vals:
            a.record(v)
            whole.record(v)
        for v in b_vals:
            b.record(v)
            whole.record(v)
        a.merge_state(b.state_dict())
        assert a.count == whole.count
        assert a.total == pytest.approx(whole.total)
        assert a.mean == pytest.approx(whole.mean)
        assert a.variance == pytest.approx(whole.variance)
        assert a.minimum == whole.minimum
        assert a.maximum == whole.maximum

    def test_tally_merge_empty_is_noop(self):
        a = Tally()
        a.record(3.0)
        before = a.state_dict()
        a.merge_state(Tally().state_dict())
        assert a.state_dict() == before

    def test_tally_merge_into_empty_copies(self):
        b = Tally()
        b.record(1.0)
        b.record(2.0)
        a = Tally()
        a.merge_state(b.state_dict())
        assert a.count == 2
        assert a.mean == pytest.approx(1.5)

    def test_registry_merge_state(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter("n").inc(2)
        worker.counter("n").inc(3)
        worker.gauge("depth").set(4.0)
        worker.histogram("lat").observe(0.5)
        parent.merge_state(worker.state_dict())
        snap = parent.snapshot()
        assert snap.counters["n"] == 5
        assert snap.gauges["depth"] == 4.0
        assert snap.histograms["lat"]["count"] == 1
