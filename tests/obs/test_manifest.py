"""RunManifest stamping, platform summaries, and ToDict round-trips.

Also the cross-module round-trip contracts: every result-like object in
the stack speaks the same ``to_dict``/``from_dict`` dialect.
"""

from __future__ import annotations

import json

from repro.errors import DeadlockError
from repro.experiments.report import ExperimentResult
from repro.obs import MetricsSnapshot, RunManifest, platform_summary
from repro.obs.serialize import ToDict, jsonable
from repro.platforms.specs import DEFAULT_SUNPARAGON
from repro.reliability.degrade import Confidence, DegradationLog
from repro.reliability.report import FailureReport, Outcome


class TestPlatformSummary:
    def test_dataclass_spec_flattens(self):
        summary = platform_summary(DEFAULT_SUNPARAGON)
        assert summary["type"] == "SunParagonSpec"
        assert "frontend" in summary or len(summary) > 1
        json.dumps(jsonable(summary))  # JSON-compatible throughout

    def test_exotic_object_falls_back_to_repr(self):
        summary = platform_summary(object())
        assert summary["type"] == "object"
        assert "repr" in summary


class TestRunManifest:
    def _manifest(self):
        return RunManifest.stamp(
            experiment="chaos",
            seed=23,
            platform=platform_summary(DEFAULT_SUNPARAGON),
            calibration={"mode": "paragon", "confidence": "CALIBRATED"},
            metrics=MetricsSnapshot(counters={"sim.events": 10}),
            trace_id="abcd",
            extra={"quick": True},
        )

    def test_stamp_sets_wall_clock_and_version(self):
        m = self._manifest()
        assert m.created_unix > 0
        assert m.version

    def test_round_trip_equality(self):
        m = self._manifest()
        assert RunManifest.from_dict(m.to_dict()) == m

    def test_created_unix_excluded_from_equality(self):
        m = self._manifest()
        payload = m.to_dict()
        payload["created_unix"] = 0.0
        assert RunManifest.from_dict(payload) == m

    def test_manifest_is_jsonable(self):
        line = json.dumps(jsonable(self._manifest().to_dict()))
        assert RunManifest.from_dict(json.loads(line)).experiment == "chaos"

    def test_speaks_todict_protocol(self):
        assert isinstance(self._manifest(), ToDict)
        assert isinstance(MetricsSnapshot(), ToDict)


class TestFailureReportRoundTrip:
    def test_clean_report(self):
        report = FailureReport(
            outcome=Outcome.COMPLETED,
            sim_time=4.5,
            events_processed=100,
            wall_seconds=0.01,
        )
        assert FailureReport.from_dict(report.to_dict()) == report

    def test_error_flattened_to_repr(self):
        exc = DeadlockError("stuck", sim_time=1.0, pending=("p",), pending_count=1)
        report = FailureReport.from_deadlock(exc, events_processed=5, wall_seconds=0.1)
        payload = report.to_dict()
        assert payload["outcome"] == "deadlock"
        assert isinstance(payload["error"], str)
        # error is compare=False, so the trip still reconstructs equal.
        assert FailureReport.from_dict(payload) == report
        json.dumps(jsonable(payload))


class TestExperimentResultRoundTrip:
    def test_with_manifest_and_nonfinite_cells(self):
        result = ExperimentResult(
            experiment="figX",
            title="demo",
            headers=("n", "value"),
            rows=[(1, 2.5), (2, float("nan")), (3, float("inf"))],
            metrics={"err": float("nan"), "ok": 1.0},
            paper_claim="claim",
            notes="note",
            manifest=RunManifest.stamp(experiment="figX", seed=1),
        )
        payload = json.loads(json.dumps(result.to_dict()))
        back = ExperimentResult.from_dict(payload)
        assert back.experiment == result.experiment
        assert back.headers == result.headers
        assert back.rows[0] == (1, 2.5)
        assert back.rows[1][1] != back.rows[1][1]  # NaN survived
        assert back.rows[2][1] == float("inf")
        assert back.metrics["ok"] == 1.0
        assert back.manifest == result.manifest

    def test_without_manifest(self):
        result = ExperimentResult(
            experiment="figY", title="t", headers=("a",), rows=[(1,)]
        )
        back = ExperimentResult.from_dict(result.to_dict())
        assert back.manifest is None
        assert back.rows == [(1,)]


class TestDegradationLogRoundTrip:
    def test_empty(self):
        log = DegradationLog()
        assert DegradationLog.from_dict(log.to_dict()) == log

    def test_populated(self):
        log = DegradationLog()
        log.record("comp", Confidence.ANALYTIC)
        log.record("comp", Confidence.ANALYTIC)
        log.record("comm", Confidence.EXTRAPOLATED)
        back = DegradationLog.from_dict(log.to_dict())
        assert back == log
        assert back.total == 3
        assert back.by_level() == {Confidence.ANALYTIC: 2, Confidence.EXTRAPOLATED: 1}
        json.dumps(log.to_dict())
