"""Ambient context activation, no-op hooks, and profiling helpers."""

from __future__ import annotations

import pytest

from repro.obs import ObsContext, observed, timed, timed_block
from repro.obs import context as obs
from repro.sim.engine import Simulator


class TestDisabled:
    def test_hooks_are_noops_without_context(self):
        assert obs.current() is None
        assert not obs.enabled()
        # None of these may raise or allocate per-call state.
        obs.inc("x")
        obs.observe("h", 1.0)
        obs.set_gauge("g", 2.0)
        with obs.span("anything", kind="sim") as sp:
            sp.set("k", "v")  # chains on the null span too

    def test_null_span_is_shared_singleton(self):
        assert obs.span("a") is obs.span("b")

    def test_timed_reduces_to_bare_call(self):
        calls = []

        @timed("m")
        def fn(x):
            calls.append(x)
            return x * 2

        assert fn(3) == 6
        assert calls == [3]

    def test_timed_block_passthrough(self):
        with timed_block("m"):
            pass


class TestEnabled:
    def test_observed_activates_and_restores(self):
        assert obs.current() is None
        with observed(seed=1) as ctx:
            assert obs.current() is ctx
            assert obs.enabled()
        assert obs.current() is None

    def test_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with observed():
                raise RuntimeError
        assert obs.current() is None

    def test_contexts_nest_innermost_wins(self):
        with observed(seed=1) as outer:
            with observed(seed=2) as inner:
                assert obs.current() is inner
                obs.inc("only.inner")
            assert obs.current() is outer
        assert outer.metrics.snapshot().counters == {}
        assert inner.metrics.snapshot().counters == {"only.inner": 1}

    def test_explicit_context_object(self):
        ctx = ObsContext(seed=5)
        with observed(ctx) as active:
            assert active is ctx

    def test_hooks_flow_into_active_context(self):
        with observed() as ctx:
            obs.inc("c", 2)
            obs.observe("h", 3.0)
            obs.set_gauge("g", 4.0)
            with obs.span("stage", kind="sim") as sp:
                sp.set("n", 1)
        snap = ctx.snapshot()
        assert snap.counters == {"c": 2}
        assert snap.gauges == {"g": 4.0}
        assert snap.histograms["h"]["count"] == 1
        assert [s.name for s in ctx.tracer.spans] == ["stage"]

    def test_timed_records_histogram(self):
        @timed("fn.seconds")
        def fn():
            return 1

        with observed() as ctx:
            fn()
            fn()
        assert ctx.metrics.histogram("fn.seconds").count == 2

    def test_timed_with_spans(self):
        @timed("fn.seconds", spans=True)
        def fn():
            return 1

        with observed() as ctx:
            fn()
        assert ctx.metrics.histogram("fn.seconds").count == 1
        assert [s.kind for s in ctx.tracer.spans] == ["profile"]

    def test_timed_block_records(self):
        with observed() as ctx:
            with timed_block("blk"):
                pass
        assert ctx.metrics.histogram("blk").count == 1


class TestDeterminism:
    """Observing a run must not change simulated results."""

    def _drive(self):
        sim = Simulator()

        def ticker(sim, n):
            for _ in range(n):
                yield sim.timeout(0.5)

        sim.process(ticker(sim, 100))
        sim.run()
        return sim.now

    def test_traced_run_matches_untraced(self):
        untraced = self._drive()
        with observed(profile_steps=True) as ctx:
            traced = self._drive()
        assert traced == untraced
        assert ctx.metrics.counter("sim.events").value > 0
        assert ctx.tracer.by_kind("sim")
        # profile_steps feeds the per-step histogram.
        assert ctx.metrics.histogram("sim.step_seconds").count > 0
