"""The ToDict protocol and the JSON-lines substrate."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs.serialize import (
    ToDict,
    dumps_line,
    jsonable,
    read_jsonl,
    unjsonable,
    write_jsonl,
)


class TestJsonable:
    def test_tuples_become_lists(self):
        assert jsonable((1, 2, (3, 4))) == [1, 2, [3, 4]]

    def test_nonfinite_floats_become_sentinels(self):
        assert jsonable(math.nan) == "nan"
        assert jsonable(math.inf) == "inf"
        assert jsonable(-math.inf) == "-inf"

    def test_finite_floats_pass_through(self):
        assert jsonable(1.5) == 1.5
        assert jsonable(0.0) == 0.0

    def test_dict_keys_stringified(self):
        assert jsonable({1: "a"}) == {"1": "a"}

    def test_to_dict_objects_expanded(self):
        class Box:
            def to_dict(self):
                return {"x": (1, math.nan)}

        assert isinstance(Box(), ToDict)
        assert jsonable(Box()) == {"x": [1, "nan"]}

    def test_unjsonable_inverts_sentinels(self):
        out = unjsonable({"a": "nan", "b": ["inf", "-inf", "plain"]})
        assert out["a"] != out["a"]  # NaN
        assert out["b"][0] == math.inf
        assert out["b"][1] == -math.inf
        assert out["b"][2] == "plain"

    def test_round_trip_preserves_structure(self):
        payload = {"rows": [[1.0, math.inf], [2.0, 3.0]], "name": "x"}
        back = unjsonable(json.loads(dumps_line(payload)))
        assert back == {"rows": [[1.0, math.inf], [2.0, 3.0]], "name": "x"}


class TestJsonl:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "out.jsonl"
        payloads = [{"a": 1}, {"b": math.nan}, {"c": [1, 2]}]
        assert write_jsonl(path, payloads) == 3
        back = list(read_jsonl(path))
        assert back[0] == {"a": 1}
        assert back[1]["b"] != back[1]["b"]  # NaN survived
        assert back[2] == {"c": [1, 2]}

    def test_one_line_per_payload(self, tmp_path):
        path = tmp_path / "out.jsonl"
        write_jsonl(path, [{"a": 1}, {"b": 2}])
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)  # each line is standalone valid JSON

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "out.jsonl"
        path.write_text('{"a":1}\n\n{"b":2}\n')
        assert list(read_jsonl(path)) == [{"a": 1}, {"b": 2}]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "er" / "out.jsonl"
        assert write_jsonl(path, [{"a": 1}]) == 1
        assert path.exists()

    def test_unknown_objects_raise(self, tmp_path):
        with pytest.raises(TypeError):
            dumps_line({"bad": object()})
