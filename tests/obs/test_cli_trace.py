"""End-to-end: the CLI's ``--trace`` flag emits a valid JSON-lines trace."""

from __future__ import annotations

import json

from repro.experiments.cli import main
from repro.obs import Tracer
from repro.obs import context as obs


def test_trace_flag_writes_spans(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    assert main(["chaos", "--quick", "--trace", str(path)]) == 0
    out = capsys.readouterr().out
    assert f"wrote" in out and str(path) in out

    # Every line is standalone JSON and round-trips into Span objects.
    lines = path.read_text().strip().splitlines()
    assert lines
    for line in lines:
        json.loads(line)
    spans = Tracer.read_jsonl(path)
    assert len(spans) == len(lines)

    # "calibration" also appears in a fresh process; inside the test
    # suite the session-scoped calibration cache may already be warm.
    kinds = {s.kind for s in spans}
    assert {"sim", "prediction", "retry", "experiment"} <= kinds
    names = {s.name for s in spans}
    assert "experiment.chaos" in names
    assert "experiment.replication" in names

    # One root per experiment run; everything else hangs off it.
    roots = [s for s in spans if s.parent_id is None]
    assert [s.name for s in roots] == ["experiment.chaos"]
    ids = {s.span_id for s in spans}
    assert all(s.parent_id in ids for s in spans if s.parent_id is not None)

    # The flag's observation is strictly scoped: nothing leaks after main().
    assert obs.current() is None


def test_untraced_cli_run_leaves_no_context(capsys):
    assert main(["fig2", "--quick"]) == 0
    assert obs.current() is None
