"""Tracer: deterministic identity, nesting, errors, JSONL export."""

from __future__ import annotations

import pytest

from repro.obs.trace import Span, Tracer


def _fake_clock():
    t = [0.0]

    def tick():
        t[0] += 1.0
        return t[0]

    return tick


class TestIdentity:
    def test_same_seed_same_ids(self):
        def run(seed):
            tr = Tracer(seed=seed)
            with tr.span("outer"):
                with tr.span("inner"):
                    pass
            return [(s.name, s.span_id, s.parent_id, s.trace_id) for s in tr.spans]

        assert run(42) == run(42)

    def test_different_seed_different_ids(self):
        a, b = Tracer(seed=1), Tracer(seed=2)
        with a.span("x"):
            pass
        with b.span("x"):
            pass
        assert a.spans[0].span_id != b.spans[0].span_id
        assert a.trace_id != b.trace_id

    def test_ids_are_16_hex_digits(self):
        tr = Tracer(seed=0)
        with tr.span("x"):
            pass
        assert len(tr.trace_id) == 16
        int(tr.spans[0].span_id, 16)


class TestNesting:
    def test_parent_child_links(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            with tr.span("inner"):
                pass
        inner_span, outer_span = tr.spans  # completion order: inner first
        assert inner_span.name == "inner"
        assert inner_span.parent_id == outer.span_id
        assert outer_span.parent_id is None
        assert tr.roots() == [outer_span]
        assert tr.children(outer_span) == [inner_span]

    def test_siblings_share_parent(self):
        tr = Tracer()
        with tr.span("root") as root:
            with tr.span("a"):
                pass
            with tr.span("b"):
                pass
        a, b = tr.spans[0], tr.spans[1]
        assert a.parent_id == b.parent_id == root.span_id

    def test_by_kind_filters(self):
        tr = Tracer()
        with tr.span("s", kind="sim"):
            pass
        with tr.span("p", kind="prediction"):
            pass
        assert [s.name for s in tr.by_kind("sim")] == ["s"]
        assert [s.name for s in tr.by_kind("prediction")] == ["p"]
        assert tr.by_kind("nope") == []
        assert len(tr) == 2


class TestLifecycle:
    def test_durations_from_injected_clock(self):
        tr = Tracer(clock=_fake_clock())
        with tr.span("x"):
            pass
        span = tr.spans[0]
        assert span.start == 1.0 and span.end == 2.0
        assert span.duration == 1.0

    def test_attributes_via_kwargs_and_set(self):
        tr = Tracer()
        with tr.span("x", kind="sim", n=3) as sp:
            sp.set("outcome", "ok").set("events", 7)
        assert tr.spans[0].attributes == {"n": 3, "outcome": "ok", "events": 7}

    def test_error_status_and_propagation(self):
        tr = Tracer()
        with pytest.raises(RuntimeError, match="boom"):
            with tr.span("x"):
                raise RuntimeError("boom")
        span = tr.spans[0]
        assert span.status == "error"
        assert span.error == "RuntimeError: boom"
        assert span.end >= span.start


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        tr = Tracer(seed=9, clock=_fake_clock())
        with tr.span("outer", kind="experiment", quick=True):
            with tr.span("inner", kind="sim") as sp:
                sp.set("events", 12)
        path = tmp_path / "trace.jsonl"
        assert tr.write_jsonl(path) == 2
        back = Tracer.read_jsonl(path)
        assert back == tr.spans

    def test_span_to_from_dict(self):
        span = Span(
            name="x",
            trace_id="t",
            span_id="s",
            parent_id="p",
            kind="retry",
            start=1.0,
            end=2.5,
            attributes={"attempt": 1},
            status="error",
            error="ValueError: nope",
        )
        assert Span.from_dict(span.to_dict()) == span


class TestAbsorb:
    def _worker_spans(self, seed: int) -> list[Span]:
        worker = Tracer(seed=seed)
        with worker.span("outer", kind="test"):
            with worker.span("inner", kind="test"):
                pass
        return [Span.from_dict(s.to_dict()) for s in worker.spans]

    def test_absorb_rehomes_trace_and_roots(self):
        parent = Tracer(seed=1)
        with parent.span("map", kind="test"):
            absorbed = parent.absorb(self._worker_spans(seed=99))
        assert absorbed == 2
        names = {s.name: s for s in parent.spans}
        assert names["outer"].trace_id == parent.trace_id
        assert names["inner"].trace_id == parent.trace_id
        # The worker's root is re-parented under the active span; the
        # worker-internal parent link survives.
        assert names["outer"].parent_id == names["map"].span_id
        assert names["inner"].parent_id == names["outer"].span_id

    def test_absorb_outside_any_span_makes_roots(self):
        parent = Tracer(seed=2)
        parent.absorb(self._worker_spans(seed=50))
        outer = next(s for s in parent.spans if s.name == "outer")
        assert outer.parent_id is None

    def test_absorb_no_id_collisions_with_distinct_seeds(self):
        parent = Tracer(seed=3)
        with parent.span("map", kind="test"):
            parent.absorb(self._worker_spans(seed=1000))
            parent.absorb(self._worker_spans(seed=1001))
        ids = [s.span_id for s in parent.spans]
        assert len(ids) == len(set(ids))
