#!/usr/bin/env bash
# Performance job: run the pytest-benchmark suite and record
# per-benchmark mean/stddev to BENCH_perf.json (repository root).
#
# Usage: scripts/bench.sh [pytest selection ...]
#   e.g. scripts/bench.sh benchmarks/bench_simulator.py benchmarks/bench_batch.py
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

python benchmarks/record.py --out BENCH_perf.json "$@"
