#!/usr/bin/env bash
# Performance job: run the pytest-benchmark suite and record
# per-benchmark mean/stddev to BENCH_perf.json (repository root).
#
# Usage: scripts/bench.sh [pytest selection ...]
#   e.g. scripts/bench.sh benchmarks/bench_simulator.py benchmarks/bench_batch.py
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

# Guard before overwriting the baseline: a kernel-bench median more
# than 25% worse than the committed BENCH_perf.json fails the job
# (skip with BENCH_SKIP_GUARD=1 when re-baselining a known change).
if [[ "${BENCH_SKIP_GUARD:-0}" != "1" ]]; then
  python scripts/check_perf.py --baseline BENCH_perf.json
fi

python benchmarks/record.py --out BENCH_perf.json "$@"
