#!/usr/bin/env python
"""Perf-regression guard for the simulator/kernel benchmarks.

Compares freshly measured medians against the committed
``BENCH_perf.json`` baseline and exits non-zero when any guarded
benchmark's median regresses by more than the allowed fraction
(default 25 %). Only the DES-kernel, vectorized-kernel, and
fleet-service benches are guarded: the heavy experiment drivers
measure whole sweeps whose cost is dominated by workload content, and
their medians move for legitimate reasons; the kernel benches are the
ones a stray ``O(n)``-in-the-hot-loop slip shows up in first.

Usage::

    PYTHONPATH=src python scripts/check_perf.py [--baseline BENCH_perf.json]
        [--fresh FILE] [--threshold 0.25]

With no ``--fresh`` the guarded benchmark files are run via
``benchmarks/record.py`` into a temporary file first; an apparent
regression is then confirmed by one re-measurement (per-bench best of
the two medians) before failing, so a single noisy scheduling window
on a shared host cannot flake the job. Improvements are reported but
never fail the check, and benches present in only one of the two files
are skipped with a note (new benchmarks have no baseline to regress
from).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

#: Benchmarks the guard watches: the DES kernel micro-benches, the
#: vectorized prediction-kernel benches, the fleet-service hot paths
#: (placement queries and event churn at 100k-app scale, the 1M-app
#: struct-of-arrays fleet, supervised workers both per-event and with
#: 32-event frames), and the
#: vector Monte-Carlo batches at 256 replications — PS and RR
#: disciplines plus the fig5-shaped sweep batch, each guarded together
#: with an object-loop counterpart so the speedup ratios stay visible
#: and honest in ``BENCH_perf.json``.
GUARDED = (
    "test_event_throughput",
    "test_event_throughput_traced",
    "test_rr_cpu_throughput",
    "test_link_throughput",
    "test_resource_contention_throughput",
    "test_placement_grid_batch",
    "test_slowdown_evaluation",
    "test_fleet_query_throughput",
    "test_fleet_event_churn",
    "test_fleet_supervised_workers",
    "test_fleet_million_apps",
    "test_fleet_batched_workers",
    "test_vector_batch_reps256",
    "test_object_loop_reps256",
    "test_rr_vector_batch_reps256",
    "test_rr_object_loop_reps256",
    "test_fig5_sweep_batch",
)

#: Benchmark files that contain the guarded benches (what --fresh-less
#: invocations run; a subset keeps the CI job fast).
GUARDED_FILES = (
    "benchmarks/bench_simulator.py",
    "benchmarks/bench_batch.py",
    "benchmarks/bench_model_costs.py",
    "benchmarks/bench_fleet.py",
    "benchmarks/bench_vector.py",
)


def _medians(report: dict) -> dict[str, float]:
    out = {}
    for name, stats in report.get("benchmarks", {}).items():
        median = stats.get("median_s")
        if isinstance(median, (int, float)) and median > 0:
            out[name] = float(median)
    return out


def compare(baseline: dict, fresh: dict, threshold: float) -> tuple[list[str], list[str]]:
    """Return (failures, notes) comparing guarded medians."""
    base = _medians(baseline)
    new = _medians(fresh)
    failures: list[str] = []
    notes: list[str] = []
    for name in GUARDED:
        if name not in base:
            notes.append(f"{name}: no baseline median (skipped)")
            continue
        if name not in new:
            notes.append(f"{name}: not in fresh run (skipped)")
            continue
        ratio = new[name] / base[name]
        line = f"{name}: {base[name] * 1e3:.3f} ms -> {new[name] * 1e3:.3f} ms ({ratio:.2f}x)"
        if ratio > 1.0 + threshold:
            failures.append(line)
        else:
            notes.append(line)
    return failures, notes


def _measure() -> dict | int:
    """Run the guarded benchmark files; return the summary or an exit code."""
    root = Path(__file__).resolve().parent.parent
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        fresh_path = Path(handle.name)
    try:
        code = subprocess.call(
            [
                sys.executable,
                str(root / "benchmarks" / "record.py"),
                "--out",
                str(fresh_path),
                *(str(root / f) for f in GUARDED_FILES),
            ],
            cwd=root,
        )
        if code != 0:
            print(f"check_perf: benchmark run failed with exit code {code}")
            return code
        return json.loads(fresh_path.read_text())
    finally:
        fresh_path.unlink(missing_ok=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="BENCH_perf.json")
    parser.add_argument("--fresh", default=None, help="pre-recorded summary to compare (skips running)")
    parser.add_argument("--threshold", type=float, default=0.25, help="allowed median regression fraction")
    args = parser.parse_args(argv)

    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"check_perf: no baseline at {baseline_path}, nothing to guard")
        return 0
    baseline = json.loads(baseline_path.read_text())

    if args.fresh is not None:
        fresh = json.loads(Path(args.fresh).read_text())
    else:
        fresh = _measure()
        if isinstance(fresh, int):
            return fresh

    failures, notes = compare(baseline, fresh, args.threshold)
    if failures and args.fresh is None:
        # A single noisy window on a shared host can move a median well
        # past the threshold; confirm before failing. A real regression
        # reproduces in the second measurement; noise does not.
        print(f"check_perf: {len(failures)} regression(s) on first pass, re-measuring to confirm")
        second = _measure()
        if isinstance(second, int):
            return second
        merged = _medians(fresh)
        for name, median in _medians(second).items():
            merged[name] = min(median, merged.get(name, median))
        fresh = {"benchmarks": {n: {"median_s": m} for n, m in merged.items()}}
        failures, notes = compare(baseline, fresh, args.threshold)
    for line in notes:
        print(f"  ok   {line}")
    for line in failures:
        print(f"  FAIL {line}")
    if failures:
        print(
            f"check_perf: {len(failures)} benchmark(s) regressed more than "
            f"{args.threshold:.0%} vs {baseline_path}"
        )
        return 1
    print(f"check_perf: guarded medians within {args.threshold:.0%} of {baseline_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
