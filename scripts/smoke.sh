#!/usr/bin/env bash
# Smoke job: lint (when available), tier-1 tests, and one traced chaos
# run whose JSON-lines trace is validated end to end.
#
# Usage: scripts/smoke.sh   (from the repository root)
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests benchmarks examples
else
    echo "== ruff not installed; skipping lint =="
fi

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== parallel determinism =="
python - <<'EOF'
from repro.experiments.runner import repeat_mean
from repro.sim.rng import RandomStreams


def draw(streams: RandomStreams) -> float:
    return float(streams.get("x").random())


serial = repeat_mean(draw, repetitions=8, seed=97, workers=1)
parallel = repeat_mean(draw, repetitions=8, seed=97, workers=2)
assert parallel.values == serial.values, (
    f"parallel map changed values: {parallel.values} != {serial.values}"
)
print(f"ok: workers=2 bit-identical to serial over {serial.n} replications")
EOF

echo "== traced chaos run =="
trace="$(mktemp -t chaos-trace.XXXXXX.jsonl)"
trap 'rm -f "$trace"' EXIT
python -m repro chaos --quick --trace "$trace"

echo "== trace validation =="
python - "$trace" <<'EOF'
import json
import sys

path = sys.argv[1]
with open(path, encoding="utf-8") as handle:
    lines = [line for line in handle if line.strip()]
assert lines, "trace is empty"
spans = [json.loads(line) for line in lines]  # every line standalone JSON

# A fresh process exercises the whole pipeline: simulation, calibration
# probes, prediction calls and retry attempts must all have left spans.
kinds = {s["kind"] for s in spans}
missing = {"sim", "calibration", "prediction", "retry"} - kinds
assert not missing, f"missing span kinds: {sorted(missing)}"

# Structural sanity: IDs are consistent and parents exist.
ids = {s["span_id"] for s in spans}
assert len(ids) == len(spans), "duplicate span IDs"
dangling = [s["name"] for s in spans if s["parent_id"] not in ids | {None}]
assert not dangling, f"spans with unknown parents: {dangling}"

from repro.obs import Tracer  # round-trip through the typed loader

loaded = Tracer.read_jsonl(path)
assert len(loaded) == len(spans)
print(f"ok: {len(spans)} spans, kinds={sorted(kinds)}")
EOF

echo "== smoke ok =="
