#!/usr/bin/env bash
# Smoke job: lint (when available), tier-1 tests, a vector-vs-object
# backend parity check, a kill-and-resume check of the run journal, a
# fleet-soak SIGKILL/recovery check, a supervised worker-chaos soak
# (SIGKILL/hang/crash shard workers at 100k-app scale, bit-identical
# recovery), the same chaos at 250k apps with events batched into
# 64-event worker frames, and one traced chaos run whose JSON-lines
# trace is validated end to end.
#
# Usage: scripts/smoke.sh   (from the repository root)
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests benchmarks examples
else
    echo "== ruff not installed; skipping lint =="
fi

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== parallel determinism =="
python - <<'EOF'
from repro.experiments.simulate import simulate
from repro.sim.rng import RandomStreams


def draw(streams: RandomStreams) -> float:
    return float(streams.get("x").random())


serial = simulate(draw, reps=8, seed=97, workers=1)
parallel = simulate(draw, reps=8, seed=97, workers=2)
assert parallel.values == serial.values, (
    f"parallel map changed values: {parallel.values} != {serial.values}"
)
print(f"ok: workers=2 bit-identical to serial over {serial.n} replications")
EOF

echo "== dual-backend parity =="
# The vector backend must agree with the object engine on a supported
# (PS-discipline) workload, and the --backend flag must reach the CLI.
python -m repro --backend vector --list >/dev/null
python - <<'EOF'
from repro.core.workload import ApplicationProfile
from repro.experiments.simulate import BurstProbe, SimSpec, simulate
from repro.platforms.specs import CpuSpec, SunParagonSpec

spec = SimSpec(
    platform=SunParagonSpec(cpu=CpuSpec(discipline="ps")),
    probe=BurstProbe(1024, 100, "out"),
    contenders=(
        ApplicationProfile("c25", comm_fraction=0.25, message_size=200),
        ApplicationProfile("c76", comm_fraction=0.76, message_size=200),
    ),
)
vec = simulate(spec, reps=8, seed=97, backend="vector")
obj = simulate(spec, reps=8, seed=97, backend="object")
assert vec.backend == "vector" and vec.fallback_reason is None, vec.fallback_reason
worst = max(
    abs(a - b) / max(1e-12, abs(b)) for a, b in zip(vec.values, obj.values)
)
assert worst <= 1e-9, f"vector diverged from object engine: {worst:.3e} relative"
print(f"ok: vector matches object over {vec.n} replications (worst {worst:.1e} rel)")
EOF

echo "== sweep-lane byte identity =="
# A fig5 sweep batched into one ragged vector call must write the same
# experiment JSON as the per-point path (--no-sweep-lanes), bit for bit
# modulo the wall-clock stamp.
sweep_dir="$(mktemp -d -t sweep-identity.XXXXXX)"
python -m repro fig5 --quick --outdir "$sweep_dir/lanes" >/dev/null
python -m repro fig5 --quick --no-sweep-lanes --outdir "$sweep_dir/points" >/dev/null
python - "$sweep_dir" <<'EOF'
import json
import sys
from pathlib import Path

sweep_dir = Path(sys.argv[1])


def strip_volatile(obj):
    if isinstance(obj, dict):
        return {
            k: strip_volatile(v) for k, v in obj.items() if k != "created_unix"
        }
    if isinstance(obj, list):
        return [strip_volatile(v) for v in obj]
    return obj


checked = 0
for lanes_file in sorted((sweep_dir / "lanes").glob("*.json")):
    points_file = sweep_dir / "points" / lanes_file.name
    assert points_file.exists(), f"per-point run missing {lanes_file.name}"
    lanes = strip_volatile(json.loads(lanes_file.read_text()))
    points = strip_volatile(json.loads(points_file.read_text()))
    assert lanes == points, f"sweep lanes changed output: {lanes_file.name}"
    checked += 1
assert checked, "no JSON results to compare"
print(f"ok: sweep-lane fig5 byte-identical to per-point path ({checked} files)")
EOF
rm -rf "$sweep_dir"

echo "== kill -9 and resume =="
resume_dir="$(mktemp -d -t resume-smoke.XXXXXX)"
# Reference: an uninterrupted journaled sweep.
python -m repro saturation chaos --quick \
    --journal "$resume_dir/ref.jsonl" --outdir "$resume_dir/ref" >/dev/null

# Interrupted run: SIGKILL the sweep mid-flight, then resume it.
python -m repro saturation chaos --quick \
    --journal "$resume_dir/run.jsonl" --outdir "$resume_dir/out" >/dev/null &
victim=$!
sleep 2.5
kill -9 "$victim" 2>/dev/null || true
wait "$victim" 2>/dev/null || true
[ -s "$resume_dir/run.jsonl" ] || {
    echo "error: journal empty before the kill (sweep too fast/slow?)" >&2
    exit 1
}
python -m repro saturation chaos --quick \
    --resume "$resume_dir/run.jsonl" --outdir "$resume_dir/out"

python - "$resume_dir" <<'EOF'
import json
import sys
from pathlib import Path

resume_dir = Path(sys.argv[1])


def strip_volatile(obj):
    """Drop the wall-clock stamp; everything else must be bit-identical."""
    if isinstance(obj, dict):
        return {
            k: strip_volatile(v) for k, v in obj.items() if k != "created_unix"
        }
    if isinstance(obj, list):
        return [strip_volatile(v) for v in obj]
    return obj


checked = 0
for ref_file in sorted((resume_dir / "ref").glob("*.json")):
    resumed_file = resume_dir / "out" / ref_file.name
    assert resumed_file.exists(), f"missing after resume: {ref_file.name}"
    ref = strip_volatile(json.loads(ref_file.read_text()))
    out = strip_volatile(json.loads(resumed_file.read_text()))
    assert ref == out, f"resumed output differs in {ref_file.name}"
    checked += 1
assert checked, "no JSON results to compare"
print(f"ok: SIGKILLed+resumed sweep bit-identical across {checked} files")
EOF
rm -rf "$resume_dir"

echo "== fleet soak: churn, SIGKILL, journal-backed recovery =="
# The fleet-level analogue of the journal check above: SIGKILL the
# soak driver mid-stream, resume from the write-ahead event log, and
# demand the recovered service's state hash match an uninterrupted
# oracle run bit for bit.
fleet_dir="$(mktemp -d -t fleet-soak.XXXXXX)"
oracle_hash="$(python -m repro.fleet.soak --log "$fleet_dir/oracle.jsonl" \
    --events 300 --machines 16 --shards 4 --seed 11 2>/dev/null | tail -n 1)"
set +e
python -m repro.fleet.soak --log "$fleet_dir/soak.jsonl" \
    --events 300 --machines 16 --shards 4 --seed 11 --kill-at 150 >/dev/null 2>&1
status=$?
set -e
[ "$status" -eq 137 ] || {
    echo "error: soak expected to die of SIGKILL (137), got $status" >&2
    exit 1
}
resumed_hash="$(python -m repro.fleet.soak --log "$fleet_dir/soak.jsonl" \
    --events 300 --machines 16 --shards 4 --seed 11 --resume 2>/dev/null | tail -n 1)"
[ "$oracle_hash" = "$resumed_hash" ] || {
    echo "error: resumed fleet state hash differs from the oracle run" >&2
    echo "  oracle:  $oracle_hash" >&2
    echo "  resumed: $resumed_hash" >&2
    exit 1
}
echo "ok: SIGKILLed fleet soak resumed bit-identical ($resumed_hash)"
rm -rf "$fleet_dir"

echo "== supervised fleet: worker chaos, failover, verified respawn =="
# The chaos proof at 100k-app scale: shard workers are SIGKILLed,
# wedged, and crashed mid-traffic under the supervision tree. The run
# itself asserts that the service never raises, that queries against
# each quarantined shard are answered (ANALYTIC failover), and that
# every respawned worker's journal replay verifies; here we addition-
# ally demand the final state hash match an uninterrupted supervised
# run bit for bit, and that the stderr accounting shows the respawns
# actually happened.
chaos_dir="$(mktemp -d -t fleet-chaos.XXXXXX)"
clean_hash="$(python -m repro.fleet.soak --log "$chaos_dir/clean.jsonl" \
    --events 100000 --machines 512 --shards 8 --seed 23 \
    --depart-prob 0.0 --no-sync --supervised 2>/dev/null | tail -n 1)"
chaos_hash="$(python -m repro.fleet.soak --log "$chaos_dir/chaos.jsonl" \
    --events 100000 --machines 512 --shards 8 --seed 23 \
    --depart-prob 0.0 --no-sync \
    --chaos sigkill@20000,hang@45000,raise@70000 \
    2>"$chaos_dir/chaos.err" | tail -n 1)"
[ "$clean_hash" = "$chaos_hash" ] || {
    echo "error: chaos-run fleet state hash differs from the clean run" >&2
    echo "  clean: $clean_hash" >&2
    echo "  chaos: $chaos_hash" >&2
    exit 1
}
chaos_stats="$(tail -n 1 "$chaos_dir/chaos.err")"
respawns="$(printf '%s\n' "$chaos_stats" | sed -n 's/.*respawns=\([0-9]*\).*/\1/p')"
[ -n "$respawns" ] && [ "$respawns" -ge 3 ] || {
    echo "error: expected >= 3 worker respawns, got '$respawns' ($chaos_stats)" >&2
    exit 1
}
case "$chaos_stats" in
    *"recovery_mismatches=0"*) ;;
    *) echo "error: recovery mismatches in chaos run ($chaos_stats)" >&2; exit 1 ;;
esac
echo "ok: 100k-app worker-chaos soak bit-identical ($chaos_stats)"
rm -rf "$chaos_dir"

echo "== batched frames: 250k-app worker chaos on frame boundaries =="
# Same chaos proof, bigger fleet, with admitted events coalesced into
# 64-event frames (--batch-size). Injected faults land on frame
# boundaries and killed workers lose whole buffered frames, so this is
# the proof that frame-level journal replay reconstructs exactly the
# admitted prefix: the final hash must still match a clean (also
# batched) supervised run bit for bit.
batch_dir="$(mktemp -d -t fleet-batch.XXXXXX)"
batch_clean_hash="$(python -m repro.fleet.soak --log "$batch_dir/clean.jsonl" \
    --events 250000 --machines 1024 --shards 8 --seed 29 \
    --depart-prob 0.0 --no-sync --supervised --batch-size 64 \
    2>/dev/null | tail -n 1)"
batch_chaos_hash="$(python -m repro.fleet.soak --log "$batch_dir/chaos.jsonl" \
    --events 250000 --machines 1024 --shards 8 --seed 29 \
    --depart-prob 0.0 --no-sync --batch-size 64 \
    --chaos sigkill@50000,hang@120000,raise@190000 \
    2>"$batch_dir/chaos.err" | tail -n 1)"
[ "$batch_clean_hash" = "$batch_chaos_hash" ] || {
    echo "error: batched chaos-run state hash differs from the clean run" >&2
    echo "  clean: $batch_clean_hash" >&2
    echo "  chaos: $batch_chaos_hash" >&2
    exit 1
}
batch_stats="$(tail -n 1 "$batch_dir/chaos.err")"
batch_respawns="$(printf '%s\n' "$batch_stats" | sed -n 's/.*respawns=\([0-9]*\).*/\1/p')"
[ -n "$batch_respawns" ] && [ "$batch_respawns" -ge 3 ] || {
    echo "error: expected >= 3 worker respawns, got '$batch_respawns' ($batch_stats)" >&2
    exit 1
}
case "$batch_stats" in
    *"recovery_mismatches=0"*) ;;
    *) echo "error: recovery mismatches in batched chaos run ($batch_stats)" >&2; exit 1 ;;
esac
echo "ok: 250k-app batched worker-chaos soak bit-identical ($batch_stats)"
rm -rf "$batch_dir"

echo "== fast-forward seed determinism =="
# The event-horizon fast-forward path must not introduce any run-to-run
# nondeterminism: two fresh invocations of the same seeded chaos sweep
# must write bit-identical JSON (modulo the wall-clock stamp).
det_dir="$(mktemp -d -t ff-determinism.XXXXXX)"
python -m repro chaos --quick --outdir "$det_dir/a" >/dev/null
python -m repro chaos --quick --outdir "$det_dir/b" >/dev/null
python - "$det_dir" <<'EOF'
import json
import sys
from pathlib import Path

det_dir = Path(sys.argv[1])


def strip_volatile(obj):
    if isinstance(obj, dict):
        return {
            k: strip_volatile(v) for k, v in obj.items() if k != "created_unix"
        }
    if isinstance(obj, list):
        return [strip_volatile(v) for v in obj]
    return obj


checked = 0
for first in sorted((det_dir / "a").glob("*.json")):
    second = det_dir / "b" / first.name
    assert second.exists(), f"second run missing {first.name}"
    a = strip_volatile(json.loads(first.read_text()))
    b = strip_volatile(json.loads(second.read_text()))
    assert a == b, f"fast-forward run not seed-deterministic: {first.name}"
    checked += 1
assert checked, "no JSON results to compare"
print(f"ok: two chaos invocations bit-identical across {checked} files")
EOF
rm -rf "$det_dir"

echo "== traced chaos run =="
trace="$(mktemp -t chaos-trace.XXXXXX.jsonl)"
trap 'rm -f "$trace"' EXIT
python -m repro chaos --quick --trace "$trace"

echo "== trace validation =="
python - "$trace" <<'EOF'
import json
import sys

path = sys.argv[1]
with open(path, encoding="utf-8") as handle:
    lines = [line for line in handle if line.strip()]
assert lines, "trace is empty"
spans = [json.loads(line) for line in lines]  # every line standalone JSON

# A fresh process exercises the whole pipeline: simulation, calibration
# probes, prediction calls and retry attempts must all have left spans.
kinds = {s["kind"] for s in spans}
missing = {"sim", "calibration", "prediction", "retry"} - kinds
assert not missing, f"missing span kinds: {sorted(missing)}"

# Structural sanity: IDs are consistent and parents exist.
ids = {s["span_id"] for s in spans}
assert len(ids) == len(spans), "duplicate span IDs"
dangling = [s["name"] for s in spans if s["parent_id"] not in ids | {None}]
assert not dangling, f"spans with unknown parents: {dangling}"

from repro.obs import Tracer  # round-trip through the typed loader

loaded = Tracer.read_jsonl(path)
assert len(loaded) == len(spans)
print(f"ok: {len(spans)} spans, kinds={sorted(kinds)}")
EOF

echo "== smoke ok =="
