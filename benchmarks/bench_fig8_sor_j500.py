"""Figure 8: SOR on the Sun; contenders 40% @ 500 w and 76% @ 200 w.

Paper: model error 5% with j=500; 25% with j=1 and with j=1000 — the
best bucket tracks the contenders' actual message sizes.
"""

from __future__ import annotations

from repro.experiments.figures import fig8_sor_sun

from conftest import run_once


def test_fig8(benchmark, paragon_spec):
    result = run_once(benchmark, fig8_sor_sun, spec=paragon_spec)
    print()
    print(result.render())
    assert result.metrics["auto_bucket_j"] == 500
    assert result.metrics["mean_abs_err_auto_pct"] < 15.0
    assert (
        result.metrics["mean_abs_err_j1_pct"]
        > result.metrics["mean_abs_err_auto_pct"]
    )
