"""Benchmarks for the vectorized Monte-Carlo backend (`repro.sim.vector`).

The headline acceptance number for the backend-selectable ``simulate()``
API: a 256-replication batch on the vector backend must beat running
the object engine once per replication by >= 10x on the canonical
contended-burst scenario. Both sides are benchmarked so the ratio is
visible in ``BENCH_perf.json``, and ``test_vector_speedup_at_256``
enforces the floor directly. The remaining benchmarks sweep the two
axes the lane representation is sensitive to: replication count (lane
width) and contender count (row count).
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.core.workload import ApplicationProfile
from repro.experiments.simulate import BurstProbe, SimSpec, simulate
from repro.platforms.specs import CpuSpec, SunParagonSpec

_PS_SPEC = SunParagonSpec(cpu=CpuSpec(discipline="ps"))


def _scenario(contenders: int = 2) -> SimSpec:
    fractions = (0.25, 0.76, 0.5, 0.9)
    return SimSpec(
        platform=_PS_SPEC,
        probe=BurstProbe(1024, 150, "out"),
        contenders=tuple(
            ApplicationProfile(f"c{i}", comm_fraction=fractions[i % 4], message_size=200)
            for i in range(contenders)
        ),
    )


def _batch(spec: SimSpec, reps: int, backend: str) -> float:
    res = simulate(spec, reps=reps, seed=42, backend=backend)
    assert res.backend == backend and res.fallback_reason is None
    return res.mean


def test_vector_batch_reps64(benchmark):
    run_once(benchmark, _batch, _scenario(), 64, "vector")


def test_vector_batch_reps256(benchmark):
    run_once(benchmark, _batch, _scenario(), 256, "vector")


def test_vector_batch_contenders4(benchmark):
    run_once(benchmark, _batch, _scenario(contenders=4), 256, "vector")


def test_object_loop_reps256(benchmark):
    run_once(benchmark, _batch, _scenario(), 256, "object")


def test_vector_speedup_at_256():
    """The acceptance floor: vector >= 10x object at 256 replications."""
    spec = _scenario()
    _batch(spec, 256, "vector")  # warm caches before timing

    t0 = time.perf_counter()
    vec_mean = _batch(spec, 256, "vector")
    vector_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    obj_mean = _batch(spec, 256, "object")
    object_s = time.perf_counter() - t0

    assert abs(vec_mean - obj_mean) <= 1e-9 * max(1.0, abs(obj_mean))
    speedup = object_s / vector_s
    assert speedup >= 10.0, (
        f"vector batch only {speedup:.1f}x faster than the object loop "
        f"({vector_s:.3f}s vs {object_s:.3f}s at 256 replications)"
    )
