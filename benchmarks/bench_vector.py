"""Benchmarks for the vectorized Monte-Carlo backend (`repro.sim.vector`).

The headline acceptance number for the backend-selectable ``simulate()``
API: a 256-replication batch on the vector backend must beat running
the object engine once per replication by >= 10x on the canonical
contended-burst scenario. Both sides are benchmarked so the ratio is
visible in ``BENCH_perf.json``, and ``test_vector_speedup_at_256``
enforces the floor directly. The remaining benchmarks sweep the two
axes the lane representation is sensitive to: replication count (lane
width) and contender count (row count).
"""

from __future__ import annotations

import os
import time

from conftest import run_once

from repro.core.workload import ApplicationProfile
from repro.experiments.simulate import BurstProbe, SimSpec, simulate
from repro.platforms.specs import CpuSpec, DEFAULT_SUNPARAGON, SunParagonSpec

_PS_SPEC = SunParagonSpec(cpu=CpuSpec(discipline="ps"))


def _floor(env: str, default: float) -> float:
    """Speedup floor for an acceptance assertion, overridable via *env*.

    CI hosts with background load can depress the object-loop side of
    the ratio less than the vector side; the env var lets a constrained
    runner relax (or a dedicated box tighten) the floor without editing
    the benchmark.
    """
    raw = os.environ.get(env, "").strip()
    return float(raw) if raw else default


def _scenario(contenders: int = 2, discipline: str = "ps") -> SimSpec:
    fractions = (0.25, 0.76, 0.5, 0.9)
    platform = DEFAULT_SUNPARAGON if discipline == "rr" else _PS_SPEC
    return SimSpec(
        platform=platform,
        probe=BurstProbe(1024, 150, "out"),
        contenders=tuple(
            ApplicationProfile(f"c{i}", comm_fraction=fractions[i % 4], message_size=200)
            for i in range(contenders)
        ),
    )


def _batch(spec: SimSpec, reps: int, backend: str) -> float:
    res = simulate(spec, reps=reps, seed=42, backend=backend)
    assert res.backend == backend and res.fallback_reason is None
    return res.mean


def test_vector_batch_reps64(benchmark):
    run_once(benchmark, _batch, _scenario(), 64, "vector")


def test_vector_batch_reps256(benchmark):
    run_once(benchmark, _batch, _scenario(), 256, "vector")


def test_vector_batch_contenders4(benchmark):
    run_once(benchmark, _batch, _scenario(contenders=4), 256, "vector")


def test_object_loop_reps256(benchmark):
    run_once(benchmark, _batch, _scenario(), 256, "object")


def test_rr_vector_batch_reps256(benchmark):
    run_once(benchmark, _batch, _scenario(discipline="rr"), 256, "vector")


def test_rr_object_loop_reps256(benchmark):
    run_once(benchmark, _batch, _scenario(discipline="rr"), 256, "object")


def _speedup_at_256(discipline: str, env: str, default: float) -> None:
    floor = _floor(env, default)
    spec = _scenario(discipline=discipline)
    _batch(spec, 256, "vector")  # warm caches before timing

    t0 = time.perf_counter()
    vec_mean = _batch(spec, 256, "vector")
    vector_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    obj_mean = _batch(spec, 256, "object")
    object_s = time.perf_counter() - t0

    assert abs(vec_mean - obj_mean) <= 1e-9 * max(1.0, abs(obj_mean))
    speedup = object_s / vector_s
    assert speedup >= floor, (
        f"{discipline} vector batch only {speedup:.1f}x faster than the object "
        f"loop ({vector_s:.3f}s vs {object_s:.3f}s at 256 replications; "
        f"floor {floor:g}x, override with ${env})"
    )


def test_vector_speedup_at_256():
    """The acceptance floor: vector >= 10x object at 256 replications."""
    _speedup_at_256("ps", "REPRO_BENCH_VECTOR_FLOOR", 10.0)


def test_rr_vector_speedup_at_256():
    """Round-robin floor. RR carries a lower floor than PS because the
    object-engine oracle it races is itself epoch-skipping (closed-form
    ``_RRPlan`` horizons), so the per-replication python loop the vector
    backend amortizes is already cheap; measured headroom on a one-core
    runner is ~5x (see docs/performance.md)."""
    _speedup_at_256("rr", "REPRO_BENCH_RR_FLOOR", 4.0)


# Sweep-lane amortization needs width: the iteration count of a mixed
# batch is the union of the points' event patterns (roughly constant in
# reps), so the ratio climbs with replications until the RR core bound.
# 96 reps sits on the flat part of that curve (24 reps measures the
# fragmented regime instead: ~2x).
_FIG5_REPS = 96


def _fig5_points() -> list[SimSpec]:
    # Mirrors the fig5 sweep shape: one burst-probe point per message
    # size against the default (rr) SunParagon platform.
    sizes = (16, 64, 128, 256, 512, 1024, 2048)
    contenders = (ApplicationProfile("c76", comm_fraction=0.76, message_size=200),)
    return [
        SimSpec(
            platform=DEFAULT_SUNPARAGON,
            probe=BurstProbe(size, 200, "out"),
            contenders=contenders,
        )
        for size in sizes
    ]


def _sweep_batch(points: list[SimSpec], reps: int) -> list[float]:
    batch = simulate(sweep=points, reps=reps, seed=42, backend="vector")
    assert all(r.backend == "vector" and r.fallback_reason is None for r in batch)
    return [r.mean for r in batch]


def test_fig5_sweep_batch(benchmark):
    run_once(benchmark, _sweep_batch, _fig5_points(), _FIG5_REPS)


def test_fig5_sweep_speedup():
    """Sweep-level lanes >= 5x over the per-point object path on a
    fig5-shaped sweep (7 sizes x 96 replications)."""
    floor = _floor("REPRO_BENCH_SWEEP_FLOOR", 5.0)
    points = _fig5_points()
    _sweep_batch(points, _FIG5_REPS)  # warm caches before timing

    t0 = time.perf_counter()
    sweep_means = _sweep_batch(points, _FIG5_REPS)
    sweep_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    object_means = [
        simulate(sp, reps=_FIG5_REPS, seed=42, backend="object").mean
        for sp in points
    ]
    object_s = time.perf_counter() - t0

    for sm, om in zip(sweep_means, object_means):
        assert abs(sm - om) <= 1e-9 * max(1.0, abs(om))
    speedup = object_s / sweep_s
    assert speedup >= floor, (
        f"sweep-lane batch only {speedup:.1f}x faster than the per-point "
        f"object path ({sweep_s:.3f}s vs {object_s:.3f}s; floor {floor:g}x, "
        f"override with $REPRO_BENCH_SWEEP_FLOOR)"
    )
