"""Figure 2: interleaving of serial and parallel instructions.

Regenerates the Sun/CM2 activity timeline and checks the §3.1.2
invariant that didle never exceeds dserial.
"""

from __future__ import annotations

from repro.experiments.figures import fig2_interleaving

from conftest import run_once


def test_fig2(benchmark, cm2_spec):
    result = run_once(benchmark, fig2_interleaving, spec=cm2_spec)
    print()
    print(result.render())
    assert result.metrics["didle_le_dserial"] == 1.0
    assert result.metrics["dcomp_cm2"] > 0
