"""Figure 3: Gaussian elimination on the CM2, dedicated vs p=3.

Paper: the contended run is slower only below a crossover size
(M ~ 200); above it, the CM2's parallel work hides the Sun's contended
serial stream and dedicated == contended.
"""

from __future__ import annotations

from repro.experiments.figures import fig3_gauss_cm2

from conftest import run_once


def test_fig3(benchmark, cm2_spec):
    result = run_once(benchmark, fig3_gauss_cm2, spec=cm2_spec)
    print()
    print(result.render())
    assert result.metrics["mean_abs_err_pct"] < 15.0
    crossover = result.metrics["crossover_M"]
    assert 150 <= crossover <= 300  # paper: ~200
    # Below the crossover contention hurts; at the top it does not.
    assert result.rows[0][-1] == "yes"
    assert result.rows[-1][-1] == "no"
