"""Figure 5: contended bursts Sun->Paragon, modeled vs actual.

Paper: two contenders (25% and 76% communicating, 200-word messages);
model within 12% average error.
"""

from __future__ import annotations

from repro.experiments.figures import fig5_paragon_comm_out

from conftest import run_once


def test_fig5(benchmark, paragon_spec):
    result = run_once(benchmark, fig5_paragon_comm_out, spec=paragon_spec)
    print()
    print(result.render())
    # Paper reports 12%; we accept the same band with small headroom.
    assert result.metrics["mean_abs_err_pct"] < 18.0
    # Contention is material: actual well above dedicated everywhere.
    for dedicated, actual in zip(result.column("dedicated"), result.column("actual")):
        assert actual > 1.3 * dedicated
