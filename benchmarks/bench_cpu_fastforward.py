"""Event-horizon fast-forward microbenchmarks.

Sweeps quantum size × job count over the round-robin CPU and records
wall time per full workload. The headline property asserted inside
every round: the simulated event count is O(#arrivals + #completions)
and *independent of the quantum*. Quantum-stepping would pay
``total_work / quantum`` events — 40 at quantum 0.01 becomes 4,000,000
at quantum 1e-4 for the 8-job case — while fast-forward stays at a few
dozen either way, so shrinking the quantum 100× must not move these
timings.
"""

from __future__ import annotations

import pytest

from repro.sim.cpu import TimeSharedCPU
from repro.sim.engine import Simulator

#: Permissive structural bound on events per scheduled job: submission,
#: completion, and a small constant of scheduler wakeups/re-plans.
EVENTS_PER_JOB = 12


def run_rr_workload(quantum: float, njobs: int):
    sim = Simulator()
    cpu = TimeSharedCPU(sim, discipline="rr", quantum=quantum, context_switch=0.0005)
    for k in range(njobs):
        cpu.execute(1.0, tag=f"job{k}", priority=k % 2)
    sim.run()
    return sim.events_processed, cpu.jobs_completed


@pytest.mark.parametrize("quantum", [0.01, 0.001, 0.0001])
@pytest.mark.parametrize("njobs", [2, 8])
def test_rr_fastforward_sweep(benchmark, quantum, njobs):
    events, completed = benchmark(run_rr_workload, quantum, njobs)
    assert completed == njobs
    # Event count depends on the job count, never on the quantum.
    assert events <= EVENTS_PER_JOB * njobs


def test_rr_event_count_is_quantum_free(benchmark):
    """The independence claim itself, measured: a 100× quantum change."""

    def compare():
        coarse, _ = run_rr_workload(0.01, 4)
        fine, _ = run_rr_workload(0.0001, 4)
        return coarse, fine

    coarse, fine = benchmark(compare)
    assert coarse == fine
