"""Figure 4: dedicated bursts to/from the Paragon, 1-HOP vs 2-HOPS.

Paper: both modes present very similar behaviour; communication cost is
a piecewise linear function of message size with a threshold at 1024
words.
"""

from __future__ import annotations

from repro.experiments.figures import fig4_paragon_dedicated

from conftest import run_once


def test_fig4(benchmark, paragon_spec):
    result = run_once(benchmark, fig4_paragon_dedicated, spec=paragon_spec)
    print()
    print(result.render())
    # "Very similar behaviour" between modes.
    assert result.metrics["max_2hops_over_1hop_ratio"] < 1.5
    # Piecewise linearity: the incremental per-word cost changes across
    # the 1024-word threshold.
    sizes = result.column("size (words)")
    t = result.column("1hop out")
    idx_1024 = sizes.index(1024)
    slope_small = (t[idx_1024] - t[0]) / (sizes[idx_1024] - sizes[0])
    slope_large = (t[-1] - t[idx_1024]) / (sizes[-1] - sizes[idx_1024])
    assert abs(slope_large - slope_small) / slope_small > 0.2
