"""Figure 1: Sun<->CM2 matrix transfers, dedicated (p=0) vs p=3.

Paper: modeled communication within 11% average error (15% across the
larger experiment set); contention on the Sun slows CM2 transfers.
"""

from __future__ import annotations

from repro.experiments.figures import fig1_cm2_communication

from conftest import run_once


def test_fig1(benchmark, cm2_spec):
    result = run_once(benchmark, fig1_cm2_communication, spec=cm2_spec)
    print()
    print(result.render())
    assert result.metrics["mean_abs_err_contended_pct"] < 15.0
    # Slowdown shape: p=3 transfers ~4x dedicated at every size.
    for a0, a3 in zip(result.column("actual p=0"), result.column("actual p=3")):
        assert 3.4 < a3 / a0 < 4.6
