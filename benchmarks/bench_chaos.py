"""Smoke benchmark for the resilience subsystem.

Times the chaos driver's fault-rate sweep on the default (noisy)
platform and sanity-checks the resilience contract on the way: the
control row injects nothing, faulted rows inject something, and the
table-less fallback model keeps answering.
"""

from __future__ import annotations

from repro.experiments.chaos import chaos_experiment
from repro.obs import observed

from conftest import run_once

#: Three-point sweep: control, the acceptance-criterion 10%, and heavy.
_SMOKE_RATES = (0.0, 0.1, 0.2)


def test_chaos_sweep_smoke(benchmark, paragon_spec):
    result = run_once(
        benchmark,
        chaos_experiment,
        spec=paragon_spec,
        fault_rates=_SMOKE_RATES,
        work=0.5,
        repetitions=1,
    )
    by_rate = {row[0]: row[6] for row in result.rows}
    assert by_rate[0.0] == 0
    assert by_rate[0.2] > 0
    assert result.metrics["degradation_events"] >= 1
    print()
    print(result.render())


def test_chaos_sweep_traced(benchmark, paragon_spec):
    """The same sweep under an active observability context.

    Checks the end-to-end tracing contract the CLI's ``--trace`` flag
    relies on: the run emits spans of every pipeline stage and stamps
    its result with a :class:`~repro.obs.RunManifest`.
    """

    def run():
        with observed(seed=0) as ctx:
            result = chaos_experiment(
                spec=paragon_spec,
                fault_rates=_SMOKE_RATES,
                work=0.5,
                repetitions=1,
            )
            for kind in ("sim", "prediction", "experiment"):
                assert ctx.tracer.by_kind(kind), f"no {kind!r} spans captured"
        return result

    result = run_once(benchmark, run)
    assert result.manifest is not None
    assert result.manifest.experiment == "chaos"
    assert result.manifest.metrics.counters.get("supervise.runs", 0) >= len(_SMOKE_RATES)
