"""The evaluation section's prose claims (no figure number).

* §3.1.2: synthetic CM2 benchmarks within 15%.
* §3.2.1: varied contender sets vs the communication model — typical
  15%, maximum average <= 30%.
* §3.2.2: same for the computation model — typical <15%, up to 33%.
* §3.2.2: the delay a contender imposes saturates with its message
  size above a threshold around 1000 words.
"""

from __future__ import annotations

from repro.experiments.robustness import (
    robustness_paragon_comm,
    robustness_paragon_comp,
    saturation_sweep,
    synthetic_cm2_experiment,
)

from conftest import run_once


def test_synthetic_cm2(benchmark, cm2_spec):
    result = run_once(benchmark, synthetic_cm2_experiment, spec=cm2_spec)
    print()
    print(result.render())
    assert result.metrics["mean_abs_err_pct"] < 15.0


def test_robustness_comm(benchmark, paragon_spec):
    result = run_once(benchmark, robustness_paragon_comm, spec=paragon_spec)
    print()
    print(result.render())
    assert result.metrics["mean_abs_err_pct"] < 25.0
    assert result.metrics["max_abs_err_pct"] < 45.0


def test_robustness_comp(benchmark, paragon_spec):
    result = run_once(benchmark, robustness_paragon_comp, spec=paragon_spec)
    print()
    print(result.render())
    assert result.metrics["mean_abs_err_pct"] < 20.0
    assert result.metrics["max_abs_err_pct"] < 40.0


def test_saturation(benchmark, paragon_spec):
    result = run_once(benchmark, saturation_sweep, spec=paragon_spec)
    print()
    print(result.render())
    rows = dict(result.rows)
    # Above the buffer size, the imposed delay is flat.
    assert abs(rows[2000] - rows[1000]) / rows[1000] < 0.1
    assert abs(rows[4000] - rows[2000]) / rows[2000] < 0.1
