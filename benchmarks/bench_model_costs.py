"""Micro-benchmarks of the paper's run-time efficiency claims (§3.2.1).

"Using dynamic programming, it is possible to generate all pcomp_i ...
in O(p²) time. If a new application is added ... O(p) time. ... The
slowdown calculation itself takes O(p) time. Since p is small ... the
overhead imposed by its calculation is negligible."

These benchmarks time the actual operations (and the empirical scaling
sanity check lives in the assertions: the absolute costs must be
microseconds-scale — negligible against scheduling decisions).
"""

from __future__ import annotations

import numpy as np

from repro.core.params import DelayTable, SizedDelayTable
from repro.core.probability import add_application, overlap_distribution
from repro.core.runtime import SlowdownManager
from repro.core.scheduler import best_mapping
from repro.core.slowdown import paragon_comm_slowdown
from repro.core.workload import ApplicationProfile
from repro.experiments.tables import example_problem

P = 16  # a generously large contender population ("p is small")
FRACTIONS = [0.1 + 0.8 * k / P for k in range(P)]
DELAY = DelayTable(tuple(0.3 * i for i in range(1, P + 2)))
SIZED = SizedDelayTable(tables={500: DELAY})
PROFILES = [ApplicationProfile(f"a{k}", f, 500) for k, f in enumerate(FRACTIONS)]


def test_overlap_distribution_generation(benchmark):
    """O(p²) full generation."""
    dist = benchmark(overlap_distribution, FRACTIONS)
    assert dist.sum() == 1.0 or abs(dist.sum() - 1.0) < 1e-12


def test_incremental_add(benchmark):
    """O(p) arrival update."""
    base = overlap_distribution(FRACTIONS)
    dist = benchmark(add_application, base, 0.5)
    assert len(dist) == P + 2


def test_slowdown_evaluation(benchmark):
    """O(p) slowdown query."""
    value = benchmark(paragon_comm_slowdown, PROFILES, DELAY, DELAY)
    assert value > 1.0


def test_manager_arrival(benchmark):
    """Full run-time protocol: arrival + both slowdown queries."""

    def arrive_and_query():
        mgr = SlowdownManager(DELAY, DELAY, SIZED)
        for prof in PROFILES:
            mgr.arrive(prof)
        return mgr.comm_slowdown(), mgr.comp_slowdown()

    comm, comp = benchmark(arrive_and_query)
    assert comm > 1.0 and comp > 1.0


def test_mapping_search(benchmark):
    """The scheduling decision the slowdowns feed (Tables 1-4 size)."""
    problem = example_problem().with_slowdowns({"M1": 3.0})
    result = benchmark(best_mapping, problem)
    assert result.elapsed == 38.0


def test_empirical_scaling_of_generation(benchmark):
    """The O(p²) DP must scale ~quadratically, not worse."""
    import time

    def cost(p: int) -> float:
        fractions = list(np.linspace(0.1, 0.9, p))
        t0 = time.perf_counter()
        for _ in range(50):
            overlap_distribution(fractions)
        return (time.perf_counter() - t0) / 50

    def ratio() -> float:
        return cost(128) / cost(32)

    scaling = benchmark.pedantic(ratio, rounds=1, iterations=1)
    # 4x population -> <= ~16x cost (quadratic), with slack for noise.
    assert scaling < 40
