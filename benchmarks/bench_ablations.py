"""Ablations of the design choices DESIGN.md calls out.

1. Piecewise vs single-piece communication model (§3.2.1 motivates the
   threshold).
2. Poisson-binomial overlap weighting vs the worst-case assumption
   that all p contenders are always active.
3. j-bucket granularity: one bucket vs the paper's three.
4. Scheduler quantum of the simulated CPU: the fluid p+1 model's error
   grows with the quantum.
5. Sequencer lookahead depth: deeper lookahead reduces CM2 idle time
   (bounded by the didle <= dserial invariant).
6. Delay-table range: extrapolating from p_max = 2 to p = 4 vs direct
   measurement (keeps the calibration suite small).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.contender import cpu_bound
from repro.core.calibration import fit_linear, fit_piecewise
from repro.core.slowdown import paragon_comm_slowdown, paragon_comp_slowdown
from repro.core.workload import ApplicationProfile
from repro.experiments.calibrate import calibrate_paragon, pingpong_sweep
from repro.experiments.report import render_table
from repro.platforms.specs import CpuSpec, SunCM2Spec, SunParagonSpec
from repro.platforms.suncm2 import SunCM2Platform
from repro.sim.engine import Simulator
from repro.traces.analysis import measure_dedicated_cm2
from repro.traces.instructions import Parallel, Serial, Trace

from conftest import run_once


def test_ablation_piecewise_vs_single_fit(benchmark, paragon_spec):
    """The two-piece model fits the dedicated sweep far better than a
    single line — the reason §3.2.1 introduces the threshold."""

    def compare():
        sweep = pingpong_sweep(paragon_spec, count=150)
        sizes = np.array(list(sweep))
        times = np.array(list(sweep.values()))
        single = fit_linear(sizes, times)
        double = fit_piecewise(sizes, times)
        err_single = np.abs(
            [single.message_time(s) - t for s, t in zip(sizes, times)]
        ) / times
        err_double = np.abs(
            [double.message_time(s) - t for s, t in zip(sizes, times)]
        ) / times
        return float(err_single.mean()), float(err_double.mean())

    err_single, err_double = run_once(benchmark, compare)
    print(f"\nablation 1: mean fit error single={err_single:.2%} piecewise={err_double:.2%}")
    assert err_double < err_single / 2


def test_ablation_probabilistic_vs_worstcase(benchmark, paragon_spec):
    """Weighting the delay tables by overlap probabilities (the paper's
    model) predicts much lower slowdown than assuming all contenders
    are always active — and the probabilistic value is the accurate
    one (cf. fig5/fig6 benches)."""
    cal = calibrate_paragon(paragon_spec)
    contenders = [
        ApplicationProfile("c25", 0.25, 200),
        ApplicationProfile("c76", 0.76, 200),
    ]

    def compare():
        probabilistic = paragon_comm_slowdown(contenders, cal.delay_comp, cal.delay_comm)
        worst_case = (
            1.0
            + cal.delay_comp.delay(2)  # as if both always computed
            + cal.delay_comm.delay(2)  # and both always communicated
        )
        return probabilistic, worst_case

    probabilistic, worst_case = run_once(benchmark, compare)
    print(f"\nablation 2: slowdown probabilistic={probabilistic:.3f} worst-case={worst_case:.3f}")
    assert worst_case > probabilistic * 1.5


def test_ablation_j_bucket_granularity(benchmark, paragon_spec):
    """Collapsing the sized tables to a single bucket loses the
    message-size sensitivity Figures 7/8 demonstrate."""
    cal = calibrate_paragon(paragon_spec)
    big = [ApplicationProfile("c", 0.66, 1000)]
    small = [ApplicationProfile("c", 0.66, 1)]

    def spread():
        with_buckets = paragon_comp_slowdown(
            big, cal.delay_comm_sized
        ) - paragon_comp_slowdown(small, cal.delay_comm_sized)
        return with_buckets

    spread_value = run_once(benchmark, spread)
    print(f"\nablation 3: slowdown spread across contender sizes = {spread_value:.3f}")
    # A single-bucket model would give spread == 0 by construction.
    assert spread_value > 0.05


def test_ablation_quantum_sensitivity(benchmark):
    """The p+1 model's error against the simulator grows with the
    scheduler quantum (fluid-limit argument)."""

    def error_for(quantum: float) -> float:
        spec = SunCM2Spec(
            cpu=CpuSpec(quantum=quantum, context_switch=0.0, daemon_interval=0.0,
                        daemon_work=0.0)
        )
        sim = Simulator()
        platform = SunCM2Platform(sim, spec=spec)
        for i in range(3):
            platform.spawn(cpu_bound(platform, tag=f"h{i}"), name=f"h{i}")

        def probe():
            elapsed = yield from platform.transfer(256, count=8, tag="probe")
            return elapsed

        actual = sim.run_until(sim.process(probe()))
        dedicated = 8 * spec.message_cpu_time(256)
        return abs(actual / dedicated - 4.0) / 4.0

    def sweep():
        return {q: error_for(q) for q in (1e-4, 1e-3, 1e-2)}

    errors = run_once(benchmark, sweep)
    print("\nablation 4: |p+1 model error| by quantum:", {q: f"{e:.2%}" for q, e in errors.items()})
    assert errors[1e-4] <= errors[1e-2] + 0.02


def test_ablation_lookahead_depth(benchmark):
    """Deeper sequencer lookahead lets the Sun run further ahead,
    shrinking CM2 idle time in serial-punctuated streams."""

    def idle_for(lookahead: int) -> float:
        spec = SunCM2Spec(
            cpu=CpuSpec(daemon_interval=0.0, daemon_work=0.0), lookahead=lookahead
        )
        trace = Trace([Serial(2e-4), Parallel(5e-3)] * 60)
        return measure_dedicated_cm2(trace, spec).costs.didle

    def sweep():
        return {d: idle_for(d) for d in (1, 2, 4, 16)}

    idles = run_once(benchmark, sweep)
    print("\nablation 5: didle by lookahead depth:", {d: f"{v:.4f}s" for d, v in idles.items()})
    assert idles[16] <= idles[1] + 1e-9


def test_ablation_delay_table_extrapolation(benchmark, paragon_spec):
    """6. Calibrating delay tables only up to p_max = 2 and linearly
    extrapolating to p = 4 stays close to the directly measured level —
    the property that keeps the calibration suite small."""
    from repro.experiments.calibrate import measure_delay_comp

    def compare():
        full = measure_delay_comp(paragon_spec, p_max=4)
        short = measure_delay_comp(paragon_spec, p_max=2)
        measured = full.delay(4)
        extrapolated = short.delay(4, extrapolate=True)
        return measured, extrapolated

    measured, extrapolated = run_once(benchmark, compare)
    print(f"\nablation 6: delay_comp^4 measured={measured:.3f} extrapolated-from-2={extrapolated:.3f}")
    assert extrapolated == pytest.approx(measured, rel=0.2)
