"""Figure 7: SOR on the Sun; contenders 66% @ 800 w and 33% @ 1200 w.

Paper: model error 4% with j=1000, 16% with j=500, 32% with j=1 — the
j bucket must reflect the contenders' (large) message sizes.
"""

from __future__ import annotations

from repro.experiments.figures import fig7_sor_sun

from conftest import run_once


def test_fig7(benchmark, paragon_spec):
    result = run_once(benchmark, fig7_sor_sun, spec=paragon_spec)
    print()
    print(result.render())
    # Shape: the tiny-message bucket is clearly the wrong choice, the
    # recommended bucket (max contender size -> 1000) is accurate.
    assert result.metrics["auto_bucket_j"] == 1000
    assert result.metrics["mean_abs_err_auto_pct"] < 15.0
    assert (
        result.metrics["mean_abs_err_j1_pct"]
        > 1.5 * result.metrics["mean_abs_err_j1000_pct"]
    )
