"""Shared benchmark fixtures.

Benchmarks run against the *default* platform specs (OS daemon noise
on), i.e. the full "production system" emulation; calibrations are
cached per spec by :mod:`repro.experiments.calibrate`, so the suite
pays for each suite once per session.
"""

from __future__ import annotations

import pytest

from repro.platforms.specs import DEFAULT_SUNCM2, DEFAULT_SUNPARAGON


@pytest.fixture(scope="session")
def cm2_spec():
    return DEFAULT_SUNCM2


@pytest.fixture(scope="session")
def paragon_spec():
    return DEFAULT_SUNPARAGON


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a heavy experiment driver with a single measured round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
