"""Shared benchmark fixtures.

Benchmarks run against the *default* platform specs (OS daemon noise
on), i.e. the full "production system" emulation; calibrations are
cached per spec by :mod:`repro.experiments.calibrate`, so the suite
pays for each suite once per session.
"""

from __future__ import annotations

import pytest

from repro.platforms.specs import DEFAULT_SUNCM2, DEFAULT_SUNPARAGON


@pytest.fixture(scope="session")
def cm2_spec():
    return DEFAULT_SUNCM2


@pytest.fixture(scope="session")
def paragon_spec():
    return DEFAULT_SUNPARAGON


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a heavy experiment driver: one warmup, three rounds.

    The name is historical (it used to mean one measured round). A
    single sample cannot distinguish a regression from noise — the
    recorded ``stddev_s`` was always 0 — so heavy drivers now pay one
    unrecorded warmup round (imports, calibration caches, allocator
    warm-up) plus three measured rounds, which is enough for a median
    and a spread while keeping the suite affordable.
    """
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=3, iterations=1, warmup_rounds=1
    )
