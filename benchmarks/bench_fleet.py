"""Fleet-service throughput: placement queries against a 100k-app registry.

The fleet service answers placement queries from memoized per-machine
tagged slowdowns (``repro.fleet.shard``), so query cost is independent
of how many applications are registered — only arrivals/departures pay
the O(p) distribution update, and only the machines they touch are
re-derived on the next query. These benches pin that contract down:

- ``test_fleet_query_throughput`` — the guarded hot path: placement
  queries with 32-machine candidate sets against a fleet holding
  100,000 registered applications on 256 machines. The service must
  sustain >= 10,000 queries/sec single-process (asserted, not just
  recorded).
- ``test_fleet_event_churn`` — the guarded arrive/depart path: the
  incremental O(p) add/remove updates plus registry bookkeeping. No
  event log is attached; fsync latency is a durability cost, not a
  kernel cost (``bench_simulator`` measures nothing it doesn't own
  either).
- ``test_fleet_sharded_workers`` — fan the same query load over
  ``repro.parallel`` workers, one fleet partition per worker. Not
  perf-guarded (CI hosts may have a single CPU, where the pool only
  adds overhead); it proves the partitioned path works and stays
  value-identical to the inline run.
- ``test_fleet_supervised_workers`` — the full supervision tree: an
  event feed through >= 4 real shard worker processes (pipe protocol,
  heartbeats, supervision ticks), guarded both by median and by an
  events/sec floor (``REPRO_BENCH_FLEET_WORKERS_FLOOR``), with the end
  state checked bit-identical against an in-process oracle.
- ``test_fleet_million_apps`` — the struct-of-arrays scale proof: 1M
  registered apps across 2048 machines in one process, with the build's
  RSS growth asserted under a ceiling (``resource.getrusage``) and the
  query rate against the warm fleet asserted over a floor
  (``REPRO_BENCH_FLEET_1M_FLOOR``).
- ``test_fleet_batched_workers`` — the supervised feed with events
  coalesced into ``SupervisorPolicy.batch_size``-event frames; guarded
  by an events/sec floor (``REPRO_BENCH_FLEET_BATCHED_FLOOR``) set at
  4x the unbatched supervised floor, end state still bit-identical to
  the in-process oracle.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.fleet import (
    AdmissionController,
    FleetService,
    PlacementQuery,
    TenantQuota,
)
from repro.parallel import ParallelExecutor

from conftest import run_once

#: The fleet the guarded benches query: 100k apps across 256 machines
#: (~390 apps/machine, so every per-machine distribution is a real
#: O(p) object, not a toy).
MACHINES = 256
APPS = 100_000
NUM_SHARDS = 8
QUERY_BATCH = 200
CANDIDATES_PER_QUERY = 32
CHURN_PAIRS = 50

_SERVICE: FleetService | None = None
_QUERIES: list[tuple[str, PlacementQuery]] | None = None


def _unmetered_admission() -> AdmissionController:
    """Admission that never sheds: these benches measure the served path."""
    return AdmissionController(
        default=TenantQuota(query_rate=1e9, query_burst=1e9, max_apps=10**9)
    )


def _populate(service: FleetService, apps: int, seed: int) -> None:
    """Register *apps* arrivals, deterministically spread over the fleet."""
    rng = np.random.default_rng(seed)
    machines = rng.integers(0, service.machines, size=apps)
    fractions = rng.uniform(0.05, 0.8, size=apps)
    sizes = rng.choice([64.0, 256.0, 1024.0], size=apps)
    for i in range(apps):
        admitted = service.apply(
            {
                "op": "arrive",
                "app": f"app-{i}",
                "tenant": f"tenant-{i % 8}",
                "machine": int(machines[i]),
                "comm_fraction": float(fractions[i]),
                "message_size": float(sizes[i]),
            }
        )
        assert admitted


def _fleet() -> FleetService:
    """The shared 100k-app service, built once and cache-warmed."""
    global _SERVICE
    if _SERVICE is None:
        service = FleetService(
            machines=MACHINES, num_shards=NUM_SHARDS, admission=_unmetered_admission()
        )
        _populate(service, APPS, seed=1234)
        # One full-fleet query derives every machine's tagged slowdowns,
        # so the timed region exercises the memoized steady state.
        service.query("warmup", PlacementQuery(dcomp_frontend=1.0))
        _SERVICE = service
    return _SERVICE


def _queries() -> list[tuple[str, PlacementQuery]]:
    global _QUERIES
    if _QUERIES is None:
        rng = np.random.default_rng(99)
        out = []
        for i in range(QUERY_BATCH):
            candidates = tuple(
                int(m)
                for m in rng.choice(MACHINES, size=CANDIDATES_PER_QUERY, replace=False)
            )
            out.append(
                (
                    f"tenant-{i % 8}",
                    PlacementQuery(
                        dcomp_frontend=1.0,
                        backend_dcomp=0.4,
                        backend_didle=0.1,
                        backend_dserial=0.2,
                        dcomm_out=0.05,
                        dcomm_in=0.05,
                        candidates=candidates,
                    ),
                )
            )
        _QUERIES = out
    return _QUERIES


def test_fleet_query_throughput(benchmark):
    service = _fleet()
    queries = _queries()

    def run() -> int:
        served = 0
        for tenant, query in queries:
            answer = service.query(tenant, query)
            served += not answer.shed
        return served

    assert benchmark(run) == len(queries)
    assert len(service.registry) == APPS
    rate = len(queries) / benchmark.stats.stats.median
    benchmark.extra_info["queries_per_sec"] = round(rate)
    assert rate >= 10_000, f"fleet query path sustained only {rate:.0f} queries/sec"


def test_fleet_event_churn(benchmark):
    service = _fleet()

    def run() -> int:
        before = service.admitted_events
        for i in range(CHURN_PAIRS):
            service.apply(
                {
                    "op": "arrive",
                    "app": f"churn-{i}",
                    "tenant": "churn",
                    "machine": i % MACHINES,
                    "comm_fraction": 0.3,
                    "message_size": 256.0,
                }
            )
        for i in range(CHURN_PAIRS):
            service.apply({"op": "depart", "app": f"churn-{i}"})
        return service.admitted_events - before

    assert benchmark(run) == 2 * CHURN_PAIRS
    assert len(service.registry) == APPS  # every round returns to baseline


# -- sharded fan-out ---------------------------------------------------------

_PARTITIONS: dict[int, FleetService] = {}


@dataclass(frozen=True)
class PartitionQueries:
    """Picklable worker task: build a fleet partition, answer queries.

    Each worker owns an independent partition of the fleet (machines
    and apps divided by ``partitions``), cached per process so repeated
    maps pay the build once — the shape a long-running sharded service
    would have.
    """

    partitions: int
    machines: int
    apps: int
    queries: int
    seed: int

    def __call__(self, part: int) -> tuple[int, int]:
        service = _PARTITIONS.get(part)
        if service is None:
            service = FleetService(
                machines=self.machines, num_shards=2, admission=_unmetered_admission()
            )
            _populate(service, self.apps, seed=self.seed + part)
            service.query("warmup", PlacementQuery(dcomp_frontend=1.0))
            _PARTITIONS[part] = service
        rng = np.random.default_rng(self.seed * 7 + part)
        served = checksum = 0
        for _ in range(self.queries):
            candidates = tuple(
                int(m) for m in rng.choice(self.machines, size=8, replace=False)
            )
            answer = service.query(
                "t", PlacementQuery(dcomp_frontend=1.0, candidates=candidates)
            )
            served += not answer.shed
            checksum += answer.machine
        return served, checksum


def test_fleet_sharded_workers(benchmark):
    task = PartitionQueries(partitions=4, machines=16, apps=1500, queries=300, seed=5)
    parts = list(range(task.partitions))
    executor = ParallelExecutor(workers=2)

    results = run_once(benchmark, executor.map, task, parts)

    assert [served for served, _ in results] == [task.queries] * task.partitions
    # Determinism contract: the pool run is value-identical to inline.
    assert results == ParallelExecutor(workers=1).map(task, parts)


# -- supervised worker processes ----------------------------------------------

SUPERVISED_WORKERS = 4
SUPERVISED_EVENTS = 1500
SUPERVISED_MACHINES = 64


def _floor(env: str, default: float) -> float:
    """Throughput floor for an acceptance assertion, overridable via *env*.

    Loaded CI hosts (or single-CPU runners, where every worker process
    shares one core with the parent) can depress the supervised event
    rate; the env var lets a constrained runner relax — or a dedicated
    box tighten — the floor without editing the benchmark.
    """
    raw = os.environ.get(env, "").strip()
    return float(raw) if raw else default


def test_fleet_supervised_workers(benchmark):
    """Event feed through >= 4 real worker processes, with heartbeats.

    Guarded: records the median wall-clock of pushing
    ``SUPERVISED_EVENTS`` events through a supervised fleet (one
    process per shard, pipe protocol, supervision ticks) and asserts a
    floor on events/sec (``REPRO_BENCH_FLEET_WORKERS_FLOOR``). Each
    round also checks the end state against an in-process oracle — a
    supervised fleet that is fast but wrong would still fail.
    """
    from repro.experiments.journal import EventLog
    from repro.fleet import SupervisedFleetService, synthetic_feed

    oracle = FleetService(
        machines=SUPERVISED_MACHINES,
        num_shards=SUPERVISED_WORKERS,
        admission=_unmetered_admission(),
    )
    for event in synthetic_feed(
        seed=71, events=SUPERVISED_EVENTS, machines=SUPERVISED_MACHINES
    ):
        oracle.apply(event)
    expected = oracle.state_hash()

    def run() -> str:
        with tempfile.TemporaryDirectory() as tmp:
            service = SupervisedFleetService(
                machines=SUPERVISED_MACHINES,
                num_shards=SUPERVISED_WORKERS,
                admission=_unmetered_admission(),
                log=EventLog(Path(tmp) / "bench.jsonl", sync=False),
            )
            try:
                for event in synthetic_feed(
                    seed=71, events=SUPERVISED_EVENTS, machines=SUPERVISED_MACHINES
                ):
                    service.apply(event)
                return service.state_hash()
            finally:
                service.close()

    assert run_once(benchmark, run) == expected
    rate = SUPERVISED_EVENTS / benchmark.stats.stats.median
    benchmark.extra_info["events_per_sec"] = round(rate)
    benchmark.extra_info["workers"] = SUPERVISED_WORKERS
    floor = _floor("REPRO_BENCH_FLEET_WORKERS_FLOOR", 500.0)
    assert rate >= floor, (
        f"supervised fleet sustained only {rate:.0f} events/sec across "
        f"{SUPERVISED_WORKERS} workers (floor {floor:g}/s, override with "
        f"$REPRO_BENCH_FLEET_WORKERS_FLOOR)"
    )


# -- 1M-app struct-of-arrays scale proof --------------------------------------

MACHINES_1M = 2048
APPS_1M = 1_000_000
#: Ceiling on the RSS growth of building the 1M-app fleet. The pooled
#: array state itself is ~50 MiB (registry slots, shard matrices at
#: ~490 apps/machine, memo vectors); the rest is the two name→slot
#: dicts and the 1M name strings (~290 MiB measured total). The old
#: object-per-app layout (AppRecord + per-manager dict entries +
#: per-machine distribution arrays) blows well past this ceiling.
RSS_CEILING_1M_MB = 768.0

_SERVICE_1M: FleetService | None = None
_RSS_1M_BYTES: int | None = None


def _fleet_1m() -> tuple[FleetService, int]:
    """The shared 1M-app service plus the RSS growth its build cost."""
    global _SERVICE_1M, _RSS_1M_BYTES
    if _SERVICE_1M is None:
        import resource

        before = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        service = FleetService(
            machines=MACHINES_1M, num_shards=NUM_SHARDS, admission=_unmetered_admission()
        )
        _populate(service, APPS_1M, seed=4321)
        service.query("warmup", PlacementQuery(dcomp_frontend=1.0))
        after = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        _SERVICE_1M = service
        # ru_maxrss is KiB on Linux; peak-to-peak delta brackets the build.
        _RSS_1M_BYTES = (after - before) * 1024
    return _SERVICE_1M, _RSS_1M_BYTES


def test_fleet_million_apps(benchmark):
    """1M registered apps, one process: bounded memory, >= 10k queries/sec.

    Guarded twice: the build's RSS growth must stay under
    ``RSS_CEILING_1M_MB`` (override ``REPRO_BENCH_FLEET_1M_RSS_MB``),
    and the warm query path over the 1M-app fleet must clear the same
    10k queries/sec floor the 100k bench asserts
    (``REPRO_BENCH_FLEET_1M_FLOOR``) — query cost is memoized
    per-machine state, so population must not show up in the rate.
    """
    service, rss_bytes = _fleet_1m()
    rng = np.random.default_rng(77)
    queries = []
    for i in range(QUERY_BATCH):
        candidates = tuple(
            int(m)
            for m in rng.choice(MACHINES_1M, size=CANDIDATES_PER_QUERY, replace=False)
        )
        queries.append(
            (
                f"tenant-{i % 8}",
                PlacementQuery(
                    dcomp_frontend=1.0,
                    backend_dcomp=0.4,
                    backend_didle=0.1,
                    backend_dserial=0.2,
                    dcomm_out=0.05,
                    dcomm_in=0.05,
                    candidates=candidates,
                ),
            )
        )

    def run() -> int:
        served = 0
        for tenant, query in queries:
            answer = service.query(tenant, query)
            served += not answer.shed
        return served

    assert benchmark(run) == len(queries)
    assert len(service.registry) == APPS_1M
    rss_mb = rss_bytes / (1024 * 1024)
    ceiling = _floor("REPRO_BENCH_FLEET_1M_RSS_MB", RSS_CEILING_1M_MB)
    assert rss_mb <= ceiling, (
        f"building the 1M-app fleet grew RSS by {rss_mb:.0f} MiB "
        f"(ceiling {ceiling:g} MiB, override with $REPRO_BENCH_FLEET_1M_RSS_MB)"
    )
    rate = len(queries) / benchmark.stats.stats.median
    benchmark.extra_info["queries_per_sec"] = round(rate)
    benchmark.extra_info["apps"] = APPS_1M
    benchmark.extra_info["rss_mb"] = round(rss_mb)
    floor = _floor("REPRO_BENCH_FLEET_1M_FLOOR", 10_000.0)
    assert rate >= floor, (
        f"1M-app fleet sustained only {rate:.0f} queries/sec "
        f"(floor {floor:g}/s, override with $REPRO_BENCH_FLEET_1M_FLOOR)"
    )


# -- batched supervised frames -------------------------------------------------

BATCHED_EVENTS = 6000
BATCHED_FRAME = 32


def test_fleet_batched_workers(benchmark):
    """Supervised feed with 32-event frames: >= 4x the unbatched floor.

    Same supervision tree as ``test_fleet_supervised_workers``, but
    admitted events coalesce into ``SupervisorPolicy.batch_size``
    frames, so the per-event pipe round-trip amortizes across the
    frame. The floor (``REPRO_BENCH_FLEET_BATCHED_FLOOR``) is 4x the
    unbatched supervised floor, and the end state is still checked
    bit-identical against the in-process oracle every round.
    """
    from repro.experiments.journal import EventLog
    from repro.fleet import SupervisedFleetService, synthetic_feed
    from repro.fleet.supervisor import SupervisorPolicy

    oracle = FleetService(
        machines=SUPERVISED_MACHINES,
        num_shards=SUPERVISED_WORKERS,
        admission=_unmetered_admission(),
    )
    for event in synthetic_feed(
        seed=72, events=BATCHED_EVENTS, machines=SUPERVISED_MACHINES
    ):
        oracle.apply(event)
    expected = oracle.state_hash()

    def run() -> str:
        with tempfile.TemporaryDirectory() as tmp:
            service = SupervisedFleetService(
                machines=SUPERVISED_MACHINES,
                num_shards=SUPERVISED_WORKERS,
                admission=_unmetered_admission(),
                log=EventLog(Path(tmp) / "bench.jsonl", sync=False),
                supervisor=SupervisorPolicy(batch_size=BATCHED_FRAME),
            )
            try:
                for event in synthetic_feed(
                    seed=72, events=BATCHED_EVENTS, machines=SUPERVISED_MACHINES
                ):
                    service.apply(event)
                return service.state_hash()
            finally:
                service.close()

    assert run_once(benchmark, run) == expected
    rate = BATCHED_EVENTS / benchmark.stats.stats.median
    benchmark.extra_info["events_per_sec"] = round(rate)
    benchmark.extra_info["workers"] = SUPERVISED_WORKERS
    benchmark.extra_info["batch_size"] = BATCHED_FRAME
    floor = _floor("REPRO_BENCH_FLEET_BATCHED_FLOOR", 2000.0)
    assert rate >= floor, (
        f"batched supervised fleet sustained only {rate:.0f} events/sec "
        f"with {BATCHED_FRAME}-event frames (floor {floor:g}/s, override "
        f"with $REPRO_BENCH_FLEET_BATCHED_FLOOR)"
    )
