"""Throughput micro-benchmarks of the DES substrate itself.

Not a paper figure — these keep the simulator's performance honest so
experiment sweeps stay fast (guide: profile before optimising; these
are the numbers to profile against).
"""

from __future__ import annotations

from repro.obs import observed
from repro.sim.cpu import TimeSharedCPU
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.resources import FifoResource


def test_event_throughput(benchmark):
    """Bare timeout events through the kernel."""

    def run():
        sim = Simulator()

        def ticker(sim, n):
            for _ in range(n):
                yield sim.timeout(1.0)

        sim.process(ticker(sim, 5000))
        sim.run()
        return sim.now

    assert benchmark(run) == 5000.0


def test_rr_cpu_throughput(benchmark):
    """Round-robin slices with four competing jobs."""

    def run():
        sim = Simulator()
        cpu = TimeSharedCPU(sim, discipline="rr", quantum=0.001)
        for k in range(4):
            cpu.execute(1.0, tag=f"job{k}")
        sim.run(until=100.0)
        return cpu.jobs_completed

    assert benchmark(run) == 4


def test_link_throughput(benchmark):
    """FIFO message service with two senders."""

    def run():
        sim = Simulator()
        link = Link(sim, wire_time=lambda s: 1e-3)

        def sender(sim, link, n):
            for _ in range(n):
                yield from link.transfer(100, "out")

        sim.process(sender(sim, link, 1000))
        sim.process(sender(sim, link, 1000))
        sim.run()
        return link.messages_sent

    assert benchmark(run) == 2000


def test_event_throughput_traced(benchmark):
    """The same kernel loop under an active observability context.

    Pairs with :func:`test_event_throughput` to expose the cost of
    tracing when it is *on*; the untraced twin holds the <5 %
    disabled-overhead line.
    """

    def run():
        with observed(seed=0) as ctx:
            sim = Simulator()

            def ticker(sim, n):
                for _ in range(n):
                    yield sim.timeout(1.0)

            sim.process(ticker(sim, 5000))
            sim.run()
            assert ctx.tracer.by_kind("sim")
            assert ctx.metrics.counter("sim.events").value >= 5000
        return sim.now

    assert benchmark(run) == 5000.0


def test_resource_contention_throughput(benchmark):
    """Request/release cycles on a contended FIFO resource."""

    def run():
        sim = Simulator()
        res = FifoResource(sim, capacity=2)

        def user(sim, res, n):
            for _ in range(n):
                yield from res.acquire(1e-3)

        for _ in range(6):
            sim.process(user(sim, res, 300))
        sim.run()
        return res.total_grants

    assert benchmark(run) == 1800
