"""T_p effects: inter-partition mesh contention and gang scheduling.

§3.2: "traffic on the mesh may affect an application's performance ...
contention for CPU in each node may occur if the nodes are time-shared
and gang-scheduling is implemented. These effects can be included in
T_p."
"""

from __future__ import annotations

from repro.experiments.backend import gang_experiment, mesh_contention_experiment

from conftest import run_once


def test_mesh_contention(benchmark):
    result = run_once(benchmark, mesh_contention_experiment)
    print()
    print(result.render())
    assert result.metrics["contiguous_slowdown"] < 1.02
    assert result.metrics["scattered_slowdown"] > 1.03
    assert any("REJECTED" in str(row[1]) for row in result.rows)


def test_gang_scheduling(benchmark):
    result = run_once(benchmark, gang_experiment)
    print()
    print(result.render())
    assert result.metrics["mean_abs_err_pct"] < 5.0
