"""The end purpose: contention-aware library dispatch (§2 + Eq. (1)).

Validates that the contention-aware scheduler's placements match the
simulated truth, and that ignoring contention mis-places at least one
task (the Gaussian-elimination window), costing real simulated time.
"""

from __future__ import annotations

from repro.experiments.dispatch import library_dispatch_experiment

from conftest import run_once


def test_library_dispatch(benchmark, cm2_spec):
    result = run_once(benchmark, library_dispatch_experiment, spec=cm2_spec)
    print()
    print(result.render())
    assert result.metrics["aware_correct"] == result.metrics["tasks"]
    assert result.metrics["oblivious_correct"] < result.metrics["tasks"]
    assert result.metrics["time_saved_by_awareness_s"] > 0
