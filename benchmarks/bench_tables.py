"""Tables 1-4: the motivating scheduling example.

Regenerates the three mapping decisions of the paper's introduction and
asserts the exact paper numbers (16 / 38 / 48 time units).
"""

from __future__ import annotations

from repro.experiments.tables import tables_experiment

from conftest import run_once


def test_tables_1_4(benchmark):
    result = run_once(benchmark, tables_experiment)
    print()
    print(result.render())
    assert result.metrics["scenarios_matching_paper"] == 3.0
    assert result.column("time") == [16.0, 38.0, 48.0]
