"""Equation (1) on the Sun/Paragon with a detailed T_p substrate.

The full two-machine decision of Section 3.2: SOR on the contended Sun
vs ship-to-mesh-partition-and-back, with T_p measured on the real
back-end model (partition + mesh halo exchanges).
"""

from __future__ import annotations

from repro.experiments.backend import tp_placement_experiment

from conftest import run_once


def test_tp_placement(benchmark):
    result = run_once(benchmark, tp_placement_experiment)
    print()
    print(result.render())
    winners = result.column("winner")
    assert winners[0] == "sun" and winners[-1] == "paragon"
    assert 150 <= result.metrics["crossover_M"] <= 450
