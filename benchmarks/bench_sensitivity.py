"""Assumption-sensitivity studies (model extensions).

Quantifies the price of the model's independence/mixing assumptions:
variance vs contender cycle length, and error vs communication
fraction (the paper's 'intensive communicators' worst case).
"""

from __future__ import annotations

from repro.experiments.sensitivity import cycle_length_sensitivity, fraction_sensitivity

from conftest import run_once


def test_cycle_length_sensitivity(benchmark, paragon_spec):
    result = run_once(benchmark, cycle_length_sensitivity, spec=paragon_spec)
    print()
    print(result.render())
    assert result.metrics["cv_longest_cycle"] > result.metrics["cv_shortest_cycle"]


def test_fraction_sensitivity(benchmark, paragon_spec):
    result = run_once(benchmark, fraction_sensitivity, spec=paragon_spec)
    print()
    print(result.render())
    assert result.metrics["max_abs_err_pct"] < 35.0


def test_mixed_workload(benchmark, paragon_spec):
    from repro.experiments.sensitivity import mixed_workload_experiment

    result = run_once(benchmark, mixed_workload_experiment, spec=paragon_spec)
    print()
    print(result.render())
    assert result.metrics["mean_abs_err_pct"] < 15.0
