"""Run the benchmark suite and record per-benchmark statistics.

Thin driver around ``pytest-benchmark``: it runs a benchmark selection
(default: every ``bench_*.py`` in this directory) with
``--benchmark-json``, then reduces the raw report to a stable summary —
per-benchmark mean/stddev/min/max/median seconds and round counts,
plus the machine info pytest-benchmark captured — and writes it as
JSON (default ``BENCH_perf.json`` in the repository root).

Usage::

    PYTHONPATH=src python benchmarks/record.py [--out FILE] [selection ...]

where ``selection`` is any pytest node selection (files, directories,
``-k`` comes through ``--`` free-form args are *not* supported — pass
file paths). ``scripts/bench.sh`` is the canonical entry point.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

__all__ = ["summarize", "main"]


def summarize(raw: dict) -> dict:
    """Reduce a pytest-benchmark JSON report to the recorded summary."""
    benchmarks = {}
    for bench in raw.get("benchmarks", []):
        stats = bench.get("stats", {})
        benchmarks[bench["name"]] = {
            "mean_s": stats.get("mean"),
            "stddev_s": stats.get("stddev"),
            "min_s": stats.get("min"),
            "max_s": stats.get("max"),
            "median_s": stats.get("median"),
            "rounds": stats.get("rounds"),
        }
    return {
        "datetime": raw.get("datetime"),
        "machine_info": {
            key: raw.get("machine_info", {}).get(key)
            for key in ("node", "processor", "machine", "python_version", "cpu")
        },
        "benchmarks": benchmarks,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the benchmark suite and write a BENCH_perf.json summary."
    )
    parser.add_argument(
        "--out",
        default="BENCH_perf.json",
        help="summary output path (default: BENCH_perf.json)",
    )
    parser.add_argument(
        "selection",
        nargs="*",
        help="pytest selection (default: the benchmarks/ directory)",
    )
    args = parser.parse_args(argv)

    selection = args.selection or [str(Path(__file__).resolve().parent)]
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        raw_path = Path(handle.name)
    try:
        code = subprocess.call(
            [
                sys.executable,
                "-m",
                "pytest",
                *selection,
                "-q",
                "--benchmark-only",
                # Measurement hygiene: warm each benchmark up before
                # recording, keep the garbage collector out of the
                # timed region, and insist on enough rounds that the
                # median and stddev mean something (pedantic benches
                # control their own rounds and ignore these).
                "--benchmark-warmup=on",
                "--benchmark-warmup-iterations=10",
                "--benchmark-min-rounds=20",
                "--benchmark-disable-gc",
                f"--benchmark-json={raw_path}",
            ]
        )
        if code != 0:
            return code
        raw = json.loads(raw_path.read_text())
    finally:
        raw_path.unlink(missing_ok=True)

    summary = summarize(raw)
    out = Path(args.out)
    out.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(summary['benchmarks'])} benchmark records to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
