"""Benchmarks for the vectorized prediction kernels (`repro.core.batch`).

The headline acceptance number for the batch API: scoring a 10k-point
candidate grid through :func:`repro.core.batch.decide_placement_batch`
must beat a scalar :func:`repro.core.prediction.decide_placement` loop
by >= 10x. Both sides are benchmarked here so the ratio is visible in
``BENCH_perf.json``.
"""

from __future__ import annotations

import numpy as np

from repro.core.batch import placement_grid
from repro.core.prediction import BackendTaskCosts, decide_placement

GRID = 10_000


def _grid_arrays():
    rng = np.random.default_rng(12345)
    return {
        "dcomp_frontend": rng.uniform(0.5, 5.0, GRID),
        "backend_dcomp": rng.uniform(0.1, 2.0, GRID),
        "backend_didle": rng.uniform(0.0, 0.5, GRID),
        "backend_dserial": rng.uniform(0.05, 1.0, GRID),
        "dcomm_out": rng.uniform(0.01, 0.5, GRID),
        "dcomm_in": rng.uniform(0.01, 0.5, GRID),
    }


def test_placement_grid_batch(benchmark):
    arrays = _grid_arrays()

    def run():
        grid = placement_grid(comp_slowdown=3.0, comm_slowdown=2.0, **arrays)
        return grid.best_time.sum()

    benchmark(run)


def test_placement_scalar_loop(benchmark):
    arrays = _grid_arrays()
    columns = list(zip(*(arrays[key].tolist() for key in sorted(arrays))))

    def run():
        total = 0.0
        for backend_dcomp, backend_didle, backend_dserial, dcomm_in, dcomm_out, dcomp in columns:
            costs = BackendTaskCosts(
                dcomp=backend_dcomp, didle=backend_didle, dserial=backend_dserial
            )
            placement = decide_placement(
                dcomp, costs, dcomm_out, dcomm_in, comp_slowdown=3.0, comm_slowdown=2.0
            )
            total += placement.prediction.best_time
        return total

    benchmark(run)
