"""Figure 6: contended bursts Paragon->Sun, modeled vs actual.

Paper: same contender set as Figure 5; model within 14% average error.
"""

from __future__ import annotations

from repro.experiments.figures import fig6_paragon_comm_in

from conftest import run_once


def test_fig6(benchmark, paragon_spec):
    result = run_once(benchmark, fig6_paragon_comm_in, spec=paragon_spec)
    print()
    print(result.render())
    assert result.metrics["mean_abs_err_pct"] < 20.0
