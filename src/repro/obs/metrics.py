"""Metric instruments: counters, gauges, histograms and the registry.

Generalises the simulator's measurement instruments into a subsystem
the whole stack shares: :class:`Tally` and :class:`TimeWeighted` (moved
here from ``repro.sim.monitors``, which re-exports them unchanged) are
the streaming accumulators; :class:`Counter`, :class:`Gauge` and
:class:`Histogram` wrap them under stable names inside a
:class:`MetricsRegistry`; :meth:`MetricsRegistry.snapshot` freezes a
run's numbers into a serialisable :class:`MetricsSnapshot`, and
:meth:`MetricsSnapshot.diff` attributes the change between two
snapshots to the work in between — the per-run accounting the
:class:`~repro.obs.manifest.RunManifest` stamps onto results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

__all__ = [
    "Tally",
    "TimeWeighted",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
]


class Tally:
    """Streaming count/mean/variance of observations (Welford's method)."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.total = 0.0

    def record(self, value: float) -> None:
        """Add one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def extend(self, values: Iterable[float]) -> None:
        """Add many observations."""
        for v in values:
            self.record(v)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (NaN when empty)."""
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); NaN with fewer than two samples."""
        return self._m2 / (self.count - 1) if self.count > 1 else math.nan

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        v = self.variance
        return math.sqrt(v) if v == v else math.nan

    def state_dict(self) -> dict[str, float]:
        """Full transferable state (enough to :meth:`merge_state`).

        Unlike the ``{count, total, mean, min, max}`` summary in a
        :class:`MetricsSnapshot`, this includes the Welford ``m2``
        term, so tallies accumulated in worker processes can be folded
        into the parent without losing variance information.
        """
        return {
            "count": self.count,
            "mean": self._mean,
            "m2": self._m2,
            "min": self.minimum,
            "max": self.maximum,
            "total": self.total,
        }

    def merge_state(self, state: Mapping[str, float]) -> None:
        """Fold another tally's :meth:`state_dict` into this one.

        Chan et al.'s parallel combination of Welford accumulators:
        exact counts/totals/extremes, numerically stable mean and m2.
        """
        n_b = int(state["count"])
        if n_b == 0:
            return
        n_a = self.count
        mean_b = float(state["mean"])
        if n_a == 0:
            self._mean = mean_b
            self._m2 = float(state["m2"])
        else:
            delta = mean_b - self._mean
            n = n_a + n_b
            self._mean += delta * n_b / n
            self._m2 += float(state["m2"]) + delta * delta * n_a * n_b / n
        self.count = n_a + n_b
        self.total += float(state["total"])
        self.minimum = min(self.minimum, float(state["min"]))
        self.maximum = max(self.maximum, float(state["max"]))

    def __repr__(self) -> str:
        return f"Tally(n={self.count}, mean={self.mean:.6g})"


class TimeWeighted:
    """Time-weighted average of a piecewise-constant signal.

    ``record(t, v)`` declares that the signal takes value *v* from time
    *t* onward; the time average over ``[t0, horizon]`` is then
    available from :meth:`average`.
    """

    def __init__(self, start_time: float = 0.0, initial: float = 0.0) -> None:
        self._last_t = float(start_time)
        self._start = float(start_time)
        self._value = float(initial)
        self._area = 0.0

    @property
    def current(self) -> float:
        """The most recently recorded value."""
        return self._value

    def record(self, t: float, value: float) -> None:
        """Set the signal to *value* at time *t* (t must not decrease)."""
        if t < self._last_t:
            raise ValueError(f"time went backwards: {t!r} < {self._last_t!r}")
        self._area += (t - self._last_t) * self._value
        self._last_t = t
        self._value = float(value)

    def average(self, horizon: float) -> float:
        """Time average over ``[start, horizon]``."""
        if horizon < self._last_t:
            raise ValueError("horizon precedes the last recorded change")
        span = horizon - self._start
        if span <= 0:
            return self._value
        area = self._area + (horizon - self._last_t) * self._value
        return area / span


class Counter:
    """A monotonically increasing integer (events seen, faults injected)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add *n* (must be >= 0: counters only go up)."""
        if n < 0:
            raise ValueError(f"counters only increase, got inc({n!r})")
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Gauge:
    """A level that goes up and down (queue depth, registered apps)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += float(delta)

    def __repr__(self) -> str:
        return f"Gauge({self.value:g})"


class Histogram:
    """A distribution of observations, backed by a :class:`Tally`."""

    __slots__ = ("tally",)

    def __init__(self) -> None:
        self.tally = Tally()

    def observe(self, value: float) -> None:
        self.tally.record(value)

    @property
    def count(self) -> int:
        return self.tally.count

    @property
    def mean(self) -> float:
        return self.tally.mean

    def __repr__(self) -> str:
        return f"Histogram(n={self.count}, mean={self.mean:.6g})"


def _hist_stats(tally: Tally) -> dict[str, float]:
    return {
        "count": tally.count,
        "total": tally.total,
        "mean": tally.mean,
        "min": tally.minimum if tally.count else math.nan,
        "max": tally.maximum if tally.count else math.nan,
    }


@dataclass(frozen=True)
class MetricsSnapshot:
    """A registry's numbers frozen at one instant.

    ``counters`` map to their cumulative values, ``gauges`` to their
    current level, ``histograms`` to ``{count, total, mean, min, max}``
    summaries. Snapshots are cheap value objects: diffable,
    serialisable, comparable.
    """

    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, dict[str, float]] = field(default_factory=dict)

    def diff(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """Change from *earlier* to this snapshot.

        Counters subtract (a counter absent earlier counts from zero);
        gauges keep this snapshot's level (a gauge is a state, not a
        flow); histograms subtract counts and totals, derive the mean
        of the delta, and report min/max as NaN — the extremes of the
        in-between observations are not recoverable from summaries.
        """
        counters = {
            name: value - earlier.counters.get(name, 0)
            for name, value in self.counters.items()
        }
        histograms: dict[str, dict[str, float]] = {}
        for name, stats in self.histograms.items():
            before = earlier.histograms.get(
                name, {"count": 0, "total": 0.0}
            )
            dcount = stats["count"] - before["count"]
            dtotal = stats["total"] - before["total"]
            histograms[name] = {
                "count": dcount,
                "total": dtotal,
                "mean": dtotal / dcount if dcount else math.nan,
                "min": math.nan,
                "max": math.nan,
            }
        return MetricsSnapshot(
            counters=counters, gauges=dict(self.gauges), histograms=histograms
        )

    def to_dict(self) -> dict:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "MetricsSnapshot":
        return cls(
            counters={k: int(v) for k, v in payload.get("counters", {}).items()},
            gauges={k: float(v) for k, v in payload.get("gauges", {}).items()},
            histograms={
                k: {s: float(x) if s != "count" else x for s, x in v.items()}
                for k, v in payload.get("histograms", {}).items()
            },
        )


class MetricsRegistry:
    """Named instruments for one observed run.

    Instruments are created on first use and live for the registry's
    lifetime; a name is bound to exactly one instrument kind (asking
    for ``counter("x")`` after ``gauge("x")`` is an error — silent
    type-morphing metrics are how dashboards lie).
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _check_unbound(self, name: str, kind: str) -> None:
        for other_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} is already a {other_kind}, cannot rebind as {kind}"
                )

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            self._check_unbound(name, "counter")
            inst = self._counters[name] = Counter()
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            self._check_unbound(name, "gauge")
            inst = self._gauges[name] = Gauge()
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            self._check_unbound(name, "histogram")
            inst = self._histograms[name] = Histogram()
        return inst

    def names(self) -> list[str]:
        """Every bound metric name, sorted."""
        return sorted(
            list(self._counters) + list(self._gauges) + list(self._histograms)
        )

    def snapshot(self) -> MetricsSnapshot:
        """Freeze every instrument's current state."""
        return MetricsSnapshot(
            counters={k: c.value for k, c in self._counters.items()},
            gauges={k: g.value for k, g in self._gauges.items()},
            histograms={k: _hist_stats(h.tally) for k, h in self._histograms.items()},
        )

    def state_dict(self) -> dict:
        """Complete transferable state of every instrument.

        Unlike :meth:`snapshot`, histograms carry their full
        :meth:`Tally.state_dict` (including ``m2``), so a registry
        populated in a worker process can be shipped across a pickle
        boundary and folded losslessly into the parent's registry with
        :meth:`merge_state`.
        """
        return {
            "counters": {k: c.value for k, c in self._counters.items()},
            "gauges": {k: g.value for k, g in self._gauges.items()},
            "histograms": {k: h.tally.state_dict() for k, h in self._histograms.items()},
        }

    def merge_state(self, payload: Mapping) -> None:
        """Fold a worker registry's :meth:`state_dict` into this one.

        Counters add, histograms combine their tallies (exact counts
        and totals, stable mean/variance), gauges take the incoming
        level — a gauge is a state, and the worker's reading is the
        most recent one.
        """
        for name, value in payload.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in payload.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, state in payload.get("histograms", {}).items():
            self.histogram(name).tally.merge_state(state)
