"""The ambient observability context and its zero-cost-when-off hooks.

One :class:`ObsContext` bundles the :class:`~repro.obs.trace.Tracer`
and :class:`~repro.obs.metrics.MetricsRegistry` of an observed run.
Instrumented code everywhere in the stack — the event loop, the
slowdown manager, the retry policy, the experiment harness — calls the
module-level hooks (:func:`span`, :func:`inc`, :func:`observe`,
:func:`set_gauge`) which consult the ambient context:

* **disabled** (the default — no context active): every hook is a
  near-free no-op (one global read and a ``None`` check), so untraced
  runs stay byte-identical and within noise of the uninstrumented
  code;
* **enabled** (inside ``with observed(...)``): spans and metrics flow
  into the active context.

Contexts nest; the innermost wins; activation is strictly scoped, so a
traced experiment cannot leak instrumentation into the next one.
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterator

from .metrics import MetricsRegistry, MetricsSnapshot
from .trace import Span, Tracer

__all__ = [
    "ObsContext",
    "current",
    "enabled",
    "observed",
    "span",
    "inc",
    "observe",
    "set_gauge",
]


class ObsContext:
    """Tracer + metrics (+ options) for one observed run."""

    __slots__ = ("tracer", "metrics", "profile_steps")

    def __init__(
        self,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        seed: int = 0,
        profile_steps: bool = False,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer(seed=seed)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Time every event-loop step into the ``sim.step_seconds``
        #: histogram (opt-in: per-step clock reads are the one hook
        #: too hot to leave always-on even when observing).
        self.profile_steps = profile_steps

    def snapshot(self) -> MetricsSnapshot:
        """Convenience passthrough to the registry's snapshot."""
        return self.metrics.snapshot()


#: The ambient context; ``None`` means observability is off.
_current: ObsContext | None = None


def current() -> ObsContext | None:
    """The active context, or ``None`` when observability is disabled."""
    return _current


def enabled() -> bool:
    """True inside a ``with observed(...)`` block."""
    return _current is not None


@contextlib.contextmanager
def observed(ctx: ObsContext | None = None, **kwargs: Any) -> Iterator[ObsContext]:
    """Activate *ctx* (or a fresh ``ObsContext(**kwargs)``) for the block.

    Yields the active context; restores the previous one (usually
    ``None``) on exit, even on error.
    """
    global _current
    active = ctx if ctx is not None else ObsContext(**kwargs)
    previous = _current
    _current = active
    try:
        yield active
    finally:
        _current = previous


class _NullSpan:
    """Do-nothing stand-in yielded by :func:`span` when disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False

    def set(self, _key: str, _value: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


def span(name: str, kind: str = "", **attributes: Any):
    """Open a span on the active tracer; a shared no-op when disabled.

    The disabled path allocates nothing: it returns one module-level
    stateless null object, so instrumented call sites cost a global
    read, a ``None`` check and a ``with`` frame.
    """
    ctx = _current
    if ctx is None:
        return _NULL_SPAN
    return ctx.tracer.span(name, kind, **attributes)


def inc(name: str, n: int = 1) -> None:
    """Increment counter *name* on the active registry (no-op when off)."""
    ctx = _current
    if ctx is not None:
        ctx.metrics.counter(name).inc(n)


def observe(name: str, value: float) -> None:
    """Record *value* into histogram *name* (no-op when off)."""
    ctx = _current
    if ctx is not None:
        ctx.metrics.histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set gauge *name* to *value* (no-op when off)."""
    ctx = _current
    if ctx is not None:
        ctx.metrics.gauge(name).set(value)


# Re-exported for callers that type-annotate against the yielded span.
SpanLike = Span | _NullSpan
