"""Structured, hierarchical tracing with deterministic span identity.

A :class:`Tracer` produces :class:`Span` records for the stages of an
observed run — simulations, calibration probes, prediction calls,
experiment replications, retries. Spans nest via an explicit stack
(the reproduction is single-threaded by design), and their IDs are
derived from ``(seed, ordinal)`` rather than a wall clock or a global
RNG, so two runs of the same seeded experiment produce the *same span
identities* and traces can be diffed across runs. Wall-clock
timestamps still vary run to run — identity is deterministic, duration
is a measurement.

Export is JSON-lines (one span per line, completion order) via
:meth:`Tracer.write_jsonl`; :meth:`Tracer.read_jsonl` round-trips a
file back into :class:`Span` objects.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from .serialize import read_jsonl, write_jsonl

__all__ = ["Span", "Tracer"]


def _derive_id(seed: int, ordinal: int) -> str:
    """16-hex-digit ID, a pure function of the tracer seed and ordinal."""
    digest = hashlib.blake2b(
        f"{seed}:{ordinal}".encode("ascii"), digest_size=8
    )
    return digest.hexdigest()


@dataclass
class Span:
    """One timed, attributed stage of a run.

    Attributes
    ----------
    name:
        What happened, dotted-hierarchical (``"sim.run"``,
        ``"calibration.probe"``).
    kind:
        Coarse stage class used for filtering: ``"sim"``,
        ``"calibration"``, ``"prediction"``, ``"retry"``,
        ``"experiment"`` — free-form, those are the conventions.
    trace_id, span_id, parent_id:
        Deterministic identity; ``parent_id`` is ``None`` for roots.
    start, end:
        Host ``perf_counter`` timestamps (seconds; meaningful as
        differences within one process).
    attributes:
        Free-form JSON-compatible details (``set`` to add).
    status, error:
        ``"ok"`` or ``"error"``; *error* carries the exception summary.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None = None
    kind: str = ""
    start: float = 0.0
    end: float = 0.0
    attributes: dict[str, Any] = field(default_factory=dict)
    status: str = "ok"
    error: str = ""

    @property
    def duration(self) -> float:
        """Wall seconds between enter and exit."""
        return self.end - self.start

    def set(self, key: str, value: Any) -> "Span":
        """Attach one attribute (chains)."""
        self.attributes[key] = value
        return self

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "attributes": dict(self.attributes),
            "status": self.status,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Span":
        return cls(
            name=payload["name"],
            trace_id=payload["trace_id"],
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            kind=payload.get("kind", ""),
            start=float(payload.get("start", 0.0)),
            end=float(payload.get("end", 0.0)),
            attributes=dict(payload.get("attributes", {})),
            status=payload.get("status", "ok"),
            error=payload.get("error", ""),
        )


class _SpanContext:
    """Context manager binding one span to the tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._span.start = self._tracer._clock()
        self._tracer._stack.append(self._span.span_id)
        return self._span

    def __exit__(self, exc_type, exc, _tb) -> bool:
        span = self._span
        span.end = self._tracer._clock()
        if exc is not None:
            span.status = "error"
            span.error = f"{type(exc).__name__}: {exc}"
        stack = self._tracer._stack
        if stack and stack[-1] == span.span_id:
            stack.pop()
        self._tracer.spans.append(span)
        return False


class Tracer:
    """Builds nested spans with seed-deterministic identity.

    Parameters
    ----------
    seed:
        Identity seed: span IDs are ``blake2b(seed:ordinal)``, ordinals
        assigned in span-entry order. Same seed + same execution order
        ⇒ same IDs.
    clock:
        Timestamp source (override in tests for deterministic
        durations); defaults to :func:`time.perf_counter`.
    """

    def __init__(self, seed: int = 0, clock: Callable[[], float] = time.perf_counter) -> None:
        self.seed = int(seed)
        self.trace_id = _derive_id(self.seed, 0)
        self._ordinal = 0
        self._clock = clock
        self._stack: list[str] = []
        #: Finished spans, in completion order.
        self.spans: list[Span] = []

    def span(self, name: str, kind: str = "", **attributes: Any) -> _SpanContext:
        """Open a child span of whatever span is currently active.

        Use as a context manager; the yielded :class:`Span` accepts
        further attributes via :meth:`Span.set`. A span that exits with
        an exception is recorded with ``status="error"`` and the
        exception propagates.
        """
        self._ordinal += 1
        span = Span(
            name=name,
            trace_id=self.trace_id,
            span_id=_derive_id(self.seed, self._ordinal),
            parent_id=self._stack[-1] if self._stack else None,
            kind=kind,
            attributes=dict(attributes),
        )
        return _SpanContext(self, span)

    def __len__(self) -> int:
        return len(self.spans)

    def by_kind(self, kind: str) -> list[Span]:
        """Finished spans of one kind, in completion order."""
        return [s for s in self.spans if s.kind == kind]

    def roots(self) -> list[Span]:
        """Finished spans with no parent."""
        return [s for s in self.spans if s.parent_id is None]

    def children(self, span: Span) -> list[Span]:
        """Finished direct children of *span*."""
        return [s for s in self.spans if s.parent_id == span.span_id]

    def absorb(self, spans: list[Span], parent_id: str | None = None) -> int:
        """Adopt finished *spans* from another tracer (a worker process).

        Every span is rewritten onto this tracer's ``trace_id``; spans
        that were roots in the worker are re-parented under *parent_id*
        (default: whatever span is currently active here), so a
        replication fanned out to a process pool hangs off the same
        experiment span it would have nested under serially. Worker
        tracers must use a distinct identity seed so their span IDs
        cannot collide with the parent's. Returns the number adopted.
        """
        if parent_id is None:
            parent_id = self._stack[-1] if self._stack else None
        worker_ids = {s.span_id for s in spans}
        for span in spans:
            span.trace_id = self.trace_id
            if span.parent_id is None or span.parent_id not in worker_ids:
                span.parent_id = parent_id
            self.spans.append(span)
        return len(spans)

    def write_jsonl(self, path: str | Path) -> int:
        """Export every finished span as JSON-lines; returns the count."""
        return write_jsonl(path, (s.to_dict() for s in self.spans))

    @staticmethod
    def read_jsonl(path: str | Path) -> list[Span]:
        """Load spans back from a :meth:`write_jsonl` file."""
        return [Span.from_dict(payload) for payload in read_jsonl(path)]
