"""The ``ToDict`` serialization protocol.

Every result-like object in the reproduction — experiment results,
failure reports, degradation logs, run manifests, trace spans — speaks
one serialization dialect: ``to_dict()`` produces a plain,
JSON-compatible dictionary, and the companion ``from_dict()``
classmethod reconstructs an equal object. The contract:

* ``to_dict()`` returns only JSON types (dict/list/str/int/float/bool/
  None) — no tuples, enums, numpy scalars or exception objects;
* ``type(obj).from_dict(obj.to_dict()) == obj`` for every field that
  participates in equality (fields excluded from ``__eq__``, like a
  captured exception object, may be flattened to a string);
* non-finite floats survive the trip (JSON itself cannot carry them,
  so :func:`jsonable` maps NaN/±inf to sentinel strings and
  :func:`unjsonable` maps them back).

:func:`write_jsonl` / :func:`read_jsonl` lay sequences of such dicts
out as JSON-lines files — the trace export format.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Iterable, Iterator, Protocol, runtime_checkable

__all__ = [
    "ToDict",
    "jsonable",
    "unjsonable",
    "dumps_line",
    "write_jsonl",
    "read_jsonl",
]

#: Sentinels standing in for the floats JSON cannot represent.
_NONFINITE = {"nan": math.nan, "inf": math.inf, "-inf": -math.inf}


@runtime_checkable
class ToDict(Protocol):
    """Structural type of every serialisable result object."""

    def to_dict(self) -> dict: ...


def jsonable(value: Any) -> Any:
    """Recursively convert *value* to strict JSON types.

    Tuples become lists, non-finite floats become the strings
    ``"nan"``/``"inf"``/``"-inf"``, and anything exposing ``to_dict``
    is expanded. Unknown objects raise ``TypeError`` at ``json.dumps``
    time rather than being silently stringified.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return "nan" if value != value else ("inf" if value > 0 else "-inf")
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, ToDict) and not isinstance(value, type):
        return jsonable(value.to_dict())
    return value


def unjsonable(value: Any) -> Any:
    """Inverse of :func:`jsonable` for the non-finite sentinels.

    Lists stay lists (callers that need tuples convert at their own
    field boundaries, where the expected shape is known).
    """
    if isinstance(value, str) and value in _NONFINITE:
        return _NONFINITE[value]
    if isinstance(value, list):
        return [unjsonable(v) for v in value]
    if isinstance(value, dict):
        return {k: unjsonable(v) for k, v in value.items()}
    return value


def dumps_line(payload: dict) -> str:
    """One compact JSON-lines record (no newline appended)."""
    return json.dumps(jsonable(payload), separators=(",", ":"), sort_keys=True)


def write_jsonl(path: str | Path, payloads: Iterable[dict]) -> int:
    """Write *payloads* to *path* as JSON-lines; returns the line count."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    n = 0
    with out.open("w", encoding="utf-8") as handle:
        for payload in payloads:
            handle.write(dumps_line(payload))
            handle.write("\n")
            n += 1
    return n


def read_jsonl(path: str | Path) -> Iterator[dict]:
    """Yield each non-blank line of *path* as a decoded dict."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield unjsonable(json.loads(line))
