"""Observability: tracing, metrics, profiling and run manifests.

The auditing layer the contention model needs to be trusted by a
scheduler: *which* slowdown source fired, *which* calibration fed a
prediction, *how long* each stage took, *what* state the model was in
when a number was produced. Four pieces:

* :mod:`~repro.obs.trace` — hierarchical :class:`Span` records with
  seed-deterministic IDs and JSON-lines export;
* :mod:`~repro.obs.metrics` — :class:`Counter`/:class:`Gauge`/
  :class:`Histogram` instruments in a :class:`MetricsRegistry`, with
  snapshot/diff (absorbing the simulator's :class:`Tally` and
  :class:`TimeWeighted` accumulators);
* :mod:`~repro.obs.context` — the ambient :class:`ObsContext` and the
  no-op-when-disabled hooks instrumented code calls;
* :mod:`~repro.obs.manifest` — the :class:`RunManifest` provenance
  stamp carried by exported results.

Everything is off by default. ``with observed() as ctx:`` turns it on
for a block; the CLI's ``--trace out.jsonl`` turns it on for a run.
:mod:`~repro.obs.serialize` defines the ``ToDict`` protocol every
result object (spans, manifests, experiment results, failure reports,
degradation logs) serialises through.
"""

from .context import ObsContext, current, enabled, inc, observe, observed, set_gauge, span
from .manifest import RunManifest, platform_summary
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    Tally,
    TimeWeighted,
)
from .profile import timed, timed_block
from .serialize import ToDict, jsonable, read_jsonl, unjsonable, write_jsonl
from .trace import Span, Tracer

__all__ = [
    "ObsContext",
    "current",
    "enabled",
    "observed",
    "span",
    "inc",
    "observe",
    "set_gauge",
    "RunManifest",
    "platform_summary",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Tally",
    "TimeWeighted",
    "timed",
    "timed_block",
    "ToDict",
    "jsonable",
    "unjsonable",
    "read_jsonl",
    "write_jsonl",
    "Span",
    "Tracer",
]
