"""Lightweight profiling hooks: ``@timed`` and ``timed_block``.

Both feed a histogram (wall seconds per call) and, optionally, a span
per call into the ambient :mod:`~repro.obs.context`. When no context
is active they reduce to the bare function call — one global read and
a ``None`` check — so decorating a hot path costs nothing in untraced
runs and never perturbs simulated results (they measure host time,
which the virtual clock cannot see).
"""

from __future__ import annotations

import contextlib
import functools
import time
from typing import Any, Callable, Iterator, TypeVar

from . import context as _ctx

__all__ = ["timed", "timed_block"]

F = TypeVar("F", bound=Callable[..., Any])


def timed(name: str | None = None, spans: bool = False) -> Callable[[F], F]:
    """Decorator: histogram every call's wall time under *name*.

    Parameters
    ----------
    name:
        Metric name; defaults to ``"timed.<qualname>"``.
    spans:
        Also emit a span per call (off by default: histograms cost
        O(1) space, spans O(calls)).
    """

    def wrap(fn: F) -> F:
        metric = name or f"timed.{fn.__qualname__}"

        @functools.wraps(fn)
        def inner(*args: Any, **kwargs: Any) -> Any:
            ctx = _ctx.current()
            if ctx is None:
                return fn(*args, **kwargs)
            if spans:
                with ctx.tracer.span(metric, kind="profile"):
                    t0 = time.perf_counter()
                    try:
                        return fn(*args, **kwargs)
                    finally:
                        ctx.metrics.histogram(metric).observe(time.perf_counter() - t0)
            t0 = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                ctx.metrics.histogram(metric).observe(time.perf_counter() - t0)

        return inner  # type: ignore[return-value]

    return wrap


@contextlib.contextmanager
def timed_block(name: str) -> Iterator[None]:
    """Histogram the wall time of a ``with`` block under *name*."""
    ctx = _ctx.current()
    if ctx is None:
        yield
        return
    t0 = time.perf_counter()
    try:
        yield
    finally:
        ctx.metrics.histogram(name).observe(time.perf_counter() - t0)
