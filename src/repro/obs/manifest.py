"""Run manifests: the provenance stamp on every result.

A :class:`RunManifest` records everything needed to audit or reproduce
one experiment/benchmark run — the seed, the platform specification,
where the calibration came from, and the metric snapshot the run left
behind. Result objects carry it through
:meth:`~repro.experiments.report.ExperimentResult.to_dict`, so an
exported JSON file is self-describing: not just *what* was measured
but *under which model state*.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from .._version import __version__
from .metrics import MetricsSnapshot

__all__ = ["RunManifest", "platform_summary"]


def platform_summary(spec: Any) -> dict:
    """Flatten a platform spec (frozen dataclass) into a plain dict.

    Non-dataclass specs fall back to ``repr`` under a single key, so
    the manifest never fails on an exotic platform object.
    """
    if dataclasses.is_dataclass(spec) and not isinstance(spec, type):
        return {"type": type(spec).__name__, **dataclasses.asdict(spec)}
    return {"type": type(spec).__name__, "repr": repr(spec)}


@dataclass(frozen=True)
class RunManifest:
    """Provenance of one run.

    Attributes
    ----------
    experiment:
        Registry id of the experiment (or benchmark name).
    seed:
        Base seed of the run's random streams; ``None`` for fully
        deterministic drivers.
    platform:
        Flattened platform spec (see :func:`platform_summary`).
    calibration:
        Calibration provenance — mode, table depths, confidence of the
        slowdowns that fed the run; free-form but JSON-compatible.
    metrics:
        The run's :class:`~repro.obs.metrics.MetricsSnapshot` (usually
        the diff attributable to this run).
    trace_id:
        The tracer identity the run's spans carry, when traced.
    created_unix:
        Wall-clock stamp (excluded from equality: re-serialising at a
        different moment must not make two manifests unequal... it is
        provenance, not identity).
    version:
        The ``repro`` package version that produced the run.
    extra:
        Anything driver-specific (sweep parameters, quick flags).
    """

    experiment: str
    seed: int | None = None
    platform: dict = field(default_factory=dict)
    calibration: dict = field(default_factory=dict)
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    trace_id: str = ""
    created_unix: float = field(default=0.0, compare=False)
    version: str = __version__
    extra: dict = field(default_factory=dict)

    @classmethod
    def stamp(cls, experiment: str, **kwargs: Any) -> "RunManifest":
        """Build a manifest stamped with the current wall clock."""
        return cls(experiment=experiment, created_unix=time.time(), **kwargs)

    def to_dict(self) -> dict:
        return {
            "experiment": self.experiment,
            "seed": self.seed,
            "platform": dict(self.platform),
            "calibration": dict(self.calibration),
            "metrics": self.metrics.to_dict(),
            "trace_id": self.trace_id,
            "created_unix": self.created_unix,
            "version": self.version,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RunManifest":
        return cls(
            experiment=payload["experiment"],
            seed=payload.get("seed"),
            platform=dict(payload.get("platform", {})),
            calibration=dict(payload.get("calibration", {})),
            metrics=MetricsSnapshot.from_dict(payload.get("metrics", {})),
            trace_id=payload.get("trace_id", ""),
            created_unix=float(payload.get("created_unix", 0.0)),
            version=payload.get("version", __version__),
            extra=dict(payload.get("extra", {})),
        )
