"""Successive Over-Relaxation solver for Laplace's equation.

The paper's first scientific benchmark: "an SOR algorithm, which solves
Laplace's equation". This is the *real* numerical code — a vectorised
red-black SOR on an M×M interior grid with Dirichlet boundary
conditions — used to (a) validate that the benchmark we model is a
correct solver and (b) supply operation counts to the trace
generators.

The solver is NumPy-vectorised (red-black colouring makes each
half-sweep a pure array expression), per the scientific-Python
guidance: no Python-level loops over grid points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError

__all__ = ["SORResult", "solve_laplace_sor", "optimal_omega", "laplace_residual"]


@dataclass(frozen=True)
class SORResult:
    """Outcome of an SOR solve."""

    grid: np.ndarray
    iterations: int
    residual: float
    converged: bool
    omega: float


def optimal_omega(m: int) -> float:
    """Chebyshev-optimal relaxation factor for an M×M Laplace grid.

    ``ω* = 2 / (1 + sin(π/(M+1)))`` — the classic result for the
    5-point Laplacian with Dirichlet boundaries.
    """
    if m < 1:
        raise WorkloadError(f"grid dimension must be >= 1, got {m!r}")
    return 2.0 / (1.0 + np.sin(np.pi / (m + 1)))


def laplace_residual(grid: np.ndarray) -> float:
    """Max-norm of the discrete Laplacian over the interior of *grid*."""
    interior = grid[1:-1, 1:-1]
    lap = (
        grid[:-2, 1:-1] + grid[2:, 1:-1] + grid[1:-1, :-2] + grid[1:-1, 2:]
    ) / 4.0 - interior
    return float(np.abs(lap).max()) if lap.size else 0.0


def solve_laplace_sor(
    boundary: np.ndarray,
    omega: float | None = None,
    tolerance: float = 1e-8,
    max_iterations: int = 10_000,
) -> SORResult:
    """Solve Laplace's equation with red-black SOR.

    Parameters
    ----------
    boundary:
        A 2-D array whose border rows/columns hold the Dirichlet
        boundary values; the interior is used as the initial guess.
        Must be at least 3×3.
    omega:
        Relaxation factor in (0, 2); defaults to the Chebyshev-optimal
        value for the grid's interior size.
    tolerance:
        Convergence threshold on the max-norm residual.
    max_iterations:
        Iteration cap; exceeding it returns ``converged=False``.

    Returns
    -------
    SORResult
        The solved grid (a copy), iterations used, final residual.
    """
    grid = np.array(boundary, dtype=float, copy=True)
    if grid.ndim != 2 or grid.shape[0] < 3 or grid.shape[1] < 3:
        raise WorkloadError(f"grid must be 2-D and at least 3x3, got shape {grid.shape}")
    interior_m = grid.shape[0] - 2
    if omega is None:
        omega = optimal_omega(interior_m)
    if not 0.0 < omega < 2.0:
        raise WorkloadError(f"omega must be in (0, 2), got {omega!r}")
    if tolerance <= 0:
        raise WorkloadError(f"tolerance must be > 0, got {tolerance!r}")
    if max_iterations < 1:
        raise WorkloadError(f"max_iterations must be >= 1, got {max_iterations!r}")

    # Red-black colouring on the interior: checkerboard masks.
    rows, cols = np.indices((grid.shape[0] - 2, grid.shape[1] - 2))
    red = (rows + cols) % 2 == 0
    black = ~red

    iterations = 0
    residual = laplace_residual(grid)
    while residual > tolerance and iterations < max_iterations:
        for mask in (red, black):
            neighbours = (
                grid[:-2, 1:-1] + grid[2:, 1:-1] + grid[1:-1, :-2] + grid[1:-1, 2:]
            ) / 4.0
            interior = grid[1:-1, 1:-1]
            interior[mask] += omega * (neighbours[mask] - interior[mask])
        iterations += 1
        residual = laplace_residual(grid)
    return SORResult(
        grid=grid,
        iterations=iterations,
        residual=residual,
        converged=residual <= tolerance,
        omega=float(omega),
    )
