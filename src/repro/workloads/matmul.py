"""Matrix multiplication — a library task with codes on both machines.

§2 of the paper: *"many applications have tasks for which there are
efficient codes on both the front-end and the back-end machines. Such
codes include commonly used libraries (e.g., LAPACK and ScaLAPACK) and
tasks (such as matrix multiplication or sorting) for which different
algorithms are used to optimize the running time on different
machines."*

This module provides the real numerical kernels (a cache-blocked
triple loop for the front-end flavour, validated against ``A @ B``)
and the operation counts the trace generators and the dispatch example
use.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError

__all__ = ["blocked_matmul", "matmul_flops", "matmul_words"]


def matmul_flops(n: int) -> int:
    """Floating-point operations of an n×n · n×n product (2n³ − n²)."""
    if n < 1:
        raise WorkloadError(f"dimension must be >= 1, got {n!r}")
    return 2 * n**3 - n**2


def matmul_words(n: int) -> int:
    """Words moved to ship both operands out and the product back."""
    if n < 1:
        raise WorkloadError(f"dimension must be >= 1, got {n!r}")
    return 3 * n * n


def blocked_matmul(a: np.ndarray, b: np.ndarray, block: int = 64) -> np.ndarray:
    """Cache-blocked matrix product (the front-end algorithm).

    Equivalent to ``a @ b``; the blocking exists because this is the
    *workstation* flavour of the kernel — the trace generators model
    the SIMD flavour separately. Verified against NumPy in the tests.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise WorkloadError(f"incompatible shapes {a.shape} x {b.shape}")
    if block < 1:
        raise WorkloadError(f"block must be >= 1, got {block!r}")
    m, k = a.shape
    _, n = b.shape
    out = np.zeros((m, n))
    for i0 in range(0, m, block):
        for k0 in range(0, k, block):
            a_blk = a[i0 : i0 + block, k0 : k0 + block]
            for j0 in range(0, n, block):
                out[i0 : i0 + block, j0 : j0 + block] += (
                    a_blk @ b[k0 : k0 + block, j0 : j0 + block]
                )
    return out
