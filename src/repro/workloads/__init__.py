"""Real numerical benchmark codes (SOR, Gaussian elimination)."""

from .gauss import GaussResult, augment, solve_gauss
from .matmul import blocked_matmul, matmul_flops, matmul_words
from .generators import (
    laplace_boundary_hot_edge,
    laplace_boundary_linear,
    random_dominant_system,
    random_spd_system,
)
from .sor import SORResult, laplace_residual, optimal_omega, solve_laplace_sor
from .sorting import bitonic_sort, bitonic_stages, sort_compare_ops

__all__ = [
    "GaussResult",
    "bitonic_sort",
    "bitonic_stages",
    "blocked_matmul",
    "matmul_flops",
    "matmul_words",
    "sort_compare_ops",
    "SORResult",
    "augment",
    "laplace_boundary_hot_edge",
    "laplace_boundary_linear",
    "laplace_residual",
    "optimal_omega",
    "random_dominant_system",
    "random_spd_system",
    "solve_gauss",
    "solve_laplace_sor",
]
