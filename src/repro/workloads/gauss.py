"""Gaussian elimination on an augmented M×(M+1) system.

The paper's second scientific benchmark. This is the real numerical
code: forward elimination with partial pivoting over the augmented
matrix (the paper's "matrix of size M × M+1"), then back substitution.
The elimination update is vectorised as a rank-1 outer-product update
of the trailing submatrix — the same data-parallel shape the CM-Fortran
version executed on the CM2, which is why the trace generator models
one :class:`~repro.traces.instructions.Parallel` instruction per
elimination step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError

__all__ = ["GaussResult", "solve_gauss", "augment"]


@dataclass(frozen=True)
class GaussResult:
    """Outcome of a Gaussian-elimination solve."""

    solution: np.ndarray
    pivots: np.ndarray
    residual: float


def augment(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Build the M×(M+1) augmented matrix ``[A | b]``."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise WorkloadError(f"A must be square, got shape {a.shape}")
    if b.shape != (a.shape[0],):
        raise WorkloadError(f"b must have shape ({a.shape[0]},), got {b.shape}")
    return np.hstack([a, b[:, None]])


def solve_gauss(a: np.ndarray, b: np.ndarray, pivoting: bool = True) -> GaussResult:
    """Solve ``A x = b`` by Gaussian elimination on ``[A | b]``.

    Parameters
    ----------
    a, b:
        The system. *A* must be square and (numerically) nonsingular.
    pivoting:
        Use partial (row) pivoting. Disabling it mirrors the streaming
        CM-Fortran variant but fails on systems needing row exchanges.

    Returns
    -------
    GaussResult
        Solution vector, pivot rows chosen per step, and the max-norm
        residual ``‖A x − b‖∞``.
    """
    aug = augment(a, b)
    m = aug.shape[0]
    pivots = np.empty(m, dtype=int)

    for k in range(m):
        if pivoting:
            rel = int(np.argmax(np.abs(aug[k:, k])))
            pivot_row = k + rel
        else:
            pivot_row = k
        pivot = aug[pivot_row, k]
        if pivot == 0.0 or not np.isfinite(pivot):
            raise WorkloadError(f"singular system: zero pivot at step {k}")
        pivots[k] = pivot_row
        if pivot_row != k:
            aug[[k, pivot_row]] = aug[[pivot_row, k]]
        if k + 1 < m:
            # Rank-1 update of the trailing submatrix (the CM2's
            # data-parallel instruction for this step).
            factors = aug[k + 1 :, k] / aug[k, k]
            aug[k + 1 :, k:] -= np.outer(factors, aug[k, k:])

    # Back substitution on the upper-triangular augmented system.
    x = np.empty(m)
    for k in range(m - 1, -1, -1):
        x[k] = (aug[k, m] - aug[k, k + 1 :m] @ x[k + 1 :]) / aug[k, k]

    residual = float(np.abs(np.asarray(a, dtype=float) @ x - np.asarray(b, dtype=float)).max())
    return GaussResult(solution=x, pivots=pivots, residual=residual)
