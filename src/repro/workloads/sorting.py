"""Sorting — the paper's other both-machines library task (§2).

Two flavours matching the two architectures:

* :func:`bitonic_sort` — the data-parallel bitonic network, the
  natural SIMD algorithm (every compare-exchange stage is one masked
  full-array operation, exactly the shape a CM-2 executes); requires a
  power-of-two length. Vectorised with NumPy, no Python-level loops
  over elements.
* :func:`quicksort_flops`-style counts for the front-end comparison
  sort are folded into :func:`sort_compare_ops`.

Operation counts feed the trace generators and the dispatch example.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import WorkloadError

__all__ = ["bitonic_sort", "bitonic_stages", "sort_compare_ops"]


def bitonic_stages(n: int) -> int:
    """Number of compare-exchange stages of the bitonic network.

    ``log2(n) · (log2(n) + 1) / 2`` stages, each touching all n keys.
    """
    if n < 1 or n & (n - 1):
        raise WorkloadError(f"bitonic network needs a power-of-two length, got {n!r}")
    k = n.bit_length() - 1
    return k * (k + 1) // 2


def sort_compare_ops(n: int, algorithm: str = "quicksort") -> float:
    """Expected comparison count of the front-end sort.

    ``quicksort``: ~2 n ln n average-case comparisons;
    ``bitonic``: n/2 compare-exchanges per stage.
    """
    if n < 1:
        raise WorkloadError(f"length must be >= 1, got {n!r}")
    if algorithm == "quicksort":
        return 2.0 * n * math.log(max(n, 2))
    if algorithm == "bitonic":
        return bitonic_stages(n) * (n / 2)
    raise WorkloadError(f"unknown algorithm {algorithm!r}")


def bitonic_sort(values: np.ndarray, descending: bool = False) -> np.ndarray:
    """Sort a power-of-two-length array with the bitonic network.

    Each stage is a pure array expression (gather the partner lane,
    min/max under the direction mask) — the data-parallel execution
    shape the CM-2 trace generator models one :class:`Parallel`
    instruction per stage for.
    """
    data = np.array(values, dtype=float, copy=True)
    if data.ndim != 1:
        raise WorkloadError(f"need a 1-D array, got shape {data.shape}")
    n = data.size
    if n == 0:
        return data
    if n & (n - 1):
        raise WorkloadError(f"bitonic sort needs a power-of-two length, got {n}")
    idx = np.arange(n)
    k = 2
    while k <= n:
        j = k // 2
        while j >= 1:
            partner = idx ^ j
            ascending_block = (idx & k) == 0
            lower_lane = (idx & j) == 0
            partner_vals = data[partner]
            keep_min = ascending_block == lower_lane
            lo = np.minimum(data, partner_vals)
            hi = np.maximum(data, partner_vals)
            data = np.where(keep_min, lo, hi)
            j //= 2
        k *= 2
    if descending:
        data = data[::-1].copy()
    return data
