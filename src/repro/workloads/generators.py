"""Problem generators for the numerical workloads."""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError

__all__ = [
    "random_spd_system",
    "random_dominant_system",
    "laplace_boundary_linear",
    "laplace_boundary_hot_edge",
]


def random_dominant_system(
    m: int, rng: np.random.Generator, scale: float = 1.0
) -> tuple[np.ndarray, np.ndarray]:
    """A random strictly diagonally dominant system (always solvable).

    Diagonal dominance guarantees Gaussian elimination succeeds even
    without pivoting, which the no-pivot tests rely on.
    """
    if m < 1:
        raise WorkloadError(f"dimension must be >= 1, got {m!r}")
    a = rng.standard_normal((m, m)) * scale
    a[np.arange(m), np.arange(m)] = np.abs(a).sum(axis=1) + 1.0
    b = rng.standard_normal(m) * scale
    return a, b


def random_spd_system(
    m: int, rng: np.random.Generator, scale: float = 1.0
) -> tuple[np.ndarray, np.ndarray]:
    """A random symmetric positive-definite system."""
    if m < 1:
        raise WorkloadError(f"dimension must be >= 1, got {m!r}")
    g = rng.standard_normal((m, m)) * scale
    a = g @ g.T + m * np.eye(m)
    b = rng.standard_normal(m) * scale
    return a, b


def laplace_boundary_linear(m: int, top: float = 1.0, bottom: float = 0.0) -> np.ndarray:
    """Laplace grid with linear-in-y boundary values.

    The exact solution of Laplace's equation with these boundaries is
    the linear interpolation between *bottom* and *top* — an analytic
    target the SOR tests compare against.
    """
    if m < 1:
        raise WorkloadError(f"interior dimension must be >= 1, got {m!r}")
    n = m + 2
    y = np.linspace(bottom, top, n)
    grid = np.tile(y[:, None], (1, n))
    # Interior initial guess: zeros (the solver must recover the ramp).
    grid[1:-1, 1:-1] = 0.0
    return grid


def laplace_boundary_hot_edge(m: int, hot: float = 100.0) -> np.ndarray:
    """Laplace grid with one hot edge and three cold edges.

    The classic heated-plate configuration the 1990s benchmarks used.
    """
    if m < 1:
        raise WorkloadError(f"interior dimension must be >= 1, got {m!r}")
    n = m + 2
    grid = np.zeros((n, n))
    grid[0, :] = hot
    return grid
