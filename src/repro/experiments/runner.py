"""Monte-Carlo repetition harness.

The paper measures on production systems where "the variance in
execution time ... can be high" and aims for accuracy *on average*.
The reproduction's analogue: every contended measurement is repeated
with independent random streams and averaged. :class:`Replication`
summarizes one such batch; the replication loop itself now lives
behind :func:`repro.experiments.simulate.simulate` (``repeat_mean``
remains as a deprecated alias of its object-backend path).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import ReproError
from ..obs import context as _obs
from ..parallel import FailurePolicy, Quarantined
from ..reliability.degrade import Confidence
from ..reliability.retry import retry_with_backoff
from ..sim.rng import RandomStreams

__all__ = ["Replication", "repeat_mean"]

#: Salt applied per retry attempt when re-forking a replication's
#: streams — a fixed prime so retried runs are reproducible yet
#: decorrelated from the failed attempt.
_RETRY_SALT = 7919


@dataclass(frozen=True)
class Replication:
    """Summary of repeated measurements of one scalar quantity.

    ``values`` holds the replications that actually produced a number.
    When containment quarantined some replications (worker crash,
    deadline — see :mod:`repro.parallel.containment`), the sentinels
    land in ``quarantined`` and :attr:`confidence` degrades instead of
    the sweep aborting.
    """

    values: tuple[float, ...]
    quarantined: tuple[Quarantined, ...] = field(default=())

    @property
    def confidence(self) -> Confidence:
        """How much measured data backs this summary.

        ``CALIBRATED`` when every replication produced a value,
        ``EXTRAPOLATED`` when some were quarantined (the mean stands on
        fewer measurements than requested), ``ANALYTIC`` when *all*
        were quarantined — there is no data, only model fallback.
        """
        if not self.quarantined:
            return Confidence.CALIBRATED
        if self.values:
            return Confidence.EXTRAPOLATED
        return Confidence.ANALYTIC

    @property
    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else float("nan")

    @property
    def std(self) -> float:
        return float(np.std(self.values, ddof=1)) if len(self.values) > 1 else 0.0

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def cv(self) -> float:
        """Coefficient of variation (std/mean).

        A zero mean with nonzero dispersion has *infinite* relative
        variation, so that case reports ``float("inf")`` rather than
        pretending to be noiseless; only a genuinely degenerate sample
        (zero mean **and** zero spread) reports 0.0. An empty sample
        (everything quarantined) reports NaN, like the mean.
        """
        if not self.values:
            return float("nan")
        m = self.mean
        if m:
            return self.std / m
        return float("inf") if self.std else 0.0

    def ci95(self) -> tuple[float, float]:
        """95 % t-confidence interval for the mean.

        Degenerates to ``(mean, mean)`` for a single repetition — no
        dispersion information, not a claim of certainty.
        """
        if self.n < 2:
            return (self.mean, self.mean)
        from scipy import stats

        half = stats.t.ppf(0.975, df=self.n - 1) * self.std / np.sqrt(self.n)
        return (self.mean - half, self.mean + half)

    def within(self, value: float) -> bool:
        """Is *value* inside the 95 % confidence interval?"""
        lo, hi = self.ci95()
        return lo <= value <= hi


@dataclass(frozen=True)
class _ReplicationTask:
    """One replication as a picklable callable: ``task(k) -> value``.

    Frozen dataclasses of picklable fields cross the process-pool
    boundary intact (closures would not), and replication *k* derives
    its streams purely from ``(seed, k)`` — which is why running it in
    a worker process yields the exact value the serial loop computes.
    """

    measure: Callable[[RandomStreams], float]
    seed: int
    retry_attempts: int
    retry_on: type[BaseException] | tuple[type[BaseException], ...]

    def __call__(self, k: int) -> float:
        with _obs.span("experiment.replication", kind="experiment", replication=k) as sp:
            value = self._one(k)
            sp.set("value", value)
        _obs.inc("experiment.replications")
        return value

    def _one(self, k: int) -> float:
        base = RandomStreams(self.seed)
        attempt = 0

        def run() -> float:
            nonlocal attempt
            streams = base.fork(k + _RETRY_SALT * attempt)
            attempt += 1
            return self.measure(streams)

        if self.retry_attempts <= 1:
            return run()
        return retry_with_backoff(
            run, attempts=self.retry_attempts, retry_on=self.retry_on, seed=self.seed
        )


def repeat_mean(
    measure: Callable[[RandomStreams], float],
    repetitions: int = 3,
    seed: int = 0,
    retry_attempts: int = 1,
    retry_on: type[BaseException] | tuple[type[BaseException], ...] = ReproError,
    workers: int = 1,
    policy: FailurePolicy | None = None,
) -> Replication:
    """Deprecated alias of :func:`repro.experiments.simulate.simulate`.

    The replication harness is now the single ``simulate()`` entry
    point; this shim only warns and forwards to the object backend
    (the behaviour ``repeat_mean`` always had). The returned
    :class:`~repro.experiments.simulate.BatchResult` is a
    :class:`Replication` subclass, so every historical use keeps
    working — journal keys included.

    .. deprecated:: 1.2
       Call :func:`repro.experiments.simulate.simulate` directly.
    """
    warnings.warn(
        "repeat_mean() is deprecated; use repro.experiments.simulate(), "
        "which runs the same replications behind a backend-selectable API",
        DeprecationWarning,
        stacklevel=2,
    )
    from .simulate import simulate

    return simulate(
        measure,
        reps=repetitions,
        seed=seed,
        backend="object",
        retry_attempts=retry_attempts,
        retry_on=retry_on,
        workers=workers,
        policy=policy,
    )
