"""Monte-Carlo repetition harness.

The paper measures on production systems where "the variance in
execution time ... can be high" and aims for accuracy *on average*.
The reproduction's analogue: every contended measurement is repeated
with independent random streams and averaged. :func:`repeat_mean`
packages that pattern — one experiment function, R seeds, summary
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import ReproError
from ..obs import context as _obs
from ..parallel import FailurePolicy, ParallelExecutor, Quarantined
from ..reliability.degrade import Confidence
from ..reliability.retry import retry_with_backoff
from ..sim.rng import RandomStreams
from . import journal as _journal

__all__ = ["Replication", "repeat_mean"]

#: Salt applied per retry attempt when re-forking a replication's
#: streams — a fixed prime so retried runs are reproducible yet
#: decorrelated from the failed attempt.
_RETRY_SALT = 7919


@dataclass(frozen=True)
class Replication:
    """Summary of repeated measurements of one scalar quantity.

    ``values`` holds the replications that actually produced a number.
    When containment quarantined some replications (worker crash,
    deadline — see :mod:`repro.parallel.containment`), the sentinels
    land in ``quarantined`` and :attr:`confidence` degrades instead of
    the sweep aborting.
    """

    values: tuple[float, ...]
    quarantined: tuple[Quarantined, ...] = field(default=())

    @property
    def confidence(self) -> Confidence:
        """How much measured data backs this summary.

        ``CALIBRATED`` when every replication produced a value,
        ``EXTRAPOLATED`` when some were quarantined (the mean stands on
        fewer measurements than requested), ``ANALYTIC`` when *all*
        were quarantined — there is no data, only model fallback.
        """
        if not self.quarantined:
            return Confidence.CALIBRATED
        if self.values:
            return Confidence.EXTRAPOLATED
        return Confidence.ANALYTIC

    @property
    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else float("nan")

    @property
    def std(self) -> float:
        return float(np.std(self.values, ddof=1)) if len(self.values) > 1 else 0.0

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def cv(self) -> float:
        """Coefficient of variation (std/mean).

        A zero mean with nonzero dispersion has *infinite* relative
        variation, so that case reports ``float("inf")`` rather than
        pretending to be noiseless; only a genuinely degenerate sample
        (zero mean **and** zero spread) reports 0.0. An empty sample
        (everything quarantined) reports NaN, like the mean.
        """
        if not self.values:
            return float("nan")
        m = self.mean
        if m:
            return self.std / m
        return float("inf") if self.std else 0.0

    def ci95(self) -> tuple[float, float]:
        """95 % t-confidence interval for the mean.

        Degenerates to ``(mean, mean)`` for a single repetition — no
        dispersion information, not a claim of certainty.
        """
        if self.n < 2:
            return (self.mean, self.mean)
        from scipy import stats

        half = stats.t.ppf(0.975, df=self.n - 1) * self.std / np.sqrt(self.n)
        return (self.mean - half, self.mean + half)

    def within(self, value: float) -> bool:
        """Is *value* inside the 95 % confidence interval?"""
        lo, hi = self.ci95()
        return lo <= value <= hi


@dataclass(frozen=True)
class _ReplicationTask:
    """One replication as a picklable callable: ``task(k) -> value``.

    Frozen dataclasses of picklable fields cross the process-pool
    boundary intact (closures would not), and replication *k* derives
    its streams purely from ``(seed, k)`` — which is why running it in
    a worker process yields the exact value the serial loop computes.
    """

    measure: Callable[[RandomStreams], float]
    seed: int
    retry_attempts: int
    retry_on: type[BaseException] | tuple[type[BaseException], ...]

    def __call__(self, k: int) -> float:
        with _obs.span("experiment.replication", kind="experiment", replication=k) as sp:
            value = self._one(k)
            sp.set("value", value)
        _obs.inc("experiment.replications")
        return value

    def _one(self, k: int) -> float:
        base = RandomStreams(self.seed)
        attempt = 0

        def run() -> float:
            nonlocal attempt
            streams = base.fork(k + _RETRY_SALT * attempt)
            attempt += 1
            return self.measure(streams)

        if self.retry_attempts <= 1:
            return run()
        return retry_with_backoff(
            run, attempts=self.retry_attempts, retry_on=self.retry_on, seed=self.seed
        )


def repeat_mean(
    measure: Callable[[RandomStreams], float],
    repetitions: int = 3,
    seed: int = 0,
    retry_attempts: int = 1,
    retry_on: type[BaseException] | tuple[type[BaseException], ...] = ReproError,
    workers: int = 1,
    policy: FailurePolicy | None = None,
) -> Replication:
    """Run *measure* with *repetitions* independent stream families.

    Parameters
    ----------
    measure:
        A function building a fresh simulator/platform from the given
        :class:`~repro.sim.rng.RandomStreams` and returning one scalar
        measurement (typically an elapsed time).
    repetitions:
        Number of independent runs.
    seed:
        Base seed; repetition *k* uses ``RandomStreams(seed).fork(k)``.
    retry_attempts:
        Attempts per replication (default 1: fail fast, the historical
        behaviour). With more, a replication whose run raises *retry_on*
        is re-measured with a re-salted stream fork
        (``base.fork(k + 7919 * attempt)``) — fresh randomness, same
        reproducibility — via
        :func:`~repro.reliability.retry.retry_with_backoff`.
    retry_on:
        Exception type(s) worth retrying (default
        :class:`~repro.errors.ReproError`; programming errors always
        propagate).
    workers:
        Process-pool width for the replications (default 1: serial).
        Replication *k* derives all randomness from ``(seed, k)``
        alone, so any worker count yields **bit-identical**
        ``Replication.values`` — parallelism changes wall-clock only.
        Parallel runs require *measure* to be picklable (a module-level
        function or frozen-dataclass callable); unpicklable measures
        fall back to the serial path. Worker spans/metrics are merged
        back into an active parent observability context.
    policy:
        Optional :class:`~repro.parallel.FailurePolicy` for the pool
        path: replications whose worker crashes or exceeds the deadline
        are retried and eventually quarantined — they land in
        ``Replication.quarantined`` and degrade
        ``Replication.confidence`` instead of aborting the sweep.
        Ignored on the inline path (``workers <= 1``).

    When an experiment journal is active
    (:func:`repro.experiments.journal.journaled`) and *measure* is
    describable — a module-level function or a frozen dataclass of
    describable fields — the replication values are checkpointed per
    call and replayed bit-identically on ``--resume``. The journal key
    covers everything that determines the values (measure, seed,
    repetitions, retry policy) but *not* ``workers`` or *policy*: the
    determinism contract makes values invariant under both.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions!r}")
    task = _ReplicationTask(
        measure=measure, seed=seed, retry_attempts=retry_attempts, retry_on=retry_on
    )

    def compute() -> dict:
        executor = ParallelExecutor(workers=workers)
        raw = executor.map(task, range(repetitions), policy=policy)
        return {
            "values": [v for v in raw if not isinstance(v, Quarantined)],
            "quarantined": [
                {"index": q.index, "reason": q.reason, "failures": q.failures}
                for q in raw
                if isinstance(q, Quarantined)
            ],
        }

    journal = _journal.active()
    description = _journal.describe_task(task) if journal is not None else None
    if journal is not None and description is not None:
        data = journal.point(
            "repeat_mean",
            {"task": description, "repetitions": int(repetitions)},
            compute,
        )
    else:
        data = compute()
    return Replication(
        values=tuple(float(v) for v in data["values"]),
        quarantined=tuple(
            Quarantined(
                index=int(q["index"]), reason=str(q["reason"]), failures=int(q["failures"])
            )
            for q in data["quarantined"]
        ),
    )
