"""Fleet experiment: selfish re-placement at scale, under overload.

Two claims meet here. The paper's: slowdown-adjusted predictions are
cheap enough to drive scheduling decisions online. Legrand & Touati's
(PAPERS.md): when every application re-places *selfishly* — each one
moving to whatever machine minimizes its own predicted elapsed time,
against everyone else — the system converges to a (possibly
inefficient) equilibrium. The fleet service turns the second into a
stress test of the first: thousands of arrive/depart/query operations
per round, exactly the hostile traffic the robustness machinery
(admission control, load shedding, quarantine + journal replay) must
survive.

Phases:

1. **Populate** — the deterministic synthetic churn feed registers a
   fleet-wide population through the write-ahead log.
2. **Selfish re-placement** — rounds of: each application departs,
   queries the service for its cheapest machine (compute + transfer
   cost on every candidate, scored through the placement grid), and
   re-arrives there. Rounds repeat until a round moves nothing — the
   Nash-style equilibrium — and the mean per-application predicted
   cost is tracked per round (it must not increase).
3. **Overload + quarantine** — one tenant exceeds its query quota
   10×: every over-quota query is shed to an ANALYTIC answer, none
   raises. A shard is then corrupted behind the service's back, the
   next event quarantines it, and breaker-gated recovery replays the
   event log — the rebuilt shard must hash bit-identically to an
   independent replay of the same log.

The whole driver runs on a manual clock, so admission-bucket refills
and breaker windows are deterministic and the run journals like any
other sweep.
"""

from __future__ import annotations

from ..fleet import (
    AdmissionController,
    FleetService,
    PlacementQuery,
    ShardPolicy,
    TenantQuota,
    synthetic_feed,
)
from ..fleet.service import PlacementAnswer
from ..obs import MetricsSnapshot, RunManifest, platform_summary
from ..obs import context as _obs
from ..platforms.specs import DEFAULT_SUNPARAGON, SunParagonSpec
from ..reliability.degrade import Confidence
from . import journal as _journal
from .calibrate import calibrate_paragon
from .journal import EventLog
from .report import ExperimentResult

__all__ = ["fleet_experiment"]

#: Cap on re-placement rounds; convergence is typically much faster.
_MAX_ROUNDS = 12

#: A frontend cost high enough that the backend path (the candidate
#: machine's compute + transfer cost) always wins the Equation-(1)
#: comparison — the grid then scores pure per-machine placement cost.
_FRONTEND_VETO = 1e9


class _ManualClock:
    """Deterministic clock the driver advances by hand."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def _placement_query(comm_fraction: float, work: float = 1.0) -> PlacementQuery:
    """Score 'run this application on machine c' for every candidate.

    ``backend_dserial = backend_dcomp`` makes the backend term
    ``dcomp · s_comp`` exactly, and the transfer term adds
    ``dcomm · s_comm``; the veto frontend cost means ``best_time`` per
    candidate is the application's full predicted cost there.
    """
    dcomp = work * (1.0 - comm_fraction)
    dcomm = work * comm_fraction
    return PlacementQuery(
        dcomp_frontend=_FRONTEND_VETO,
        backend_dcomp=dcomp,
        backend_didle=0.0,
        backend_dserial=dcomp,
        dcomm_out=dcomm,
        dcomm_in=0.0,
    )


def _replacement_round(service: FleetService) -> tuple[int, float]:
    """One selfish round over every live application (sorted order).

    Each application is departed, asks for its cheapest machine, and
    re-arrives there. Returns ``(moves, mean predicted cost)``.
    """
    moves = 0
    total_cost = 0.0
    names = service.registry.names()
    for name in names:
        record = service.registry.get(name)
        if record is None:  # pragma: no cover - stream is churn-free here
            continue
        service.apply(
            {"op": "depart", "app": name, "tenant": record.tenant,
             "machine": record.machine}
        )
        answer: PlacementAnswer = service.query(
            record.tenant, _placement_query(record.comm_fraction)
        )
        target = answer.machine
        if target != record.machine:
            moves += 1
        service.apply(
            {
                "op": "arrive",
                "app": name,
                "tenant": record.tenant,
                "machine": target,
                "comm_fraction": record.comm_fraction,
                "message_size": record.message_size,
            }
        )
        total_cost += answer.best_time
    return moves, total_cost / max(1, len(names))


def fleet_experiment(
    spec: SunParagonSpec = DEFAULT_SUNPARAGON,
    machines: int = 32,
    events: int = 2000,
    seed: int = 31,
    quick: bool = False,
) -> ExperimentResult:
    """Selfish re-placement to equilibrium, then the overload proof."""
    if quick:
        machines = 8
        events = 120

    def run_point() -> dict:
        cal = calibrate_paragon(spec)
        clock = _ManualClock()
        # Burst comfortably covers one full re-placement round (every
        # live app queries once), so equilibrium rounds are *served*
        # and only the deliberate overload phase sheds.
        quota = TenantQuota(
            query_rate=100.0,
            query_burst=200.0 if quick else 1000.0,
            max_apps=100_000,
        )
        log = EventLog(_journal_scratch_path(), sync=False)
        service = FleetService(
            machines=machines,
            num_shards=4,
            delay_comp=cal.delay_comp,
            delay_comm=cal.delay_comm,
            delay_comm_sized=cal.delay_comm_sized,
            admission=AdmissionController(default=quota, clock=clock),
            policy=ShardPolicy(recovery_time=5.0, failure_threshold=1),
            log=log,
            clock=clock,
        )

        # Phase 1: populate through the churn feed.
        for event in synthetic_feed(seed=seed, events=events, machines=machines):
            service.submit(event)
            service.pump()
            clock.advance(0.05)  # keeps the event feed inside every quota

        # Phase 2: selfish re-placement to equilibrium.
        rounds: list[dict] = []
        equilibrium = _MAX_ROUNDS
        for rnd in range(_MAX_ROUNDS):
            clock.advance(60.0)  # refill every tenant's query bucket
            moves, mean_cost = _replacement_round(service)
            rounds.append({"round": rnd + 1, "moves": moves, "mean_cost": mean_cost})
            if moves == 0:
                equilibrium = rnd + 1
                break

        # Phase 3a: overload — one tenant exceeds its quota 10×.
        clock.advance(60.0)
        burst = int(quota.query_burst)
        query = _placement_query(0.3)
        shed = 0
        analytic_shed = 0
        raised = 0
        for _ in range(10 * burst):
            try:
                answer = service.query("tenant-0", query)
            except Exception:  # pragma: no cover - the contract under test
                raised += 1
                continue
            if answer.shed:
                shed += 1
                if answer.confidence is Confidence.ANALYTIC:
                    analytic_shed += 1

        # Phase 3b: corrupt a shard, quarantine it, recover via replay.
        victim = next(
            name
            for name in service.registry.names()
            if service.shard_of(service.registry.get(name).machine) == 0
        )
        vrec = service.registry.get(victim)
        # Behind the service's back: the shard forgets the app...
        service.shards[0].managers[vrec.machine].depart(victim)
        # ...so the next (legitimate) depart event desyncs the stream.
        service.apply({"op": "depart", "app": victim})
        quarantined = 0 in service.quarantined
        denied_early = service.recover(0)  # breaker still open: refused
        clock.advance(5.0)
        recovered = service.recover(0)
        replayed = FleetService(machines=machines, num_shards=4,
                                delay_comp=cal.delay_comp,
                                delay_comm=cal.delay_comm,
                                delay_comm_sized=cal.delay_comm_sized)
        for event in EventLog.replay(log.path):
            replayed.apply(event)
        identical = replayed.shards[0].state_hash() == service.shards[0].state_hash()
        log.close()

        counters = service.counters()
        return {
            "rounds": rounds,
            "equilibrium_rounds": equilibrium,
            "total_moves": sum(r["moves"] for r in rounds),
            "cost_first": rounds[0]["mean_cost"],
            "cost_last": rounds[-1]["mean_cost"],
            "shed": shed,
            "analytic_shed": analytic_shed,
            "raised": raised,
            "quarantined": int(quarantined),
            "recover_denied_while_open": int(not denied_early),
            "recovered": int(recovered),
            "replay_identical": int(identical),
            "registered": counters["registered"],
            "rebuilds_total": counters["rebuilds"],
        }

    data = _journal.point(
        "fleet.replacement",
        {
            "machines": int(machines),
            "events": int(events),
            "seed": int(seed),
            "quick": bool(quick),
        },
        run_point,
    )

    ctx = _obs.current()
    manifest = RunManifest.stamp(
        experiment="fleet",
        seed=seed,
        platform=platform_summary(spec),
        metrics=ctx.snapshot() if ctx is not None else MetricsSnapshot(),
        trace_id=ctx.tracer.trace_id if ctx is not None else "",
        extra={"machines": machines, "events": events, "quick": quick},
    )

    rows = [
        (r["round"], r["moves"], r["mean_cost"]) for r in data["rounds"]
    ]
    return ExperimentResult(
        experiment="fleet",
        title=(
            f"Selfish re-placement over {machines} machines "
            f"({data['registered']} apps): equilibrium in "
            f"{data['equilibrium_rounds']} rounds; overload shed "
            f"{data['shed']} queries without an error"
        ),
        headers=("round", "moves", "mean predicted cost"),
        rows=rows,
        metrics={
            "equilibrium_rounds": float(data["equilibrium_rounds"]),
            "total_moves": float(data["total_moves"]),
            "mean_cost_first_round": float(data["cost_first"]),
            "mean_cost_last_round": float(data["cost_last"]),
            "overload_shed": float(data["shed"]),
            "overload_shed_analytic": float(data["analytic_shed"]),
            "overload_raised": float(data["raised"]),
            "quarantined": float(data["quarantined"]),
            "recover_gated_by_breaker": float(data["recover_denied_while_open"]),
            "recovered": float(data["recovered"]),
            "replay_identical": float(data["replay_identical"]),
        },
        paper_claim=(
            "fleet extension (not in the paper): selfish re-placement driven by "
            "slowdown-adjusted predictions converges; overload sheds, never errors"
        ),
        manifest=manifest,
    )


def _journal_scratch_path() -> str:
    """Event-log scratch file for one driver run.

    Lives under the system temp dir, keyed by pid so concurrent runs
    cannot collide; the log is an execution artifact (the journal
    checkpoints the *results*), so reuse across runs is harmless — the
    constructor truncates.
    """
    import os
    import tempfile
    from pathlib import Path

    return str(Path(tempfile.gettempdir()) / f"repro-fleet-{os.getpid()}.jsonl")
