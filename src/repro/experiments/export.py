"""Machine-readable export of experiment results.

A reproduction package should let downstream users diff runs and feed
results into their own tooling: :func:`to_json` / :func:`to_csv`
serialise an :class:`~repro.experiments.report.ExperimentResult`, and
:func:`write_results` lays a whole run out on disk
(``<outdir>/<experiment>.json`` + ``.csv`` + a ``summary.json`` with
every experiment's metrics).
"""

from __future__ import annotations

import csv
import io
import json
import math
from pathlib import Path
from typing import Iterable

from .report import ExperimentResult

__all__ = ["to_json", "to_csv", "to_markdown", "write_results"]


def _clean(value):
    """JSON-compatible cell: NaN/inf become None."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def to_json(result: ExperimentResult, indent: int | None = 2) -> str:
    """Serialise one result (headers, rows, metrics, claims) as JSON.

    Delegates to :meth:`~repro.experiments.report.ExperimentResult.to_dict`
    (the shared ``ToDict`` protocol), then relaxes the round-trip
    sentinels back to ``null`` — the human-facing export format keeps
    its historical "non-finite is absent" convention.
    """
    payload = result.to_dict()
    payload["rows"] = [[_clean(cell) for cell in row] for row in result.rows]
    payload["metrics"] = {k: _clean(v) for k, v in result.metrics.items()}
    return json.dumps(payload, indent=indent)


def to_markdown(result: ExperimentResult) -> str:
    """Serialise one result as a GitHub-flavoured markdown section."""
    lines = [f"## {result.experiment} — {result.title}", ""]
    lines.append("| " + " | ".join(result.headers) + " |")
    lines.append("|" + "---|" * len(result.headers))
    for row in result.rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append("-" if not math.isfinite(cell) else f"{cell:.4g}")
            else:
                cells.append(str(cell))
        lines.append("| " + " | ".join(cells) + " |")
    if result.metrics:
        lines.append("")
        for name, value in result.metrics.items():
            shown = "-" if isinstance(value, float) and not math.isfinite(value) else f"{value:.4g}"
            lines.append(f"- **{name}**: {shown}")
    if result.paper_claim:
        lines.append(f"- paper: {result.paper_claim}")
    return "\n".join(lines) + "\n"


def to_csv(result: ExperimentResult) -> str:
    """Serialise one result's data rows as CSV (headers included)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(result.headers)
    for row in result.rows:
        writer.writerow(row)
    return buffer.getvalue()


def write_results(
    results: Iterable[ExperimentResult], outdir: str | Path
) -> list[Path]:
    """Write every result as ``.json`` and ``.csv`` plus a summary.

    Returns the list of files written. The directory is created if
    needed; existing files are overwritten (a run is a unit).
    """
    out = Path(outdir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    summary: dict[str, dict] = {}
    for result in results:
        json_path = out / f"{result.experiment}.json"
        json_path.write_text(to_json(result))
        csv_path = out / f"{result.experiment}.csv"
        csv_path.write_text(to_csv(result))
        md_path = out / f"{result.experiment}.md"
        md_path.write_text(to_markdown(result))
        written.extend([json_path, csv_path, md_path])
        summary[result.experiment] = {
            "title": result.title,
            "metrics": {k: _clean(v) for k, v in result.metrics.items()},
            "paper_claim": result.paper_claim,
        }
    summary_path = out / "summary.json"
    summary_path.write_text(json.dumps(summary, indent=2))
    written.append(summary_path)
    return written
