"""Generality and robustness experiments (the paper's prose claims).

Beyond the numbered figures, the evaluation makes several quantitative
claims in prose; each gets a driver here:

* :func:`synthetic_cm2_experiment` — "synthetic benchmarks ... have
  shown the error ... to be within 15% for both communication and
  computation" (§3.1.2): random CM2 instruction mixes across serial
  fractions.
* :func:`robustness_paragon_comm` — "different sets of contention
  generators ... typical average error of 15% ... maximum ... does not
  exceed 30%" (§3.2.1): randomized contender populations against the
  communication model.
* :func:`robustness_paragon_comp` — "typical average error was below
  15% ... as high as 33%" (§3.2.2): same for the computation model.
* :func:`saturation_sweep` — "above a threshold on the message size the
  delay imposed is roughly constant ... around 1000" (§3.2.2).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from ..apps.contender import cpu_bound
from ..core.calibration import find_saturation_threshold, relative_delays
from ..core.commcost import dedicated_comm_cost
from ..core.datasets import DataSet
from ..core.prediction import predict_backend_time, predict_comm_cost, predict_frontend_time
from ..core.slowdown import cm2_slowdown, paragon_comm_slowdown, paragon_comp_slowdown
from ..core.workload import ApplicationProfile
from ..platforms.specs import DEFAULT_SUNCM2, DEFAULT_SUNPARAGON, SunCM2Spec, SunParagonSpec
from ..platforms.suncm2 import SunCM2Platform
from ..platforms.sunparagon import SunParagonPlatform
from ..sim.engine import Simulator
from ..traces.analysis import measure_dedicated_cm2
from ..traces.synthetic import synthetic_cm2_trace
from . import journal as _journal
from .calibrate import (
    calibrate_paragon,
    _contended_compute_time,  # shared probe harness
)
from .report import ExperimentResult, mean_abs_pct_error, max_abs_pct_error, pct_error
from .simulate import BurstProbe, ComputeProbe, SimSpec, simulate

__all__ = [
    "synthetic_cm2_experiment",
    "robustness_paragon_comm",
    "robustness_paragon_comp",
    "saturation_sweep",
]


# ---------------------------------------------------------------------------
# §3.1.2 — synthetic CM2 benchmarks
# ---------------------------------------------------------------------------


def synthetic_cm2_experiment(
    spec: SunCM2Spec = DEFAULT_SUNCM2,
    serial_fractions: Sequence[float] = (0.05, 0.15, 0.3, 0.5, 0.7, 0.9),
    total_work: float = 2.0,
    p: int = 3,
    seed: int = 11,
    quick: bool = False,
) -> ExperimentResult:
    """Random CM2 instruction mixes vs. the §3.1.2 computation model."""
    if quick:
        serial_fractions = tuple(serial_fractions)[::3]
        total_work = min(total_work, 0.5)
    rng = np.random.default_rng(seed)
    slowdown = cm2_slowdown(p)
    rows, actuals, models = [], [], []
    for frac in serial_fractions:
        trace = synthetic_cm2_trace(
            rng, total_work, frac, spec, name=f"syn-{frac:.2f}"
        )
        dedicated = measure_dedicated_cm2(trace, spec)
        sim = Simulator()
        platform = SunCM2Platform(sim, spec=spec)
        for i in range(p):
            platform.spawn(cpu_bound(platform, tag=f"hog{i}"), name=f"hog{i}")
        probe = sim.process(platform.run_trace(trace, tag="probe"), name="probe")
        actual = sim.run_until(probe).elapsed
        model = predict_backend_time(dedicated.costs, slowdown)
        rows.append((frac, dedicated.elapsed, actual, model, pct_error(actual, model)))
        actuals.append(actual)
        models.append(model)
    return ExperimentResult(
        experiment="synthetic_cm2",
        title=f"Synthetic CM2 instruction mixes, p={p} CPU-bound contenders",
        headers=("serial frac", "dedicated", "actual", "model", "err %"),
        rows=rows,
        metrics={
            "mean_abs_err_pct": mean_abs_pct_error(actuals, models),
            "max_abs_err_pct": max_abs_pct_error(actuals, models),
        },
        paper_claim="errors within 15% for both communication and computation",
    )


# ---------------------------------------------------------------------------
# §3.2.1 / §3.2.2 — randomized Paragon contender populations
# ---------------------------------------------------------------------------


def _random_contenders(
    rng: np.random.Generator, count: int, sizes=(1, 100, 200, 500, 800, 1200, 2000)
) -> list[ApplicationProfile]:
    profiles = []
    for k in range(count):
        frac = float(rng.uniform(0.1, 0.9))
        size = int(rng.choice(sizes))
        profiles.append(
            ApplicationProfile(f"r{k}", comm_fraction=frac, message_size=size)
        )
    return profiles


def robustness_paragon_comm(
    spec: SunParagonSpec = DEFAULT_SUNPARAGON,
    scenarios: int = 6,
    probe_size: int = 200,
    count: int = 600,
    repetitions: int = 2,
    seed: int = 13,
    quick: bool = False,
    workers: int = 1,
    backend: str | None = None,
) -> ExperimentResult:
    """Varied contender sets vs. the communication slowdown model."""
    if quick:
        scenarios, count, repetitions = 2, 200, 1
    rng = np.random.default_rng(seed)
    cal = calibrate_paragon(spec)
    rows, actuals, models = [], [], []
    for s in range(scenarios):
        contenders = _random_contenders(rng, int(rng.integers(1, 4)))
        slowdown = paragon_comm_slowdown(contenders, cal.delay_comp, cal.delay_comm)
        point = SimSpec(
            platform=spec,
            probe=BurstProbe(probe_size, count, "out"),
            contenders=tuple(contenders),
            mode=cal.mode,
        )
        rep = simulate(
            point, reps=repetitions, seed=seed + s, workers=workers, backend=backend
        )
        dcomm = dedicated_comm_cost(
            [DataSet(count=count, size=float(probe_size))], cal.params_out
        )
        model = predict_comm_cost(dcomm, slowdown)
        desc = " ".join(f"{p.comm_fraction:.2f}@{int(p.message_size)}" for p in contenders)
        rows.append((s, desc, rep.mean, model, pct_error(rep.mean, model)))
        actuals.append(rep.mean)
        models.append(model)
    return ExperimentResult(
        experiment="robustness_comm",
        title="Randomized contender sets vs. communication model (bursts Sun->Paragon)",
        headers=("scenario", "contenders (frac@words)", "actual", "model", "err %"),
        rows=rows,
        metrics={
            "mean_abs_err_pct": mean_abs_pct_error(actuals, models),
            "max_abs_err_pct": max_abs_pct_error(actuals, models),
        },
        paper_claim="typical average error 15%; maximum average error <= 30%",
    )


def robustness_paragon_comp(
    spec: SunParagonSpec = DEFAULT_SUNPARAGON,
    scenarios: int = 6,
    work: float = 1.5,
    repetitions: int = 2,
    seed: int = 17,
    quick: bool = False,
    workers: int = 1,
    backend: str | None = None,
) -> ExperimentResult:
    """Varied contender sets vs. the computation slowdown model."""
    if quick:
        scenarios, work, repetitions = 2, 0.5, 1
    rng = np.random.default_rng(seed)
    cal = calibrate_paragon(spec)
    rows, actuals, models = [], [], []
    for s in range(scenarios):
        contenders = _random_contenders(rng, int(rng.integers(1, 4)))
        slowdown = paragon_comp_slowdown(contenders, cal.delay_comm_sized)
        point = SimSpec(
            platform=spec,
            probe=ComputeProbe(work),
            contenders=tuple(contenders),
            mode=cal.mode,
        )
        rep = simulate(
            point, reps=repetitions, seed=seed + s, workers=workers, backend=backend
        )
        model = predict_frontend_time(work, slowdown)
        desc = " ".join(f"{p.comm_fraction:.2f}@{int(p.message_size)}" for p in contenders)
        rows.append((s, desc, rep.mean, model, pct_error(rep.mean, model)))
        actuals.append(rep.mean)
        models.append(model)
    return ExperimentResult(
        experiment="robustness_comp",
        title="Randomized contender sets vs. computation model (CPU probe on the Sun)",
        headers=("scenario", "contenders (frac@words)", "actual", "model", "err %"),
        rows=rows,
        metrics={
            "mean_abs_err_pct": mean_abs_pct_error(actuals, models),
            "max_abs_err_pct": max_abs_pct_error(actuals, models),
        },
        paper_claim="typical average error below 15%; up to 33% for intensive/small-burst contenders",
    )


# ---------------------------------------------------------------------------
# §3.2.2 — delay saturation with contender message size
# ---------------------------------------------------------------------------


def saturation_sweep(
    spec: SunParagonSpec = DEFAULT_SUNPARAGON,
    generator_sizes: Sequence[int] = (1, 100, 250, 500, 1000, 2000, 4000),
    level: int = 2,
    work: float = 1.0,
    quick: bool = False,
) -> ExperimentResult:
    """Delay imposed on a CPU probe vs. contender message size.

    Reproduces the observation that the delay "is roughly constant"
    above a size threshold (≈1000 words): beyond the transport buffer,
    a bigger message is just more back-to-back fragments, so its
    steady-state interference stops changing.
    """
    if quick:
        generator_sizes = (1, 500, 1000, 2000)
        work = 0.4
    spec_desc = dataclasses.asdict(spec)
    # Every simulated probe below is a journal point: a killed sweep
    # resumes past completed (spec, level, j, work) combinations.
    dedicated = float(
        _journal.point(
            "saturation.dedicated",
            {"spec": spec_desc, "work": float(work)},
            lambda: _contended_compute_time(spec, 0, 1, "out", work, "1hop"),
        )
    )
    sizes, delays = [], []
    rows = []
    for j in generator_sizes:
        t_out, t_in = _journal.point(
            "saturation.point",
            {"spec": spec_desc, "level": int(level), "j": int(j), "work": float(work)},
            lambda j=j: [
                _contended_compute_time(spec, level, j, "out", work, "1hop"),
                _contended_compute_time(spec, level, j, "in", work, "1hop"),
            ],
        )
        delay = relative_delays(dedicated, [0.5 * (float(t_out) + float(t_in))])[0]
        sizes.append(j)
        delays.append(delay)
        rows.append((j, delay))
    threshold = find_saturation_threshold(sizes, delays, tolerance=0.1)
    return ExperimentResult(
        experiment="saturation",
        title=f"delay_comm^(i={level}, j) vs contender message size j",
        headers=("j (words)", f"delay (i={level})"),
        rows=rows,
        metrics={
            "saturation_threshold_words": threshold if threshold is not None else float("nan"),
        },
        paper_claim="delay roughly constant above a threshold around 1000 words",
    )
