"""ASCII chart rendering for experiment results.

The reproduction is terminal-first: every figure can be eyeballed as a
text chart next to its numeric table (``python -m repro fig5 --chart``).
No plotting dependency — just a scatter of per-series glyphs on a
character grid with linear or log-scaled axes.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from .report import ExperimentResult

__all__ = ["ascii_chart", "chart_result"]

_GLYPHS = "ox+*#@%&"


def _scale(values: Sequence[float], log: bool) -> list[float]:
    if log:
        return [math.log10(v) if v > 0 else math.nan for v in values]
    return [float(v) for v in values]


def ascii_chart(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 64,
    height: int = 18,
    logy: bool = False,
    title: str = "",
) -> str:
    """Render one or more y-series against a shared x-axis.

    Parameters
    ----------
    x:
        Common x values.
    series:
        ``{label: y values}``; each series gets its own glyph. NaNs
        and (on a log axis) non-positive values are skipped.
    width, height:
        Plot area size in characters.
    logy:
        Log-scale the y axis.
    title:
        Optional heading line.
    """
    if not series:
        raise ValueError("need at least one series")
    for label, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(f"series {label!r} has {len(ys)} points, x has {len(x)}")
    if len(x) < 2:
        raise ValueError("need at least two x points")
    if width < 8 or height < 4:
        raise ValueError("chart area too small")

    xs = [float(v) for v in x]
    x_lo, x_hi = min(xs), max(xs)
    if x_hi == x_lo:
        raise ValueError("x values are all identical")

    scaled = {label: _scale(ys, logy) for label, ys in series.items()}
    finite = [v for ys in scaled.values() for v in ys if v == v]
    if not finite:
        raise ValueError("no plottable values")
    y_lo, y_hi = min(finite), max(finite)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for k, (label, ys) in enumerate(scaled.items()):
        glyph = _GLYPHS[k % len(_GLYPHS)]
        for xv, yv in zip(xs, ys):
            if yv != yv:
                continue
            col = round((xv - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((yv - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = glyph

    def fmt(v: float) -> str:
        real = 10**v if logy else v
        return f"{real:.3g}"

    lines = []
    if title:
        lines.append(title)
    axis_width = max(len(fmt(y_hi)), len(fmt(y_lo)))
    for r, row in enumerate(grid):
        if r == 0:
            label = fmt(y_hi)
        elif r == height - 1:
            label = fmt(y_lo)
        else:
            label = ""
        lines.append(f"{label:>{axis_width}} |{''.join(row)}")
    lines.append(f"{'':>{axis_width}} +{'-' * width}")
    x_axis = f"{fmt(x_lo) if not logy else x_lo:<{width // 2}}{x_hi:>{width // 2}}"
    lines.append(f"{'':>{axis_width}}  {x_axis}")
    legend = "   ".join(
        f"{_GLYPHS[k % len(_GLYPHS)]} = {label}" for k, label in enumerate(series)
    )
    lines.append(f"{'':>{axis_width}}  {legend}")
    return "\n".join(lines)


#: For each chartable experiment: (x column, y columns, log-y?).
_CHART_SPECS: dict[str, tuple[str, tuple[str, ...], bool]] = {
    "fig1": ("M", ("actual p=0", "model p=0", "actual p=3", "model p=3"), True),
    "fig3": ("M", ("dedicated", "actual p=3", "model p=3"), True),
    "fig4": ("size (words)", ("1hop out", "2hops out"), False),
    "fig5": ("size (words)", ("dedicated", "actual", "model"), False),
    "fig6": ("size (words)", ("dedicated", "actual", "model"), False),
    "fig7": ("M", ("dedicated", "actual", "model j=1", "model j=1000"), True),
    "fig8": ("M", ("dedicated", "actual", "model j=1", "model j=500"), True),
    "saturation": ("j (words)", (), False),  # y column resolved dynamically
    "gang": ("gangs", ("actual (s)", "model (s)"), False),
}


def chart_result(result: ExperimentResult, width: int = 64, height: int = 18) -> str | None:
    """Best-effort chart for a known experiment; None when not chartable."""
    spec = _CHART_SPECS.get(result.experiment)
    if spec is None:
        return None
    x_col, y_cols, logy = spec
    if not y_cols:
        y_cols = tuple(h for h in result.headers if h != x_col)
    try:
        x = result.column(x_col)
        series = {name: result.column(name) for name in y_cols}
    except ValueError:
        return None
    return ascii_chart(x, series, width=width, height=height, logy=logy, title=result.title)
