"""Back-end (T_p) contention experiments.

§3.2: *"even though the Paragon ... is space-shared, traffic on the
mesh may affect an application's performance by slowing down its
communication. This kind of inter-partition contention is addressed by
Liu et al. [12] ... Also, contention for CPU in each node may occur if
the nodes are time-shared and gang-scheduling [7] is implemented.
These effects can be included in T_p."*

Two drivers quantify those effects on the simulated substrate:

* :func:`mesh_contention_experiment` — the allocation-policy tradeoff
  behind the Liu et al. citation: under a fragmented node pool,
  contiguous allocation cannot place a job at all, while scattered
  allocation places it but pays inter-partition link contention.
* :func:`gang_experiment` — gang-scheduled time-sharing of a
  partition: measured elapsed vs the analytical
  :func:`~repro.ext.gang.gang_slowdown` multiplier for ``T_p``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ScheduleError
from ..ext.gang import GangScheduler, gang_slowdown
from ..platforms.mesh import MeshNetwork, MeshSpec, Partition, PartitionAllocator
from ..sim.engine import Simulator
from .report import ExperimentResult, pct_error

__all__ = ["mesh_contention_experiment", "gang_experiment", "fragment_pool", "tp_placement_experiment", "sequencer_queueing_experiment"]


def fragment_pool(
    allocator: PartitionAllocator, rng: np.random.Generator, hold_fraction: float = 0.5
) -> list[Partition]:
    """Emulate a long-running machine: single-node jobs come and go.

    Allocates every node as a 1-node partition, then releases a random
    ``1 - hold_fraction`` of them — leaving the free pool checkerboard-
    fragmented the way hours of small-job churn would.
    """
    singles = [allocator.allocate(1, "scattered") for _ in range(allocator.free_nodes)]
    rng.shuffle(singles)
    keep = int(len(singles) * hold_fraction)
    for part in singles[keep:]:
        allocator.release(part)
    return singles[:keep]


def _ring_traffic(sim: Simulator, mesh: MeshNetwork, partition: Partition, size: float,
                  rounds: int, tag: str):
    """All nodes exchange with their ring neighbour, *rounds* times."""
    nodes = partition.nodes

    def node_proc(i: int):
        dst = nodes[(i + 1) % len(nodes)]
        for _ in range(rounds):
            yield from mesh.transfer(nodes[i], dst, size)

    procs = [sim.process(node_proc(i), name=f"{tag}-{i}") for i in range(len(nodes))]
    return procs


def _measure_ring(spec: MeshSpec, partition_a: Partition, partition_b: Partition | None,
                  size: float, rounds: int) -> float:
    """Elapsed time of partition A's ring exchange, optionally with B
    running continuous ring traffic beside it."""
    sim = Simulator()
    mesh = MeshNetwork(sim, spec=spec)
    if partition_b is not None:
        nodes = partition_b.nodes

        def contender(i: int):
            dst = nodes[(i + 1) % len(nodes)]
            while True:
                yield from mesh.transfer(nodes[i], dst, size)

        for i in range(len(nodes)):
            sim.process(contender(i), name=f"b-{i}", daemon=True)
    probes = _ring_traffic(sim, mesh, partition_a, size, rounds, "a")
    done = sim.all_of(probes)
    sim.run_until(done)
    return sim.now


def mesh_contention_experiment(
    mesh_spec: MeshSpec = MeshSpec(rows=4, cols=8),
    job_nodes: int = 8,
    message_words: float = 2048.0,
    rounds: int = 40,
    seed: int = 23,
    quick: bool = False,
) -> ExperimentResult:
    """Inter-partition contention vs allocation policy (Liu et al. [12]).

    Scenario 1 (*clean machine, contiguous*): two rectangular
    partitions; their XY routes are disjoint, so B's traffic cannot
    slow A. Scenario 2 (*fragmented machine*): contiguous allocation
    fails outright; scattered allocation places both jobs on
    interleaved nodes whose routes share links — B's traffic now
    slows A's communication.
    """
    if quick:
        rounds = min(rounds, 10)
    rng = np.random.default_rng(seed)
    rows = []

    # --- clean machine, contiguous rectangles -------------------------
    alloc = PartitionAllocator(mesh_spec)
    a_rect = alloc.allocate(job_nodes, "contiguous")
    b_rect = alloc.allocate(job_nodes, "contiguous")
    dedicated = _measure_ring(mesh_spec, a_rect, None, message_words, rounds)
    contended = _measure_ring(mesh_spec, a_rect, b_rect, message_words, rounds)
    rows.append(
        ("contiguous (clean pool)", "placed", dedicated, contended, contended / dedicated)
    )
    contiguous_ratio = contended / dedicated

    # --- fragmented machine --------------------------------------------
    frag_alloc = PartitionAllocator(mesh_spec)
    fragment_pool(frag_alloc, rng, hold_fraction=0.5)
    try:
        frag_alloc.allocate(job_nodes, "contiguous")
        contiguous_outcome = "placed"  # pragma: no cover - fragmentation should block
    except ScheduleError:
        contiguous_outcome = "REJECTED (no free rectangle)"
    rows.append(("contiguous (fragmented pool)", contiguous_outcome,
                 float("nan"), float("nan"), float("nan")))

    # The two jobs grow together on the fragmented machine (they arrive
    # as earlier jobs free nodes), so their scattered partitions
    # interleave — the configuration whose routes share mesh links.
    a_nodes: list = []
    b_nodes: list = []
    for _ in range(job_nodes):
        a_nodes.extend(frag_alloc.allocate(1, "scattered").nodes)
        b_nodes.extend(frag_alloc.allocate(1, "scattered").nodes)
    a_scat = Partition(nodes=tuple(a_nodes), contiguous=False)
    b_scat = Partition(nodes=tuple(b_nodes), contiguous=False)
    dedicated_s = _measure_ring(mesh_spec, a_scat, None, message_words, rounds)
    contended_s = _measure_ring(mesh_spec, a_scat, b_scat, message_words, rounds)
    scattered_ratio = contended_s / dedicated_s
    rows.append(
        ("scattered (fragmented pool)", "placed", dedicated_s, contended_s, scattered_ratio)
    )

    return ExperimentResult(
        experiment="mesh",
        title="Inter-partition mesh contention vs allocation policy (T_p effects)",
        headers=("allocation", "outcome", "A alone (s)", "A + B traffic (s)", "slowdown"),
        rows=rows,
        metrics={
            "contiguous_slowdown": contiguous_ratio,
            "scattered_slowdown": scattered_ratio,
        },
        paper_claim=(
            "traffic on the mesh may slow communication; inter-partition "
            "contention is the non-contiguous-allocation tradeoff of Liu et al. [12]"
        ),
    )


def gang_experiment(
    nodes: int = 16,
    work_node_seconds: float = 32.0,
    quantum: float = 0.1,
    switch_cost: float = 2e-3,
    max_gangs: int = 4,
    quick: bool = False,
) -> ExperimentResult:
    """Gang-scheduled time-sharing of a partition: model vs simulated.

    A probe gang runs a fixed parallel job while ``g − 1`` competitor
    gangs occupy the partition; measured elapsed is compared with the
    analytical ``T_p`` multiplier of :func:`repro.ext.gang.gang_slowdown`.
    """
    if quick:
        work_node_seconds = min(work_node_seconds, 8.0)
    dedicated = work_node_seconds / nodes
    rows, errs = [], []
    for gangs in range(1, max_gangs + 1):
        sim = Simulator()
        scheduler = GangScheduler(
            sim, nodes=nodes, quantum=quantum, switch_cost=switch_cost
        )
        for g in range(gangs - 1):
            def forever(tag=f"bg{g}"):
                while True:
                    yield from scheduler.run(tag, 1e9)

            sim.process(forever(), name=f"bg{g}", daemon=True)

        def probe():
            elapsed = yield from scheduler.run("probe", work_node_seconds)
            return elapsed

        actual = sim.run_until(sim.process(probe()))
        model = dedicated * gang_slowdown(gangs, quantum, switch_cost)
        err = pct_error(actual, model)
        errs.append(abs(err))
        rows.append((gangs, actual, model, err))
    return ExperimentResult(
        experiment="gang",
        title=f"Gang scheduling on a {nodes}-node partition: T_p multiplier",
        headers=("gangs", "actual (s)", "model (s)", "err %"),
        rows=rows,
        metrics={"mean_abs_err_pct": sum(errs) / len(errs)},
        paper_claim="contention for CPU in each node under gang scheduling can be included in T_p",
    )


def tp_placement_experiment(
    mesh_spec: MeshSpec = MeshSpec(rows=4, cols=4),
    grid_sizes: tuple[int, ...] = (100, 200, 300, 400, 600),
    iterations: int = 30,
    nodes: int = 8,
    p_frontend: int = 2,
    quick: bool = False,
) -> ExperimentResult:
    """Equation (1) on the Sun/Paragon with a *detailed* T_p.

    For an SOR solve of an M x M grid: run on the (contended) Sun
    front-end, or ship the grid to an 8-node mesh partition, run the
    BSP halo-exchange version, and ship it back. T_p here is measured
    on the full back-end substrate (partition + mesh), not the ideal
    work/nodes shortcut -- the "effects included in T_p" of Section 3.2.

    Columns give the simulated times of both placements and the winner;
    the metric records the crossover grid size.
    """
    from ..apps.contender import cpu_bound
    from ..apps.program import frontend_program
    from ..platforms.paragon_backend import ParagonBackend
    from ..platforms.specs import DEFAULT_SUNPARAGON
    from ..platforms.sunparagon import SunParagonPlatform
    from ..traces.sor import SOR_FLOPS_PER_POINT, sor_sun_work

    if quick:
        # Keep the iteration count (it sets the compute/shipping ratio
        # and therefore the crossover); just trim the sweep.
        grid_sizes = grid_sizes[::2]
    spec = DEFAULT_SUNPARAGON

    rows = []
    crossover = None
    for m in grid_sizes:
        # --- front-end placement: SOR on the contended Sun. -----------
        sim = Simulator()
        platform = SunParagonPlatform(sim, spec=spec)
        for k in range(p_frontend):
            platform.spawn(cpu_bound(platform, tag=f"h{k}"), name=f"h{k}")
        probe = sim.process(
            frontend_program(platform, sor_sun_work(m, iterations, spec))
        )
        t_frontend = sim.run_until(probe)

        # --- back-end placement: ship, BSP-SOR on the mesh, ship back. --
        sim = Simulator()
        platform = SunParagonPlatform(sim, spec=spec)
        backend = ParagonBackend(
            sim, mesh_spec, node_flop_time=spec.paragon_node_flop_time
        )
        partition = backend.allocate(nodes, "contiguous")
        for k in range(p_frontend):
            platform.spawn(cpu_bound(platform, tag=f"h{k}"), name=f"h{k}")

        def backend_run():
            start = sim.now
            # Ship the grid out as M messages of M words (contended
            # conversion on the Sun + the shared wire).
            for _ in range(m):
                yield from platform.send(float(m), tag="ship")
            result = yield from backend.run_task(
                partition,
                supersteps=iterations,
                flops_per_node=m * m * SOR_FLOPS_PER_POINT / nodes,
                exchange_words=4.0 * m / nodes,
            )
            for _ in range(m):
                yield from platform.recv(float(m), tag="ship")
            return sim.now - start

        t_backend = sim.run_until(sim.process(backend_run()))
        winner = "paragon" if t_backend < t_frontend else "sun"
        if winner == "paragon" and crossover is None:
            crossover = float(m)
        rows.append((m, t_frontend, t_backend, winner))

    return ExperimentResult(
        experiment="tp_placement",
        title=(
            f"SOR placement on the Sun/Paragon with detailed T_p "
            f"({nodes}-node mesh partition, p={p_frontend} front-end contenders)"
        ),
        headers=("M", "on Sun (s)", "on Paragon incl. transfers (s)", "winner"),
        rows=rows,
        metrics={
            "crossover_M": crossover if crossover is not None else float("nan"),
        },
        paper_claim=(
            "a task should execute on the Paragon only when "
            "T_sun > T_p + C_sun->p + C_p->sun (Eq. 1), with mesh and "
            "partition effects included in T_p"
        ),
    )


def sequencer_queueing_experiment(
    trace_m: int = 120,
    waiters: int = 3,
    quick: bool = False,
) -> ExperimentResult:
    """Exclusive CM2 sequencer: queueing delay for concurrent back-end jobs.

    Section 3.1: "Since there is only one sequencer in our Sun/CM2
    platform, only one process can execute on the CM2 at a time." The
    paper sidesteps the implication by modelling a single back-end
    application; this experiment quantifies it: k identical GE jobs
    submitted together serialise on the sequencer, so job i finishes at
    about (i+1) x one job's time -- the queueing term a multi-tenant
    back-end scheduler would have to add to T_cm2.
    """
    from ..platforms.specs import DEFAULT_SUNCM2
    from ..platforms.suncm2 import SunCM2Platform
    from ..traces.gauss import gauss_cm2_trace

    if quick:
        trace_m, waiters = 80, 2
    spec = DEFAULT_SUNCM2
    trace = gauss_cm2_trace(trace_m, spec)
    sim = Simulator()
    platform = SunCM2Platform(sim, spec=spec)

    def timed_job(k: int):
        # run_trace measures from sequencer acquisition; completion
        # time from submission (t = 0) is what queueing adds to.
        yield from platform.run_trace(trace, tag=f"job{k}")
        return sim.now

    procs = [sim.process(timed_job(k), name=f"job{k}") for k in range(waiters)]
    done = sim.all_of(procs)
    sim.run_until(done)
    completions = sorted(p.value for p in procs)
    single = completions[0]
    rows = []
    max_ratio_err = 0.0
    for k, completion in enumerate(completions):
        expected_ratio = k + 1
        ratio = completion / single
        max_ratio_err = max(max_ratio_err, abs(ratio - expected_ratio) / expected_ratio)
        rows.append((k, completion, ratio, expected_ratio))
    return ExperimentResult(
        experiment="sequencer",
        title=f"{waiters} concurrent GE jobs (M={trace_m}) on the single CM2 sequencer",
        headers=("job", "completion (s)", "completion / single", "expected (k+1)"),
        rows=rows,
        metrics={"max_serialisation_err": max_ratio_err},
        paper_claim="only one process can execute on the CM2 at a time",
    )
