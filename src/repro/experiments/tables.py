"""Tables 1–4: the paper's motivating scheduling example.

Two tasks A, B execute in sequence on a two-machine platform
{M1, M2}. Tables 1–2 give dedicated execution and communication times;
Table 3 applies a ×3 CPU slowdown to M1; Table 4 additionally slows
the M1↔M2 transfers ×3. The optimal mapping flips accordingly:

* dedicated        → both tasks on M1, 16 time units;
* Table 3 loads    → A on M2, B on M1, 38 time units;
* Table 4 loads    → both tasks back on M1, 48 time units.
"""

from __future__ import annotations

from ..core.scheduler import MappingProblem, best_mapping
from .report import ExperimentResult

__all__ = ["example_problem", "tables_experiment"]


def example_problem() -> MappingProblem:
    """The exact cost matrices of Tables 1 and 2."""
    return MappingProblem(
        tasks=("A", "B"),
        machines=("M1", "M2"),
        exec_time={"A": {"M1": 12.0, "M2": 18.0}, "B": {"M1": 4.0, "M2": 30.0}},
        comm_time={("M1", "M2"): 7.0, ("M2", "M1"): 8.0},
    )


def tables_experiment() -> ExperimentResult:
    """Reproduce the three scheduling decisions of the introduction."""
    dedicated = example_problem()
    table3 = dedicated.with_slowdowns({"M1": 3.0})
    table4 = dedicated.with_slowdowns({"M1": 3.0}, 3.0)

    scenarios = [
        ("Tables 1-2 (dedicated)", dedicated, "A->M1 B->M1", 16.0),
        ("Table 3 (M1 CPU x3)", table3, "A->M2 B->M1", 38.0),
        ("Table 4 (M1 CPU & link x3)", table4, "A->M1 B->M1", 48.0),
    ]
    rows = []
    all_match = True
    for label, problem, paper_mapping, paper_time in scenarios:
        result = best_mapping(problem)
        mapping = " ".join(f"{t}->{m}" for t, m in zip(problem.tasks, result.assignment))
        match = mapping == paper_mapping and result.elapsed == paper_time
        all_match = all_match and match
        rows.append((label, mapping, result.elapsed, paper_mapping, paper_time, "yes" if match else "NO"))

    return ExperimentResult(
        experiment="tables1_4",
        title="Motivating example: optimal mapping under contention",
        headers=("scenario", "best mapping", "time", "paper mapping", "paper time", "match"),
        rows=rows,
        metrics={"scenarios_matching_paper": float(sum(1 for r in rows if r[5] == "yes"))},
        paper_claim="16 units dedicated; 38 with CPU-bound load on M1; 48 when communication also slows",
    )
