"""Drivers for every figure of the paper's evaluation.

Each ``figN_*`` function runs the corresponding experiment — simulated
"actual" measurements against analytical "modeled" predictions — and
returns an :class:`~repro.experiments.report.ExperimentResult` whose
rows are the series the paper plots. A ``quick=True`` flag shrinks the
sweeps for tests and smoke runs.

All model inputs come from calibration benchmarks
(:mod:`repro.experiments.calibrate`) or dedicated-mode measurement
(:mod:`repro.traces.analysis`); the ground-truth platform specs are
only used to *build* the simulated systems.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence

from ..apps.burst import message_burst
from ..apps.contender import cpu_bound
from ..apps.program import transfer_program
from ..core.commcost import dedicated_comm_cost
from ..core.datasets import DataSet
from ..core.prediction import predict_backend_time, predict_comm_cost, predict_frontend_time
from ..core.slowdown import cm2_slowdown, paragon_comm_slowdown, paragon_comp_slowdown
from ..core.workload import ApplicationProfile
from ..platforms.specs import DEFAULT_SUNCM2, DEFAULT_SUNPARAGON, SunCM2Spec, SunParagonSpec
from ..platforms.suncm2 import SunCM2Platform
from ..platforms.sunparagon import SunParagonPlatform
from ..sim.engine import Simulator
from ..sim.monitors import Timeline
from ..traces.gauss import gauss_cm2_trace
from ..traces.instructions import Parallel, Reduction, Serial, Trace
from ..traces.analysis import measure_dedicated_cm2
from ..traces.sor import sor_sun_work
from . import journal as _journal
from .calibrate import ParagonCalibration, calibrate_cm2, calibrate_paragon
from .report import ExperimentResult, mean_abs_pct_error, pct_error
from .simulate import BurstProbe, ComputeProbe, SimSpec, simulate

__all__ = [
    "fig1_cm2_communication",
    "fig2_interleaving",
    "fig3_gauss_cm2",
    "fig4_paragon_dedicated",
    "fig5_paragon_comm_out",
    "fig6_paragon_comm_in",
    "fig7_sor_sun",
    "fig8_sor_sun",
]

# Sweeps matching the paper's plotted ranges (matrix sizes in the
# hundreds, message sizes across the 1024-word threshold).
_FIG1_SIZES = (128, 256, 384, 512, 640, 768, 896, 1024)
_FIG1_SIZES_QUICK = (128, 384, 768)
_FIG3_SIZES = (50, 100, 150, 200, 250, 300, 350, 400)
_FIG3_SIZES_QUICK = (50, 150, 300)
_FIG46_SIZES = (16, 64, 200, 512, 1024, 2048, 4096)
_FIG46_SIZES_QUICK = (16, 200, 1024)
_FIG78_SIZES = (100, 200, 300, 400, 500, 600)
_FIG78_SIZES_QUICK = (150, 350)


# ---------------------------------------------------------------------------
# Figure 1 — Sun/CM2 communication, dedicated vs p = 3
# ---------------------------------------------------------------------------


def _cm2_transfer_actual(spec: SunCM2Spec, m: int, p: int) -> float:
    """Simulated time to ship an M×M matrix to the CM2 and back with p hogs."""
    sim = Simulator()
    platform = SunCM2Platform(sim, spec=spec)
    for i in range(p):
        platform.spawn(cpu_bound(platform, tag=f"hog{i}"), name=f"hog{i}")
    probe = sim.process(
        transfer_program(platform, float(m), m, round_trip=True), name="probe"
    )
    return sim.run_until(probe)


def fig1_cm2_communication(
    spec: SunCM2Spec = DEFAULT_SUNCM2,
    sizes: Sequence[int] | None = None,
    p: int = 3,
    quick: bool = False,
) -> ExperimentResult:
    """Figure 1: M×M matrix to and from the CM2, p = 0 and p = 3.

    The matrix moves as M messages of M words each way; the model is
    ``dcomm × (p + 1)`` with (α, β) from the §3.1.1 calibration.
    """
    if sizes is None:
        sizes = _FIG1_SIZES_QUICK if quick else _FIG1_SIZES
    cal = calibrate_cm2(spec)
    slowdown = cm2_slowdown(p)
    spec_desc = dataclasses.asdict(spec)

    rows = []
    actuals_ded, models_ded, actuals_con, models_con = [], [], [], []
    for m in sizes:
        dataset = [DataSet(count=m, size=float(m))]
        dcomm = dedicated_comm_cost(dataset, cal.params_out) + dedicated_comm_cost(
            dataset, cal.params_in
        )
        # Each simulated transfer is one journal point: an interrupted
        # sweep resumes past completed (spec, m, p) combinations.
        actual_ded = float(
            _journal.point(
                "fig1.cm2_transfer",
                {"spec": spec_desc, "m": int(m), "p": 0},
                lambda m=m: _cm2_transfer_actual(spec, m, 0),
            )
        )
        actual_con = float(
            _journal.point(
                "fig1.cm2_transfer",
                {"spec": spec_desc, "m": int(m), "p": int(p)},
                lambda m=m: _cm2_transfer_actual(spec, m, p),
            )
        )
        model_con = predict_comm_cost(dcomm, slowdown)
        rows.append(
            (
                m,
                actual_ded,
                dcomm,
                pct_error(actual_ded, dcomm),
                actual_con,
                model_con,
                pct_error(actual_con, model_con),
            )
        )
        actuals_ded.append(actual_ded)
        models_ded.append(dcomm)
        actuals_con.append(actual_con)
        models_con.append(model_con)

    return ExperimentResult(
        experiment="fig1",
        title=f"Sun<->CM2 matrix transfer, dedicated (p=0) vs non-dedicated (p={p})",
        headers=(
            "M",
            "actual p=0",
            "model p=0",
            "err0 %",
            f"actual p={p}",
            f"model p={p}",
            f"err{p} %",
        ),
        rows=rows,
        metrics={
            "mean_abs_err_dedicated_pct": mean_abs_pct_error(actuals_ded, models_ded),
            "mean_abs_err_contended_pct": mean_abs_pct_error(actuals_con, models_con),
        },
        paper_claim="predictions within 11% average error (15% across the larger experiment set)",
    )


# ---------------------------------------------------------------------------
# Figure 2 — Sun/CM2 instruction interleaving
# ---------------------------------------------------------------------------


def _fig2_trace() -> Trace:
    """An illustrative stream shaped like the paper's Figure 2.

    Serial bursts between parallel instructions, plus one reduction so
    the Sun is seen idling for a result.
    """
    s, p = 0.4e-3, 1.2e-3
    return Trace(
        [
            Serial(2 * s),
            Parallel(3 * p),
            Serial(2 * s),
            Parallel(3 * p),
            Serial(s),
            Serial(2 * s),
            Parallel(3 * p),
            Reduction(2 * p),
            Serial(s),
        ],
        name="fig2",
    )


def fig2_interleaving(spec: SunCM2Spec = DEFAULT_SUNCM2, quick: bool = False) -> ExperimentResult:
    """Figure 2: side-by-side Sun / CM2 activity timeline.

    Executes the illustrative trace dedicated with timeline recording
    and renders the interleaved states; verifies the §3.1.2 invariant
    ``didle_cm2 <= dserial_cm2``.
    """
    timeline = Timeline()
    measurement = measure_dedicated_cm2(_fig2_trace(), spec, timeline=timeline)

    # Merge both actors' intervals into chronological rows.
    boundaries = sorted(
        {iv.start for iv in timeline.intervals} | {iv.end for iv in timeline.intervals}
    )
    def state_at(actor: str, t0: float, t1: float) -> str:
        mid = 0.5 * (t0 + t1)
        for iv in timeline.for_actor(actor):
            if iv.start <= mid < iv.end:
                return iv.state
        return "idle"

    rows = []
    for t0, t1 in zip(boundaries[:-1], boundaries[1:]):
        if t1 - t0 <= 0:
            continue
        rows.append((round(t0 * 1e3, 4), round(t1 * 1e3, 4), state_at("sun", t0, t1), state_at("cm2", t0, t1)))

    costs = measurement.costs
    return ExperimentResult(
        experiment="fig2",
        title="Interleaving of serial and parallel instructions (Sun vs CM2)",
        headers=("t0 (ms)", "t1 (ms)", "sun", "cm2"),
        rows=rows,
        metrics={
            "dcomp_cm2": costs.dcomp,
            "didle_cm2": costs.didle,
            "dserial_cm2": costs.dserial,
            "didle_le_dserial": 1.0 if costs.didle <= costs.dserial + 1e-12 else 0.0,
        },
        paper_claim="didle never exceeds dserial because the Sun pre-executes serial code",
        notes="\n" + timeline.render_gantt(width=60),
    )


# ---------------------------------------------------------------------------
# Figure 3 — Gaussian elimination on the CM2, dedicated vs p = 3
# ---------------------------------------------------------------------------


def _cm2_trace_actual(spec: SunCM2Spec, trace: Trace, p: int) -> float:
    sim = Simulator()
    platform = SunCM2Platform(sim, spec=spec)
    for i in range(p):
        platform.spawn(cpu_bound(platform, tag=f"hog{i}"), name=f"hog{i}")
    probe = sim.process(platform.run_trace(trace, tag="probe"), name="probe")
    return sim.run_until(probe).elapsed


def fig3_gauss_cm2(
    spec: SunCM2Spec = DEFAULT_SUNCM2,
    sizes: Sequence[int] | None = None,
    p: int = 3,
    quick: bool = False,
) -> ExperimentResult:
    """Figure 3: Gaussian elimination on the CM2, M×(M+1) system.

    Model: ``T_cm2 = max(dcomp + didle, dserial × (p+1))`` with the
    dedicated quantities measured on an idle platform. The paper's
    signature behaviour — contention hurts only below a crossover size
    (M ≈ 200 in the paper) — is summarised in the metrics.
    """
    if sizes is None:
        sizes = _FIG3_SIZES_QUICK if quick else _FIG3_SIZES
    slowdown = cm2_slowdown(p)
    spec_desc = dataclasses.asdict(spec)
    rows = []
    actuals, models = [], []
    crossover: float | None = None
    for m in sizes:
        trace = gauss_cm2_trace(m, spec)
        dedicated = measure_dedicated_cm2(trace, spec)
        # The trace is a pure function of (m, spec), so (spec, m, p)
        # fully keys the contended simulation for checkpoint/resume.
        actual = float(
            _journal.point(
                "fig3.gauss_cm2",
                {"spec": spec_desc, "m": int(m), "p": int(p)},
                lambda trace=trace: _cm2_trace_actual(spec, trace, p),
            )
        )
        model = predict_backend_time(dedicated.costs, slowdown)
        contended_hurts = actual > dedicated.elapsed * 1.05
        if not contended_hurts and crossover is None:
            crossover = float(m)
        rows.append(
            (
                m,
                dedicated.elapsed,
                actual,
                model,
                pct_error(actual, model),
                "yes" if contended_hurts else "no",
            )
        )
        actuals.append(actual)
        models.append(model)

    return ExperimentResult(
        experiment="fig3",
        title=f"Gaussian elimination on the CM2, dedicated vs p={p}",
        headers=("M", "dedicated", f"actual p={p}", f"model p={p}", "err %", "slower?"),
        rows=rows,
        metrics={
            "mean_abs_err_pct": mean_abs_pct_error(actuals, models),
            "crossover_M": crossover if crossover is not None else float("nan"),
        },
        paper_claim="slower under contention for M<200; dedicated == contended for M>=200; errors within 15%",
    )


# ---------------------------------------------------------------------------
# Figure 4 — dedicated Paragon bursts, 1-HOP vs 2-HOPS
# ---------------------------------------------------------------------------


def _paragon_burst_dedicated(
    spec: SunParagonSpec, size: int, count: int, direction: str, mode: str
) -> float:
    sim = Simulator()
    platform = SunParagonPlatform(sim, spec=spec)
    probe = sim.process(
        message_burst(platform, size, count, direction, mode=mode), name="probe"
    )
    return sim.run_until(probe)


def fig4_paragon_dedicated(
    spec: SunParagonSpec = DEFAULT_SUNPARAGON,
    sizes: Sequence[int] | None = None,
    count: int = 1000,
    quick: bool = False,
) -> ExperimentResult:
    """Figure 4: 1000-message bursts to/from the Paragon, both modes.

    Demonstrates (a) 1-HOP and 2-HOPS behave very similarly and (b)
    the cost is piecewise linear in message size with a threshold at
    the transport buffer (1024 words).
    """
    if sizes is None:
        sizes = _FIG46_SIZES_QUICK if quick else _FIG46_SIZES
    if quick:
        count = min(count, 200)
    rows = []
    ratios = []
    for size in sizes:
        t1_out = _paragon_burst_dedicated(spec, size, count, "out", "1hop")
        t2_out = _paragon_burst_dedicated(spec, size, count, "out", "2hops")
        t1_in = _paragon_burst_dedicated(spec, size, count, "in", "1hop")
        t2_in = _paragon_burst_dedicated(spec, size, count, "in", "2hops")
        rows.append((size, t1_out, t2_out, t1_in, t2_in))
        ratios.append(t2_out / t1_out)

    # Piecewise-linearity check: the incremental per-word cost below
    # and above the threshold should differ (the kink exists).
    return ExperimentResult(
        experiment="fig4",
        title=f"Bursts of {count} equal-sized messages, dedicated, 1-HOP vs 2-HOPS",
        headers=("size (words)", "1hop out", "2hops out", "1hop in", "2hops in"),
        rows=rows,
        metrics={
            "max_2hops_over_1hop_ratio": max(ratios),
        },
        paper_claim="both modes present very similar behaviour; cost is piecewise linear in size (threshold 1024 words)",
    )


# ---------------------------------------------------------------------------
# Figures 5/6 — contended Paragon bursts, model vs actual
# ---------------------------------------------------------------------------

#: The contender set of Figures 5 and 6: two applications on the Sun
#: communicating 25% and 76% of the time with 200-word messages.
_FIG56_CONTENDERS = (
    ApplicationProfile("c25", comm_fraction=0.25, message_size=200),
    ApplicationProfile("c76", comm_fraction=0.76, message_size=200),
)


def _fig56(
    experiment: str,
    direction: str,
    spec: SunParagonSpec,
    sizes: Sequence[int] | None,
    contenders: Sequence[ApplicationProfile],
    count: int,
    repetitions: int,
    seed: int,
    quick: bool,
    paper_claim: str,
    workers: int = 1,
    backend: str | None = None,
) -> ExperimentResult:
    if sizes is None:
        sizes = _FIG46_SIZES_QUICK if quick else _FIG46_SIZES
    if quick:
        count = min(count, 200)
        repetitions = min(repetitions, 2)
    cal = calibrate_paragon(spec)
    slowdown = paragon_comm_slowdown(list(contenders), cal.delay_comp, cal.delay_comm)
    params = cal.params_out if direction == "out" else cal.params_in

    # One sweep call: every size's replications become lanes of a single
    # ragged vector batch instead of one batch per size.
    points = [
        SimSpec(
            platform=spec,
            probe=BurstProbe(size, count, direction),
            contenders=tuple(contenders),
            mode=cal.mode,
        )
        for size in sizes
    ]
    reps_by_size = simulate(
        sweep=points, reps=repetitions, seed=seed, workers=workers, backend=backend
    )

    rows, actuals, models = [], [], []
    for size, rep in zip(sizes, reps_by_size):
        dcomm = dedicated_comm_cost([DataSet(count=count, size=float(size))], params)
        model = predict_comm_cost(dcomm, slowdown)
        rows.append((size, dcomm, rep.mean, rep.std, model, pct_error(rep.mean, model)))
        actuals.append(rep.mean)
        models.append(model)

    return ExperimentResult(
        experiment=experiment,
        title=(
            f"Bursts of {count} messages {'Sun->Paragon' if direction == 'out' else 'Paragon->Sun'}"
            f" with contenders {[p.comm_fraction for p in contenders]} @ "
            f"{[int(p.message_size) for p in contenders]} words"
        ),
        headers=("size (words)", "dedicated", "actual", "std", "model", "err %"),
        rows=rows,
        metrics={
            "mean_abs_err_pct": mean_abs_pct_error(actuals, models),
            "model_slowdown": slowdown,
        },
        paper_claim=paper_claim,
    )


def fig5_paragon_comm_out(
    spec: SunParagonSpec = DEFAULT_SUNPARAGON,
    sizes: Sequence[int] | None = None,
    contenders: Sequence[ApplicationProfile] = _FIG56_CONTENDERS,
    count: int = 1000,
    repetitions: int = 3,
    seed: int = 42,
    quick: bool = False,
    workers: int = 1,
    backend: str | None = None,
) -> ExperimentResult:
    """Figure 5: contended bursts Sun → Paragon, modeled vs actual."""
    return _fig56(
        "fig5",
        "out",
        spec,
        sizes,
        contenders,
        count,
        repetitions,
        seed,
        quick,
        paper_claim="average error within 12%",
        workers=workers,
        backend=backend,
    )


def fig6_paragon_comm_in(
    spec: SunParagonSpec = DEFAULT_SUNPARAGON,
    sizes: Sequence[int] | None = None,
    contenders: Sequence[ApplicationProfile] = _FIG56_CONTENDERS,
    count: int = 1000,
    repetitions: int = 3,
    seed: int = 43,
    quick: bool = False,
    workers: int = 1,
    backend: str | None = None,
) -> ExperimentResult:
    """Figure 6: contended bursts Paragon → Sun, modeled vs actual."""
    return _fig56(
        "fig6",
        "in",
        spec,
        sizes,
        contenders,
        count,
        repetitions,
        seed,
        quick,
        paper_claim="average error within 14%",
        workers=workers,
        backend=backend,
    )


# ---------------------------------------------------------------------------
# Figures 7/8 — SOR on the Sun under communicating contenders
# ---------------------------------------------------------------------------

#: Figure 7 contenders: 66% comm @ 800 words, 33% comm @ 1200 words.
_FIG7_CONTENDERS = (
    ApplicationProfile("c66", comm_fraction=0.66, message_size=800),
    ApplicationProfile("c33", comm_fraction=0.33, message_size=1200),
)
#: Figure 8 contenders: 40% comm @ 500 words, 76% comm @ 200 words.
_FIG8_CONTENDERS = (
    ApplicationProfile("c40", comm_fraction=0.40, message_size=500),
    ApplicationProfile("c76", comm_fraction=0.76, message_size=200),
)

#: SOR sweeps per problem instance (fixed so dcomp scales with M² only,
#: like the paper's fixed-iteration runs).
_SOR_ITERATIONS = 30


def _fig78(
    experiment: str,
    contenders: Sequence[ApplicationProfile],
    spec: SunParagonSpec,
    sizes: Sequence[int] | None,
    repetitions: int,
    seed: int,
    quick: bool,
    paper_claim: str,
    workers: int = 1,
    backend: str | None = None,
) -> ExperimentResult:
    if sizes is None:
        sizes = _FIG78_SIZES_QUICK if quick else _FIG78_SIZES
    if quick:
        repetitions = min(repetitions, 2)
    cal = calibrate_paragon(spec)
    buckets = sorted(cal.delay_comm_sized.tables)
    slowdowns = {
        j: paragon_comp_slowdown(list(contenders), cal.delay_comm_sized, force_bucket=j)
        for j in buckets
    }
    # The paper's recommended choice: j = maximum contender message size.
    auto_bucket = cal.delay_comm_sized.select_bucket(
        max(p.message_size for p in contenders)
    )

    points = [
        SimSpec(
            platform=spec,
            probe=ComputeProbe(sor_sun_work(m, _SOR_ITERATIONS, spec)),
            contenders=tuple(contenders),
            mode=cal.mode,
        )
        for m in sizes
    ]
    reps_by_m = simulate(
        sweep=points, reps=repetitions, seed=seed, workers=workers, backend=backend
    )

    rows = []
    actuals: list[float] = []
    models: dict[int, list[float]] = {j: [] for j in buckets}
    for m, rep in zip(sizes, reps_by_m):
        dcomp = sor_sun_work(m, _SOR_ITERATIONS, spec)
        row: list = [m, dcomp, rep.mean]
        for j in buckets:
            model = predict_frontend_time(dcomp, slowdowns[j])
            models[j].append(model)
            row.append(model)
        rows.append(tuple(row))
        actuals.append(rep.mean)

    metrics = {
        f"mean_abs_err_j{j}_pct": mean_abs_pct_error(actuals, models[j]) for j in buckets
    }
    metrics["auto_bucket_j"] = float(auto_bucket)
    metrics["mean_abs_err_auto_pct"] = mean_abs_pct_error(actuals, models[auto_bucket])
    return ExperimentResult(
        experiment=experiment,
        title=(
            "SOR on the Sun with contenders "
            f"{[p.comm_fraction for p in contenders]} @ {[int(p.message_size) for p in contenders]} words"
        ),
        headers=("M", "dedicated", "actual") + tuple(f"model j={j}" for j in buckets),
        rows=rows,
        metrics=metrics,
        paper_claim=paper_claim,
    )


def fig7_sor_sun(
    spec: SunParagonSpec = DEFAULT_SUNPARAGON,
    sizes: Sequence[int] | None = None,
    repetitions: int = 3,
    seed: int = 7,
    quick: bool = False,
    workers: int = 1,
    backend: str | None = None,
) -> ExperimentResult:
    """Figure 7: SOR on the Sun; contenders 66% @ 800 w, 33% @ 1200 w.

    The paper: 4% error with j = 1000, 16% with j = 500, 32% with
    j = 1 — using the largest contender message size is the right call.
    """
    return _fig78(
        "fig7",
        _FIG7_CONTENDERS,
        spec,
        sizes,
        repetitions,
        seed,
        quick,
        paper_claim="err 4% (j=1000), 16% (j=500), 32% (j=1)",
        workers=workers,
        backend=backend,
    )


def fig8_sor_sun(
    spec: SunParagonSpec = DEFAULT_SUNPARAGON,
    sizes: Sequence[int] | None = None,
    repetitions: int = 3,
    seed: int = 8,
    quick: bool = False,
    workers: int = 1,
    backend: str | None = None,
) -> ExperimentResult:
    """Figure 8: SOR on the Sun; contenders 40% @ 500 w, 76% @ 200 w.

    The paper: 5% error with j = 500; 25% with j = 1 and j = 1000 —
    the best bucket tracks the contenders' actual sizes.
    """
    return _fig78(
        "fig8",
        _FIG8_CONTENDERS,
        spec,
        sizes,
        repetitions,
        seed,
        quick,
        paper_claim="err 5% (j=500), 25% (j=1 and j=1000)",
        workers=workers,
        backend=backend,
    )
