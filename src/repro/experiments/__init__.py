"""Experiment harness: calibration suites and per-figure drivers."""

from .backend import fragment_pool, gang_experiment, mesh_contention_experiment, tp_placement_experiment
from .calibrate import (
    CM2Calibration,
    DEFAULT_SWEEP_SIZES,
    ParagonCalibration,
    calibrate_cm2,
    calibrate_paragon,
    calibrate_paragon_comm,
    measure_delay_comm,
    measure_delay_comm_sized,
    measure_delay_comp,
    pingpong_sweep,
)
from .cli import EXPERIMENTS, main, run_experiment
from .dispatch import gauss_sun_cost, library_dispatch_experiment
from .export import to_csv, to_json, to_markdown, write_results
from .figures import (
    fig1_cm2_communication,
    fig2_interleaving,
    fig3_gauss_cm2,
    fig4_paragon_dedicated,
    fig5_paragon_comm_out,
    fig6_paragon_comm_in,
    fig7_sor_sun,
    fig8_sor_sun,
)
from .plots import ascii_chart, chart_result
from .report import ExperimentResult, mean_abs_pct_error, max_abs_pct_error, pct_error, render_table
from .robustness import (
    robustness_paragon_comm,
    robustness_paragon_comp,
    saturation_sweep,
    synthetic_cm2_experiment,
)
from .runner import Replication, repeat_mean
from .simulate import (
    BatchResult,
    BurstProbe,
    ComputeProbe,
    CyclicProbe,
    SimSpec,
    simulate,
)
from .sensitivity import (
    cycle_length_sensitivity,
    forecast_experiment,
    fraction_sensitivity,
    mixed_workload_experiment,
)
from .tables import example_problem, tables_experiment

__all__ = [
    "BatchResult",
    "BurstProbe",
    "CM2Calibration",
    "ComputeProbe",
    "CyclicProbe",
    "SimSpec",
    "simulate",
    "ascii_chart",
    "chart_result",
    "fragment_pool",
    "gang_experiment",
    "gauss_sun_cost",
    "library_dispatch_experiment",
    "mesh_contention_experiment",
    "tp_placement_experiment",
    "cycle_length_sensitivity",
    "fraction_sensitivity",
    "forecast_experiment",
    "mixed_workload_experiment",
    "to_csv",
    "to_json",
    "to_markdown",
    "write_results",
    "DEFAULT_SWEEP_SIZES",
    "EXPERIMENTS",
    "ExperimentResult",
    "ParagonCalibration",
    "Replication",
    "calibrate_cm2",
    "calibrate_paragon",
    "calibrate_paragon_comm",
    "example_problem",
    "fig1_cm2_communication",
    "fig2_interleaving",
    "fig3_gauss_cm2",
    "fig4_paragon_dedicated",
    "fig5_paragon_comm_out",
    "fig6_paragon_comm_in",
    "fig7_sor_sun",
    "fig8_sor_sun",
    "main",
    "max_abs_pct_error",
    "mean_abs_pct_error",
    "measure_delay_comm",
    "measure_delay_comm_sized",
    "measure_delay_comp",
    "pct_error",
    "pingpong_sweep",
    "render_table",
    "repeat_mean",
    "robustness_paragon_comm",
    "robustness_paragon_comp",
    "run_experiment",
    "saturation_sweep",
    "synthetic_cm2_experiment",
    "tables_experiment",
]
