"""Chaos sweep: prediction error and degradation under injected faults.

The paper's accuracy claims assume a healthy platform: probes succeed,
the wire delivers, contenders run forever. This driver measures what
happens when none of that holds — the resilience subsystem's end-to-end
exercise:

* a :class:`~repro.reliability.faults.FaultPlan` is swept over fault
  rates, perturbing the simulated platform (link degradation/drops,
  CPU stalls) and churning the contenders (crash/restart);
* each run executes under :func:`~repro.reliability.supervise.supervise`
  watchdogs, so a fault-wedged simulation ends in a structured report
  rather than a hang;
* the contended probe time is compared against two predictions: the
  fully **calibrated** model, and the **analytic** fallback a degraded
  :class:`~repro.core.runtime.SlowdownManager` serves when its delay
  tables are missing (tagged ANALYTIC; the degradation counter is
  reported as a metric).

The zero-rate row doubles as the reproducibility control: an armed
injector with rate 0 draws no random numbers, so its measurements are
byte-for-byte those of a fault-free run.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from ..apps.contender import alternating, churned
from ..apps.program import frontend_program
from ..core.prediction import predict_frontend_time
from ..core.runtime import SlowdownManager
from ..core.workload import ApplicationProfile
from ..obs import MetricsSnapshot, RunManifest, platform_summary
from ..obs import context as _obs
from ..platforms.specs import DEFAULT_SUNPARAGON, SunParagonSpec
from ..platforms.sunparagon import SunParagonPlatform
from ..reliability.breaker import CircuitBreaker
from ..reliability.faults import FaultInjector, FaultPlan
from ..reliability.supervise import supervise
from ..sim.engine import Simulator
from ..sim.rng import RandomStreams
from . import journal as _journal
from .calibrate import calibrate_paragon, calibrate_paragon_resilient
from .report import ExperimentResult, mean_abs_pct_error, pct_error
from .runner import Replication
from .simulate import simulate

__all__ = ["chaos_experiment", "DEFAULT_FAULT_RATES"]

#: Fault rates of the default sweep: a clean control plus mild,
#: moderate and heavy chaos.
DEFAULT_FAULT_RATES: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2)

#: Fixed contender population of the sweep (comm fraction, words).
_CONTENDERS: tuple[tuple[float, int], ...] = ((0.3, 200), (0.6, 500))

#: Watchdog budgets: generous enough for the heaviest sweep point,
#: tight enough to convert a fault-wedged run into a report quickly.
_MAX_EVENTS = 2_000_000
_MAX_WALL_SECONDS = 120.0


def _contender_profiles() -> list[ApplicationProfile]:
    return [
        ApplicationProfile(f"c{k}", comm_fraction=frac, message_size=size)
        for k, (frac, size) in enumerate(_CONTENDERS)
    ]


def chaos_experiment(
    spec: SunParagonSpec = DEFAULT_SUNPARAGON,
    fault_rates: Sequence[float] = DEFAULT_FAULT_RATES,
    work: float = 1.0,
    repetitions: int = 2,
    seed: int = 23,
    quick: bool = False,
) -> ExperimentResult:
    """Sweep fault rates; report prediction error and model degradation.

    For each rate the same CPU-bound probe runs on the front-end under
    the same (churned) contender population, with the platform's link
    and CPU perturbed by a :class:`FaultInjector`. Two predictions are
    scored against the measured time: the calibrated §3.2.2 computation
    slowdown, and the analytic ``p + 1`` fallback from a
    :class:`SlowdownManager` stripped of its tables — the answer the
    model still gives after losing its calibration.
    """
    if quick:
        fault_rates = (0.0, 0.1)
        work = 0.4
        repetitions = 1
    cal = calibrate_paragon(spec)
    profiles = _contender_profiles()

    # The calibrated model (faults unknown to it — that is the point).
    calibrated = SlowdownManager(cal.delay_comp, cal.delay_comm, cal.delay_comm_sized)
    # The degraded model: calibration lost, analytic fallback only.
    degraded = SlowdownManager(None, None, None)
    for prof in profiles:
        calibrated.arrive(prof)
        degraded.arrive(prof)
    tagged_cal = calibrated.comp_slowdown_tagged()
    tagged_deg = degraded.comp_slowdown_tagged()
    with _obs.span("chaos.predict", kind="prediction") as sp:
        model_cal = predict_frontend_time(work, tagged_cal.value)
        model_deg = predict_frontend_time(work, tagged_deg.value)
        sp.set("calibrated", model_cal)
        sp.set("fallback", model_deg)
        sp.set("confidence", tagged_deg.confidence.name)

    spec_desc = dataclasses.asdict(spec)
    rows = []
    actuals, injected_totals = [], []
    for rate in fault_rates:
        plan = FaultPlan.uniform(float(rate), seed=seed)
        injector = FaultInjector(plan)

        def run(streams: RandomStreams) -> float:
            sim = Simulator()
            platform = SunParagonPlatform(sim, spec=spec, streams=streams)
            injector.arm(platform)
            for k, prof in enumerate(profiles):
                platform.spawn(
                    churned(
                        platform,
                        lambda k=k, prof=prof: alternating(
                            platform,
                            prof.comm_fraction,
                            prof.message_size,
                            platform.rng(f"contender-{k}"),
                            tag=prof.name,
                            mode=cal.mode,
                        ),
                        injector,
                        name=prof.name,
                    ),
                    name=prof.name,
                )
            probe = sim.process(frontend_program(platform, work), name="probe")
            report = supervise(
                sim,
                until_event=probe,
                max_events=_MAX_EVENTS,
                max_wall_seconds=_MAX_WALL_SECONDS,
            )
            report.raise_if_failed()
            return float(probe.value)

        # retry_attempts=2: a replication wedged by injected faults gets
        # one re-salted re-run before the sweep point is abandoned.
        #
        # Journaling happens at the rate level, not inside simulate():
        # ``run`` is a closure (it captures the armed injector), so the
        # harness correctly refuses to key it — but the whole rate point
        # is determined by (spec, rate, work, repetitions, seed), and
        # the injector's tally has to ride along in the payload because
        # a resumed run never re-arms the injector.
        def rate_point(injector: FaultInjector = injector) -> dict:
            rep = simulate(
                run, reps=repetitions, seed=seed, backend="object", retry_attempts=2
            )
            return {"values": list(rep.values), "injected": injector.total_injected}

        data = _journal.point(
            "chaos.rate",
            {
                "spec": spec_desc,
                "rate": float(rate),
                "work": float(work),
                "repetitions": int(repetitions),
                "seed": int(seed),
            },
            rate_point,
        )
        rep = Replication(values=tuple(float(v) for v in data["values"]))
        injected = int(data["injected"])
        rows.append(
            (
                rate,
                rep.mean,
                model_cal,
                pct_error(rep.mean, model_cal),
                model_deg,
                pct_error(rep.mean, model_deg),
                injected,
            )
        )
        actuals.append(rep.mean)
        injected_totals.append(injected)

    # Breaker-guarded calibration under the sweep's heaviest probe-fault
    # rate: the end-to-end trip→degrade path. A probe that fails past
    # its (short) retry budget trips the breaker, the suite aborts with
    # CircuitOpenError, and calibrate_paragon_resilient converts that
    # into (None, ANALYTIC) — exactly what a sweep on a dying platform
    # would feed SlowdownManager. Deterministic per seed, so it
    # journals like any other point.
    max_rate = max(float(r) for r in fault_rates)

    def faulted_cal_point() -> dict:
        breaker = CircuitBreaker(failure_threshold=3, recovery_time=3600.0)
        cal_injector = FaultInjector(
            FaultPlan(seed=seed + 101, probe_failure_rate=max_rate)
        )
        _, confidence = calibrate_paragon_resilient(
            spec,
            p_max=1,
            sizes=(16, 256, 768, 1024, 1536, 2048),
            injector=cal_injector,
            retry_attempts=2,
            breaker=breaker,
        )
        return {
            "confidence": confidence.name,
            "trips": breaker.trips,
            "rejections": breaker.rejections,
        }

    faulted_cal = _journal.point(
        "chaos.faulted_cal",
        {"spec": spec_desc, "rate": max_rate, "seed": int(seed) + 101},
        faulted_cal_point,
    )

    ctx = _obs.current()
    manifest = RunManifest.stamp(
        experiment="chaos",
        seed=seed,
        platform=platform_summary(spec),
        calibration={
            "mode": cal.mode,
            "delay_comp_levels": cal.delay_comp.max_level,
            "delay_comm_levels": cal.delay_comm.max_level,
            "confidence": tagged_cal.confidence.name,
            "fallback_confidence": tagged_deg.confidence.name,
        },
        metrics=ctx.snapshot() if ctx is not None else MetricsSnapshot(),
        trace_id=ctx.tracer.trace_id if ctx is not None else "",
        extra={"fault_rates": [float(r) for r in fault_rates], "quick": quick},
    )

    n = len(actuals)
    return ExperimentResult(
        experiment="chaos",
        title=(
            f"Fault-rate sweep: CPU probe vs calibrated ({tagged_cal.confidence.name}) "
            f"and fallback ({tagged_deg.confidence.name}) predictions"
        ),
        headers=(
            "fault rate",
            "actual",
            "model",
            "err %",
            "fallback",
            "fallback err %",
            "faults injected",
        ),
        rows=rows,
        metrics={
            "mean_abs_err_pct_calibrated": mean_abs_pct_error(actuals, [model_cal] * n),
            "mean_abs_err_pct_fallback": mean_abs_pct_error(actuals, [model_deg] * n),
            "faults_injected_total": float(sum(injected_totals)),
            "degradation_events": float(degraded.degradations.total),
            "faulted_cal_calibrated": 1.0 if faulted_cal["confidence"] == "CALIBRATED" else 0.0,
            "faulted_cal_breaker_trips": float(faulted_cal["trips"]),
            "faulted_cal_breaker_rejections": float(faulted_cal["rejections"]),
        },
        paper_claim=(
            "resilience extension (not in the paper): accuracy decays "
            "gracefully with fault rate; the table-less fallback still answers"
        ),
        manifest=manifest,
    )
