"""Append-only run journal: checkpoint/resume for experiment sweeps.

A figure sweep is hours of per-point simulation; a ``kill -9`` (or an
OOM kill, or a pre-empted node) half-way through used to mean starting
over. The journal makes sweep progress durable: every completed point
is appended to a JSON-lines file as soon as it is computed, and a rerun
with ``--resume`` replays completed points from the file instead of
recomputing them — losing at most the points that were in flight when
the process died.

Three properties make the replay trustworthy:

* **content-hash keys** — a point is named by a blake2b hash of its
  kind and parameters (the same discipline as
  :mod:`repro.experiments.calcache`), so a journal written by a
  different sweep configuration simply never matches;
* **bit-identical values** — JSON round-trips Python floats exactly
  (``repr``-based), and a journaling call *always* returns the
  JSON-round-tripped value even when freshly computed, so a resumed
  sweep and an uninterrupted one produce identical output;
* **torn-write tolerance** — records are single ``write`` + ``flush``
  + ``fsync`` lines, so a crash can only truncate the *last* line,
  and the loader skips any line that does not parse.

The journal is ambient, mirroring :mod:`repro.obs.context`: drivers
call the module-level :func:`point` helper, which computes directly
(zero overhead) when no journal is active and journals when the CLI has
installed one via :func:`journaled`.

Only *describable* work may be journaled: the key must capture
everything that determines the value. :func:`describe_task` renders
frozen-dataclass tasks and module-level functions into canonical JSON
and refuses closures and lambdas (their captured state is invisible to
the hash — journaling them would replay wrong values).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

from ..obs import context as _obs

__all__ = [
    "JOURNAL_VERSION",
    "RunJournal",
    "EventLog",
    "describe_task",
    "point_key",
    "active",
    "journaled",
    "point",
]

#: Bump whenever the record format or the keying discipline changes —
#: the version participates in every key, so an old journal resumes as
#: all-misses rather than replaying stale values.
JOURNAL_VERSION = 1


# ---------------------------------------------------------------------------
# Task description and keying
# ---------------------------------------------------------------------------


class _Undescribable(Exception):
    """Internal: the object cannot be canonically described."""


def _describe(obj: Any) -> Any:
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj
    if isinstance(obj, (list, tuple)):
        return [_describe(v) for v in obj]
    if isinstance(obj, Mapping):
        return {str(k): _describe(v) for k, v in obj.items()}
    if isinstance(obj, type):
        return {"type": f"{obj.__module__}.{obj.__qualname__}"}
    if dataclasses.is_dataclass(obj):
        return {
            "task": f"{type(obj).__module__}.{type(obj).__qualname__}",
            "fields": {
                f.name: _describe(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if callable(obj):
        mod = getattr(obj, "__module__", None)
        name = getattr(obj, "__qualname__", None)
        if not mod or not name or "<locals>" in name or "<lambda>" in name:
            # A closure or lambda: its captured state is invisible to
            # the content hash, so replay could return wrong values.
            raise _Undescribable(f"cannot describe {obj!r}")
        return {"callable": f"{mod}.{name}"}
    raise _Undescribable(f"cannot describe {obj!r}")


def describe_task(obj: Any) -> Any | None:
    """Canonical JSON description of *obj*, or ``None`` if impossible.

    Frozen-dataclass task instances describe as their qualified type
    name plus recursively described fields; module-level functions and
    classes as their qualified names; primitives and containers as
    themselves. Closures, lambdas and anything else whose identity does
    not pin down its behaviour return ``None`` — callers must then
    compute without journaling rather than risk replaying a mismatched
    value.
    """
    try:
        return _describe(obj)
    except _Undescribable:
        return None


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def point_key(kind: str, params: Any) -> str:
    """Content hash naming one journal point.

    *params* must already be canonical JSON-able data (run it through
    :func:`describe_task` first when it contains task objects).
    """
    payload = {"kind": kind, "version": JOURNAL_VERSION, "params": params}
    return hashlib.blake2b(_canonical(payload).encode(), digest_size=16).hexdigest()


# ---------------------------------------------------------------------------
# The journal
# ---------------------------------------------------------------------------


class RunJournal:
    """Append-only JSON-lines journal of completed sweep points.

    Parameters
    ----------
    path:
        Journal file. Parent directories are created as needed.
    resume:
        When True, existing records at *path* are loaded and replayed
        (corrupt or version-mismatched lines skipped); when False the
        file is truncated — a fresh run.

    Attributes
    ----------
    hits, misses:
        Points replayed from the journal vs. freshly computed, for the
        CLI's resume report.
    skipped:
        Lines dropped while loading (torn writes, foreign versions).
    """

    def __init__(self, path: str | os.PathLike, resume: bool = False) -> None:
        self.path = Path(path)
        self.hits = 0
        self.misses = 0
        self.skipped = 0
        self._entries: dict[str, Any] = {}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if resume:
            self._load()
        self._fh = open(self.path, "a" if resume else "w", encoding="utf-8")

    def _load(self) -> None:
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                if record["v"] != JOURNAL_VERSION:
                    raise ValueError("journal version mismatch")
                self._entries[record["key"]] = record["value"]
            except (ValueError, KeyError, TypeError):
                # Torn last line after a kill -9, or a foreign format:
                # losing the point just means recomputing it.
                self.skipped += 1

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: str) -> tuple[bool, Any]:
        """``(found, value)`` for *key* — no side effects on the file."""
        if key in self._entries:
            return True, self._entries[key]
        return False, None

    def record(self, key: str, kind: str, params: Any, value: Any) -> Any:
        """Append one completed point durably; return its replay value.

        The returned value is the JSON round-trip of *value* — exactly
        what a resumed run will see — so fresh and resumed runs flow
        identical data downstream.
        """
        line = _canonical(
            {"v": JOURNAL_VERSION, "key": key, "kind": kind, "params": params, "value": value}
        )
        replay = json.loads(line)["value"]
        self._entries[key] = replay
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        return replay

    def point(self, kind: str, params: Any, compute: Callable[[], Any]) -> Any:
        """Replay the point named by ``(kind, params)`` or compute it.

        *params* must be canonical JSON-able data and capture everything
        that determines the value. The return value is always the JSON
        round-trip (see :meth:`record`).
        """
        key = point_key(kind, params)
        found, value = self.lookup(key)
        if found:
            self.hits += 1
            _obs.inc("journal.hits")
            return value
        self.misses += 1
        _obs.inc("journal.misses")
        return self.record(key, kind, params, compute())

    def close(self) -> None:
        """Flush and close the journal file (idempotent)."""
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Streaming event log (write-ahead log for the fleet service)
# ---------------------------------------------------------------------------


class EventLog:
    """Append-only, sequence-numbered event stream with durable replay.

    Where :class:`RunJournal` memoizes *keyed points* (replay by content
    hash, order irrelevant), the event log makes an *ordered stream*
    durable: the fleet service (:mod:`repro.fleet`) appends every
    admitted arrive/depart event before applying it, so a killed shard
    can be rebuilt bit-identically by replaying the log in sequence
    order through the same code path.

    The durability discipline matches :class:`RunJournal`: one canonical
    JSON line per event, flushed on every append (``fsync`` too unless
    ``sync=False`` — benchmarks disable it), so a crash can only tear
    the final line, which :meth:`replay` skips.

    Parameters
    ----------
    path:
        Log file. Parent directories are created as needed.
    resume:
        When True, existing events at *path* are replayed to recover
        the sequence counter (corrupt trailing lines skipped); when
        False the file is truncated — a fresh stream.
    sync:
        ``fsync`` after every append. Keep True whenever recovery
        matters; False trades durability for append throughput.
    """

    def __init__(
        self, path: str | os.PathLike, resume: bool = False, sync: bool = True
    ) -> None:
        self.path = Path(path)
        self.sync = bool(sync)
        self.next_seq = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if resume:
            # Truncate any torn tail (a half-written final line after a
            # kill) so new appends extend the durable prefix — replay
            # stops at the first bad line, and an append landing after
            # one would be unreachable. Canonical JSON is pure ASCII,
            # so line length in characters equals length in bytes.
            durable = 0
            for event in self.replay(self.path):
                self.next_seq = int(event["seq"]) + 1
                durable += 1
            try:
                lines = self.path.read_text(encoding="utf-8").splitlines(keepends=True)
            except OSError:
                lines = []
            keep = sum(len(line) for line in lines[:durable])
            self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.truncate(keep)
        else:
            self._fh = open(self.path, "w", encoding="utf-8")

    def append(self, event: Mapping[str, Any]) -> dict[str, Any]:
        """Durably append *event*, stamping the next sequence number.

        Returns the JSON round-trip of the stamped event — exactly what
        :meth:`replay` will yield — so live application and replayed
        recovery flow identical data into the shards.
        """
        record = dict(event)
        record["seq"] = self.next_seq
        record["v"] = JOURNAL_VERSION
        line = _canonical(record)
        replayed = json.loads(line)
        self.next_seq += 1
        self._fh.write(line + "\n")
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())
        return replayed

    @staticmethod
    def replay(path: str | os.PathLike) -> Iterator[dict[str, Any]]:
        """Yield the durable events at *path* in sequence order.

        Lines that do not parse (a torn final write after ``kill -9``),
        carry a foreign version, or arrive out of sequence are skipped —
        replay stops trusting the stream at the first gap, since events
        after a hole could double-apply arrivals.
        """
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError:
            return
        expect = 0
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                event = json.loads(line)
                if event["v"] != JOURNAL_VERSION or event["seq"] != expect:
                    raise ValueError("version or sequence mismatch")
            except (ValueError, KeyError, TypeError):
                return
            expect += 1
            yield event

    def close(self) -> None:
        """Flush and close the log file (idempotent)."""
        if not self._fh.closed:
            self._fh.flush()
            if self.sync:
                os.fsync(self._fh.fileno())
            self._fh.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Ambient journal (mirrors repro.obs.context)
# ---------------------------------------------------------------------------

_active: RunJournal | None = None


def active() -> RunJournal | None:
    """The journal installed by :func:`journaled`, or ``None``."""
    return _active


@contextmanager
def journaled(journal: RunJournal) -> Iterator[RunJournal]:
    """Install *journal* as the ambient journal for the ``with`` body."""
    global _active
    previous = _active
    _active = journal
    try:
        yield journal
    finally:
        _active = previous


def point(kind: str, params: Any, compute: Callable[[], Any]) -> Any:
    """Journal-aware compute: replay/record when a journal is active.

    With no ambient journal this is exactly ``compute()`` — except that
    the result still goes through a JSON round-trip, so enabling the
    journal later never changes a single downstream value. *params*
    follows the same contract as :meth:`RunJournal.point`.
    """
    journal = active()
    if journal is not None:
        return journal.point(kind, params, compute)
    return json.loads(json.dumps(compute()))
