"""Library-task dispatch: the paper's end purpose, validated end to end.

§2: the model "provides a realistic estimate of the costs of computing
a task on the front-end machine (with one algorithm) as compared to
moving the data across the network link and computing the task
(perhaps with a different algorithm) on the back-end machine" — e.g.
matrix multiplication or sorting, which have efficient codes on both
machines.

:func:`library_dispatch_experiment` runs that loop for a family of
matmul and bitonic-sort tasks under front-end contention, and then
*validates the decision* by simulating both placements:

* the **contention-aware** decision applies Equation (1) with the
  ``p + 1`` slowdown;
* the **contention-oblivious** decision applies Equation (1) with
  dedicated costs (what a load-agnostic scheduler would do);
* the simulator reveals the true winner and the time the aware
  decision saves over the oblivious one.
"""

from __future__ import annotations

from typing import Sequence

from ..apps.contender import cpu_bound
from ..core.prediction import ConfidentPlacement, decide_placement
from ..core.slowdown import cm2_slowdown
from ..platforms.specs import DEFAULT_SUNCM2, SunCM2Spec
from ..platforms.suncm2 import SunCM2Platform
from ..sim.engine import Simulator
from ..traces.analysis import measure_dedicated_cm2
from ..traces.instructions import Trace
from ..traces.gauss import gauss_cm2_trace
from ..traces.library import (
    bitonic_cm2_trace,
    matmul_cm2_trace,
    matmul_sun_cost,
    sort_sun_cost,
)
from ..workloads.gauss import augment  # noqa: F401 - re-exported workload context
from ..workloads.matmul import matmul_flops  # noqa: F401
from .calibrate import calibrate_cm2
from .report import ExperimentResult

__all__ = ["library_dispatch_experiment", "gauss_sun_cost"]

_MATMUL_SIZES = (16, 48, 160)
_SORT_SIZES = (1024, 16384, 65536)
_GAUSS_SIZES = (120, 200, 280)
_MATMUL_SIZES_QUICK = (16, 96)
_SORT_SIZES_QUICK = (1024, 16384)
_GAUSS_SIZES_QUICK = (120, 220)


def gauss_sun_cost(n: int, spec: SunCM2Spec) -> float:
    """Dedicated front-end seconds of the workstation GE solver."""
    from ..traces.gauss import gauss_flops

    return gauss_flops(n) * spec.sun_flop_time


def _simulate_frontend(spec: SunCM2Spec, work: float, p: int) -> float:
    sim = Simulator()
    platform = SunCM2Platform(sim, spec=spec)
    for i in range(p):
        platform.spawn(cpu_bound(platform, tag=f"h{i}"), name=f"h{i}")
    probe = sim.process(platform.frontend_cpu.run_work(work, tag="probe"), name="probe")
    sim.run_until(probe)
    return sim.now


def _simulate_backend(spec: SunCM2Spec, trace: Trace, p: int) -> float:
    sim = Simulator()
    platform = SunCM2Platform(sim, spec=spec)
    for i in range(p):
        platform.spawn(cpu_bound(platform, tag=f"h{i}"), name=f"h{i}")
    probe = sim.process(platform.run_trace(trace, tag="probe"), name="probe")
    return sim.run_until(probe).elapsed


def _predict(
    spec: SunCM2Spec,
    sun_cost: float,
    trace: Trace,
    p: int,
) -> ConfidentPlacement:
    cal = calibrate_cm2(spec)
    dedicated = measure_dedicated_cm2(
        Trace([i for i in trace if not _is_transfer(i)], name=trace.name), spec
    )
    pattern = trace.comm_pattern()
    from ..core.commcost import dedicated_comm_cost  # local: avoid cycle at import

    dcomm_out = dedicated_comm_cost(pattern.to_backend, cal.params_out)
    dcomm_in = dedicated_comm_cost(pattern.to_frontend, cal.params_in)
    slowdown = cm2_slowdown(p)
    return decide_placement(
        dcomp_frontend=sun_cost,
        backend_costs=dedicated.costs,
        dcomm_out=dcomm_out,
        dcomm_in=dcomm_in,
        comp_slowdown=slowdown,
        comm_slowdown=slowdown,
    )


def _is_transfer(instruction) -> bool:
    from ..traces.instructions import Transfer

    return isinstance(instruction, Transfer)


def library_dispatch_experiment(
    spec: SunCM2Spec = DEFAULT_SUNCM2,
    p: int = 3,
    matmul_sizes: Sequence[int] | None = None,
    sort_sizes: Sequence[int] | None = None,
    gauss_sizes: Sequence[int] | None = None,
    quick: bool = False,
) -> ExperimentResult:
    """Dispatch matmul/sort/GE tasks under p CPU-bound contenders.

    For each task: predict both placements with and without the
    contention model, simulate both placements, and score the
    decisions against the simulated truth. GE tasks sit in the window
    where contention *flips* the optimal placement (the CM2's parallel
    work does not stretch under front-end contention, front-end
    execution does), so the oblivious scheduler mis-places them.
    """
    if matmul_sizes is None:
        matmul_sizes = _MATMUL_SIZES_QUICK if quick else _MATMUL_SIZES
    if sort_sizes is None:
        sort_sizes = _SORT_SIZES_QUICK if quick else _SORT_SIZES
    if gauss_sizes is None:
        gauss_sizes = _GAUSS_SIZES_QUICK if quick else _GAUSS_SIZES

    tasks: list[tuple[str, float, Trace]] = []
    for n in matmul_sizes:
        tasks.append((f"matmul n={n}", matmul_sun_cost(n, spec), matmul_cm2_trace(n, spec)))
    for n in sort_sizes:
        tasks.append((f"bitonic n={n}", sort_sun_cost(n, spec), bitonic_cm2_trace(n, spec)))
    for n in gauss_sizes:
        tasks.append(
            (
                f"gauss n={n}",
                gauss_sun_cost(n, spec),
                gauss_cm2_trace(n, spec, include_transfers=True),
            )
        )

    rows = []
    aware_correct = oblivious_correct = 0
    total_saving = 0.0
    for name, sun_cost, trace in tasks:
        aware = _predict(spec, sun_cost, trace, p)
        oblivious = _predict(spec, sun_cost, trace, 0)

        t_front = _simulate_frontend(spec, sun_cost, p)
        t_back = _simulate_backend(spec, trace, p)
        true_winner = "cm2" if t_back < t_front else "sun"
        aware_choice = "cm2" if aware.offload else "sun"
        oblivious_choice = "cm2" if oblivious.offload else "sun"
        aware_correct += aware_choice == true_winner
        oblivious_correct += oblivious_choice == true_winner
        aware_time = t_back if aware_choice == "cm2" else t_front
        oblivious_time = t_back if oblivious_choice == "cm2" else t_front
        total_saving += oblivious_time - aware_time
        rows.append(
            (
                name,
                t_front,
                t_back,
                true_winner,
                aware_choice,
                oblivious_choice,
            )
        )

    return ExperimentResult(
        experiment="dispatch",
        title=f"Library-task dispatch (matmul/sort/GE) under p={p} CPU-bound contenders",
        headers=(
            "task",
            "simulated on Sun",
            "simulated on CM2 (incl. transfers)",
            "true winner",
            "aware choice",
            "oblivious choice",
        ),
        rows=rows,
        metrics={
            "aware_correct": float(aware_correct),
            "oblivious_correct": float(oblivious_correct),
            "tasks": float(len(tasks)),
            "time_saved_by_awareness_s": total_saving,
        },
        paper_claim=(
            "contention must be factored into estimates for efficient allocation; "
            "a contention-oblivious scheduler mis-places tasks"
        ),
    )
