"""On-disk persistence for calibration results.

The paper stresses that the calibration tables are computed "just once
for each platform"; the in-memory ``lru_cache`` in
:mod:`repro.experiments.calibrate` honours that within one process, and
this module extends it *across* processes: a completed
:class:`~repro.experiments.calibrate.ParagonCalibration` is written to
a JSON file named by a content hash of everything that determines it —
the full platform spec, the routing mode, ``p_max`` and the sweep
sizes — and a later process with the same inputs loads the file instead
of re-running the benchmark suite.

Invalidation is purely structural (see ``docs/performance.md``):

* any change to the spec, mode, ``p_max`` or sizes changes the hash,
  so stale entries are never *read* — they are simply orphaned;
* :data:`CACHE_VERSION` is part of the hash, so changing the
  serialization format or the calibration procedure itself only
  requires bumping the version;
* a corrupt, truncated or foreign file silently counts as a miss.

The cache is **opt-in**: it is active only when a directory has been
configured, via :func:`set_cache_dir`, the ``REPRO_CAL_CACHE``
environment variable, or the experiment CLI's ``--cal-cache`` flag.
Fault-injected calibrations never touch the disk cache (they bypass
the in-memory cache for the same reason — the injector is stateful).

JSON round-trips Python floats exactly (``repr``-based encoding), so a
loaded calibration is bit-identical to the freshly computed one.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..core.params import (
    DelayTable,
    LinearCommParams,
    PiecewiseCommParams,
    SizedDelayTable,
)
from ..obs import context as _obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..platforms.specs import SunParagonSpec
    from .calibrate import ParagonCalibration

__all__ = [
    "CACHE_VERSION",
    "cache_dir",
    "set_cache_dir",
    "clear_cache",
    "paragon_key",
    "load_paragon",
    "store_paragon",
]

#: Bump whenever the serialization format *or* the calibration
#: procedure changes — the version participates in the content hash,
#: so old entries become unreachable rather than wrong.
CACHE_VERSION = 1

#: Environment variable consulted for the default cache directory.
_ENV_VAR = "REPRO_CAL_CACHE"

_cache_dir: Path | None = None
_cache_dir_initialised = False


def cache_dir() -> Path | None:
    """The active cache directory, or ``None`` when the cache is off."""
    global _cache_dir, _cache_dir_initialised
    if not _cache_dir_initialised:
        env = os.environ.get(_ENV_VAR)
        _cache_dir = Path(env) if env else None
        _cache_dir_initialised = True
    return _cache_dir


def set_cache_dir(path: str | os.PathLike | None) -> None:
    """Point the cache at *path* (created lazily), or disable with ``None``."""
    global _cache_dir, _cache_dir_initialised
    _cache_dir = Path(path) if path is not None else None
    _cache_dir_initialised = True


def clear_cache(path: str | os.PathLike | None = None) -> int:
    """Delete all cache entries under *path* (default: the active dir).

    Returns the number of entry files removed. A missing directory is
    an empty cache, not an error.
    """
    base = Path(path) if path is not None else cache_dir()
    if base is None or not base.is_dir():
        return 0
    removed = 0
    for entry in base.glob("*.json"):
        try:
            entry.unlink()
            removed += 1
        except OSError:  # pragma: no cover - racing deleters
            pass
    return removed


# ---------------------------------------------------------------------------
# Content hashing
# ---------------------------------------------------------------------------


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def paragon_key(
    spec: "SunParagonSpec", mode: str, p_max: int, sizes: tuple[int, ...]
) -> str:
    """Content hash naming the cache entry for one calibration input set."""
    payload = {
        "kind": "paragon",
        "version": CACHE_VERSION,
        "spec": dataclasses.asdict(spec),
        "mode": mode,
        "p_max": int(p_max),
        "sizes": [int(s) for s in sizes],
    }
    return hashlib.blake2b(_canonical(payload).encode(), digest_size=16).hexdigest()


# ---------------------------------------------------------------------------
# (De)serialization
# ---------------------------------------------------------------------------


def _linear_to_dict(params: LinearCommParams) -> dict:
    return {"alpha": params.alpha, "beta": params.beta}


def _linear_from_dict(data: dict) -> LinearCommParams:
    return LinearCommParams(alpha=float(data["alpha"]), beta=float(data["beta"]))


def _piecewise_to_dict(params: PiecewiseCommParams) -> dict:
    return {
        "threshold": params.threshold,
        "small": _linear_to_dict(params.small),
        "large": _linear_to_dict(params.large),
    }


def _piecewise_from_dict(data: dict) -> PiecewiseCommParams:
    return PiecewiseCommParams(
        threshold=float(data["threshold"]),
        small=_linear_from_dict(data["small"]),
        large=_linear_from_dict(data["large"]),
    )


def _delay_to_dict(table: DelayTable) -> dict:
    return {"delays": list(table.delays), "label": table.label}


def _delay_from_dict(data: dict) -> DelayTable:
    return DelayTable(
        delays=tuple(float(d) for d in data["delays"]), label=str(data["label"])
    )


def _sized_to_dict(table: SizedDelayTable) -> dict:
    return {
        "tables": {str(j): _delay_to_dict(t) for j, t in table.tables.items()},
        "small_cutoff": table.small_cutoff,
        "saturation": table.saturation,
    }


def _sized_from_dict(data: dict) -> SizedDelayTable:
    saturation = data["saturation"]
    return SizedDelayTable(
        tables={int(j): _delay_from_dict(t) for j, t in data["tables"].items()},
        small_cutoff=int(data["small_cutoff"]),
        saturation=float(saturation) if saturation is not None else None,
    )


def _paragon_to_dict(cal: "ParagonCalibration") -> dict:
    return {
        "version": CACHE_VERSION,
        "mode": cal.mode,
        "params_out": _piecewise_to_dict(cal.params_out),
        "params_in": _piecewise_to_dict(cal.params_in),
        "delay_comp": _delay_to_dict(cal.delay_comp),
        "delay_comm": _delay_to_dict(cal.delay_comm),
        "delay_comm_sized": _sized_to_dict(cal.delay_comm_sized),
    }


def _paragon_from_dict(data: dict) -> "ParagonCalibration":
    from .calibrate import ParagonCalibration

    return ParagonCalibration(
        mode=str(data["mode"]),
        params_out=_piecewise_from_dict(data["params_out"]),
        params_in=_piecewise_from_dict(data["params_in"]),
        delay_comp=_delay_from_dict(data["delay_comp"]),
        delay_comm=_delay_from_dict(data["delay_comm"]),
        delay_comm_sized=_sized_from_dict(data["delay_comm_sized"]),
    )


# ---------------------------------------------------------------------------
# Entry IO
# ---------------------------------------------------------------------------


def _entry_path(key: str) -> Path | None:
    base = cache_dir()
    return base / f"paragon-{key}.json" if base is not None else None


def load_paragon(key: str) -> "ParagonCalibration | None":
    """Load the entry named *key*, or ``None`` on miss/corruption/off."""
    path = _entry_path(key)
    if path is None:
        return None
    try:
        data = json.loads(path.read_text())
        if data.get("version") != CACHE_VERSION:
            return None
        return _paragon_from_dict(data)
    except (OSError, ValueError, KeyError, TypeError):
        return None


def store_paragon(key: str, cal: "ParagonCalibration") -> Path | None:
    """Write *cal* under *key* atomically; no-op when the cache is off.

    Failures to persist (read-only directory, full disk) are swallowed —
    the cache is an accelerator, never a correctness dependency.

    Safe under concurrent writers: each writer stages into its own
    ``mkstemp`` file (``O_EXCL`` guarantees uniqueness — a pid-derived
    name is not enough, since pids recycle and threads share one) and
    the last rename wins; both writers produced the same content, so
    "last" is indistinguishable from "first". A writer that finds the
    entry already present counts a ``calibration.cache.collision`` —
    the signal that two processes just duplicated a calibration run.
    """
    path = _entry_path(key)
    if path is None:
        return None
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.exists():
            _obs.inc("calibration.cache.collision")
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{path.stem}.", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(json.dumps(_paragon_to_dict(cal), indent=1))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path
    except OSError:  # pragma: no cover - environment-dependent
        return None
