"""The unified replication entry point: :func:`simulate`.

Every Monte-Carlo sweep in the reproduction ultimately does the same
thing — run one contended workload under R independent random-stream
families and summarize the scalar results. Historically each driver
wired that loop itself through :func:`repro.experiments.runner.repeat_mean`
with an ad-hoc picklable measure class. :func:`simulate` replaces the
scattered entry points with one front door:

* A declarative :class:`SimSpec` (platform spec + probe + contenders)
  runs on either engine — ``backend="vector"`` batches all replications
  through the struct-of-arrays engine (:mod:`repro.sim.vector`),
  ``backend="object"`` replays the exact construction every driver used
  to hand-roll (one :class:`~repro.sim.engine.Simulator` per
  replication). The object engine stays the always-available reference
  oracle; workloads the vector engine does not cover fall back to it
  automatically (counted via ``repro.obs``).
* A plain measure callable ``measure(streams) -> float`` still works —
  it is inherently opaque, so it always runs on the object backend.

Backend choice: an explicit ``backend=`` argument wins, then the
``REPRO_SIM_BACKEND`` environment variable, then the default
``"vector"``.

Replication *k* derives all randomness from ``(seed, k)`` alone —
lane seeds are ``RandomStreams(seed).fork(k).seed`` on both backends —
so worker count and backend-internal batching never change the random
streams a replication sees. ``workers > 1`` splits *contiguous batches
of lanes* across a process pool on the vector backend (and single
replications on the object backend), bit-identical to serial either
way.

A replication that produces a non-finite value (a quarantined vector
lane, a fault-injected NaN) is masked into
:attr:`BatchResult.quarantined` — it degrades
:attr:`BatchResult.confidence` instead of poisoning the batch mean.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Callable, Mapping, Union

import numpy as np

from ..core.workload import ApplicationProfile
from ..errors import ReproError
from ..obs import RunManifest, jsonable, unjsonable
from ..obs import context as _obs
from ..parallel import FailurePolicy, ParallelExecutor, Quarantined
from ..platforms.specs import SunParagonSpec
from ..sim import vector as _vector
from ..sim.rng import RandomStreams
from . import journal as _journal
from .runner import Replication, _ReplicationTask

__all__ = [
    "BACKEND_ENV",
    "SWEEP_ENV",
    "BatchResult",
    "BurstProbe",
    "ComputeProbe",
    "CyclicProbe",
    "SimSpec",
    "resolve_backend",
    "simulate",
]

#: Environment variable consulted when ``simulate(backend=None)``.
BACKEND_ENV = "REPRO_SIM_BACKEND"

#: Set to ``"0"`` to disable sweep-level lane batching: ``simulate(sweep=...)``
#: then runs one per-point batch per spec (bit-identical values, more
#: batches). The smoke suite uses this to prove the equivalence.
SWEEP_ENV = "REPRO_SIM_SWEEP"

_BACKENDS = ("vector", "object")


# ---------------------------------------------------------------------------
# Declarative workload specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BurstProbe:
    """Measure a burst of back-to-back messages (paper §3.1 probes)."""

    size_words: int
    count: int = 1000
    direction: str = "out"


@dataclass(frozen=True)
class ComputeProbe:
    """Measure a pure front-end computation (paper §3.2.2 probes)."""

    work: float


@dataclass(frozen=True)
class CyclicProbe:
    """Measure an alternating compute/communicate application (§2)."""

    cycles: int
    comp_per_cycle: float
    messages_per_cycle: int
    message_size: float


_Probe = Union[BurstProbe, ComputeProbe, CyclicProbe]


@dataclass(frozen=True)
class SimSpec:
    """One contended Sun–Paragon measurement, declaratively.

    ``platform`` is the machine description; ``contenders`` run the
    standard alternating compute/communicate load; ``probe`` is the
    measured application. ``stream_prefix`` pins the contender RNG
    stream names (``"contender-"`` for the figure/robustness sweeps,
    ``"c"`` for the sensitivity sweeps) so a spec-driven run draws the
    exact random numbers the historical hand-rolled measures drew.
    """

    platform: SunParagonSpec
    probe: _Probe
    contenders: tuple[ApplicationProfile, ...] = ()
    mean_cycle: float = 0.25
    contender_direction: str = "both"
    mode: str = "1hop"
    stream_prefix: str = "contender-"


@dataclass(frozen=True)
class _SpecMeasure:
    """Object-engine measure for a :class:`SimSpec` — the reference oracle.

    Reproduces, construction for construction, what the per-driver
    measure classes used to build: platform first, contenders in index
    order (stream ``{prefix}{k}``), probe last.
    """

    spec: SimSpec

    def __call__(self, streams: RandomStreams) -> float:
        from ..apps.burst import message_burst
        from ..apps.contender import alternating
        from ..apps.program import cyclic_program, frontend_program
        from ..platforms.sunparagon import SunParagonPlatform
        from ..sim.engine import Simulator

        s = self.spec
        sim = Simulator()
        platform = SunParagonPlatform(sim, spec=s.platform, streams=streams)
        for k, prof in enumerate(s.contenders):
            platform.spawn(
                alternating(
                    platform,
                    prof.comm_fraction,
                    prof.message_size,
                    platform.rng(f"{s.stream_prefix}{k}"),
                    mean_cycle=s.mean_cycle,
                    direction=s.contender_direction,
                    tag=prof.name,
                    mode=s.mode,
                ),
                name=prof.name,
            )
        p = s.probe
        if isinstance(p, BurstProbe):
            gen = message_burst(platform, p.size_words, p.count, p.direction, mode=s.mode)
        elif isinstance(p, ComputeProbe):
            gen = frontend_program(platform, p.work)
        else:
            gen = cyclic_program(
                platform, p.cycles, p.comp_per_cycle, p.messages_per_cycle,
                p.message_size, mode=s.mode,
            )
        probe = sim.process(gen, name="probe")
        return sim.run_until(probe)


def _vector_workload(spec: SimSpec):
    """Translate a :class:`SimSpec` into vector-engine terms.

    Returns ``(contenders, probe, reason)``; a non-None *reason* means
    the spec has no vector translation (contenders/probe are None).
    The stream names mirror ``platform.rng(...)`` on the default
    platform name, which is how lane RNG draws line up bit-for-bit
    with the object engine.
    """
    p = spec.probe
    if isinstance(p, BurstProbe):
        probe = _vector.VectorBurstProbe(p.size_words, p.count, p.direction, spec.mode)
    elif isinstance(p, ComputeProbe):
        probe = _vector.VectorComputeProbe(p.work)
    elif isinstance(p, CyclicProbe):
        probe = _vector.VectorCyclicProbe(
            p.cycles, p.comp_per_cycle, p.messages_per_cycle, p.message_size, spec.mode
        )
    else:
        return None, None, f"probe type {type(p).__name__} has no vector translation"
    contenders = tuple(
        _vector.VectorContender(
            comm_fraction=prof.comm_fraction,
            message_size=prof.message_size,
            stream=f"sunparagon/{spec.stream_prefix}{k}",
            mean_cycle=spec.mean_cycle,
            direction=spec.contender_direction,
            mode=spec.mode,
            tag=prof.name,
        )
        for k, prof in enumerate(spec.contenders)
    )
    return contenders, probe, None


# ---------------------------------------------------------------------------
# Batch result
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BatchResult(Replication):
    """A :class:`~repro.experiments.runner.Replication` plus provenance.

    Adds which backend was requested and which actually ran (with the
    fallback reason when they differ), the base seed, the requested
    replication count, and an optional :class:`~repro.obs.RunManifest`
    stamped when an observability context is active. Statistics
    (``mean``/``std``/``cv``/``ci95``/``confidence``) are inherited.
    """

    requested_backend: str = "vector"
    backend: str = "object"
    fallback_reason: str | None = None
    seed: int = 0
    reps: int = 0
    manifest: RunManifest | None = field(default=None, compare=False)

    def to_dict(self) -> dict:
        """Serialise through the :class:`~repro.obs.serialize.ToDict` protocol."""
        return {
            "values": jsonable(list(self.values)),
            "quarantined": [
                {"index": q.index, "reason": q.reason, "failures": q.failures}
                for q in self.quarantined
            ],
            "requested_backend": self.requested_backend,
            "backend": self.backend,
            "fallback_reason": self.fallback_reason,
            "seed": self.seed,
            "reps": self.reps,
            "manifest": None if self.manifest is None else self.manifest.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "BatchResult":
        manifest = payload.get("manifest")
        return cls(
            values=tuple(float(unjsonable(v)) for v in payload["values"]),
            quarantined=tuple(
                Quarantined(
                    index=int(q["index"]),
                    reason=str(q["reason"]),
                    failures=int(q["failures"]),
                )
                for q in payload.get("quarantined", ())
            ),
            requested_backend=payload.get("requested_backend", "vector"),
            backend=payload.get("backend", "object"),
            fallback_reason=payload.get("fallback_reason"),
            seed=int(payload.get("seed", 0)),
            reps=int(payload.get("reps", 0)),
            manifest=None if manifest is None else RunManifest.from_dict(manifest),
        )


# ---------------------------------------------------------------------------
# Backend execution
# ---------------------------------------------------------------------------


def resolve_backend(backend: str | None = None) -> str:
    """Explicit argument > ``$REPRO_SIM_BACKEND`` > ``"vector"``."""
    if backend is None:
        backend = os.environ.get(BACKEND_ENV, "").strip() or "vector"
    backend = str(backend).lower()
    if backend not in _BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {', '.join(_BACKENDS)}"
        )
    return backend


def _fallback_label(reason: str) -> str:
    """A short metric label for a fallback *reason* string.

    ``simulate.fallback`` counts every fallback;
    ``simulate.fallback.<label>`` splits the total by cause so a
    metrics snapshot shows *why* batches left the vector path
    (``fcfs_discipline``, ``opaque_measure``, ``platform``, ...).
    """
    if "opaque measure" in reason:
        return "opaque_measure"
    m = re.search(r"cpu discipline '(\w+)'", reason)
    if m:
        return f"{m.group(1)}_discipline"
    if "platform spec" in reason:
        return "platform"
    if "service_node_capacity" in reason:
        return "service_capacity"
    if "probe" in reason:
        return "probe"
    return "other"


def _count_fallback(reason: str) -> None:
    _obs.inc("simulate.fallback")
    _obs.inc(f"simulate.fallback.{_fallback_label(reason)}")


def _collect(raw: list) -> dict:
    """Split raw per-replication outcomes into values vs quarantined.

    Non-finite measurements are quarantined here rather than kept: a
    single NaN lane would otherwise propagate into the batch mean and
    silently poison every downstream error metric.
    """
    values: list[float] = []
    quarantined: list[dict] = []
    for k, v in enumerate(raw):
        if isinstance(v, Quarantined):
            quarantined.append(
                {"index": v.index, "reason": v.reason, "failures": v.failures}
            )
        elif v is None or not np.isfinite(v):
            quarantined.append(
                {"index": k, "reason": "non-finite measurement", "failures": 1}
            )
        else:
            values.append(float(v))
    return {"values": values, "quarantined": quarantined}


@dataclass(frozen=True)
class _VectorLaneChunk:
    """Picklable vector-batch task: run lanes ``[start, stop)``.

    Lane *k*'s seed depends only on ``(seed, k)``, so any chunking of
    the lane range yields bit-identical per-lane results — workers
    change wall-clock, never values.
    """

    spec: SimSpec
    seed: int

    def __call__(self, bounds: tuple[int, int]) -> list[float]:
        start, stop = bounds
        contenders, probe, _ = _vector_workload(self.spec)
        base = RandomStreams(self.seed)
        lane_seeds = [base.fork(k).seed for k in range(start, stop)]
        out = _vector.run_lanes(self.spec.platform, contenders, probe, lane_seeds)
        return [float(v) for v in out]


@dataclass(frozen=True)
class _SweepLaneChunk:
    """Picklable sweep-batch task: run flat lanes ``[start, stop)``.

    The flat lane index is point-major (``flat = point * reps + k``) and
    lane *k* of every point seeds itself from ``(seed, k)`` alone, so
    any chunking — across workers or across the sweep/per-point paths —
    yields bit-identical per-lane results.
    """

    specs: tuple[SimSpec, ...]
    seed: int
    reps: int

    def __call__(self, bounds: tuple[int, int]) -> list[float]:
        start, stop = bounds
        base = RandomStreams(self.seed)
        cache: dict[SimSpec, _vector.SweepPoint] = {}
        points: list[_vector.SweepPoint] = []
        lane_seeds: list[int] = []
        for flat in range(start, stop):
            pi, k = divmod(flat, self.reps)
            sp = self.specs[pi]
            pt = cache.get(sp)
            if pt is None:
                contenders, probe, _ = _vector_workload(sp)
                pt = _vector.SweepPoint(sp.platform, contenders, probe)
                cache[sp] = pt
            points.append(pt)
            lane_seeds.append(base.fork(k).seed)
        out = _vector.run_sweep(points, lane_seeds)
        return [float(v) for v in out]


def _vector_batch(spec: SimSpec, reps: int, seed: int, workers: int) -> dict:
    task = _VectorLaneChunk(spec=spec, seed=seed)
    width = max(1, min(int(workers), reps))
    size = -(-reps // width)
    bounds = [(i, min(i + size, reps)) for i in range(0, reps, size)]

    def compute() -> dict:
        with _obs.span("simulate.vector", kind="experiment", reps=reps) as sp:
            chunks = ParallelExecutor(workers=width).map(task, bounds)
            raw = [v for chunk in chunks for v in chunk]
            sp.set("lanes", len(raw))
        _obs.inc("experiment.replications", reps)
        return _collect(raw)

    journal = _journal.active()
    if journal is not None:
        description = _journal.describe_task(spec)
        if description is not None:
            return journal.point(
                "simulate",
                {
                    "spec": description,
                    "backend": "vector",
                    "reps": int(reps),
                    "seed": int(seed),
                },
                compute,
            )
    return compute()


def _object_batch(
    measure: Callable[[RandomStreams], float],
    reps: int,
    seed: int,
    retry_attempts: int,
    retry_on,
    workers: int,
    policy: FailurePolicy | None,
) -> dict:
    task = _ReplicationTask(
        measure=measure, seed=seed, retry_attempts=retry_attempts, retry_on=retry_on
    )

    def compute() -> dict:
        raw = ParallelExecutor(workers=workers).map(task, range(reps), policy=policy)
        return _collect(raw)

    # The journal kind and key shape are inherited from repeat_mean():
    # an object-backend batch is the same computation it always was, so
    # journals written before this API existed still replay.
    journal = _journal.active()
    description = _journal.describe_task(task) if journal is not None else None
    if journal is not None and description is not None:
        return journal.point(
            "repeat_mean", {"task": description, "repetitions": int(reps)}, compute
        )
    return compute()


# ---------------------------------------------------------------------------
# The entry point
# ---------------------------------------------------------------------------


def _finish_batch(
    data: dict, requested: str, chosen: str, reason: str | None, seed: int, reps: int
) -> BatchResult:
    """Mask, stamp and wrap one batch's raw data into a :class:`BatchResult`."""
    # Defensive re-mask for values replayed from pre-fix journals.
    values: list[float] = []
    quarantined = [
        Quarantined(index=int(q["index"]), reason=str(q["reason"]), failures=int(q["failures"]))
        for q in data["quarantined"]
    ]
    for v in data["values"]:
        v = float(v)
        if np.isfinite(v):
            values.append(v)
        else:
            quarantined.append(
                Quarantined(index=-1, reason="non-finite measurement", failures=1)
            )

    ctx = _obs.current()
    manifest = None
    if ctx is not None:
        manifest = RunManifest.stamp(
            experiment="simulate",
            seed=int(seed),
            metrics=ctx.snapshot(),
            trace_id=ctx.tracer.trace_id,
            extra={"backend": chosen, "requested_backend": requested, "reps": int(reps)},
        )
    return BatchResult(
        values=tuple(values),
        quarantined=tuple(quarantined),
        requested_backend=requested,
        backend=chosen,
        fallback_reason=reason,
        seed=int(seed),
        reps=int(reps),
        manifest=manifest,
    )


def simulate(
    spec: SimSpec | Callable[[RandomStreams], float] | None = None,
    *,
    sweep: "list[SimSpec] | tuple[SimSpec, ...] | None" = None,
    reps: int = 3,
    seed: int = 0,
    backend: str | None = None,
    workers: int = 1,
    retry_attempts: int = 1,
    retry_on: type[BaseException] | tuple[type[BaseException], ...] = ReproError,
    policy: FailurePolicy | None = None,
):
    """Run *reps* independent replications of *spec* (or each sweep point).

    Parameters
    ----------
    spec:
        Either a declarative :class:`SimSpec` (runs on the requested
        backend) or a measure callable ``measure(streams) -> float``
        (opaque, always runs on the object backend).
    sweep:
        Instead of one *spec*, a list of :class:`SimSpec` points; the
        return value is then a ``list[BatchResult]`` in point order,
        each exactly what ``simulate(point, ...)`` returns. On the
        vector backend the points' replications become *lanes of a
        single ragged batch* (grouped by probe type and CPU
        discipline), so a whole figure sweep costs a handful of array
        passes instead of one batch per point. Points the vector
        engine cannot cover fall back per point; setting
        ``$REPRO_SIM_SWEEP=0`` disables the batching entirely
        (bit-identical values either way). Mutually exclusive with
        *spec*.
    reps:
        Replication count; replication *k* draws all randomness from
        ``RandomStreams(seed).fork(k)`` on both backends.
    backend:
        ``"vector"`` or ``"object"``; ``None`` consults
        ``$REPRO_SIM_BACKEND`` and then defaults to ``"vector"``.
        A vector request the engine cannot honor (opaque measure,
        unsupported discipline, unknown platform/probe) falls back to
        the object engine — counted on the ``simulate.fallback``
        metric (split by cause as ``simulate.fallback.<label>``) and
        recorded in :attr:`BatchResult.fallback_reason`.
    workers:
        Process-pool width. The vector backend splits the lane range
        into contiguous chunks; the object backend fans out single
        replications. Values are bit-identical at any width.
    retry_attempts / retry_on / policy:
        Object-backend replication retry and containment knobs, exactly
        as :func:`~repro.experiments.runner.repeat_mean` took them.
        The vector backend runs to completion in one pass and ignores
        them (a quarantined lane surfaces as a quarantined
        replication, not a retry).
    """
    if (spec is None) == (sweep is None):
        raise ValueError("simulate() takes exactly one of spec= or sweep=")
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps!r}")
    if sweep is not None:
        return _simulate_sweep(
            list(sweep),
            reps=reps,
            seed=seed,
            backend=backend,
            workers=workers,
            retry_attempts=retry_attempts,
            retry_on=retry_on,
            policy=policy,
        )
    requested = resolve_backend(backend)
    chosen, reason = requested, None

    if isinstance(spec, SimSpec):
        measure: Callable[[RandomStreams], float] = _SpecMeasure(spec)
        if requested == "vector":
            contenders, probe, reason = _vector_workload(spec)
            if reason is None:
                reason = _vector.unsupported_reason(spec.platform, contenders, probe)
            if reason is not None:
                chosen = "object"
    else:
        measure = spec
        if requested == "vector":
            chosen = "object"
            reason = "opaque measure callable (vector backend needs a SimSpec)"

    if chosen != requested:
        _count_fallback(reason)

    if chosen == "vector":
        data = _vector_batch(spec, reps=reps, seed=seed, workers=workers)
    else:
        data = _object_batch(
            measure,
            reps=reps,
            seed=seed,
            retry_attempts=retry_attempts,
            retry_on=retry_on,
            workers=workers,
            policy=policy,
        )
    return _finish_batch(data, requested, chosen, reason, seed, reps)


def _simulate_sweep(
    points: list,
    *,
    reps: int,
    seed: int,
    backend: str | None,
    workers: int,
    retry_attempts: int,
    retry_on,
    policy: FailurePolicy | None,
) -> list[BatchResult]:
    """Sweep-level lanes: every point's replications in shared batches.

    Vector-eligible points are grouped by ``(probe type, discipline)``
    — the uniformity :func:`repro.sim.vector.run_sweep` needs — and
    each group runs as one ragged batch of ``points × reps`` lanes.
    Because lanes are bitwise independent and lane *k* of a point seeds
    itself from ``(seed, k)`` alone, every point's values are identical
    to a standalone ``simulate(point, ...)`` call; journal keys are the
    per-point keys, so sweep-batched and per-point runs replay each
    other's journals.
    """

    def per_point(sp) -> BatchResult:
        return simulate(
            sp,
            reps=reps,
            seed=seed,
            backend=backend,
            workers=workers,
            retry_attempts=retry_attempts,
            retry_on=retry_on,
            policy=policy,
        )

    requested = resolve_backend(backend)
    if requested != "vector" or os.environ.get(SWEEP_ENV, "").strip() == "0":
        return [per_point(sp) for sp in points]

    results: list[BatchResult | None] = [None] * len(points)
    eligible: list[int] = []
    for i, sp in enumerate(points):
        if isinstance(sp, SimSpec):
            contenders, probe, reason = _vector_workload(sp)
            if reason is None:
                reason = _vector.unsupported_reason(sp.platform, contenders, probe)
            if reason is None:
                eligible.append(i)
                continue
        # Uncovered point: the scalar path handles fallback counting,
        # journaling and manifests exactly as a standalone call would.
        results[i] = per_point(sp)

    # Journal peek: replay completed points, batch only the misses.
    journal = _journal.active()
    data: dict[int, dict] = {}
    keyed: dict[int, tuple[str, dict]] = {}
    misses: list[int] = []
    for i in eligible:
        if journal is not None:
            description = _journal.describe_task(points[i])
            if description is not None:
                params = {
                    "spec": description,
                    "backend": "vector",
                    "reps": int(reps),
                    "seed": int(seed),
                }
                key = _journal.point_key("simulate", params)
                keyed[i] = (key, params)
                found, value = journal.lookup(key)
                if found:
                    journal.hits += 1
                    _obs.inc("journal.hits")
                    data[i] = value
                    continue
        misses.append(i)

    groups: dict[tuple, list[int]] = {}
    for i in misses:
        sp = points[i]
        groups.setdefault(
            (type(sp.probe).__name__, sp.platform.cpu.discipline), []
        ).append(i)

    for group in groups.values():
        task = _SweepLaneChunk(
            specs=tuple(points[i] for i in group), seed=int(seed), reps=int(reps)
        )
        total = len(group) * reps
        width = max(1, min(int(workers), total))
        size = -(-total // width)
        bounds = [(s, min(s + size, total)) for s in range(0, total, size)]
        with _obs.span(
            "simulate.sweep", kind="experiment", points=len(group), reps=reps
        ) as sp_:
            chunks = ParallelExecutor(workers=width).map(task, bounds)
            raw = [v for chunk in chunks for v in chunk]
            sp_.set("lanes", len(raw))
        for j, i in enumerate(group):
            d = _collect(raw[j * reps : (j + 1) * reps])
            _obs.inc("experiment.replications", reps)
            if journal is not None and i in keyed:
                journal.misses += 1
                _obs.inc("journal.misses")
                key, params = keyed[i]
                d = journal.record(key, "simulate", params, d)
            data[i] = d

    for i in eligible:
        results[i] = _finish_batch(data[i], requested, "vector", None, seed, reps)
    return results
