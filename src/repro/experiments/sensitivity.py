"""Sensitivity of the model to its own assumptions.

The Poisson-binomial machinery of §3.2 assumes the contending
applications' phases are *independent* and that each application's
state mixes quickly relative to the measured task. Neither is given:

* :func:`cycle_length_sensitivity` — how does prediction error grow as
  the contenders' compute/communicate cycles get longer (slower
  mixing, so a run samples fewer independent overlap configurations)?
  The paper implicitly relies on "long period of time, alternating
  computation with communication cycles" (§2); this experiment
  quantifies the boundary.
* :func:`fraction_sensitivity` — error across the communication-
  fraction spectrum for a fixed workload, locating the regimes the
  paper flags (intensive communicators are the worst case).

Both are reproduction *extensions*: the paper states the assumptions,
we measure their price.
"""

from __future__ import annotations

from typing import Sequence

from ..core.commcost import dedicated_comm_cost
from ..core.datasets import DataSet
from ..core.slowdown import paragon_comm_slowdown
from ..core.workload import ApplicationProfile
from ..platforms.specs import DEFAULT_SUNPARAGON, SunParagonSpec
from ..sim.engine import Simulator
from .calibrate import calibrate_paragon
from .report import ExperimentResult, pct_error
from .simulate import BurstProbe, CyclicProbe, SimSpec, simulate

__all__ = ["cycle_length_sensitivity", "fraction_sensitivity", "forecast_experiment", "mixed_workload_experiment"]


def _burst_point(
    spec: SunParagonSpec,
    contenders: Sequence[ApplicationProfile],
    mean_cycle: float,
    size: int,
    count: int,
) -> SimSpec:
    """One sensitivity sweep point as a :func:`simulate` spec.

    Stream prefix ``"c"`` preserves the RNG stream names these sweeps
    have always used (``sunparagon/c0``, ``sunparagon/c1``, ...).
    """
    return SimSpec(
        platform=spec,
        probe=BurstProbe(size, count, "out"),
        contenders=tuple(contenders),
        mean_cycle=mean_cycle,
        stream_prefix="c",
    )


def cycle_length_sensitivity(
    spec: SunParagonSpec = DEFAULT_SUNPARAGON,
    cycles: Sequence[float] = (0.05, 0.1, 0.25, 0.5, 1.0, 2.0),
    size: int = 200,
    count: int = 800,
    repetitions: int = 4,
    seed: int = 77,
    quick: bool = False,
    workers: int = 1,
    backend: str | None = None,
) -> ExperimentResult:
    """Model error vs the contenders' mean cycle length.

    The analytical slowdown is cycle-length-agnostic (it only sees the
    long-run fractions); the simulated truth is not. Short cycles mix
    well and match the independence assumption; cycles comparable to
    the whole measured burst make the 'probability of overlap' framing
    itself shaky, and the run-to-run variance explodes.
    """
    if quick:
        cycles = tuple(cycles)[::3]
        count, repetitions = 300, 2
    cal = calibrate_paragon(spec)
    contenders = [
        ApplicationProfile("c40", 0.40, 200),
        ApplicationProfile("c70", 0.70, 200),
    ]
    slowdown = paragon_comm_slowdown(contenders, cal.delay_comp, cal.delay_comm)
    dcomm = dedicated_comm_cost([DataSet(count, float(size))], cal.params_out)
    model = dcomm * slowdown

    points = [_burst_point(spec, contenders, cycle, size, count) for cycle in cycles]
    reps_by_cycle = simulate(
        sweep=points, reps=repetitions, seed=seed, workers=workers, backend=backend
    )
    rows = []
    for cycle, rep in zip(cycles, reps_by_cycle):
        rows.append((cycle, rep.mean, rep.std, rep.cv, model, pct_error(rep.mean, model)))

    cvs = [row[3] for row in rows]
    return ExperimentResult(
        experiment="cycle_sensitivity",
        title="Model error vs contender cycle length (independence assumption)",
        headers=("mean cycle (s)", "actual", "std", "cv", "model", "err %"),
        rows=rows,
        metrics={
            "cv_shortest_cycle": cvs[0],
            "cv_longest_cycle": cvs[-1],
            "model_slowdown": slowdown,
        },
        paper_claim=(
            "applications execute for a long period of time, alternating computation "
            "with communication cycles (the regime where the probabilistic model holds)"
        ),
        notes="the model value is constant by construction; only the truth moves",
    )


def fraction_sensitivity(
    spec: SunParagonSpec = DEFAULT_SUNPARAGON,
    fractions: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    size: int = 200,
    count: int = 800,
    repetitions: int = 3,
    seed: int = 78,
    quick: bool = False,
    workers: int = 1,
    backend: str | None = None,
) -> ExperimentResult:
    """Model error vs one contender's communication fraction."""
    if quick:
        fractions = tuple(fractions)[::2]
        count, repetitions = 300, 2
    cal = calibrate_paragon(spec)
    points = [
        _burst_point(spec, [ApplicationProfile("c", fraction, 200)], 0.25, size, count)
        for fraction in fractions
    ]
    reps_by_fraction = simulate(
        sweep=points, reps=repetitions, seed=seed, workers=workers, backend=backend
    )
    rows, errs = [], []
    for fraction, rep in zip(fractions, reps_by_fraction):
        contenders = [ApplicationProfile("c", fraction, 200)]
        slowdown = paragon_comm_slowdown(contenders, cal.delay_comp, cal.delay_comm)
        dcomm = dedicated_comm_cost([DataSet(count, float(size))], cal.params_out)
        model = dcomm * slowdown
        err = pct_error(rep.mean, model)
        errs.append(abs(err))
        rows.append((fraction, rep.mean, model, err))
    return ExperimentResult(
        experiment="fraction_sensitivity",
        title="Model error vs contender communication fraction",
        headers=("comm fraction", "actual", "model", "err %"),
        rows=rows,
        metrics={"mean_abs_err_pct": sum(errs) / len(errs), "max_abs_err_pct": max(errs)},
        paper_claim="worst errors when competing applications communicate intensively",
    )


def forecast_experiment(
    spec: SunParagonSpec = DEFAULT_SUNPARAGON,
    horizon: float = 120.0,
    sample_interval: float = 1.0,
    seed: int = 91,
    quick: bool = False,
) -> ExperimentResult:
    """Forecasting the front-end's availability (the NWS direction).

    Simulates a Sun whose job mix churns (applications arrive and
    depart stochastically), samples the CPU's availability to a new
    task at a fixed interval, and scores one-step-ahead forecasters on
    the recorded series. The adaptive forecaster should track the best
    single predictor -- the property that made the Network Weather
    Service practical.
    """
    from ..ext.forecast import (
        AdaptiveForecaster,
        ExponentialSmoothing,
        LastValue,
        MedianWindow,
        RunningMean,
        SlidingWindowMean,
        forecast_series,
    )
    from ..platforms.sunparagon import SunParagonPlatform
    from ..sim.rng import RandomStreams

    if quick:
        horizon = min(horizon, 30.0)
    sim = Simulator()
    platform = SunParagonPlatform(sim, spec=spec, streams=RandomStreams(seed))
    rng = platform.rng("churn")

    def churn():
        """Applications arrive, compute for a random while, leave."""
        while True:
            yield sim.timeout(float(rng.exponential(4.0)))
            duration = float(rng.exponential(6.0))

            def job(end=sim.now + duration):
                while sim.now < end:
                    yield platform.frontend_cpu.execute(0.05, tag="churn")

            sim.process(job(), daemon=True)

    sim.process(churn(), daemon=True)

    samples: list[float] = []

    def sampler():
        while True:
            yield sim.timeout(sample_interval)
            # Availability to a newcomer: 1 / (resident jobs + 1).
            samples.append(1.0 / (platform.frontend_cpu.load + 1))

    sim.process(sampler(), daemon=True)
    sim.run(until=horizon)

    forecasters = {
        "last value": LastValue(),
        "running mean": RunningMean(),
        "window mean(8)": SlidingWindowMean(8),
        "median(8)": MedianWindow(8),
        "exp smooth(0.3)": ExponentialSmoothing(0.3),
        "adaptive": AdaptiveForecaster(),
    }
    rows = []
    rmses = {}
    for name, forecaster in forecasters.items():
        _, rmse = forecast_series(samples, forecaster)
        rmses[name] = rmse
        rows.append((name, rmse))
    best_single = min(v for k, v in rmses.items() if k != "adaptive")
    return ExperimentResult(
        experiment="forecast",
        title=f"Forecasting front-end availability over {horizon:.0f}s of job churn",
        headers=("forecaster", "one-step RMSE"),
        rows=rows,
        metrics={
            "samples": float(len(samples)),
            "adaptive_rmse": rmses["adaptive"],
            "best_single_rmse": best_single,
            "adaptive_over_best": rmses["adaptive"] / best_single,
        },
        paper_claim=(
            "extension beyond the paper: the NWS-style forecasting layer the "
            "acknowledged collaborators built next"
        ),
    )


def mixed_workload_experiment(
    spec: SunParagonSpec = DEFAULT_SUNPARAGON,
    comm_shares: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8),
    total_comp: float = 2.0,
    message_size: int = 400,
    cycles: int = 40,
    repetitions: int = 3,
    seed: int = 55,
    quick: bool = False,
    workers: int = 1,
    backend: str | None = None,
) -> ExperimentResult:
    """Predictions for applications that alternate compute and comm (Section 2).

    The measured application is shaped like the paper's typical
    heterogeneous codes: *cycles* rounds of front-end computation
    followed by message exchanges with the back-end. The long-term
    prediction applies the computation slowdown to the compute share
    and the communication slowdown to the transfer share
    (:func:`repro.core.prediction.predict_mixed_time`); the sweep walks
    the probe's own communication share from pure compute to
    comm-heavy.
    """
    from ..core.prediction import predict_mixed_time
    from ..core.slowdown import paragon_comp_slowdown

    if quick:
        comm_shares = tuple(comm_shares)[::2]
        cycles, repetitions = 15, 2
    cal = calibrate_paragon(spec)
    contenders = [
        ApplicationProfile("c35", 0.35, 200),
        ApplicationProfile("c65", 0.65, 200),
    ]
    comp_slow = paragon_comp_slowdown(contenders, cal.delay_comm_sized)
    comm_slow = paragon_comm_slowdown(contenders, cal.delay_comp, cal.delay_comm)

    per_message_dedicated = cal.params_out.message_time(message_size)
    points, models_info = [], []
    for share in comm_shares:
        comp_per_cycle = total_comp * (1.0 - share) / cycles
        # Choose the per-cycle message count so the *dedicated* comm
        # time is `share` of the dedicated total.
        if share > 0:
            target_comm = total_comp * share
            messages_per_cycle = max(1, round(target_comm / (cycles * per_message_dedicated)))
        else:
            messages_per_cycle = 0
        n_messages = messages_per_cycle * cycles
        # Messages alternate directions; split the dcomm accordingly.
        n_out = (n_messages + 1) // 2
        n_in = n_messages // 2
        dcomm_out = dedicated_comm_cost([DataSet(n_out, float(message_size))], cal.params_out)
        dcomm_in = dedicated_comm_cost([DataSet(n_in, float(message_size))], cal.params_in)
        dcomp = comp_per_cycle * cycles
        model = predict_mixed_time(dcomp, dcomm_out, dcomm_in, comp_slow, comm_slow)
        models_info.append((share, dcomp + dcomm_out + dcomm_in, model))
        points.append(
            SimSpec(
                platform=spec,
                probe=CyclicProbe(cycles, comp_per_cycle, messages_per_cycle, float(message_size)),
                contenders=tuple(contenders),
                stream_prefix="c",
            )
        )
    reps_by_share = simulate(
        sweep=points, reps=repetitions, seed=seed, workers=workers, backend=backend
    )
    rows, errs = [], []
    for (share, dedicated, model), rep in zip(models_info, reps_by_share):
        err = pct_error(rep.mean, model)
        errs.append(abs(err))
        rows.append((share, dedicated, rep.mean, model, err))

    return ExperimentResult(
        experiment="mixed_workload",
        title="Alternating compute/communicate application vs the long-term model",
        headers=("comm share", "dedicated", "actual", "model", "err %"),
        rows=rows,
        metrics={
            "mean_abs_err_pct": sum(errs) / len(errs),
            "max_abs_err_pct": max(errs),
            "comp_slowdown": comp_slow,
            "comm_slowdown": comm_slow,
        },
        paper_claim=(
            "typical applications alternate computation with communication cycles; "
            "contention effects should be considered in the long term"
        ),
    )
