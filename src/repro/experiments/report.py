"""Result containers and ASCII rendering for the experiment harness.

Every table/figure driver returns an :class:`ExperimentResult`, which
knows how to render itself as the text table the paper's figure would
plot, and how to summarise model accuracy the way the paper quotes it
("our predictions were within an average error of X% of the actual
measurements").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..obs.manifest import RunManifest
from ..obs.serialize import jsonable, unjsonable

__all__ = [
    "ExperimentResult",
    "render_table",
    "mean_abs_pct_error",
    "max_abs_pct_error",
    "pct_error",
]


def pct_error(actual: float, predicted: float) -> float:
    """Signed relative error of *predicted* vs *actual*, in percent."""
    if actual == 0:
        return 0.0 if predicted == 0 else float("inf")
    return (predicted - actual) / actual * 100.0


def mean_abs_pct_error(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """Mean |relative error| in percent — the paper's accuracy metric."""
    a = np.asarray(actual, dtype=float)
    p = np.asarray(predicted, dtype=float)
    if a.shape != p.shape or a.size == 0:
        raise ValueError("actual and predicted must be congruent and non-empty")
    if np.any(a == 0):
        raise ValueError("actual values must be nonzero for relative error")
    return float(np.mean(np.abs((p - a) / a)) * 100.0)


def max_abs_pct_error(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """Maximum |relative error| in percent."""
    a = np.asarray(actual, dtype=float)
    p = np.asarray(predicted, dtype=float)
    if a.shape != p.shape or a.size == 0:
        raise ValueError("actual and predicted must be congruent and non-empty")
    if np.any(a == 0):
        raise ValueError("actual values must be nonzero for relative error")
    return float(np.max(np.abs((p - a) / a)) * 100.0)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        magnitude = abs(value)
        if magnitude != 0 and (magnitude >= 1e5 or magnitude < 1e-3):
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an ASCII table with right-aligned numeric columns."""
    str_rows = [[_format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.rjust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """One reproduced table/figure.

    Attributes
    ----------
    experiment:
        Short id, e.g. ``"fig5"`` or ``"tables1_4"``.
    title:
        Human-readable description (what the paper's caption says).
    headers:
        Column names of :attr:`rows`.
    rows:
        The data series the paper plots/tabulates.
    metrics:
        Named scalar summaries — typically mean/max absolute errors —
        in declaration order.
    paper_claim:
        What the paper reports for this experiment, for side-by-side
        comparison in EXPERIMENTS.md.
    notes:
        Anything a reader should know when comparing with the paper.
    manifest:
        Optional :class:`~repro.obs.manifest.RunManifest` provenance
        stamp (seed, platform, calibration, metric snapshot).
    """

    experiment: str
    title: str
    headers: tuple[str, ...]
    rows: list[tuple]
    metrics: dict[str, float] = field(default_factory=dict)
    paper_claim: str = ""
    notes: str = ""
    manifest: RunManifest | None = None

    def render(self) -> str:
        """Full text report: title, table, metrics, claim, notes."""
        parts = [f"== {self.experiment}: {self.title} =="]
        parts.append(render_table(self.headers, self.rows))
        if self.metrics:
            parts.append("")
            for name, value in self.metrics.items():
                parts.append(f"  {name}: {_format_cell(value)}")
        if self.paper_claim:
            parts.append(f"  paper: {self.paper_claim}")
        if self.notes:
            parts.append(f"  note: {self.notes}")
        return "\n".join(parts)

    def column(self, name: str) -> list:
        """Extract one column of :attr:`rows` by header name."""
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]

    def to_dict(self) -> dict:
        """Serialise through the :class:`~repro.obs.serialize.ToDict` protocol.

        Non-finite floats become the ``"nan"``/``"inf"``/``"-inf"``
        sentinels so :meth:`from_dict` reconstructs an equal result.
        """
        return {
            "experiment": self.experiment,
            "title": self.title,
            "headers": list(self.headers),
            "rows": jsonable(self.rows),
            "metrics": jsonable(self.metrics),
            "paper_claim": self.paper_claim,
            "notes": self.notes,
            "manifest": None if self.manifest is None else self.manifest.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ExperimentResult":
        manifest = payload.get("manifest")
        return cls(
            experiment=payload["experiment"],
            title=payload["title"],
            headers=tuple(payload["headers"]),
            rows=[tuple(unjsonable(cell) for cell in row) for row in payload["rows"]],
            metrics={k: unjsonable(v) for k, v in payload.get("metrics", {}).items()},
            paper_claim=payload.get("paper_claim", ""),
            notes=payload.get("notes", ""),
            manifest=None if manifest is None else RunManifest.from_dict(manifest),
        )
