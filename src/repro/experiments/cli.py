"""Command-line entry point: ``repro-experiments`` / ``python -m repro``.

Runs any (or all) of the reproduced tables and figures and prints their
text reports. ``--quick`` shrinks sweeps for smoke runs.
"""

from __future__ import annotations

import argparse
import contextlib
import inspect
import os
import sys
import time
from typing import Callable

from ..obs import MetricsRegistry, ObsContext, RunManifest, Tracer, observed
from ..obs import context as _obs
from .chaos import chaos_experiment
from .backend import (
    gang_experiment,
    mesh_contention_experiment,
    sequencer_queueing_experiment,
    tp_placement_experiment,
)
from .dispatch import library_dispatch_experiment
from .fleet import fleet_experiment
from .figures import (
    fig1_cm2_communication,
    fig2_interleaving,
    fig3_gauss_cm2,
    fig4_paragon_dedicated,
    fig5_paragon_comm_out,
    fig6_paragon_comm_in,
    fig7_sor_sun,
    fig8_sor_sun,
)
from .export import write_results
from .journal import RunJournal, journaled
from .plots import chart_result
from .sensitivity import (
    cycle_length_sensitivity,
    forecast_experiment,
    fraction_sensitivity,
    mixed_workload_experiment,
)
from .report import ExperimentResult
from .robustness import (
    robustness_paragon_comm,
    robustness_paragon_comp,
    saturation_sweep,
    synthetic_cm2_experiment,
)
from .tables import tables_experiment

__all__ = ["EXPERIMENTS", "run_experiment", "main"]

#: Registry of every runnable experiment. Each driver accepts ``quick``.
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "tables1_4": lambda quick=False: tables_experiment(),
    "fig1": fig1_cm2_communication,
    "fig2": fig2_interleaving,
    "fig3": fig3_gauss_cm2,
    "fig4": fig4_paragon_dedicated,
    "fig5": fig5_paragon_comm_out,
    "fig6": fig6_paragon_comm_in,
    "fig7": fig7_sor_sun,
    "fig8": fig8_sor_sun,
    "synthetic_cm2": synthetic_cm2_experiment,
    "robustness_comm": robustness_paragon_comm,
    "robustness_comp": robustness_paragon_comp,
    "saturation": saturation_sweep,
    "mesh": mesh_contention_experiment,
    "gang": gang_experiment,
    "dispatch": library_dispatch_experiment,
    "tp_placement": tp_placement_experiment,
    "sequencer": sequencer_queueing_experiment,
    "cycle_sensitivity": cycle_length_sensitivity,
    "fraction_sensitivity": fraction_sensitivity,
    "forecast": forecast_experiment,
    "mixed_workload": mixed_workload_experiment,
    "chaos": chaos_experiment,
    "fleet": fleet_experiment,
}


def _driver_kwargs(
    driver: Callable, quick: bool, workers: int, backend: str | None = None
) -> dict:
    """Build the kwargs a driver supports: always ``quick``, plus
    ``workers`` / ``backend`` only for drivers that declare them."""
    kwargs: dict = {"quick": quick}
    try:
        params = inspect.signature(driver).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtin drivers
        return kwargs
    if workers != 1 and "workers" in params:
        kwargs["workers"] = workers
    if backend is not None and "backend" in params:
        kwargs["backend"] = backend
    return kwargs


def run_experiment(
    name: str, quick: bool = False, workers: int = 1, backend: str | None = None
) -> ExperimentResult:
    """Run one experiment by registry name.

    Inside an observed run (the ``--trace`` flag) the driver executes
    under an ``experiment.<name>`` span, and any result the driver did
    not stamp itself gets a generic :class:`~repro.obs.RunManifest`
    carrying the run's metric snapshot and trace identity. *workers*
    fans replication sweeps out over a process pool for drivers that
    support it — values are bit-identical to the serial run (see
    ``docs/performance.md``). *backend* forwards the simulation
    backend choice (``"vector"``/``"object"``) to drivers whose sweeps
    go through :func:`repro.experiments.simulate.simulate`; ``None``
    leaves the default resolution ($REPRO_SIM_BACKEND, then vector
    with automatic object fallback) in charge.
    """
    try:
        driver = EXPERIMENTS[name]
    except KeyError:
        raise SystemExit(
            f"unknown experiment {name!r}; choose from: {', '.join(EXPERIMENTS)}"
        ) from None
    kwargs = _driver_kwargs(driver, quick, workers, backend)
    ctx = _obs.current()
    if ctx is None:
        return driver(**kwargs)
    with ctx.tracer.span(f"experiment.{name}", kind="experiment", quick=quick):
        result = driver(**kwargs)
    ctx.metrics.counter("experiment.runs").inc()
    if result.manifest is None:
        result.manifest = RunManifest.stamp(
            experiment=name,
            metrics=ctx.snapshot(),
            trace_id=ctx.tracer.trace_id,
            extra={"quick": quick},
        )
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the tables and figures of Figueira & Berman, 'Modeling the "
            "Effects of Contention on the Performance of Heterogeneous Applications' "
            "(HPDC 1996)."
        ),
    )
    parser.add_argument(
        "names",
        nargs="*",
        default=["all"],
        help="experiment ids (e.g. fig5 tables1_4), or 'all' (default)",
    )
    parser.add_argument("--quick", action="store_true", help="shrink sweeps for a fast smoke run")
    parser.add_argument("--chart", action="store_true", help="also render ASCII charts where available")
    parser.add_argument("--outdir", default=None, help="also write results as JSON/CSV to this directory")
    parser.add_argument("--summary", action="store_true", help="print a final paper-vs-measured summary table")
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="observe the run (spans + metrics) and write the trace as JSON-lines to PATH",
    )
    parser.add_argument(
        "--trace-seed",
        type=int,
        default=0,
        help="identity seed for deterministic span IDs (default 0)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "process-pool width for replication sweeps (default 1: serial; "
            "0 means one per CPU). Results are bit-identical at any width."
        ),
    )
    parser.add_argument(
        "--backend",
        choices=["vector", "object"],
        default=None,
        help=(
            "simulation backend for replication sweeps: 'vector' batches all "
            "replications through the struct-of-arrays engine (with automatic "
            "per-sweep fallback to 'object' for uncovered workloads), 'object' "
            "forces the reference engine. Default: $REPRO_SIM_BACKEND, else vector."
        ),
    )
    parser.add_argument(
        "--no-sweep-lanes",
        action="store_true",
        help=(
            "disable sweep-level lane batching on the vector backend: each "
            "sweep point runs as its own replication batch (sets "
            "$REPRO_SIM_SWEEP=0; values are bit-identical either way)"
        ),
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help=(
            "checkpoint completed sweep points to an append-only JSON-lines "
            "journal at PATH (truncates an existing file; see --resume)"
        ),
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help=(
            "resume from the journal at PATH: completed points are replayed "
            "bit-identically, only missing points are recomputed; new points "
            "are appended to the same file"
        ),
    )
    parser.add_argument(
        "--cal-cache",
        default=None,
        metavar="DIR",
        help=(
            "persist calibration results as JSON under DIR and reuse them "
            "across processes (also settable via $REPRO_CAL_CACHE)"
        ),
    )
    parser.add_argument(
        "--clear-cal-cache",
        action="store_true",
        help="delete all entries in the calibration cache dir before running",
    )
    args = parser.parse_args(argv)

    if args.no_sweep_lanes:
        from .simulate import SWEEP_ENV

        os.environ[SWEEP_ENV] = "0"

    from . import calcache

    if args.cal_cache:
        calcache.set_cache_dir(args.cal_cache)
    if args.clear_cal_cache:
        removed = calcache.clear_cache()
        print(f"cleared {removed} calibration cache entries")
    from ..parallel import default_workers

    workers = args.workers if args.workers > 0 else default_workers()

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0

    if args.journal and args.resume:
        raise SystemExit("--journal and --resume are mutually exclusive (resume appends to its own file)")
    journal = None
    if args.journal:
        journal = RunJournal(args.journal, resume=False)
    elif args.resume:
        journal = RunJournal(args.resume, resume=True)
        print(f"resuming from {args.resume}: {len(journal)} completed points loaded", end="")
        print(f" ({journal.skipped} corrupt lines skipped)" if journal.skipped else "")

    names = list(EXPERIMENTS) if args.names == ["all"] else args.names
    ctx = None
    if args.trace:
        ctx = ObsContext(
            tracer=Tracer(seed=args.trace_seed), metrics=MetricsRegistry()
        )
    results = []
    with observed(ctx) if ctx is not None else contextlib.nullcontext(), (
        journaled(journal) if journal is not None else contextlib.nullcontext()
    ):
        for name in names:
            t0 = time.perf_counter()
            result = run_experiment(
                name, quick=args.quick, workers=workers, backend=args.backend
            )
            elapsed = time.perf_counter() - t0
            results.append(result)
            print(result.render())
            if args.chart:
                chart = chart_result(result)
                if chart is not None:
                    print()
                    print(chart)
            print(f"  [{elapsed:.1f}s]")
            print()
    if journal is not None:
        print(
            f"journal {journal.path}: {journal.hits} points replayed, "
            f"{journal.misses} computed"
        )
        journal.close()
    if ctx is not None:
        count = ctx.tracer.write_jsonl(args.trace)
        print(f"wrote {count} spans to {args.trace}")
    if args.outdir:
        written = write_results(results, args.outdir)
        print(f"wrote {len(written)} files to {args.outdir}")
    if args.summary:
        print(render_summary(results))
    return 0


def render_summary(results: list[ExperimentResult]) -> str:
    """One row per experiment: headline metric vs the paper's claim."""
    from .report import render_table

    rows = []
    for result in results:
        if result.metrics:
            name, value = next(iter(result.metrics.items()))
            headline = f"{name} = {value:.4g}" if isinstance(value, float) else f"{name} = {value}"
        else:
            headline = "-"
        claim = result.paper_claim or "-"
        if len(claim) > 58:
            claim = claim[:55] + "..."
        rows.append((result.experiment, headline, claim))
    return "\n".join(
        [
            "",
            "=" * 72,
            "SUMMARY - paper vs measured",
            "=" * 72,
            render_table(("experiment", "headline metric", "paper"), rows),
        ]
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
