"""The system test suites: calibration of both platforms.

Everything the analytical model knows about a platform is produced
here, by running the paper's benchmark procedures *on the simulated
platform* — never by reading the ground-truth specs:

* :func:`calibrate_cm2` — the two-benchmark α/β procedure of §3.1.1;
* :func:`pingpong_sweep` + :func:`calibrate_paragon_comm` — ping-pong
  regression and threshold search of §3.2.1;
* :func:`measure_delay_comp` / :func:`measure_delay_comm` — the
  ``delay_comp^i`` / ``delay_comm^i`` tables of §3.2.1 (contention
  generators vs. the ping-pong benchmark);
* :func:`measure_delay_comm_sized` — the ``delay_comm^{i,j}`` tables
  of §3.2.2 (contention generators vs. a CPU-bound probe);
* :func:`calibrate_paragon` — the whole §3.2 suite bundled into a
  :class:`ParagonCalibration` (cached per spec: the paper stresses
  these are computed "just once for each platform").

All calibration runs are deterministic (always-on generators, no
random draws), mirroring the paper's repeatable benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING, Callable, Sequence

from ..apps.burst import message_burst
from ..apps.contender import continuous_comm, cpu_bound
from ..apps.pingpong import pingpong_burst, pingpong_burst_reverse
from ..apps.program import frontend_program
from ..core.calibration import (
    build_delay_table,
    build_sized_delay_table,
    estimate_cm2_params,
    fit_piecewise,
)
from ..core.params import (
    DelayTable,
    LinearCommParams,
    PiecewiseCommParams,
    SizedDelayTable,
)
from ..errors import CalibrationError, ProbeError
from ..obs import context as _obs
from ..platforms.specs import SunCM2Spec, SunParagonSpec
from ..platforms.suncm2 import SunCM2Platform
from ..platforms.sunparagon import SunParagonPlatform
from ..reliability.degrade import Confidence
from ..reliability.retry import retry_with_backoff
from ..sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..reliability.breaker import CircuitBreaker
    from ..reliability.faults import FaultInjector

__all__ = [
    "CM2Calibration",
    "ParagonCalibration",
    "DEFAULT_SWEEP_SIZES",
    "calibrate_cm2",
    "calibrate_paragon",
    "calibrate_paragon_resilient",
    "calibrate_paragon_comm",
    "pingpong_sweep",
    "measure_delay_comp",
    "measure_delay_comm",
    "measure_delay_comm_sized",
]

#: Message sizes (words) of the ping-pong sweep. Straddles the wire's
#: 1024-word buffer boundary so the piecewise fit has leverage on both
#: sides, like the paper's benchmark.
DEFAULT_SWEEP_SIZES: tuple[int, ...] = (1, 16, 64, 128, 256, 512, 768, 1024, 1536, 2048, 3072, 4096)

#: Burst length for calibration runs. Shorter than the paper's 1000 to
#: keep the suite fast; per-message dedicated times are deterministic
#: here, so burst length only needs to amortise the single ack.
_CAL_BURST = 200

#: Reference probe message size for the delay tables (see §3.2.1: one
#: table per platform; the paper notes the probe-size effect is
#: limited).
_PROBE_SIZE = 200

#: Dedicated CPU work (seconds) of the compute probe used for the
#: delay_comm^{i,j} tables.
_COMP_PROBE_WORK = 1.0

#: Retry budget for calibration probes under fault injection. Injected
#: probe failures are Bernoulli per attempt, so 5 attempts survive
#: failure rates well past the 10 % chaos-suite setting
#: (P[all fail] = rate^5).
_PROBE_ATTEMPTS = 5


def _run_probe(
    measure: Callable[[], float],
    label: str,
    injector: "FaultInjector | None",
    retry_attempts: int = _PROBE_ATTEMPTS,
    breaker: "CircuitBreaker | None" = None,
) -> float:
    """Run one calibration probe, injecting failures and retrying.

    With no injector (and no breaker) this is a plain call — zero
    overhead, zero random draws. With an injector, each attempt first
    consults
    :meth:`~repro.reliability.faults.FaultInjector.probe_fails`; an
    injected failure raises :class:`~repro.errors.ProbeError` and
    :func:`~repro.reliability.retry.retry_with_backoff` re-runs the
    probe (the measurement itself is deterministic, so a surviving
    attempt returns the exact dedicated/contended time). Exhausting the
    budget re-raises the last ``ProbeError``.

    A *breaker* guards every attempt: once it trips (persistent probe
    failure anywhere in the suite, or its deadline budget spent), this
    and all subsequent probes raise
    :class:`~repro.errors.CircuitOpenError` immediately instead of
    burning ``retry_attempts`` per probe — the caller falls through to
    the degradation chain at once.
    """
    with _obs.span("calibrate.probe", kind="calibration", label=label):
        _obs.inc("calibration.probes")
        if injector is None and breaker is None:
            return measure()

        def attempt() -> float:
            if injector is not None and injector.probe_fails(label):
                raise ProbeError(f"injected probe failure: {label}")
            return measure()

        return retry_with_backoff(
            attempt,
            attempts=retry_attempts,
            retry_on=ProbeError,
            seed=injector.plan.seed if injector is not None else 0,
            breaker=breaker,
        )


@dataclass(frozen=True)
class CM2Calibration:
    """§3.1.1 outputs: symmetric (α, β) pairs for the Sun/CM2 link."""

    params_out: LinearCommParams
    params_in: LinearCommParams


@dataclass(frozen=True)
class ParagonCalibration:
    """§3.2 outputs for one (spec, mode) pair."""

    mode: str
    params_out: PiecewiseCommParams
    params_in: PiecewiseCommParams
    delay_comp: DelayTable
    delay_comm: DelayTable
    delay_comm_sized: SizedDelayTable


# ---------------------------------------------------------------------------
# Sun/CM2 (§3.1.1)
# ---------------------------------------------------------------------------


def _cm2_transfer_time(spec: SunCM2Spec, size: float, count: int) -> float:
    """Dedicated elapsed time of a transfer on a fresh Sun/CM2."""
    sim = Simulator()
    platform = SunCM2Platform(sim, spec=spec)

    def bench():
        start = sim.now
        yield from platform.transfer(size, count, tag="cal")
        return sim.now - start

    proc = sim.process(bench(), name="cm2-cal")
    return sim.run_until(proc)


@lru_cache(maxsize=None)
def calibrate_cm2(
    spec: SunCM2Spec,
    bulk_words: float = 1e5,
    burst_messages: int = 2000,
) -> CM2Calibration:
    """Run both §3.1.1 benchmarks on the simulator and estimate (α, β).

    Benchmark 1 (run per direction): one ``bulk_words``-element array
    over, one word back — yields β. Benchmark 2: ``burst_messages``
    single-element arrays each way — yields α under the
    ``α_sun = α_cm2`` assumption.
    """
    bulk_out = _cm2_transfer_time(spec, bulk_words, 1) + _cm2_transfer_time(spec, 1, 1)
    # The reverse-direction bulk benchmark; physically identical on this
    # host-driven platform, but the procedure measures it independently.
    bulk_in = _cm2_transfer_time(spec, bulk_words, 1) + _cm2_transfer_time(spec, 1, 1)
    startup = 2 * _cm2_transfer_time(spec, 1, burst_messages)
    params_out, params_in = estimate_cm2_params(
        bulk_out, bulk_in, startup, bulk_words=bulk_words, burst_messages=burst_messages
    )
    return CM2Calibration(params_out=params_out, params_in=params_in)


# ---------------------------------------------------------------------------
# Sun/Paragon dedicated costs (§3.2.1)
# ---------------------------------------------------------------------------


def _dedicated_burst_time(
    spec: SunParagonSpec, size: float, count: int, direction: str, mode: str
) -> float:
    sim = Simulator()
    platform = SunParagonPlatform(sim, spec=spec)
    if direction == "out":
        probe = sim.process(
            pingpong_burst(platform, size, count, mode=mode), name="cal-pp"
        )
    else:
        probe = sim.process(
            pingpong_burst_reverse(platform, size, count, mode=mode), name="cal-pp"
        )
    return sim.run_until(probe)


def pingpong_sweep(
    spec: SunParagonSpec,
    sizes: Sequence[int] = DEFAULT_SWEEP_SIZES,
    count: int = _CAL_BURST,
    direction: str = "out",
    mode: str = "1hop",
    injector: "FaultInjector | None" = None,
    retry_attempts: int = _PROBE_ATTEMPTS,
    breaker: "CircuitBreaker | None" = None,
) -> dict[int, float]:
    """Per-message dedicated times over a size sweep.

    Returns ``{size: burst_time / count}`` — the regression inputs.
    The single 1-word ack is part of the measured burst, as in the
    paper's benchmark; with ``count`` messages per burst its influence
    is O(1/count). An *injector* makes each size probe fail with the
    plan's ``probe_failure_rate`` and retries it (see :func:`_run_probe`).
    """
    return {
        int(s): _run_probe(
            lambda s=s: _dedicated_burst_time(spec, s, count, direction, mode),
            f"pingpong/{direction}/{int(s)}",
            injector,
            retry_attempts,
            breaker,
        )
        / count
        for s in sizes
    }


def calibrate_paragon_comm(
    spec: SunParagonSpec,
    sizes: Sequence[int] = DEFAULT_SWEEP_SIZES,
    count: int = _CAL_BURST,
    mode: str = "1hop",
    injector: "FaultInjector | None" = None,
    retry_attempts: int = _PROBE_ATTEMPTS,
    breaker: "CircuitBreaker | None" = None,
) -> tuple[PiecewiseCommParams, PiecewiseCommParams]:
    """Fit the two-piece (α, β) models for both directions."""
    out_sweep = pingpong_sweep(
        spec, sizes, count, "out", mode, injector, retry_attempts, breaker
    )
    in_sweep = pingpong_sweep(
        spec, sizes, count, "in", mode, injector, retry_attempts, breaker
    )
    params_out = fit_piecewise(list(out_sweep), list(out_sweep.values()))
    params_in = fit_piecewise(list(in_sweep), list(in_sweep.values()))
    return params_out, params_in


# ---------------------------------------------------------------------------
# Sun/Paragon delay tables (§3.2.1, §3.2.2)
# ---------------------------------------------------------------------------


def _contended_pingpong_time(
    spec: SunParagonSpec,
    generators: int,
    generator_kind: str,
    generator_size: float,
    generator_direction: str,
    probe_size: float,
    count: int,
    mode: str,
) -> float:
    """Ping-pong burst time under *generators* always-on contenders."""
    sim = Simulator()
    platform = SunParagonPlatform(sim, spec=spec)
    for g in range(generators):
        if generator_kind == "cpu":
            platform.spawn(cpu_bound(platform, tag=f"gen{g}"), name=f"gen{g}")
        else:
            platform.spawn(
                continuous_comm(
                    platform, generator_size, generator_direction, tag=f"gen{g}", mode=mode
                ),
                name=f"gen{g}",
            )
    probe = sim.process(pingpong_burst(platform, probe_size, count, mode=mode), name="probe")
    return sim.run_until(probe)


def measure_delay_comp(
    spec: SunParagonSpec,
    p_max: int = 4,
    probe_size: float = _PROBE_SIZE,
    count: int = _CAL_BURST,
    mode: str = "1hop",
    injector: "FaultInjector | None" = None,
    retry_attempts: int = _PROBE_ATTEMPTS,
    breaker: "CircuitBreaker | None" = None,
) -> DelayTable:
    """``delay_comp^i``: compute-intensive generators vs. ping-pong."""
    dedicated = _run_probe(
        lambda: _contended_pingpong_time(spec, 0, "cpu", 0, "out", probe_size, count, mode),
        "delay_comp/0",
        injector,
        retry_attempts,
        breaker,
    )
    contended = [
        _run_probe(
            lambda i=i: _contended_pingpong_time(
                spec, i, "cpu", 0, "out", probe_size, count, mode
            ),
            f"delay_comp/{i}",
            injector,
            retry_attempts,
            breaker,
        )
        for i in range(1, p_max + 1)
    ]
    return build_delay_table(dedicated, contended, label="delay_comp")


def measure_delay_comm(
    spec: SunParagonSpec,
    p_max: int = 4,
    probe_size: float = _PROBE_SIZE,
    count: int = _CAL_BURST,
    mode: str = "1hop",
    generator_size: float = 1.0,
    injector: "FaultInjector | None" = None,
    retry_attempts: int = _PROBE_ATTEMPTS,
    breaker: "CircuitBreaker | None" = None,
) -> DelayTable:
    """``delay_comm^i``: communicating generators vs. ping-pong.

    Per the paper, the table entry for level *i* is the average of the
    delay imposed by *i* generators sending ``generator_size``-word
    messages Sun → Paragon and the delay imposed by *i* generators
    sending them Paragon → Sun (1-word messages in the paper's suite —
    the unmodelled generator-size effect is a known error source).
    """
    dedicated = _run_probe(
        lambda: _contended_pingpong_time(
            spec, 0, "comm", generator_size, "out", probe_size, count, mode
        ),
        "delay_comm/0",
        injector,
        retry_attempts,
        breaker,
    )
    contended = []
    for i in range(1, p_max + 1):
        t_out = _run_probe(
            lambda i=i: _contended_pingpong_time(
                spec, i, "comm", generator_size, "out", probe_size, count, mode
            ),
            f"delay_comm/{i}/out",
            injector,
            retry_attempts,
            breaker,
        )
        t_in = _run_probe(
            lambda i=i: _contended_pingpong_time(
                spec, i, "comm", generator_size, "in", probe_size, count, mode
            ),
            f"delay_comm/{i}/in",
            injector,
            retry_attempts,
            breaker,
        )
        contended.append(0.5 * (t_out + t_in))
    return build_delay_table(dedicated, contended, label="delay_comm")


def _contended_compute_time(
    spec: SunParagonSpec,
    generators: int,
    generator_size: float,
    generator_direction: str,
    work: float,
    mode: str,
) -> float:
    """CPU-probe elapsed time under always-communicating contenders."""
    sim = Simulator()
    platform = SunParagonPlatform(sim, spec=spec)
    for g in range(generators):
        platform.spawn(
            continuous_comm(
                platform, generator_size, generator_direction, tag=f"gen{g}", mode=mode
            ),
            name=f"gen{g}",
        )
    probe = sim.process(frontend_program(platform, work, tag="probe"), name="probe")
    return sim.run_until(probe)


def measure_delay_comm_sized(
    spec: SunParagonSpec,
    p_max: int = 4,
    j_values: Sequence[int] = (1, 500, 1000),
    work: float = _COMP_PROBE_WORK,
    mode: str = "1hop",
    injector: "FaultInjector | None" = None,
    retry_attempts: int = _PROBE_ATTEMPTS,
    breaker: "CircuitBreaker | None" = None,
) -> SizedDelayTable:
    """``delay_comm^{i,j}``: sized communicating generators vs. CPU probe.

    For each bucket *j* and level *i*, the entry averages the delays
    imposed on a CPU-bound application by *i* generators transferring
    *j*-word messages Sun → Paragon and Paragon → Sun (§3.2.2).
    """
    dedicated = _run_probe(
        lambda: _contended_compute_time(spec, 0, 1, "out", work, mode),
        "delay_comm_sized/0",
        injector,
        retry_attempts,
        breaker,
    )
    by_size: dict[int, list[float]] = {}
    for j in j_values:
        times = []
        for i in range(1, p_max + 1):
            t_out = _run_probe(
                lambda i=i, j=j: _contended_compute_time(spec, i, j, "out", work, mode),
                f"delay_comm_sized/{j}/{i}/out",
                injector,
                retry_attempts,
                breaker,
            )
            t_in = _run_probe(
                lambda i=i, j=j: _contended_compute_time(spec, i, j, "in", work, mode),
                f"delay_comm_sized/{j}/{i}/in",
                injector,
                retry_attempts,
                breaker,
            )
            times.append(0.5 * (t_out + t_in))
        by_size[int(j)] = times
    return build_sized_delay_table(dedicated, by_size, label="delay_comm_sized")


# ---------------------------------------------------------------------------
# Bundled suite
# ---------------------------------------------------------------------------


def _calibrate_paragon_suite(
    spec: SunParagonSpec,
    mode: str,
    p_max: int,
    sizes: tuple[int, ...],
    injector: "FaultInjector | None" = None,
    retry_attempts: int = _PROBE_ATTEMPTS,
    breaker: "CircuitBreaker | None" = None,
) -> ParagonCalibration:
    params_out, params_in = calibrate_paragon_comm(
        spec,
        sizes,
        mode=mode,
        injector=injector,
        retry_attempts=retry_attempts,
        breaker=breaker,
    )
    return ParagonCalibration(
        mode=mode,
        params_out=params_out,
        params_in=params_in,
        delay_comp=measure_delay_comp(
            spec,
            p_max=p_max,
            mode=mode,
            injector=injector,
            retry_attempts=retry_attempts,
            breaker=breaker,
        ),
        delay_comm=measure_delay_comm(
            spec,
            p_max=p_max,
            mode=mode,
            injector=injector,
            retry_attempts=retry_attempts,
            breaker=breaker,
        ),
        delay_comm_sized=measure_delay_comm_sized(
            spec,
            p_max=p_max,
            mode=mode,
            injector=injector,
            retry_attempts=retry_attempts,
            breaker=breaker,
        ),
    )


@lru_cache(maxsize=None)
def _calibrate_paragon_cached(
    spec: SunParagonSpec, mode: str, p_max: int, sizes: tuple[int, ...]
) -> ParagonCalibration:
    """In-memory layer over the on-disk layer over the real suite.

    When a cache directory is configured (see
    :mod:`repro.experiments.calcache`) the disk is consulted before
    running the benchmarks, and a fresh result is persisted for future
    processes; either way the ``lru_cache`` short-circuits repeats
    within this process. Disk traffic is observable via the
    ``calibration.cache.hit`` / ``calibration.cache.miss`` counters.
    """
    from . import calcache

    if calcache.cache_dir() is None:
        return _calibrate_paragon_suite(spec, mode, p_max, sizes)
    key = calcache.paragon_key(spec, mode, p_max, sizes)
    cached = calcache.load_paragon(key)
    if cached is not None:
        _obs.inc("calibration.cache.hit")
        return cached
    _obs.inc("calibration.cache.miss")
    cal = _calibrate_paragon_suite(spec, mode, p_max, sizes)
    calcache.store_paragon(key, cal)
    return cal


def calibrate_paragon(
    spec: SunParagonSpec,
    mode: str = "1hop",
    p_max: int = 4,
    sizes: tuple[int, ...] = DEFAULT_SWEEP_SIZES,
    injector: "FaultInjector | None" = None,
    retry_attempts: int = _PROBE_ATTEMPTS,
    breaker: "CircuitBreaker | None" = None,
) -> ParagonCalibration:
    """Run the full §3.2 calibration suite once for (spec, mode).

    Fault-free calls are cached per ``(spec, mode, p_max, sizes)`` — the
    paper stresses the tables are computed "just once for each
    platform" — in memory always, and on disk too when a cache
    directory is configured (:mod:`repro.experiments.calcache`; enable
    via ``set_cache_dir``, ``REPRO_CAL_CACHE`` or the CLI's
    ``--cal-cache``). Calls with an *injector* bypass both caches: an
    injector is
    stateful (its RNG streams and counters advance per probe), so its
    runs are neither cacheable nor allowed to pollute the fault-free
    entries. Probe failures are retried per :func:`_run_probe`; because
    the underlying measurements are deterministic, a faulted calibration
    that converges is *identical* to the fault-free one.

    A *breaker* also bypasses both caches (it is stateful in the same
    way) and guards every probe of the suite: persistent failure trips
    it and the suite aborts with
    :class:`~repro.errors.CircuitOpenError` instead of retrying each
    remaining probe to exhaustion. Use
    :func:`calibrate_paragon_resilient` to turn that abort into a
    degraded-confidence fallback.
    """
    if injector is not None or breaker is not None:
        return _calibrate_paragon_suite(
            spec, mode, p_max, tuple(sizes), injector, retry_attempts, breaker
        )
    return _calibrate_paragon_cached(spec, mode, p_max, tuple(sizes))


def calibrate_paragon_resilient(
    spec: SunParagonSpec,
    mode: str = "1hop",
    p_max: int = 4,
    sizes: tuple[int, ...] = DEFAULT_SWEEP_SIZES,
    injector: "FaultInjector | None" = None,
    retry_attempts: int = _PROBE_ATTEMPTS,
    breaker: "CircuitBreaker | None" = None,
) -> tuple[ParagonCalibration | None, Confidence]:
    """Calibrate if possible; degrade to the analytic model if not.

    The crash-tolerant entry point for sweeps: a calibration that
    cannot complete — probes failing past the retry budget, the
    *breaker* tripping or running out of deadline budget, or the
    collected data being unusable — returns ``(None, ANALYTIC)``
    instead of raising, so the caller feeds
    ``SlowdownManager(None, None, None)`` and keeps answering from the
    analytic fallback chain. A completed suite returns
    ``(calibration, CALIBRATED)``.
    """
    try:
        cal = calibrate_paragon(
            spec,
            mode=mode,
            p_max=p_max,
            sizes=sizes,
            injector=injector,
            retry_attempts=retry_attempts,
            breaker=breaker,
        )
    except CalibrationError:
        # Covers ProbeError and CircuitOpenError (both subclasses): the
        # platform would not yield a full table set.
        _obs.inc("calibration.degraded")
        return None, Confidence.ANALYTIC
    return cal, Confidence.CALIBRATED
