"""repro — reproduction of Figueira & Berman (HPDC 1996).

*Modeling the Effects of Contention on the Performance of Heterogeneous
Applications*: a slowdown-factor model predicting computation and
communication costs on non-dedicated two-machine heterogeneous
platforms, validated against discrete-event simulations of the paper's
Sun/CM2 and Sun/Paragon testbeds.

Subpackages
-----------
``repro.core``
    The analytical contention model (the paper's contribution).
``repro.sim``
    The discrete-event simulation substrate.
``repro.platforms``
    Simulated Sun/CM2 and Sun/Paragon coupled platforms.
``repro.apps``
    Probes, benchmarks and emulated contention generators.
``repro.traces`` / ``repro.workloads``
    Instruction traces and the real SOR / Gaussian-elimination codes.
``repro.experiments``
    Calibration suites and drivers for every table and figure.
``repro.reliability``
    Fault injection, supervised execution and graceful degradation.
``repro.ext``
    The paper's future-work extensions (memory, I/O, time-varying
    load, migration, multi-machine platforms).
"""

from . import core, reliability, sim
from ._version import __version__
from .reliability import Confidence, FaultPlan, retry_with_backoff, supervise

__all__ = [
    "core",
    "reliability",
    "sim",
    "__version__",
    "Confidence",
    "FaultPlan",
    "retry_with_backoff",
    "supervise",
]
