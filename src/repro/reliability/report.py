"""Structured outcomes for supervised simulation runs.

A supervised run never escapes as a bare exception: it always yields a
:class:`FailureReport` that says *what* ended the run (completion, a
deadlock, an exhausted watchdog budget, an application error) together
with the simulator state needed to diagnose it — virtual time, events
processed, wall-clock seconds, the still-pending process names and the
event-queue size at the end.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from ..errors import DeadlockError, WatchdogError

__all__ = ["Outcome", "FailureReport"]


class Outcome(enum.Enum):
    """How a supervised run ended."""

    #: The run finished: queue drained (or the ``until`` horizon /
    #: awaited event was reached) with no live non-daemon process stuck.
    COMPLETED = "completed"
    #: Queue drained while non-daemon processes were still waiting.
    DEADLOCK = "deadlock"
    #: The host wall-clock budget was exhausted.
    WALLCLOCK_EXCEEDED = "wallclock_exceeded"
    #: The virtual-time budget was exhausted before completion.
    SIMTIME_EXCEEDED = "simtime_exceeded"
    #: The event budget was exhausted before completion.
    EVENT_BUDGET_EXCEEDED = "event_budget_exceeded"
    #: A process (or event callback) raised out of the simulation.
    ERROR = "error"


@dataclass(frozen=True)
class FailureReport:
    """The structured result of one supervised run.

    Attributes
    ----------
    outcome:
        Why the run ended.
    sim_time:
        Virtual time when the run ended.
    events_processed:
        Number of events stepped by this supervised run.
    wall_seconds:
        Host wall-clock seconds consumed.
    pending:
        Names of still-alive non-daemon processes (possibly truncated).
    pending_count:
        Total number of still-alive non-daemon processes.
    queue_size:
        Events left on the heap when the run ended.
    error:
        The exception that ended the run, for :attr:`Outcome.ERROR` and
        :attr:`Outcome.DEADLOCK` outcomes; None otherwise.
    """

    outcome: Outcome
    sim_time: float
    events_processed: int
    wall_seconds: float
    pending: tuple[str, ...] = ()
    pending_count: int = 0
    queue_size: int = 0
    error: BaseException | None = field(default=None, compare=False)

    @property
    def ok(self) -> bool:
        """True when the run completed normally."""
        return self.outcome is Outcome.COMPLETED

    def raise_if_failed(self) -> "FailureReport":
        """Re-raise a failed run's cause (or a WatchdogError); else self.

        * :attr:`Outcome.ERROR` / :attr:`Outcome.DEADLOCK` re-raise the
          original exception;
        * exhausted budgets raise :class:`~repro.errors.WatchdogError`
          carrying this report as ``report``;
        * :attr:`Outcome.COMPLETED` returns the report unchanged, so
          ``supervise(...).raise_if_failed()`` chains.
        """
        if self.ok:
            return self
        if self.error is not None:
            raise self.error
        exc = WatchdogError(self.describe())
        exc.report = self  # type: ignore[attr-defined]
        raise exc

    def describe(self) -> str:
        """One-line human-readable summary."""
        parts = [
            f"{self.outcome.value} at t={self.sim_time:g}",
            f"{self.events_processed} events",
            f"{self.wall_seconds:.3f}s wall",
        ]
        if self.pending_count:
            names = ", ".join(self.pending) or "?"
            parts.append(f"{self.pending_count} pending ({names})")
        if self.queue_size:
            parts.append(f"{self.queue_size} events queued")
        if self.error is not None and self.outcome is Outcome.ERROR:
            parts.append(f"error: {self.error!r}")
        return "; ".join(parts)

    def to_dict(self) -> dict:
        """Serialise through the :class:`~repro.obs.serialize.ToDict` protocol.

        The captured exception object cannot survive JSON; it is
        flattened to its ``repr``. Since :attr:`error` is excluded from
        equality, ``from_dict(to_dict())`` still reconstructs an equal
        report.
        """
        return {
            "outcome": self.outcome.value,
            "sim_time": self.sim_time,
            "events_processed": self.events_processed,
            "wall_seconds": self.wall_seconds,
            "pending": list(self.pending),
            "pending_count": self.pending_count,
            "queue_size": self.queue_size,
            "error": None if self.error is None else repr(self.error),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FailureReport":
        return cls(
            outcome=Outcome(payload["outcome"]),
            sim_time=float(payload["sim_time"]),
            events_processed=int(payload["events_processed"]),
            wall_seconds=float(payload["wall_seconds"]),
            pending=tuple(payload.get("pending", ())),
            pending_count=int(payload.get("pending_count", 0)),
            queue_size=int(payload.get("queue_size", 0)),
        )

    @classmethod
    def from_deadlock(
        cls, exc: DeadlockError, events_processed: int, wall_seconds: float
    ) -> "FailureReport":
        """Package a structured :class:`~repro.errors.DeadlockError`."""
        return cls(
            outcome=Outcome.DEADLOCK,
            sim_time=exc.sim_time,
            events_processed=events_processed,
            wall_seconds=wall_seconds,
            pending=exc.pending,
            pending_count=exc.pending_count,
            queue_size=exc.queue_size,
            error=exc,
        )
