"""Watchdog-supervised simulation runs.

:func:`supervise` is the resilient replacement for calling
:meth:`repro.sim.engine.Simulator.run` (or ``run_until``) directly: it
drives the event loop step by step under three watchdog budgets —

* **wall clock** (``max_wall_seconds``): the host-time budget, the only
  defense against a simulation that is *making progress* but will not
  finish in this lifetime;
* **virtual time** (``max_sim_time``): a deadline in simulated seconds,
  the classic "this burst should have finished by now" check;
* **events** (``max_events``): a budget on scheduler steps, which
  catches zero-delay livelock loops that burn events without advancing
  either clock;

— and never lets a failure escape as a bare exception. Every run ends
in a structured :class:`~repro.reliability.report.FailureReport`; call
:meth:`~repro.reliability.report.FailureReport.raise_if_failed` to
restore raise-on-failure semantics where that is the right interface.
"""

from __future__ import annotations

import time

from ..errors import DeadlockError
from ..obs import context as _obs
from ..sim.engine import Event, Simulator
from .report import FailureReport, Outcome

__all__ = ["supervise"]

#: How many events to process between wall-clock checks: a compromise
#: between watchdog latency and per-step overhead.
_WALL_CHECK_STRIDE = 128


def supervise(
    sim: Simulator,
    until: float | None = None,
    until_event: Event | None = None,
    max_events: int | None = None,
    max_wall_seconds: float | None = None,
    max_sim_time: float | None = None,
) -> FailureReport:
    """Run *sim* to completion under watchdog budgets; never raises.

    Parameters
    ----------
    sim:
        The simulator to drive.
    until:
        Optional virtual-time horizon; reaching it is a *success*
        (mirrors ``Simulator.run(until=...)``).
    until_event:
        Optional event to wait for; the run completes when it has been
        processed (mirrors ``Simulator.run_until``), tolerating
        non-terminating background processes. A failed event yields an
        :attr:`Outcome.ERROR` report carrying its exception.
    max_events:
        Event budget; exceeding it yields
        :attr:`Outcome.EVENT_BUDGET_EXCEEDED`.
    max_wall_seconds:
        Host wall-clock budget; exceeding it yields
        :attr:`Outcome.WALLCLOCK_EXCEEDED`.
    max_sim_time:
        Virtual-time budget; needing to advance past it yields
        :attr:`Outcome.SIMTIME_EXCEEDED`. Unlike *until*, exceeding
        this budget is a *failure*.

    Returns
    -------
    FailureReport
        Always — inspect ``report.ok`` / ``report.outcome``, or call
        ``report.raise_if_failed()`` for exception semantics.
    """
    with _obs.span("sim.supervise", kind="sim") as sp:
        result = _supervise_impl(sim, until, until_event, max_events, max_wall_seconds, max_sim_time)
        sp.set("outcome", result.outcome.name)
        sp.set("events", result.events_processed)
        sp.set("sim_time", result.sim_time)
    _obs.inc("supervise.runs")
    if not result.ok:
        _obs.inc("supervise.failures")
    return result


def _supervise_impl(
    sim: Simulator,
    until: float | None,
    until_event: Event | None,
    max_events: int | None,
    max_wall_seconds: float | None,
    max_sim_time: float | None,
) -> FailureReport:
    t_wall0 = time.monotonic()
    steps = 0

    def report(outcome: Outcome, error: BaseException | None = None) -> FailureReport:
        pending = sim.pending_processes()
        return FailureReport(
            outcome=outcome,
            sim_time=sim.now,
            events_processed=steps,
            wall_seconds=time.monotonic() - t_wall0,
            pending=tuple((p._name or "?") for p in pending[:5]),
            pending_count=len(pending),
            queue_size=len(sim._heap) + (sim._next is not None) + (sim._pend is not None),
            error=error,
        )

    if until is not None and until < sim.now:
        return report(
            Outcome.ERROR,
            ValueError(f"until={until!r} is in the past (now={sim.now!r})"),
        )

    while True:
        # Completion checks first, so already-satisfied goals cost nothing.
        if until_event is not None and until_event.processed:
            if not until_event.ok:
                return report(Outcome.ERROR, until_event.value)
            return report(Outcome.COMPLETED)
        if sim._pend is None and sim._next is None and not sim._heap:
            if until_event is not None:
                return report(
                    Outcome.DEADLOCK,
                    DeadlockError(
                        f"event queue empty before {until_event!r} fired",
                        sim_time=sim.now,
                        pending=sim.pending_names(),
                        pending_count=len(sim.pending_processes()),
                        queue_size=0,
                    ),
                )
            if until is not None:
                sim.now = until
            zombies = sim.pending_processes()
            if zombies and until is None:
                names = ", ".join(repr(p._name) for p in zombies[:5])
                return report(
                    Outcome.DEADLOCK,
                    DeadlockError(
                        f"event queue empty but {len(zombies)} process(es) still waiting: {names}",
                        sim_time=sim.now,
                        pending=tuple((p._name or "?") for p in zombies[:5]),
                        pending_count=len(zombies),
                        queue_size=0,
                    ),
                )
            return report(Outcome.COMPLETED)
        horizon = sim.peek()
        if until is not None and horizon > until:
            sim.now = until
            return report(Outcome.COMPLETED)
        if max_sim_time is not None and horizon > max_sim_time:
            return report(Outcome.SIMTIME_EXCEEDED)
        if max_events is not None and steps >= max_events:
            return report(Outcome.EVENT_BUDGET_EXCEEDED)
        if (
            max_wall_seconds is not None
            and steps % _WALL_CHECK_STRIDE == 0
            and time.monotonic() - t_wall0 > max_wall_seconds
        ):
            return report(Outcome.WALLCLOCK_EXCEEDED)
        try:
            sim.step()
        except BaseException as exc:  # noqa: BLE001 - package, don't propagate
            return report(Outcome.ERROR, exc)
        steps += 1
