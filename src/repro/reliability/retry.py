"""Retry with deterministic decorrelated-jitter backoff.

Calibration probes and Monte-Carlo replications are cheap to re-run and
their failures (injected or real) are transient, so the right response
to a failed measurement is a bounded retry — not a poisoned mean or an
aborted suite. :func:`retry_with_backoff` packages the policy:

* retries only library-level failures (``retry_on``, default
  :class:`~repro.errors.ReproError`) — programming errors propagate
  unchanged on the first raise;
* backoff delays follow *decorrelated jitter*
  (``delay = min(max_delay, U(base_delay, previous * multiplier))``),
  drawn from a seeded generator so a retry schedule is reproducible;
* after ``attempts`` total tries the **last** error is re-raised.

Inside the virtual-time world there is nothing to sleep through — the
probe rebuilds a fresh simulator — so the computed delays are reported
through ``on_retry`` (and applied via ``sleep`` when given) rather than
blocking the host by default.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, TypeVar

import numpy as np

from ..errors import CircuitOpenError, ReproError
from ..obs import context as _obs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (breaker imports obs)
    from .breaker import CircuitBreaker

__all__ = ["retry_with_backoff"]

T = TypeVar("T")


def retry_with_backoff(
    fn: Callable[[], T],
    attempts: int = 3,
    base_delay: float = 0.05,
    max_delay: float = 2.0,
    multiplier: float = 3.0,
    retry_on: type[BaseException] | tuple[type[BaseException], ...] = ReproError,
    rng: np.random.Generator | None = None,
    seed: int = 0,
    sleep: Callable[[float], Any] | None = None,
    on_retry: Callable[[int, float, BaseException], Any] | None = None,
    breaker: "CircuitBreaker | None" = None,
) -> T:
    """Call *fn* up to *attempts* times, backing off between failures.

    Parameters
    ----------
    fn:
        Zero-argument callable to (re)try.
    attempts:
        Total tries, ``>= 1``. With ``attempts=1`` this is a plain call.
    base_delay, max_delay, multiplier:
        Decorrelated-jitter parameters: the k-th backoff is drawn
        uniformly from ``[base_delay, previous * multiplier]`` and
        clamped to ``max_delay``.
    retry_on:
        Exception class(es) worth retrying. Anything else propagates
        immediately — a ``TypeError`` is a bug, not bad weather.
    rng:
        Generator for the jitter draws; defaults to a fresh
        ``default_rng(seed)`` so schedules are reproducible.
    seed:
        Seed for the default generator (ignored when *rng* is given).
    sleep:
        Optional callable receiving each delay (e.g. ``time.sleep`` for
        wall-clock probes). Default: the delay is computed and reported
        but not slept — virtual-time experiments have no wall clock.
    on_retry:
        Optional observer called as ``on_retry(attempt, delay, error)``
        after each failed attempt that will be retried (attempt is
        1-based).
    breaker:
        Optional :class:`~repro.reliability.breaker.CircuitBreaker`
        consulted before *every* attempt and told about each outcome.
        When the breaker rejects an attempt the remaining retry
        schedule is abandoned and
        :class:`~repro.errors.CircuitOpenError` is raised immediately —
        persistent failure should fall through to the degradation
        chain, not burn the full backoff budget per call site.

    Raises
    ------
    The last *retry_on* error once attempts are exhausted; any
    non-*retry_on* exception immediately;
    :class:`~repro.errors.CircuitOpenError` when *breaker* refuses an
    attempt.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts!r}")
    if base_delay < 0 or max_delay < base_delay:
        raise ValueError(
            f"need 0 <= base_delay <= max_delay, got {base_delay!r}, {max_delay!r}"
        )
    if multiplier < 1.0:
        raise ValueError(f"multiplier must be >= 1, got {multiplier!r}")
    generator = rng if rng is not None else np.random.default_rng(seed)
    delay = base_delay
    last_error: BaseException | None = None
    for attempt in range(1, attempts + 1):
        if breaker is not None and not breaker.allow():
            raise CircuitOpenError(
                f"circuit open, abandoning retry schedule at attempt "
                f"{attempt}/{attempts}"
            ) from last_error
        with _obs.span("retry.attempt", kind="retry", attempt=attempt, of=attempts) as sp:
            try:
                result = fn()
            except retry_on as exc:  # type: ignore[misc]
                sp.set("retried", True)
                _obs.inc("retry.failures")
                if breaker is not None:
                    breaker.record_failure()
                last_error = exc
            else:
                _obs.inc("retry.attempts")
                if breaker is not None:
                    breaker.record_success()
                return result
        _obs.inc("retry.attempts")
        if attempt == attempts:
            break
        delay = min(max_delay, float(generator.uniform(base_delay, max(base_delay, delay * multiplier))))
        if on_retry is not None:
            on_retry(attempt, delay, last_error)
        if sleep is not None:
            sleep(delay)
    assert last_error is not None
    raise last_error
