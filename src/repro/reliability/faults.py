"""Deterministic fault injection for the simulated platforms.

The paper's model is a *run-time* artifact: on a production system the
slowdown factor is recalculated as applications come and go, probes
fail, and load shifts under the measurement. The reproduction therefore
needs a way to manufacture exactly that weather — reproducibly. A
:class:`FaultPlan` describes *what* can go wrong and how often; a
:class:`FaultInjector` derives every perturbation from the plan's seed
through named :class:`~repro.sim.rng.RandomStreams`, so two runs with
the same plan produce bit-identical fault schedules.

Injection sites (each opt-in, each a no-op when its rate is zero):

* **wire** — per-fragment link degradation (occupancy × factor) and
  drop/retransmit faults (:meth:`FaultInjector.perturb_wire`, consumed
  by :class:`repro.sim.link.Link`);
* **cpu** — per-job stalls that inflate submitted work
  (:meth:`FaultInjector.perturb_cpu`, consumed by
  :class:`repro.sim.cpu.TimeSharedCPU`);
* **contenders** — crash/restart churn
  (:meth:`FaultInjector.crash_lifetime` /
  :meth:`FaultInjector.restart_pause`, consumed by
  :func:`repro.apps.contender.churned`);
* **probes** — calibration-probe failures
  (:meth:`FaultInjector.probe_fails`, consumed by
  :mod:`repro.experiments.calibrate` and retried with
  :func:`repro.reliability.retry.retry_with_backoff`).

A crucial invariant, load-bearing for reproducibility: **an inactive
site draws no random numbers.** A zero-rate plan therefore leaves every
simulation byte-for-byte identical to one run with no injector at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from ..errors import ModelError
from ..obs import context as _obs
from ..sim.rng import RandomStreams

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "LinkFaultModel",
    "CpuFaultModel",
    "NO_FAULTS",
]


class LinkFaultModel(Protocol):  # pragma: no cover - structural type
    """What :class:`repro.sim.link.Link` expects from its chaos hook."""

    def perturb_wire(self, size_words: float, hold: float) -> float: ...


class CpuFaultModel(Protocol):  # pragma: no cover - structural type
    """What :class:`repro.sim.cpu.TimeSharedCPU` expects from its hook."""

    def perturb_cpu(self, work: float) -> float: ...


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, seed-deterministic description of injected faults.

    Attributes
    ----------
    seed:
        Master seed for every fault draw; the whole schedule is a pure
        function of ``(plan, simulation)``.
    link_degrade_rate:
        Probability that one wire transfer is degraded.
    link_degrade_factor:
        Occupancy multiplier applied to a degraded transfer (>= 1).
    link_drop_rate:
        Probability that one wire transfer is dropped and must be
        retransmitted (each retransmission re-pays the occupancy and is
        itself subject to another drop, up to *max_retransmits*).
    max_retransmits:
        Cap on consecutive retransmissions of a single transfer.
    cpu_stall_rate:
        Probability that one submitted CPU job is stalled.
    cpu_stall_factor:
        Work multiplier applied to a stalled job (>= 1).
    crash_rate:
        Contender crash intensity (crashes per second of virtual time;
        a churned contender's lifetime is Exponential(1/crash_rate)).
    restart_delay:
        Mean pause (seconds) before a crashed contender restarts.
    probe_failure_rate:
        Probability that one calibration probe fails with
        :class:`~repro.errors.ProbeError` (and is retried).
    """

    seed: int = 0
    link_degrade_rate: float = 0.0
    link_degrade_factor: float = 2.0
    link_drop_rate: float = 0.0
    max_retransmits: int = 3
    cpu_stall_rate: float = 0.0
    cpu_stall_factor: float = 1.5
    crash_rate: float = 0.0
    restart_delay: float = 0.1
    probe_failure_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("link_degrade_rate", "link_drop_rate", "cpu_stall_rate", "probe_failure_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ModelError(f"{name} must be in [0, 1], got {value!r}")
        for name in ("link_degrade_factor", "cpu_stall_factor"):
            value = getattr(self, name)
            if value < 1.0:
                raise ModelError(f"{name} must be >= 1, got {value!r}")
        if self.crash_rate < 0:
            raise ModelError(f"crash_rate must be >= 0, got {self.crash_rate!r}")
        if self.restart_delay < 0:
            raise ModelError(f"restart_delay must be >= 0, got {self.restart_delay!r}")
        if self.max_retransmits < 0:
            raise ModelError(f"max_retransmits must be >= 0, got {self.max_retransmits!r}")
        if self.probe_failure_rate >= 1.0 and self.probe_failure_rate != 0.0:
            raise ModelError("probe_failure_rate of 1.0 can never converge; use < 1")

    @property
    def active(self) -> bool:
        """True when any fault site has a nonzero rate."""
        return (
            self.link_degrade_rate > 0
            or self.link_drop_rate > 0
            or self.cpu_stall_rate > 0
            or self.crash_rate > 0
            or self.probe_failure_rate > 0
        )

    @classmethod
    def uniform(cls, rate: float, seed: int = 0, crash_rate: float | None = None) -> "FaultPlan":
        """One-knob plan: every Bernoulli site fires with *rate*.

        The chaos experiment sweeps this knob. ``crash_rate`` defaults
        to ``rate`` crashes per virtual second.
        """
        return cls(
            seed=seed,
            link_degrade_rate=rate,
            link_drop_rate=rate,
            cpu_stall_rate=rate,
            crash_rate=rate if crash_rate is None else crash_rate,
            probe_failure_rate=rate,
        )


#: The do-nothing plan; an injector built from it perturbs nothing and
#: draws no random numbers.
NO_FAULTS = FaultPlan()


class FaultInjector:
    """Executes a :class:`FaultPlan` against the simulation layers.

    One injector holds one independent random stream per fault site
    (derived from ``plan.seed``), plus counters of everything it
    injected — the observability half of the chaos contract.

    Usage::

        injector = FaultInjector(FaultPlan.uniform(0.1, seed=7))
        injector.arm(platform)          # hook the link and the CPU
        platform.spawn(churned(platform, factory, injector), name="c0")

    ``arm`` is idempotent and cheap; un-armed platforms are untouched.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._streams = RandomStreams(seed=plan.seed)
        #: Per-site tallies of injected faults, e.g. ``{"wire_degrade": 3}``.
        self.injected: dict[str, int] = {}

    # -- bookkeeping -------------------------------------------------------

    def count(self, kind: str, increment: int = 1) -> None:
        """Tally *increment* injected faults of *kind*."""
        self.injected[kind] = self.injected.get(kind, 0) + increment
        _obs.inc(f"faults.{kind}", increment)

    @property
    def total_injected(self) -> int:
        """Total faults injected so far, across all sites."""
        return sum(self.injected.values())

    def _rng(self, site: str):
        return self._streams.get(f"faults/{site}")

    # -- wiring ------------------------------------------------------------

    def arm(self, platform) -> None:
        """Attach the wire and CPU hooks to *platform* (best effort).

        Works with any platform exposing ``link`` and/or
        ``frontend_cpu`` attributes; missing attributes are skipped so
        the same call services both testbeds.
        """
        link = getattr(platform, "link", None)
        if link is not None:
            link.faults = self
        cpu = getattr(platform, "frontend_cpu", None)
        if cpu is not None:
            cpu.faults = self

    # -- fault sites -------------------------------------------------------

    def perturb_wire(self, size_words: float, hold: float) -> float:
        """Degrade and/or drop one wire transfer; returns total occupancy."""
        plan = self.plan
        total = hold
        if plan.link_degrade_rate > 0 and self._rng("wire").random() < plan.link_degrade_rate:
            total *= plan.link_degrade_factor
            self.count("wire_degrade")
        if plan.link_drop_rate > 0:
            rng = self._rng("wire-drop")
            retransmits = 0
            while retransmits < plan.max_retransmits and rng.random() < plan.link_drop_rate:
                # The dropped copy occupied the wire too; pay it again.
                total += hold
                retransmits += 1
            if retransmits:
                self.count("wire_drop", retransmits)
        return total

    def perturb_cpu(self, work: float) -> float:
        """Stall one CPU job; returns the (possibly inflated) work."""
        plan = self.plan
        if plan.cpu_stall_rate > 0 and self._rng("cpu").random() < plan.cpu_stall_rate:
            self.count("cpu_stall")
            return work * plan.cpu_stall_factor
        return work

    def crash_lifetime(self) -> float | None:
        """Draw the next contender lifetime, or None when churn is off."""
        if self.plan.crash_rate <= 0:
            return None
        return float(self._rng("churn").exponential(1.0 / self.plan.crash_rate))

    def restart_pause(self) -> float:
        """Draw the pause before a crashed contender restarts."""
        if self.plan.restart_delay <= 0:
            return 0.0
        return float(self._rng("churn-restart").exponential(self.plan.restart_delay))

    def probe_fails(self, label: str = "probe") -> bool:
        """Decide whether one calibration probe run fails.

        Draws (and counts) only when the site is active, preserving the
        zero-rate reproducibility invariant.
        """
        if self.plan.probe_failure_rate <= 0:
            return False
        if self._rng("probe").random() < self.plan.probe_failure_rate:
            self.count(f"probe_failure:{label}")
            return True
        return False
