"""Graceful model degradation: confidence-tagged slowdown predictions.

The calibrated delay tables are the model's best information — and the
first thing a production system loses: a probe fails, the contention
level climbs past the calibrated range, a table was never measured for
this platform. The resilience contract is that predictions *degrade*
instead of raising, sliding down a fallback chain:

1. **CALIBRATED** — the measured delay-table entry (the paper's model
   exactly as published);
2. **EXTRAPOLATED** — a linear extension of the measured table beyond
   the calibrated contention range (stale/short tables);
3. **ANALYTIC** — the closed forms that need *no* calibration at all:
   the §3.1 equal-CPU-share law ``slowdown = p + 1`` for computation,
   and the linear FIFO-occupancy form ``1 + Σ f_k`` for communication.

Every degraded answer is tagged with a :class:`Confidence` so the
scheduler can rank placements knowing how much to trust each number,
and recorded in a :class:`DegradationLog` so operators can see the
model running on fumes.

This module deliberately imports nothing from :mod:`repro.core` — it is
the vocabulary both layers share, and the dependency must point from
core to here, never back.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "Confidence",
    "TaggedSlowdown",
    "DegradationLog",
    "combine_confidence",
    "analytic_comp_slowdown",
    "analytic_comm_slowdown",
]


class Confidence(enum.IntEnum):
    """How much calibration backs a prediction (higher is better).

    Ordered so that ``min()`` over the inputs of a composite prediction
    yields the composite's honest confidence.
    """

    #: Closed-form fallback; no calibrated data was used.
    ANALYTIC = 0
    #: Calibrated tables, linearly extended beyond their measured range.
    EXTRAPOLATED = 1
    #: Fully inside the calibrated tables.
    CALIBRATED = 2


def combine_confidence(*confidences: Confidence) -> Confidence:
    """The confidence of a value computed from several tagged inputs.

    A chain is as trustworthy as its weakest link: the minimum.
    An empty combination is CALIBRATED (nothing degraded anything).
    """
    return Confidence(min(confidences, default=Confidence.CALIBRATED))


@dataclass(frozen=True)
class TaggedSlowdown:
    """A slowdown factor together with the confidence of its provenance.

    ``value`` may be a scalar or an array of slowdowns sharing one
    provenance — :func:`repro.core.batch.placement_grid` accepts either
    — so validation goes through :func:`numpy.any` rather than a bare
    comparison (whose truth value is ambiguous for arrays).
    """

    value: float
    confidence: Confidence

    def __post_init__(self) -> None:
        if (np.asarray(self.value) < 1.0).any():
            raise ValueError(f"slowdown must be >= 1, got {self.value!r}")

    def __float__(self) -> float:
        return float(self.value)


class DegradationLog:
    """Counts every time a prediction fell off the calibrated path.

    One log per :class:`~repro.core.runtime.SlowdownManager` (or per
    service instance); ``total`` is the headline counter the chaos
    experiment reports.
    """

    def __init__(self) -> None:
        self._counts: dict[tuple[str, Confidence], int] = {}

    def record(self, source: str, level: Confidence) -> None:
        """Record one degraded answer from *source* at *level*."""
        key = (source, level)
        self._counts[key] = self._counts.get(key, 0) + 1

    @property
    def total(self) -> int:
        """Total degradation events recorded."""
        return sum(self._counts.values())

    def by_level(self) -> dict[Confidence, int]:
        """Degradation events aggregated per confidence level."""
        out: dict[Confidence, int] = {}
        for (_, level), n in self._counts.items():
            out[level] = out.get(level, 0) + n
        return out

    def by_source(self) -> dict[str, int]:
        """Degradation events aggregated per source label."""
        out: dict[str, int] = {}
        for (source, _), n in self._counts.items():
            out[source] = out.get(source, 0) + n
        return out

    def snapshot(self) -> dict[tuple[str, Confidence], int]:
        """Copy of the raw (source, level) → count table."""
        return dict(self._counts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DegradationLog):
            return NotImplemented
        return self._counts == other._counts

    def to_dict(self) -> dict:
        """Serialise through the :class:`~repro.obs.serialize.ToDict` protocol.

        Tuple keys cannot be JSON object keys, so the table flattens to
        sorted ``[source, level_name, count]`` triples.
        """
        return {
            "counts": [
                [source, level.name, n]
                for (source, level), n in sorted(
                    self._counts.items(), key=lambda kv: (kv[0][0], kv[0][1])
                )
            ]
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "DegradationLog":
        log = cls()
        for source, level_name, n in payload.get("counts", []):
            log._counts[(str(source), Confidence[level_name])] = int(n)
        return log


def analytic_comp_slowdown(p: int) -> float:
    """Calibration-free computation slowdown: ``p + 1`` (§3.1).

    The paper's equal-share law — CPU cycles split evenly among the
    ``p + 1`` resident processes — treats every contender as a full
    competitor, which makes this fallback deliberately pessimistic for
    mostly-communicating contenders.
    """
    if p < 0:
        raise ValueError(f"number of contenders must be >= 0, got {p!r}")
    return float(p + 1)


def analytic_comm_slowdown(comm_fractions: Iterable[float] | Sequence[float]) -> float:
    """Calibration-free communication slowdown: ``1 + Σ f_k``.

    Each contender occupies the shared wire/conversion path for its
    long-run communication fraction, and a FIFO medium serves one
    message at a time, so the expected number of active communicators
    is the linear first-order delay. Ignores the CPU-conversion
    coupling the calibrated ``delay_comp`` table captures, which makes
    this fallback deliberately optimistic — the chaos experiment
    quantifies the gap.
    """
    total = 1.0
    for k, f in enumerate(comm_fractions):
        if not 0.0 <= f <= 1.0:
            raise ValueError(f"comm_fractions[{k}] must be in [0, 1], got {f!r}")
        total += f
    return total
