"""Fault injection, supervised execution and graceful degradation.

The resilience layer of the reproduction, in three parts mirroring how
a run-time contention model survives a production machine:

* :mod:`~repro.reliability.faults` — :class:`FaultPlan` /
  :class:`FaultInjector`: deterministic, seeded chaos for the simulated
  platforms (link degradation and drops, CPU stalls, contender
  crash/restart churn, calibration-probe failures);
* :mod:`~repro.reliability.retry` / :mod:`~repro.reliability.supervise`
  — :func:`retry_with_backoff` for transient measurement failures and
  :func:`supervise` for watchdog-bounded simulation runs that end in a
  structured :class:`FailureReport` instead of a bare exception;
* :mod:`~repro.reliability.breaker` — :class:`CircuitBreaker`, the
  closed/open/half-open gate (with a total deadline budget) that stops
  persistently failing probes from burning the retry schedule per call;
* :mod:`~repro.reliability.degrade` — the :class:`Confidence`-tagged
  fallback chain (calibrated → extrapolated → analytic) that keeps the
  model answering when its tables are missing or stale.

``experiments/chaos.py`` sweeps fault rates through all three at once
and reports prediction error versus fault rate.
"""

from .breaker import CircuitBreaker
from .degrade import (
    Confidence,
    DegradationLog,
    TaggedSlowdown,
    analytic_comm_slowdown,
    analytic_comp_slowdown,
    combine_confidence,
)
from .faults import NO_FAULTS, FaultInjector, FaultPlan
from .report import FailureReport, Outcome
from .retry import retry_with_backoff
from .supervise import supervise

__all__ = [
    "CircuitBreaker",
    "Confidence",
    "DegradationLog",
    "TaggedSlowdown",
    "analytic_comm_slowdown",
    "analytic_comp_slowdown",
    "combine_confidence",
    "FaultInjector",
    "FaultPlan",
    "NO_FAULTS",
    "FailureReport",
    "Outcome",
    "retry_with_backoff",
    "supervise",
]
