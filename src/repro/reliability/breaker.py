"""Circuit breaker: fail fast once an operation fails persistently.

:func:`~repro.reliability.retry.retry_with_backoff` is the right answer
to *transient* failure — a probe that crashed once is cheap to re-run.
It is exactly the wrong answer to *persistent* failure: a calibration
suite runs dozens of probes, and when the platform is genuinely broken
each probe burns its full retry schedule before giving up, turning "the
model has lost its calibration" into a multiplied-out stall. The
breaker converts the second case into an immediate, typed rejection so
the caller can drop to the calibrated → extrapolated → analytic
fallback chain (:mod:`repro.reliability.degrade`) right away.

Classic three-state machine:

* **closed** — calls flow through; ``failure_threshold`` *consecutive*
  failures trip the breaker open (any success resets the count);
* **open** — calls are rejected with
  :class:`~repro.errors.CircuitOpenError` without being attempted,
  until ``recovery_time`` seconds have passed;
* **half-open** — after the recovery window, up to ``half_open_max``
  trial calls are let through: one success closes the breaker again,
  one failure re-opens it and restarts the window.

On top of the state machine sits a **deadline budget**: an optional
bound on the total wall-clock the breaker will allow attempts for,
measured from construction. Once the budget is spent the breaker is
permanently open (:attr:`CircuitBreaker.exhausted`) — the guard that
keeps a multi-hour sweep from spending its night re-probing a dead
platform, however often individual probes look transiently healthy.

The breaker is deliberately clock-injectable (``clock=``) so tests and
virtual-time callers can drive the recovery window deterministically.
"""

from __future__ import annotations

import time
from typing import Callable, TypeVar

from ..errors import CircuitOpenError
from ..obs import context as _obs

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

T = TypeVar("T")

#: State names reported by :attr:`CircuitBreaker.state`.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Closed/open/half-open failure gate with a total deadline budget.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures (while closed) that trip the breaker open.
    recovery_time:
        Seconds the breaker stays open before admitting trial calls.
    half_open_max:
        Trial calls admitted per half-open window before further calls
        are rejected again (pending the trials' outcome).
    budget:
        Optional total wall-clock budget in seconds, measured from
        construction. When it runs out the breaker opens permanently:
        :meth:`allow` is False forever and :attr:`exhausted` is True.
    clock:
        Monotonic time source (injectable for tests).

    The breaker is not thread-safe by design: each calibration suite or
    sweep owns one breaker in its own process, mirroring how the
    injector and caches are scoped.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        recovery_time: float = 30.0,
        half_open_max: int = 1,
        budget: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold!r}")
        if recovery_time < 0:
            raise ValueError(f"recovery_time must be >= 0, got {recovery_time!r}")
        if half_open_max < 1:
            raise ValueError(f"half_open_max must be >= 1, got {half_open_max!r}")
        if budget is not None and budget < 0:
            raise ValueError(f"budget must be >= 0, got {budget!r}")
        self.failure_threshold = int(failure_threshold)
        self.recovery_time = float(recovery_time)
        self.half_open_max = int(half_open_max)
        self.budget = None if budget is None else float(budget)
        self._clock = clock
        self._started = clock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._half_open_inflight = 0
        #: closed→open transitions (including half-open re-trips).
        self.trips = 0
        #: Calls rejected without being attempted.
        self.rejections = 0

    # -- state ---------------------------------------------------------------

    @property
    def exhausted(self) -> bool:
        """True once the deadline budget is spent — permanently open.

        The boundary is inclusive: a budget consumed *exactly* at a
        half-open probe counts as spent, so the probe's outcome cannot
        resurrect the breaker (see :meth:`record_success`).
        """
        return self.budget is not None and (self._clock() - self._started) >= self.budget

    @property
    def state(self) -> str:
        """Current state name, accounting for recovery-window expiry."""
        if self.exhausted:
            return OPEN
        if self._state == OPEN and (self._clock() - self._opened_at) >= self.recovery_time:
            return HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May the next call be attempted? (Counts a rejection if not.)

        Transitions OPEN → HALF_OPEN when the recovery window has
        elapsed, and reserves one of the half-open trial slots for the
        caller. Callers that get True **must** report the outcome via
        :meth:`record_success` / :meth:`record_failure` (or use
        :meth:`call`, which does both).
        """
        if self.exhausted:
            self.rejections += 1
            _obs.inc("breaker.rejections")
            return False
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN:
            if self._state == OPEN:
                # First admission of this recovery window.
                self._state = HALF_OPEN
                self._half_open_inflight = 0
                _obs.inc("breaker.half_open")
            if self._half_open_inflight < self.half_open_max:
                self._half_open_inflight += 1
                return True
        self.rejections += 1
        _obs.inc("breaker.rejections")
        return False

    def record_success(self) -> None:
        """Report one successful protected call.

        A no-op once the budget is exhausted: a probe admitted at
        ``t < budget`` whose success lands at ``t >= budget`` must not
        flip the permanently-open breaker back to CLOSED (or emit a
        ``breaker.closed`` increment the state never reflects).
        """
        if self.exhausted:
            return
        self._consecutive_failures = 0
        if self._state == HALF_OPEN:
            self._state = CLOSED
            self._half_open_inflight = 0
            _obs.inc("breaker.closed")

    def record_failure(self) -> None:
        """Report one failed protected call (may trip the breaker).

        A no-op once the budget is exhausted — the breaker is already
        permanently open; counting a trip here would double-book the
        terminal state.
        """
        if self.exhausted:
            return
        self._consecutive_failures += 1
        if self._state == HALF_OPEN or (
            self._state == CLOSED and self._consecutive_failures >= self.failure_threshold
        ):
            self._trip()

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._half_open_inflight = 0
        self.trips += 1
        _obs.inc("breaker.trips")

    # -- call wrapper --------------------------------------------------------

    def call(self, fn: Callable[[], T], label: str = "") -> T:
        """Run *fn* through the breaker.

        Raises
        ------
        CircuitOpenError
            Without calling *fn*, when the breaker is open (or its
            budget is exhausted).
        BaseException
            Whatever *fn* raises; the failure is recorded first.
        """
        if not self.allow():
            raise CircuitOpenError(
                f"circuit open{f' for {label}' if label else ''}: "
                f"{self._describe_rejection()}"
            )
        try:
            result = fn()
        except BaseException:
            self.record_failure()
            raise
        self.record_success()
        return result

    def _describe_rejection(self) -> str:
        if self.exhausted:
            return f"deadline budget of {self.budget:g}s exhausted"
        remaining = self.recovery_time - (self._clock() - self._opened_at)
        return (
            f"{self._consecutive_failures} consecutive failures, "
            f"retrying in {max(0.0, remaining):.3g}s"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker(state={self.state!r}, trips={self.trips}, "
            f"rejections={self.rejections}, exhausted={self.exhausted})"
        )
