"""The paper's slowdown factors.

Three formulas, one per (platform, resource) combination:

* **Sun/CM2, everything** (§3.1): CPU-bound contenders share the Sun's
  CPU round-robin, so computation *and* communication slow down by
  ``p + 1`` — :func:`cm2_slowdown`.

* **Sun/Paragon, communication** (§3.2.1): contenders delay a transfer
  both by stealing CPU (data-format conversion needs the CPU) and by
  occupying the link —

  .. math::

     slowdown = 1 + \\sum_{i=1}^{p} pcomp_i \\, delay_{comp}^{i}
                 + \\sum_{i=1}^{p} pcomm_i \\, delay_{comm}^{i}

  — :func:`paragon_comm_slowdown`.

* **Sun/Paragon, computation** (§3.2.2): computing contenders share the
  CPU evenly (the ``i`` term), communicating contenders impose the
  message-size-dependent ``delay_comm^{i,j}`` —

  .. math::

     slowdown = 1 + \\sum_{i=1}^{p} pcomp_i \\cdot i
                 + \\sum_{i=1}^{p} pcomm_i \\, delay_{comm}^{i,j}

  — :func:`paragon_comp_slowdown`.

All factors are ``>= 1`` and equal 1 in a dedicated system (p = 0).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ModelError
from .params import DelayTable, SizedDelayTable
from .probability import comm_comp_distributions
from .workload import ApplicationProfile, comm_fractions, max_message_size

__all__ = [
    "cm2_slowdown",
    "paragon_comm_slowdown",
    "paragon_comp_slowdown",
    "weighted_delay",
]


def cm2_slowdown(extra_processes: int) -> float:
    """``slowdown = p + 1`` for *p* extra CPU-bound processes (§3.1).

    CPU cycles on the Sun are split equally among same-priority
    processes, so with ``p`` extra CPU-bound competitors every task —
    and every element-by-element CM2 transfer, which is CPU-resident —
    runs ``p + 1`` times slower.

    Delegates to :func:`repro.core.batch.cm2_slowdowns` — the batch
    kernel is the single implementation of the formula.
    """
    p = int(extra_processes)
    if p < 0:
        raise ModelError(f"number of extra processes must be >= 0, got {extra_processes!r}")
    from .batch import cm2_slowdowns

    return float(cm2_slowdowns(p))


def weighted_delay(
    dist: np.ndarray, table: DelayTable, extrapolate: bool = False
) -> float:
    """``Σ_{i=1}^{p} dist[i] · delay^i`` — one summation term of §3.2.

    ``dist`` is an overlap distribution of length ``p + 1``; index 0
    (nobody active) contributes nothing.
    """
    total = 0.0
    for i in range(1, len(dist)):
        if dist[i] == 0.0:
            continue
        total += dist[i] * table.delay(i, extrapolate=extrapolate)
    return total


def paragon_comm_slowdown(
    contenders: Sequence[ApplicationProfile],
    delay_comp: DelayTable,
    delay_comm: DelayTable,
    extrapolate: bool = False,
) -> float:
    """Communication slowdown on the Sun/Paragon platform (§3.2.1).

    Parameters
    ----------
    contenders:
        Profiles of the *p* extra applications sharing the Sun.
    delay_comp:
        ``delay_comp^i`` — delay imposed on the ping-pong benchmark by
        *i* compute-intensive generators (calibrated per platform).
    delay_comm:
        ``delay_comm^i`` — delay imposed by *i* communicating
        generators (average of the two directions, calibrated per
        platform).
    extrapolate:
        Forwarded to :meth:`DelayTable.delay` for contention levels
        beyond the calibrated range.
    """
    if not contenders:
        return 1.0
    pcomm, pcomp = comm_comp_distributions(comm_fractions(contenders))
    return (
        1.0
        + weighted_delay(pcomp, delay_comp, extrapolate)
        + weighted_delay(pcomm, delay_comm, extrapolate)
    )


def paragon_comp_slowdown(
    contenders: Sequence[ApplicationProfile],
    delay_comm_sized: SizedDelayTable,
    j: float | None = None,
    force_bucket: int | None = None,
    extrapolate: bool = False,
) -> float:
    """Computation slowdown on the Sun/Paragon platform (§3.2.2).

    Parameters
    ----------
    contenders:
        Profiles of the *p* extra applications sharing the Sun.
    delay_comm_sized:
        ``delay_comm^{i,j}`` tables keyed by message-size bucket.
    j:
        Message size (words) used to pick the bucket. Defaults to the
        maximum message size among the contenders, the paper's
        recommendation. Ignored when *force_bucket* is given.
    force_bucket:
        Force a specific calibrated bucket (the Figure 7/8 experiments
        compare j = 1, 500 and 1000 explicitly).
    extrapolate:
        Forwarded to the delay-table lookups.
    """
    if not contenders:
        return 1.0
    pcomm, pcomp = comm_comp_distributions(comm_fractions(contenders))
    # First summation: computing contenders steal even CPU shares.
    cpu_term = sum(pcomp[i] * i for i in range(1, len(pcomp)))
    # Second summation: communicating contenders impose delay_comm^{i,j}.
    if force_bucket is not None:
        comm_term = sum(
            pcomm[i] * delay_comm_sized.delay_for_bucket(i, force_bucket, extrapolate)
            for i in range(1, len(pcomm))
            if pcomm[i] > 0.0
        )
    else:
        size = j if j is not None else max_message_size(contenders)
        comm_term = sum(
            pcomm[i] * delay_comm_sized.delay(i, size, extrapolate)
            for i in range(1, len(pcomm))
            if pcomm[i] > 0.0
        )
    return 1.0 + cpu_term + comm_term
