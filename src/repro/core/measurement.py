"""Deriving application profiles from observation.

§2: "We assume we know the set of all applications executing on the
system. ... This information may be provided by the users or obtained
from the resource management system." This module is that resource
management system: :class:`UsageMonitor` watches a platform's
accounting (per-tag CPU service, per-tag message counts and sizes)
over an observation window and turns each application's usage into the
:class:`~repro.core.workload.ApplicationProfile` the slowdown formulas
need — no user input required.

The communication fraction is computed in *dedicated-equivalent* terms
(how the application would split its time on an idle machine), which
is the quantity the model's `f_k` means: observed CPU service is the
computation side (minus the conversion service its own messages
consumed), and its messages' dedicated cost is the communication side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import ModelError
from .workload import ApplicationProfile

if TYPE_CHECKING:  # pragma: no cover - platform imports this module's package
    from ..platforms.sunparagon import SunParagonPlatform

__all__ = ["TagUsage", "UsageMonitor"]


@dataclass
class TagUsage:
    """Accumulated usage of one application tag inside a window."""

    cpu_service: float = 0.0
    messages: int = 0
    words: float = 0.0
    max_message_size: float = 0.0
    comm_dedicated: float = 0.0

    @property
    def mean_message_size(self) -> float:
        return self.words / self.messages if self.messages else 0.0


class UsageMonitor:
    """Observe a Sun/Paragon platform and estimate application profiles.

    Usage: construct, let the simulation run, call :meth:`snapshot` to
    close the window and read the profiles. The monitor relies on the
    platform's own accounting — per-tag CPU service from the
    time-shared CPU and per-tag message logs it hooks into the message
    path — i.e. exactly what a 1996 resource manager could see.

    Parameters
    ----------
    platform:
        The platform to observe. Message accounting starts at
        construction time (the platform is asked to log per-tag
        message sizes from then on).
    """

    def __init__(self, platform: "SunParagonPlatform") -> None:
        self.platform = platform
        self._t0 = platform.sim.now
        # Settle the fast-forward CPU's lazy accounting so the window
        # baseline matches what an event-stepped CPU would report.
        platform.frontend_cpu.sync()
        self._cpu0 = dict(platform.frontend_cpu.service_by_tag)
        self._messages0: dict[str, list[float]] = {
            tag: list(sizes) for tag, sizes in platform.message_log.items()
        }

    def window(self) -> float:
        """Length of the observation window so far."""
        return self.platform.sim.now - self._t0

    def usage(self) -> dict[str, TagUsage]:
        """Per-tag usage accumulated inside the window."""
        spec = self.platform.spec
        out: dict[str, TagUsage] = {}
        self.platform.frontend_cpu.sync()
        cpu_now = self.platform.frontend_cpu.service_by_tag
        for tag, total in cpu_now.items():
            usage = out.setdefault(tag, TagUsage())
            usage.cpu_service = total - self._cpu0.get(tag, 0.0)
        for tag, sizes in self.platform.message_log.items():
            before = len(self._messages0.get(tag, []))
            new_sizes = sizes[before:]
            if not new_sizes:
                continue
            usage = out.setdefault(tag, TagUsage())
            usage.messages = len(new_sizes)
            usage.words = float(sum(new_sizes))
            usage.max_message_size = max(new_sizes)
            usage.comm_dedicated = sum(
                spec.message_dedicated_time(s) for s in new_sizes
            )
        return out

    def profile(self, tag: str, name: str | None = None) -> ApplicationProfile:
        """Estimated :class:`ApplicationProfile` for one application tag.

        The computation side is the tag's CPU service minus the
        conversion work its own messages consumed (conversion belongs
        to communication in the model's dichotomy); the communication
        side is its messages' dedicated end-to-end cost.
        """
        usage = self.usage().get(tag)
        if usage is None or (usage.cpu_service == 0 and usage.messages == 0):
            raise ModelError(f"no observed activity for tag {tag!r}")
        spec = self.platform.spec
        conversion = 0.0
        for size in self.platform.message_log.get(tag, [])[
            len(self._messages0.get(tag, [])) :
        ]:
            for frag in spec.wire.fragment_sizes(size):
                conversion += spec.conversion_cpu_time(frag)
        comp = max(0.0, usage.cpu_service - conversion)
        comm = usage.comm_dedicated
        if comp + comm <= 0:
            raise ModelError(f"tag {tag!r} has zero dedicated-equivalent usage")
        return ApplicationProfile.from_costs(
            name or tag, comp, comm, message_size=usage.max_message_size
        )

    def snapshot(self, exclude: tuple[str, ...] = ("_os",)) -> list[ApplicationProfile]:
        """Profiles of every active tag (most active first).

        Tags in *exclude* (the OS daemon by default) are skipped, as
        are tags with negligible activity (< 0.1 % of the window).
        """
        window = self.window()
        if window <= 0:
            raise ModelError("observation window is empty")
        profiles = []
        for tag, usage in sorted(
            self.usage().items(), key=lambda kv: -(kv[1].cpu_service + kv[1].comm_dedicated)
        ):
            if tag in exclude:
                continue
            activity = usage.cpu_service + usage.comm_dedicated
            if activity < 1e-3 * window:
                continue
            profiles.append(self.profile(tag))
        return profiles
