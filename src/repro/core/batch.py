"""NumPy-vectorized kernels for the analytic contention model.

The paper's whole point is that slowdown-adjusted predictions are cheap
enough to drive scheduling decisions online. This module is the single
home of the model's arithmetic, written over arrays so a scheduler can
score thousands of candidates in one call:

* :func:`linear_message_times` / :func:`piecewise_message_times` — the
  §3.1.1 / §3.2.1 per-message cost curves over arrays of sizes (both
  regimes around the 1024-word threshold resolved in one
  :func:`numpy.where`);
* :func:`cm2_slowdowns` — the §3.1 ``p + 1`` factor over contention
  grids;
* :func:`frontend_times` / :func:`backend_times` / :func:`comm_costs` /
  :func:`mixed_times` — the §3.1.2 / §3.2.2 elapsed-time predictions,
  including ``max(dcomp + didle, dserial · slowdown)``;
* :func:`placement_grid` / :func:`decide_placement_batch` — Equation
  (1) over a whole candidate grid, returning array results or
  :class:`~repro.core.prediction.ConfidentPlacement` objects.

The scalar entry points (:mod:`repro.core.prediction`,
:meth:`repro.core.params.LinearCommParams.message_time`,
:func:`repro.core.slowdown.cm2_slowdown`,
:meth:`repro.platforms.specs.SunParagonSpec.message_dedicated_time`)
delegate here, so there is exactly one implementation of every formula;
the scalar and batch paths agree bit for bit because both run the same
IEEE-754 double operations in the same order.

Validation mirrors the scalar contracts: negative durations raise
:class:`ValueError` (like ``check_nonnegative``), negative message
sizes and sub-1 slowdowns raise :class:`~repro.errors.ModelError` (like
the parameter containers), while NaN/inf sentinels propagate through
the arithmetic untouched — exactly what the scalar guards do, since
``nan < 0`` is false.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from ..errors import ModelError
from ..reliability.degrade import Confidence, TaggedSlowdown, combine_confidence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .params import LinearCommParams, PiecewiseCommParams
    from .prediction import ConfidentPlacement

__all__ = [
    "linear_message_times",
    "piecewise_message_times",
    "message_times",
    "fragmented_message_times",
    "sequential_fold",
    "sequential_folds",
    "cm2_slowdowns",
    "frontend_times",
    "backend_times",
    "comm_costs",
    "mixed_times",
    "PlacementGrid",
    "placement_grid",
    "decide_placement_batch",
]

#: dtype of every kernel: plain IEEE-754 doubles, the same arithmetic
#: the scalar functions perform.
_F = np.float64


def _asarray(
    values: Any,
    name: str,
    *,
    nonnegative: bool = False,
    exc: type[Exception] = ValueError,
) -> np.ndarray:
    """Coerce to a float64 array, optionally rejecting negatives.

    NaN passes the negativity check (``nan < 0`` is false), matching
    the scalar ``check_nonnegative`` guard.
    """
    arr = np.asarray(values, dtype=_F)
    # (arr < 0).any() over np.any(arr < 0): the module-level wrapper's
    # dispatch costs more than the reduction on the small arrays the
    # fleet query path sends through here thousands of times a second.
    if nonnegative and (arr < 0).any():
        bad = arr[arr < 0].flat[0]
        raise exc(f"{name} must be >= 0, got {float(bad)!r}")
    return arr


def _sizes_array(values: Any) -> np.ndarray:
    """Message sizes: negative raises ModelError, as in ``params.py``."""
    return _asarray(values, "message size", nonnegative=True, exc=ModelError)


def _check_slowdowns(arr: np.ndarray, name: str = "slowdown") -> np.ndarray:
    """Every slowdown factor must be >= 1 (NaN sentinels pass through)."""
    if (arr < 1.0).any():
        bad = arr[arr < 1.0].flat[0]
        raise ModelError(f"{name} must be >= 1, got {float(bad)!r}")
    return arr


# ---------------------------------------------------------------------------
# Communication cost curves (§3.1.1, §3.2.1)
# ---------------------------------------------------------------------------


def linear_message_times(sizes: Any, params: "LinearCommParams") -> np.ndarray:
    """``α + size/β`` over an array of message sizes (§3.1.1)."""
    sizes = _sizes_array(sizes)
    return params.alpha + sizes / params.beta


def piecewise_message_times(sizes: Any, params: "PiecewiseCommParams") -> np.ndarray:
    """The two-piece §3.2.1 cost curve over an array of message sizes.

    Both regimes are evaluated over the whole array and the threshold
    selects per element in one :func:`numpy.where`; a NaN size falls in
    the large regime (``nan <= threshold`` is false), matching the
    scalar :meth:`~repro.core.params.PiecewiseCommParams.piece_for`.
    """
    sizes = _sizes_array(sizes)
    small = params.small.alpha + sizes / params.small.beta
    large = params.large.alpha + sizes / params.large.beta
    return np.where(sizes <= params.threshold, small, large)


def message_times(sizes: Any, params: Any) -> np.ndarray:
    """Dispatch on the parameterisation: linear or piecewise.

    Accepts either a :class:`~repro.core.params.LinearCommParams` or a
    :class:`~repro.core.params.PiecewiseCommParams` (anything carrying
    a ``threshold`` is treated as piecewise).
    """
    if hasattr(params, "threshold"):
        return piecewise_message_times(sizes, params)
    return linear_message_times(sizes, params)


def fragmented_message_times(
    sizes: Any,
    buffer_words: float,
    fixed_per_fragment: float,
    per_word: float,
) -> np.ndarray:
    """Ground-truth per-message time under transport fragmentation.

    A message larger than *buffer_words* is split into ``ceil(size /
    buffer)`` equal fragments (a message at or under the buffer is one
    fragment, even at size zero), each paying *fixed_per_fragment* plus
    its words at *per_word* — the physical origin of the piecewise
    §3.2.1 curve. The per-message total is ``count × per-fragment
    cost``. Negative sizes raise :class:`ValueError`, matching
    :meth:`~repro.platforms.specs.WireSpec.fragment_sizes`.
    """
    sizes = _asarray(sizes, "message size", nonnegative=True)
    counts = np.where(sizes <= buffer_words, 1.0, np.ceil(sizes / buffer_words))
    fragment = sizes / counts
    return counts * (fixed_per_fragment + fragment * per_word)


# ---------------------------------------------------------------------------
# Slowdown and elapsed-time kernels (§3.1, §3.1.2, §3.2.2)
# ---------------------------------------------------------------------------


def sequential_fold(values: np.ndarray, init: float = 0.0) -> float:
    """Strict left-to-right sum ``((init + v0) + v1) + …`` — bit-exact.

    ``np.sum`` uses pairwise summation, whose grouping differs from the
    scalar accumulation loops in :mod:`repro.core.slowdown` and
    :mod:`repro.reliability.degrade`; a cumulative sum, by contrast, is
    inherently sequential (every prefix is an output), so its final
    element reproduces the scalar fold bit for bit. The fleet's
    struct-of-arrays shard (:class:`repro.fleet.shard.ArrayShard`)
    leans on this to stay ``state_hash``/value-identical to the
    object-backed oracle while evaluating whole machine batches in C.
    """
    values = np.asarray(values, dtype=_F)
    if values.size == 0:
        return float(init)
    if values.size < 32:
        # Cheaper than a cumsum allocation at tiny sizes; identical
        # arithmetic by construction.
        total = float(init)
        for v in values:
            total += float(v)
        return total
    acc = np.empty(values.size + 1, dtype=_F)
    acc[0] = init
    acc[1:] = values
    return float(np.cumsum(acc)[-1])


def sequential_folds(segments: Any, init: float = 0.0) -> np.ndarray:
    """:func:`sequential_fold` over a ragged batch of segments.

    One result per segment — the batched form the fleet shard uses to
    re-derive every dirty machine's analytic ``1 + Σ f_k`` slowdown in
    a single call while preserving the per-machine accumulation order.
    """
    out = np.empty(len(segments), dtype=_F)
    for k, segment in enumerate(segments):
        out[k] = sequential_fold(segment, init)
    return out


def cm2_slowdowns(extra_processes: Any) -> np.ndarray:
    """``slowdown = p + 1`` over an array of contention levels (§3.1).

    Levels are taken as given (no truncation); the scalar
    :func:`~repro.core.slowdown.cm2_slowdown` coerces its argument to
    ``int`` before delegating here.
    """
    p = np.asarray(extra_processes, dtype=_F)
    if np.any(p < 0):
        bad = p[p < 0].flat[0]
        raise ModelError(f"number of extra processes must be >= 0, got {float(bad)!r}")
    return p + 1.0


def frontend_times(dcomp: Any, slowdowns: Any) -> np.ndarray:
    """``T_front = dcomp × slowdown`` broadcast over grids (§3.1.2)."""
    dcomp = _asarray(dcomp, "dcomp", nonnegative=True)
    slowdowns = _check_slowdowns(_asarray(slowdowns, "slowdown"))
    return dcomp * slowdowns


def backend_times(dcomp: Any, didle: Any, dserial: Any, slowdowns: Any) -> np.ndarray:
    """``T_back = max(dcomp + didle, dserial × slowdown)`` over grids (§3.1.2)."""
    dcomp = _asarray(dcomp, "dcomp", nonnegative=True)
    didle = _asarray(didle, "didle", nonnegative=True)
    dserial = _asarray(dserial, "dserial", nonnegative=True)
    slowdowns = _check_slowdowns(_asarray(slowdowns, "slowdown"))
    return np.maximum(dcomp + didle, dserial * slowdowns)


def comm_costs(dcomm: Any, slowdowns: Any) -> np.ndarray:
    """``C = dcomm × slowdown`` over grids (§3.1.1 / §3.2.1)."""
    dcomm = _asarray(dcomm, "dcomm", nonnegative=True)
    slowdowns = _check_slowdowns(_asarray(slowdowns, "slowdown"))
    return dcomm * slowdowns


def mixed_times(
    dcomp: Any,
    dcomm_out: Any,
    dcomm_in: Any,
    comp_slowdowns: Any,
    comm_slowdowns: Any,
) -> np.ndarray:
    """Vectorized :func:`~repro.core.prediction.predict_mixed_time`.

    ``T = dcomp · s_comp + (dcomm_out + dcomm_in) · s_comm`` with every
    input broadcast; evaluated in the same operation order as the
    scalar (frontend term, then the *summed* transfer term — only the
    sum is sign-checked, as in the scalar), so the two paths agree bit
    for bit.
    """
    dcomm_out = np.asarray(dcomm_out, dtype=_F)
    dcomm_in = np.asarray(dcomm_in, dtype=_F)
    return frontend_times(dcomp, comp_slowdowns) + comm_costs(
        dcomm_out + dcomm_in, comm_slowdowns
    )


# ---------------------------------------------------------------------------
# Equation (1) over candidate grids
# ---------------------------------------------------------------------------


def _split_batch_slowdown(
    slowdown: Any, tags: list[Confidence]
) -> np.ndarray | None:
    """Value array of one batch slowdown input, collecting its tag.

    Mirrors the scalar ``_split_slowdown``: a :class:`TaggedSlowdown`
    carries its own confidence, raw numbers/arrays are taken at face
    value (CALIBRATED), ``None`` passes through with no opinion.
    """
    if slowdown is None:
        return None
    if isinstance(slowdown, TaggedSlowdown):
        tags.append(slowdown.confidence)
        return np.asarray(slowdown.value, dtype=_F)
    tags.append(Confidence.CALIBRATED)
    return np.asarray(slowdown, dtype=_F)


@dataclass(frozen=True)
class PlacementGrid:
    """Array-backed Equation-(1) comparison for a whole candidate grid.

    The array analogue of
    :class:`~repro.core.prediction.PlacementPrediction`: every field is
    a broadcast-shaped :class:`numpy.ndarray` and the derived
    quantities use the same formulas as the scalar properties.
    ``confidence`` is shared by the whole grid — the minimum over the
    slowdown inputs that shaped it.
    """

    t_frontend: np.ndarray
    t_backend: np.ndarray
    c_out: np.ndarray
    c_in: np.ndarray
    confidence: Confidence

    @property
    def backend_total(self) -> np.ndarray:
        """Back-end elapsed time including both transfers."""
        return self.t_backend + self.c_out + self.c_in

    @property
    def offload(self) -> np.ndarray:
        """Equation (1) verdict per candidate (True → back-end wins)."""
        return self.t_frontend > self.backend_total

    @property
    def best_time(self) -> np.ndarray:
        """Predicted elapsed time of the better placement, per candidate."""
        return np.minimum(self.t_frontend, self.backend_total)

    @property
    def advantage(self) -> np.ndarray:
        """Time saved by the better placement, per candidate."""
        return np.abs(self.t_frontend - self.backend_total)

    @property
    def size(self) -> int:
        return int(self.t_frontend.size)

    def placements(self) -> "list[ConfidentPlacement]":
        """Materialise scalar :class:`ConfidentPlacement` objects.

        Flattens the grid C-order; each element drops into any call
        site that consumed a scalar ``decide_placement`` result.
        """
        from .prediction import ConfidentPlacement, PlacementPrediction

        conf = self.confidence
        return [
            ConfidentPlacement(
                prediction=PlacementPrediction(
                    t_frontend=tf, t_backend=tb, c_out=co, c_in=ci
                ),
                confidence=conf,
            )
            for tf, tb, co, ci in zip(
                self.t_frontend.ravel().tolist(),
                self.t_backend.ravel().tolist(),
                self.c_out.ravel().tolist(),
                self.c_in.ravel().tolist(),
            )
        ]


def placement_grid(
    dcomp_frontend: Any,
    backend_dcomp: Any,
    backend_didle: Any,
    backend_dserial: Any,
    dcomm_out: Any,
    dcomm_in: Any,
    comp_slowdown: Any,
    comm_slowdown: Any,
    backend_serial_slowdown: Any = None,
) -> PlacementGrid:
    """Score a whole candidate grid through Equation (1) in one call.

    Every argument broadcasts against the others (NumPy rules): fix the
    task's dedicated costs and sweep a slowdown grid, sweep task sizes
    under one contention level, or both at once. Slowdown inputs may be
    raw arrays/floats (CALIBRATED) or
    :class:`~repro.reliability.degrade.TaggedSlowdown` values (whose
    ``value`` may itself be an array); the grid's ``confidence`` is the
    weakest input's, exactly as in the scalar
    :func:`~repro.core.prediction.decide_placement`.
    """
    tags: list[Confidence] = []
    comp = _split_batch_slowdown(comp_slowdown, tags)
    comm = _split_batch_slowdown(comm_slowdown, tags)
    serial = _split_batch_slowdown(backend_serial_slowdown, tags)
    if comp is None or comm is None:
        raise ModelError("comp_slowdown and comm_slowdown are required")
    if serial is None:
        serial = comp
    return PlacementGrid(
        t_frontend=frontend_times(dcomp_frontend, comp),
        t_backend=backend_times(backend_dcomp, backend_didle, backend_dserial, serial),
        c_out=comm_costs(dcomm_out, comm),
        c_in=comm_costs(dcomm_in, comm),
        confidence=combine_confidence(*tags),
    )


def decide_placement_batch(
    dcomp_frontend: Any,
    backend_dcomp: Any,
    backend_didle: Any,
    backend_dserial: Any,
    dcomm_out: Any,
    dcomm_in: Any,
    comp_slowdown: Any,
    comm_slowdown: Any,
    backend_serial_slowdown: Any = None,
) -> "list[ConfidentPlacement]":
    """Batched :func:`~repro.core.prediction.decide_placement`.

    Broadcasts the inputs (see :func:`placement_grid`), scores the
    whole grid in vectorized arithmetic, and materialises one
    :class:`~repro.core.prediction.ConfidentPlacement` per candidate
    (flattened C-order). Each result is element-for-element identical
    to a scalar ``decide_placement`` call with the same inputs.

    One ``predict.placement_batch`` span covers the whole call and the
    ``prediction.placements`` counter advances by the grid size, so
    observed runs account batched and scalar scoring identically.
    """
    from ..obs import context as _obs

    with _obs.span("predict.placement_batch", kind="prediction") as sp:
        grid = placement_grid(
            dcomp_frontend,
            backend_dcomp,
            backend_didle,
            backend_dserial,
            dcomm_out,
            dcomm_in,
            comp_slowdown,
            comm_slowdown,
            backend_serial_slowdown,
        )
        results = grid.placements()
        sp.set("candidates", len(results))
        sp.set("offloads", int(np.count_nonzero(grid.offload)))
        sp.set("confidence", grid.confidence.name)
    _obs.inc("prediction.placements", len(results))
    return results
