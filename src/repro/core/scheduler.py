"""Contention-aware task-to-machine mapping.

The paper motivates the contention model with a scheduling example
(Tables 1–4): an application of coarse-grained tasks executing in
sequence, with a data transfer whenever consecutive tasks sit on
different machines. The best mapping flips as contention changes the
effective cost matrices.

This module provides that example's machinery in general form:

* :class:`MappingProblem` — non-dedicated execution-time and
  communication-time matrices for *k* tasks over *m* machines,
  with helpers that apply slowdown factors to dedicated matrices
  (producing exactly the paper's Tables 3/4 from Tables 1/2);
* :func:`evaluate_mapping` — elapsed time of one assignment under the
  paper's serial-chain execution model;
* :func:`best_mapping` — exhaustive search (machines^tasks candidates;
  the paper targets "a few coarse-grained tasks", so exhaustive
  enumeration is the honest algorithm) with an optional
  branch-and-bound cutoff for larger instances.
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..errors import ScheduleError
from ..obs import context as _obs
from ..reliability.degrade import Confidence, TaggedSlowdown, combine_confidence

__all__ = [
    "MappingProblem",
    "MappingResult",
    "ConfidentMapping",
    "evaluate_mapping",
    "best_mapping",
    "best_mapping_tagged",
    "rank_mappings",
]


@dataclass(frozen=True)
class MappingProblem:
    """A serial-chain mapping instance.

    Attributes
    ----------
    tasks:
        Task names, in execution (chain) order.
    machines:
        Machine names.
    exec_time:
        ``exec_time[task][machine]`` — predicted (already
        contention-adjusted) elapsed time of *task* on *machine*.
    comm_time:
        ``comm_time[(src_machine, dst_machine)]`` — predicted transfer
        time of the chain's data when consecutive tasks sit on
        ``src_machine`` then ``dst_machine``. Pairs with equal
        endpoints are free (same machine ⇒ no transfer); missing
        cross pairs are an error at evaluation time.
    """

    tasks: tuple[str, ...]
    machines: tuple[str, ...]
    exec_time: Mapping[str, Mapping[str, float]]
    comm_time: Mapping[tuple[str, str], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ScheduleError("a mapping problem needs at least one task")
        if not self.machines:
            raise ScheduleError("a mapping problem needs at least one machine")
        for task in self.tasks:
            row = self.exec_time.get(task)
            if row is None:
                raise ScheduleError(f"no execution times given for task {task!r}")
            for machine in self.machines:
                if machine not in row:
                    raise ScheduleError(
                        f"no execution time for task {task!r} on machine {machine!r}"
                    )
                if row[machine] < 0:
                    raise ScheduleError(
                        f"negative execution time for {task!r} on {machine!r}"
                    )

    def transfer(self, src: str, dst: str) -> float:
        """Transfer cost between consecutive tasks on *src* → *dst*."""
        if src == dst:
            return 0.0
        try:
            cost = self.comm_time[(src, dst)]
        except KeyError:
            raise ScheduleError(f"no communication time for machine pair {(src, dst)!r}") from None
        if cost < 0:
            raise ScheduleError(f"negative communication time for {(src, dst)!r}")
        return cost

    def with_slowdowns(
        self,
        comp_slowdown: Mapping[str, float],
        comm_slowdown: Mapping[tuple[str, str], float] | float = 1.0,
    ) -> "MappingProblem":
        """Apply per-machine / per-link slowdown factors.

        This is precisely how the paper derives Tables 3–4 from
        Tables 1–2: multiply M1's column by 3 (Table 3), and also the
        M1↔M2 transfer times by 3 (Table 4).

        Parameters
        ----------
        comp_slowdown:
            Factor per machine (machines not listed keep factor 1).
        comm_slowdown:
            Either one factor for every machine pair, or a mapping per
            ordered pair (pairs not listed keep factor 1).
        """
        for machine, factor in comp_slowdown.items():
            if factor < 1.0:
                raise ScheduleError(f"slowdown for {machine!r} must be >= 1, got {factor!r}")
        new_exec = {
            task: {
                machine: t * comp_slowdown.get(machine, 1.0)
                for machine, t in row.items()
            }
            for task, row in self.exec_time.items()
        }
        if isinstance(comm_slowdown, Mapping):
            new_comm = {
                pair: t * comm_slowdown.get(pair, 1.0) for pair, t in self.comm_time.items()
            }
        else:
            if comm_slowdown < 1.0:
                raise ScheduleError(f"comm slowdown must be >= 1, got {comm_slowdown!r}")
            new_comm = {pair: t * comm_slowdown for pair, t in self.comm_time.items()}
        return MappingProblem(
            tasks=self.tasks,
            machines=self.machines,
            exec_time=new_exec,
            comm_time=new_comm,
        )


@dataclass(frozen=True)
class MappingResult:
    """One candidate assignment and its predicted elapsed time."""

    assignment: tuple[str, ...]
    elapsed: float

    def placement(self, tasks: Sequence[str]) -> dict[str, str]:
        """Assignment as a {task: machine} dict."""
        return dict(zip(tasks, self.assignment))


def evaluate_mapping(problem: MappingProblem, assignment: Sequence[str]) -> float:
    """Elapsed time of *assignment* under the serial-chain model.

    ``assignment[k]`` is the machine of ``problem.tasks[k]``. The
    application executes its tasks in order; a data transfer is charged
    between consecutive tasks mapped to different machines — the
    execution model of the paper's introductory example (both-on-M1:
    12 + 4 = 16; split: 18 + 8 + 12 = 38; etc.).
    """
    if len(assignment) != len(problem.tasks):
        raise ScheduleError(
            f"assignment length {len(assignment)} != number of tasks {len(problem.tasks)}"
        )
    for machine in assignment:
        if machine not in problem.machines:
            raise ScheduleError(f"unknown machine {machine!r}")
    total = 0.0
    for k, task in enumerate(problem.tasks):
        total += problem.exec_time[task][assignment[k]]
        if k + 1 < len(assignment):
            total += problem.transfer(assignment[k], assignment[k + 1])
    return total


def rank_mappings(problem: MappingProblem) -> list[MappingResult]:
    """All assignments, best first (ties broken lexicographically).

    Exhaustive: ``len(machines) ** len(tasks)`` candidates.
    """
    results = [
        MappingResult(assignment=combo, elapsed=evaluate_mapping(problem, combo))
        for combo in itertools.product(problem.machines, repeat=len(problem.tasks))
    ]
    results.sort(key=lambda r: (r.elapsed, r.assignment))
    return results


def _search_best(problem: MappingProblem, max_candidates: int) -> MappingResult:
    """Exhaustive minimum-elapsed-time search with a prefix-cost cutoff."""
    space = len(problem.machines) ** len(problem.tasks)
    if space > max_candidates:
        raise ScheduleError(
            f"search space of {space} assignments exceeds max_candidates={max_candidates}"
        )

    tasks = problem.tasks
    machines = problem.machines
    best_assignment: tuple[str, ...] | None = None
    best_cost = float("inf")

    def extend(prefix: list[str], cost: float) -> None:
        nonlocal best_assignment, best_cost
        if cost >= best_cost:
            return
        k = len(prefix)
        if k == len(tasks):
            # cost < best_cost guaranteed by the guard above; prefer the
            # lexicographically smallest assignment on exact ties.
            best_cost = cost
            best_assignment = tuple(prefix)
            return
        task = tasks[k]
        row = problem.exec_time[task]
        # Expand cheapest immediate step first: the DFS then reaches a
        # near-optimal complete assignment early, and the tightened
        # incumbent prunes most of the remaining subtrees. The stable
        # sort keeps the original machine order on equal-cost steps, so
        # ties still resolve deterministically.
        if k == 0:
            steps = [(row[machine], machine) for machine in machines]
        else:
            prev = prefix[-1]
            steps = [
                (row[machine] + problem.transfer(prev, machine), machine)
                for machine in machines
            ]
        steps.sort(key=lambda sm: sm[0])
        for step, machine in steps:
            prefix.append(machine)
            extend(prefix, cost + step)
            prefix.pop()

    # Seed the incumbent with the lexicographically first assignment so
    # ties resolve the same way as rank_mappings().
    first = tuple(machines[0] for _ in tasks)
    best_assignment = first
    best_cost = evaluate_mapping(problem, first)
    extend([], 0.0)
    assert best_assignment is not None
    return MappingResult(assignment=best_assignment, elapsed=best_cost)


@dataclass(frozen=True)
class ConfidentMapping:
    """A :class:`MappingResult` with the confidence of the slowdowns behind it.

    Forwards the :class:`MappingResult` surface (``assignment``,
    ``elapsed``, :meth:`placement`) so it drops into call sites that
    consumed the bare result.
    """

    result: MappingResult
    confidence: Confidence

    @property
    def assignment(self) -> tuple[str, ...]:
        return self.result.assignment

    @property
    def elapsed(self) -> float:
        return self.result.elapsed

    def placement(self, tasks: Sequence[str]) -> dict[str, str]:
        """Assignment as a {task: machine} dict."""
        return self.result.placement(tasks)


def _tagged_value(slowdown: float | TaggedSlowdown, tags: list[Confidence]) -> float:
    """Collect a slowdown input's confidence into *tags*, return its value."""
    if isinstance(slowdown, TaggedSlowdown):
        tags.append(slowdown.confidence)
        return slowdown.value
    tags.append(Confidence.CALIBRATED)
    return float(slowdown)


def best_mapping(
    problem: MappingProblem,
    comp_slowdown: Mapping[str, float | TaggedSlowdown] | None = None,
    comm_slowdown: (
        float | TaggedSlowdown | Mapping[tuple[str, str], float | TaggedSlowdown] | None
    ) = None,
    max_candidates: int = 1_000_000,
) -> ConfidentMapping:
    """The minimum-elapsed-time assignment, with the confidence behind it.

    Uses exhaustive enumeration with a prefix-cost cutoff (a running
    partial sum already exceeding the incumbent prunes the subtree),
    which keeps moderate instances fast without changing the result.

    With no slowdown arguments the problem's matrices are searched as
    given (the caller asserts them: CALIBRATED confidence). With
    *comp_slowdown* / *comm_slowdown* the factors are first applied via
    :meth:`MappingProblem.with_slowdowns` — each may be a bare float
    (CALIBRATED) or a :class:`~repro.reliability.degrade.TaggedSlowdown`
    from the :class:`~repro.core.runtime.SlowdownManager` — and the
    result's ``confidence`` is the minimum over every factor that shaped
    the cost matrices. With tables missing the manager hands over
    ANALYTIC-tagged factors and the scheduler still ranks placements;
    the caller just sees how much trust the ranking deserves.

    Raises
    ------
    ScheduleError
        If the search space exceeds *max_candidates* (a guard against
        accidentally exponential calls; raise the limit explicitly for
        big instances).
    """
    tags: list[Confidence] = []
    contended = problem
    if comp_slowdown is not None or comm_slowdown is not None:
        comp_values = {
            machine: _tagged_value(t, tags) for machine, t in (comp_slowdown or {}).items()
        }
        comm_values: Mapping[tuple[str, str], float] | float
        if comm_slowdown is None:
            comm_values = 1.0
        elif isinstance(comm_slowdown, Mapping):
            comm_values = {pair: _tagged_value(t, tags) for pair, t in comm_slowdown.items()}
        else:
            comm_values = _tagged_value(comm_slowdown, tags)
        contended = problem.with_slowdowns(comp_values, comm_values)
    with _obs.span("schedule.best_mapping", kind="prediction") as sp:
        result = _search_best(contended, max_candidates)
        confident = ConfidentMapping(result=result, confidence=combine_confidence(*tags))
        sp.set("tasks", len(problem.tasks))
        sp.set("machines", len(problem.machines))
        sp.set("elapsed", result.elapsed)
        sp.set("confidence", confident.confidence.name)
    _obs.inc("prediction.mappings")
    return confident


def best_mapping_tagged(
    problem: MappingProblem,
    comp_slowdown: Mapping[str, TaggedSlowdown],
    comm_slowdown: TaggedSlowdown | Mapping[tuple[str, str], TaggedSlowdown] | None = None,
    max_candidates: int = 1_000_000,
) -> ConfidentMapping:
    """Deprecated alias of :func:`best_mapping`.

    The tagged/untagged split is gone: :func:`best_mapping` now takes
    the slowdown factors directly (floats or tagged) and always returns
    a :class:`ConfidentMapping`. This shim only warns and forwards.

    .. deprecated:: 1.1
       Call :func:`best_mapping` directly.
    """
    warnings.warn(
        "best_mapping_tagged() is deprecated; best_mapping() now accepts "
        "tagged slowdowns and always returns a ConfidentMapping",
        DeprecationWarning,
        stacklevel=2,
    )
    return best_mapping(
        problem,
        comp_slowdown=comp_slowdown,
        comm_slowdown=comm_slowdown,
        max_candidates=max_candidates,
    )
