"""Dedicated-mode communication cost models.

Implements the ``dcomm`` formulas of §3.1.1 (single linear piece, the
Sun/CM2 case) and §3.2.1 (piecewise linear with a threshold, the
Sun/Paragon case):

.. math::

    dcomm = \\sum_{i \\in \\{data sets\\}} N_i \\cdot
            \\left( \\alpha + \\frac{size_i}{\\beta} \\right)

with the (α, β) pair chosen per data set by the message-size threshold
in the piecewise case. These costs depend only on the
<application, problem-size, platform> triple and are computed once —
the run-time slowdown factor multiplies them (paper: "Since they do not
vary with load, they do not need to be recalculated at run-time").
"""

from __future__ import annotations

from typing import Iterable, Union

from .datasets import CommPattern, DataSet
from .params import LinearCommParams, PiecewiseCommParams

__all__ = ["CommParams", "dedicated_dataset_cost", "dedicated_comm_cost", "dedicated_pattern_cost"]

#: Either communication parameterisation accepted by the cost functions.
CommParams = Union[LinearCommParams, PiecewiseCommParams]


def dedicated_dataset_cost(dataset: DataSet, params: CommParams) -> float:
    """``N_i · (α + size_i/β)`` for one data set."""
    return dataset.count * params.message_time(dataset.size)


def dedicated_comm_cost(datasets: Iterable[DataSet], params: CommParams) -> float:
    """``dcomm`` for one direction: sum over the direction's data sets."""
    return sum(dedicated_dataset_cost(ds, params) for ds in datasets)


def dedicated_pattern_cost(
    pattern: CommPattern,
    params_out: CommParams,
    params_in: CommParams | None = None,
) -> tuple[float, float]:
    """``(dcomm_out, dcomm_in)`` for a full communication pattern.

    Parameters
    ----------
    pattern:
        The application's data sets in both directions.
    params_out:
        Calibrated parameters for the front-end → back-end direction.
    params_in:
        Parameters for the reverse direction; defaults to *params_out*
        (the Sun/CM2 platform is symmetric in the paper's model).
    """
    if params_in is None:
        params_in = params_out
    out_cost = dedicated_comm_cost(pattern.to_backend, params_out)
    in_cost = dedicated_comm_cost(pattern.to_frontend, params_in)
    return out_cost, in_cost
