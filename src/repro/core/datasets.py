"""Application-dependent communication descriptions.

The paper's communication cost formulas sum over *data sets*: groups of
same-sized messages. ``N_i`` (message count) and ``size_i`` (words per
message) are application-dependent parameters "easy for the user to
provide — usually related to the size of the problem being solved".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import ModelError

__all__ = ["DataSet", "CommPattern", "matrix_transfer"]


@dataclass(frozen=True)
class DataSet:
    """A group of ``count`` messages of ``size`` words each (N_i, size_i)."""

    count: int
    size: float

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ModelError(f"message count must be >= 0, got {self.count!r}")
        if self.size < 0:
            raise ModelError(f"message size must be >= 0, got {self.size!r}")

    @property
    def total_words(self) -> float:
        """Total payload carried by the data set."""
        return self.count * self.size


@dataclass(frozen=True)
class CommPattern:
    """All data sets an application moves, per direction.

    ``to_backend`` holds the data sets sent front-end → back-end
    (Sun → CM2 / Sun → Paragon); ``to_frontend`` the reverse direction.
    """

    to_backend: tuple[DataSet, ...] = ()
    to_frontend: tuple[DataSet, ...] = ()

    @staticmethod
    def symmetric(datasets: Iterable[DataSet]) -> "CommPattern":
        """A pattern moving the same data sets in both directions.

        This is the shape of the Figure 1 experiment: the M×M matrix is
        shipped to the CM2 before the computation and shipped back after.
        """
        ds = tuple(datasets)
        return CommPattern(to_backend=ds, to_frontend=ds)

    def __iter__(self) -> Iterator[tuple[str, DataSet]]:
        for ds in self.to_backend:
            yield "out", ds
        for ds in self.to_frontend:
            yield "in", ds

    @property
    def total_words(self) -> float:
        """Total payload in both directions."""
        return sum(ds.total_words for ds in self.to_backend) + sum(
            ds.total_words for ds in self.to_frontend
        )

    @property
    def total_messages(self) -> int:
        """Total message count in both directions."""
        return sum(ds.count for ds in self.to_backend) + sum(
            ds.count for ds in self.to_frontend
        )

    def max_message_size(self) -> float:
        """Largest message size in the pattern (0 when empty).

        The paper uses the *maximum message size used in the system* to
        pick the ``j`` bucket of ``delay_comm^{i,j}``.
        """
        sizes = [ds.size for ds in self.to_backend] + [ds.size for ds in self.to_frontend]
        return max(sizes, default=0.0)


def matrix_transfer(m: int, row_messages: bool = True) -> CommPattern:
    """Communication pattern for shipping an M×M matrix each way.

    Parameters
    ----------
    m:
        Matrix dimension.
    row_messages:
        When True (default, and how the CM-Fortran runtime behaved),
        the matrix moves as M messages of M words; otherwise as one
        M²-word message.
    """
    if m < 1:
        raise ModelError(f"matrix dimension must be >= 1, got {m!r}")
    if row_messages:
        ds = DataSet(count=m, size=float(m))
    else:
        ds = DataSet(count=1, size=float(m * m))
    return CommPattern.symmetric([ds])
