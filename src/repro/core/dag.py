"""Task graphs beyond the serial chain.

The paper's applications are "composed of a few coarse-grained tasks"
executing as a chain with transfers between consecutive tasks
(`core.scheduler`). Real heterogeneous applications are DAGs; this
module generalises the mapping machinery:

* :class:`TaskGraph` — tasks, precedence edges with data volumes;
* :func:`evaluate_dag_mapping` — elapsed time of an assignment under
  either the paper's *serialised* execution model (one coarse-grained
  task at a time, the natural reading of the paper's examples) or a
  *concurrent* model (classic DAG schedule: independent tasks on
  different machines overlap; each machine runs one task at a time);
* :func:`eft_mapping` — an earliest-finish-time list scheduler (an
  HEFT-style heuristic) for graphs whose assignment space is too large
  for :func:`repro.core.scheduler.best_mapping`-style enumeration.

All execution/communication inputs are *contention-adjusted* costs,
produced exactly as for the chain scheduler — so this composes with
`ext.multimachine.HeterogeneousSystem.adjusted_problem`-style inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..errors import ScheduleError

__all__ = ["TaskGraph", "evaluate_dag_mapping", "eft_mapping", "critical_path_bound"]


@dataclass(frozen=True)
class TaskGraph:
    """A DAG of coarse-grained tasks.

    Attributes
    ----------
    tasks:
        Task names.
    edges:
        ``{(producer, consumer): transfer_cost_scale}`` — the scale is
        multiplied into the machine-pair communication cost (1.0 keeps
        the pairwise cost as-is; use data-volume ratios otherwise).
    """

    tasks: tuple[str, ...]
    edges: Mapping[tuple[str, str], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ScheduleError("a task graph needs at least one task")
        if len(set(self.tasks)) != len(self.tasks):
            raise ScheduleError("duplicate task names")
        names = set(self.tasks)
        for (a, b), scale in self.edges.items():
            if a not in names or b not in names:
                raise ScheduleError(f"edge {(a, b)!r} references unknown task")
            if a == b:
                raise ScheduleError(f"self-edge on {a!r}")
            if scale < 0:
                raise ScheduleError(f"negative transfer scale on {(a, b)!r}")
        # Acyclicity check via the topological sort.
        self.topological_order()

    @staticmethod
    def chain(tasks: Sequence[str]) -> "TaskGraph":
        """The paper's shape: a linear chain with unit transfers."""
        edges = {(a, b): 1.0 for a, b in zip(tasks[:-1], tasks[1:])}
        return TaskGraph(tasks=tuple(tasks), edges=edges)

    def predecessors(self, task: str) -> list[tuple[str, float]]:
        return [(a, s) for (a, b), s in self.edges.items() if b == task]

    def successors(self, task: str) -> list[tuple[str, float]]:
        return [(b, s) for (a, b), s in self.edges.items() if a == task]

    def topological_order(self) -> list[str]:
        """Kahn's algorithm; raises on cycles. Ties keep declaration order."""
        indegree = {t: 0 for t in self.tasks}
        for (_, b) in self.edges:
            indegree[b] += 1
        ready = [t for t in self.tasks if indegree[t] == 0]
        order: list[str] = []
        while ready:
            task = ready.pop(0)
            order.append(task)
            for succ, _ in self.successors(task):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    # Keep deterministic declaration order among ready tasks.
                    ready.append(succ)
                    ready.sort(key=self.tasks.index)
        if len(order) != len(self.tasks):
            raise ScheduleError("task graph contains a cycle")
        return order


def _transfer_cost(
    comm_time: Mapping[tuple[str, str], float], src: str, dst: str, scale: float
) -> float:
    if src == dst or scale == 0.0:
        return 0.0
    try:
        return comm_time[(src, dst)] * scale
    except KeyError:
        raise ScheduleError(f"no communication time for machine pair {(src, dst)!r}") from None


def evaluate_dag_mapping(
    graph: TaskGraph,
    exec_time: Mapping[str, Mapping[str, float]],
    comm_time: Mapping[tuple[str, str], float],
    assignment: Mapping[str, str],
    concurrent: bool = False,
) -> float:
    """Elapsed time of *assignment* for *graph*.

    ``concurrent=False`` (default) is the paper's serialised model:
    tasks run one at a time in topological order; every cross-machine
    edge pays its transfer. ``concurrent=True`` computes the classic
    schedule length: a task starts when its machine is free and all
    its inputs (plus transfers) have arrived.
    """
    order = graph.topological_order()
    for task in order:
        if task not in assignment:
            raise ScheduleError(f"no machine assigned to task {task!r}")

    if not concurrent:
        total = 0.0
        for task in order:
            for pred, scale in graph.predecessors(task):
                total += _transfer_cost(comm_time, assignment[pred], assignment[task], scale)
            total += exec_time[task][assignment[task]]
        return total

    finish: dict[str, float] = {}
    machine_free: dict[str, float] = {}
    for task in order:
        machine = assignment[task]
        data_ready = 0.0
        for pred, scale in graph.predecessors(task):
            arrival = finish[pred] + _transfer_cost(
                comm_time, assignment[pred], machine, scale
            )
            data_ready = max(data_ready, arrival)
        start = max(data_ready, machine_free.get(machine, 0.0))
        finish[task] = start + exec_time[task][machine]
        machine_free[machine] = finish[task]
    return max(finish.values())


def critical_path_bound(
    graph: TaskGraph,
    exec_time: Mapping[str, Mapping[str, float]],
) -> float:
    """Lower bound on any concurrent schedule: the best-case critical path.

    Uses each task's *fastest* machine and ignores transfers — no
    schedule can beat it, a useful sanity bound for heuristics.
    """
    best = {t: min(exec_time[t].values()) for t in graph.tasks}
    longest: dict[str, float] = {}
    for task in graph.topological_order():
        incoming = [longest[p] for p, _ in graph.predecessors(task)]
        longest[task] = best[task] + (max(incoming) if incoming else 0.0)
    return max(longest.values())


def eft_mapping(
    graph: TaskGraph,
    exec_time: Mapping[str, Mapping[str, float]],
    comm_time: Mapping[tuple[str, str], float],
) -> dict[str, str]:
    """Earliest-finish-time list scheduling (HEFT-style heuristic).

    Tasks are ranked by *upward rank* (mean execution cost plus the
    heaviest mean-cost path to an exit task); each task then goes to
    the machine minimising its earliest finish time given the partial
    schedule. Returns the assignment; evaluate it with
    :func:`evaluate_dag_mapping` (``concurrent=True``).
    """
    machines = sorted({m for row in exec_time.values() for m in row})
    if not machines:
        raise ScheduleError("exec_time has no machines")

    mean_exec = {t: sum(exec_time[t].values()) / len(exec_time[t]) for t in graph.tasks}
    mean_comm = (
        sum(comm_time.values()) / len(comm_time) if comm_time else 0.0
    )

    rank: dict[str, float] = {}
    for task in reversed(graph.topological_order()):
        succ_ranks = [
            rank[s] + mean_comm * scale for s, scale in graph.successors(task)
        ]
        rank[task] = mean_exec[task] + (max(succ_ranks) if succ_ranks else 0.0)

    assignment: dict[str, str] = {}
    finish: dict[str, float] = {}
    machine_free: dict[str, float] = {m: 0.0 for m in machines}
    pending = set(graph.tasks)
    while pending:
        # Highest upward rank among tasks whose inputs are scheduled —
        # rank order alone can violate precedence on zero-cost ties.
        ready = [
            t for t in pending
            if all(p in finish for p, _ in graph.predecessors(t))
        ]
        task = max(ready, key=lambda t: (rank[t], -graph.tasks.index(t)))
        best_machine, best_finish = None, float("inf")
        for machine in machines:
            data_ready = 0.0
            for pred, scale in graph.predecessors(task):
                arrival = finish[pred] + _transfer_cost(
                    comm_time, assignment[pred], machine, scale
                )
                data_ready = max(data_ready, arrival)
            start = max(data_ready, machine_free[machine])
            end = start + exec_time[task][machine]
            if end < best_finish:
                best_machine, best_finish = machine, end
        assert best_machine is not None
        assignment[task] = best_machine
        finish[task] = best_finish
        machine_free[best_machine] = best_finish
        pending.remove(task)
    return assignment
