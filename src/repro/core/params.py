"""System-dependent parameter containers.

The paper splits model inputs into *system-dependent* parameters
(measured once per platform by benchmark suites — startup costs,
effective bandwidths, delay tables) and *application-dependent*
parameters (provided by the user — message counts/sizes, communication
fractions). This module holds the system-dependent side:

* :class:`LinearCommParams` — one (α, β) pair: ``t(s) = α + s/β``.
* :class:`PiecewiseCommParams` — the two-piece model of §3.2.1 with the
  ``threshold`` boundary (1024 words on the Sun/Paragon).
* :class:`DelayTable` — ``delay^i`` for ``i = 1..p_max`` contention
  generators (used for both ``delay_comp^i`` and ``delay_comm^i``).
* :class:`SizedDelayTable` — ``delay^{i,j}`` tables keyed by the
  contender message-size bucket ``j`` (§3.2.2; j ∈ {1, 500, 1000} on
  the Sun/Paragon, with j = 1 only used below 95 words).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..errors import ModelError
from ..units import check_positive

__all__ = [
    "LinearCommParams",
    "PiecewiseCommParams",
    "DelayTable",
    "SizedDelayTable",
    "SMALL_MESSAGE_CUTOFF",
]

#: Footnote 2 of the paper: the ``j = 1`` delay bucket is only used for
#: message sizes below 95 words.
SMALL_MESSAGE_CUTOFF = 95


@dataclass(frozen=True)
class LinearCommParams:
    """One linear piece of a communication cost model: ``α + size/β``.

    Attributes
    ----------
    alpha:
        Startup (latency) cost per message, seconds.
    beta:
        Effective bandwidth, words per second — the *achieved* rate, not
        the link's peak rate (paper §3.1.1).
    """

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.alpha) or self.alpha < 0:
            raise ModelError(f"alpha must be finite and >= 0, got {self.alpha!r}")
        check_positive(self.beta, "beta")

    def message_time(self, size_words: float) -> float:
        """Dedicated-mode time to move one message of *size_words*.

        Delegates to :func:`repro.core.batch.linear_message_times` —
        the batch kernel is the single implementation of the curve.
        """
        from .batch import linear_message_times

        return float(linear_message_times(size_words, self))


@dataclass(frozen=True)
class PiecewiseCommParams:
    """Two-piece linear communication model with a size threshold.

    ``small`` applies to messages of ``threshold`` or fewer words,
    ``large`` to strictly larger messages (paper §3.2.1).
    """

    threshold: float
    small: LinearCommParams
    large: LinearCommParams

    def __post_init__(self) -> None:
        check_positive(self.threshold, "threshold")

    def piece_for(self, size_words: float) -> LinearCommParams:
        """Return the linear piece governing a message of *size_words*."""
        return self.small if size_words <= self.threshold else self.large

    def message_time(self, size_words: float) -> float:
        """Dedicated-mode time to move one message of *size_words*.

        Delegates to :func:`repro.core.batch.piecewise_message_times`
        — the batch kernel is the single implementation of the curve
        (both regimes evaluated, the threshold selecting per element).
        """
        from .batch import piecewise_message_times

        return float(piecewise_message_times(size_words, self))


@dataclass(frozen=True)
class DelayTable:
    """``delay^i`` for ``i = 1 .. len(delays)`` contention generators.

    ``delays[i-1]`` is the *relative* delay imposed by exactly ``i``
    generators: a table value of 2.0 means the probed operation takes
    three times as long (slowdown 1 + 2.0) under that contention level.

    The table is built by :func:`repro.core.calibration.build_delay_table`
    from measured dedicated/contended times; it is queried by the
    slowdown formulas of §3.2.
    """

    delays: tuple[float, ...]
    label: str = ""

    def __post_init__(self) -> None:
        if not self.delays:
            raise ModelError("a DelayTable needs at least one entry (i = 1)")
        for i, d in enumerate(self.delays, start=1):
            if not math.isfinite(d) or d < 0:
                raise ModelError(f"delay^({i}) must be finite and >= 0, got {d!r}")

    @property
    def max_level(self) -> int:
        """Largest contention level *i* the table was measured for."""
        return len(self.delays)

    def delay(self, level: int, extrapolate: bool = False) -> float:
        """``delay^i`` for *level* simultaneous generators.

        Parameters
        ----------
        level:
            Number of simultaneously active contenders, ``>= 1``.
        extrapolate:
            When True, levels beyond the measured range extrapolate
            linearly from the last two entries (clamped at the last
            entry when only one exists). When False, out-of-range
            levels raise :class:`~repro.errors.ModelError`.
        """
        if level < 1:
            raise ModelError(f"contention level must be >= 1, got {level!r}")
        if level <= self.max_level:
            return self.delays[level - 1]
        if not extrapolate:
            raise ModelError(
                f"delay table {self.label!r} measured up to i={self.max_level}, "
                f"asked for i={level} (pass extrapolate=True to allow)"
            )
        if self.max_level == 1:
            return self.delays[-1]
        step = self.delays[-1] - self.delays[-2]
        return max(0.0, self.delays[-1] + step * (level - self.max_level))


@dataclass(frozen=True)
class SizedDelayTable:
    """``delay^{i,j}``: per-message-size delay tables (paper §3.2.2).

    Attributes
    ----------
    tables:
        Mapping from message-size bucket ``j`` (words) to the
        :class:`DelayTable` measured with generators using ``j``-word
        messages. The Sun/Paragon reproduction uses j ∈ {1, 500, 1000}.
    small_cutoff:
        The smallest bucket (j = 1 in the paper) is only eligible for
        message sizes strictly below this value (footnote 2: 95 words).
    saturation:
        Size above which the delay is roughly constant (≈1000 words on
        the Sun/Paragon); sizes above it use the largest bucket. Kept
        for documentation/reporting; bucket choice already achieves it.
    """

    tables: Mapping[int, DelayTable]
    small_cutoff: int = SMALL_MESSAGE_CUTOFF
    saturation: float | None = None

    def __post_init__(self) -> None:
        if not self.tables:
            raise ModelError("a SizedDelayTable needs at least one j bucket")
        for j in self.tables:
            if j < 1:
                raise ModelError(f"bucket sizes must be >= 1 word, got {j!r}")

    @property
    def buckets(self) -> tuple[int, ...]:
        """Available ``j`` buckets, ascending."""
        return tuple(sorted(self.tables))

    def select_bucket(self, message_size: float) -> int:
        """Pick the bucket ``j`` closest to *message_size*.

        Implements the paper's rule: choose the available ``j`` closest
        to the actual size ``k``, except that the smallest bucket is
        only used when ``k < small_cutoff``.
        """
        if message_size < 0:
            raise ModelError(f"message size must be >= 0, got {message_size!r}")
        buckets = self.buckets
        eligible = buckets
        if len(buckets) > 1 and message_size >= self.small_cutoff:
            # Exclude the j=1-style bucket for non-tiny messages.
            eligible = tuple(j for j in buckets if j >= self.small_cutoff) or buckets
        return min(eligible, key=lambda j: (abs(j - message_size), j))

    def delay(self, level: int, message_size: float, extrapolate: bool = False) -> float:
        """``delay^{i,j}`` with ``j`` chosen for *message_size*."""
        bucket = self.select_bucket(message_size)
        return self.tables[bucket].delay(level, extrapolate=extrapolate)

    def delay_for_bucket(self, level: int, bucket: int, extrapolate: bool = False) -> float:
        """``delay^{i,j}`` for an explicitly chosen bucket ``j``.

        Used by the Figure 7/8 reproductions, which compare the model
        error when forcing j = 1, 500 and 1000.
        """
        if bucket not in self.tables:
            raise ModelError(f"no delay table for bucket j={bucket!r}; have {self.buckets}")
        return self.tables[bucket].delay(level, extrapolate=extrapolate)
