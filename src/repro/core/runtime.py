"""Run-time slowdown bookkeeping.

The slowdown factor "is always calculated at run-time … recalculated
every time the system status changes or when new applications arrive"
(§2), and the paper is explicit about the update costs: generating all
``pcomp_i``/``pcomm_i`` takes O(p²), adding an application O(p),
removing one O(p²) unless the distribution can be deconvolved.

:class:`SlowdownManager` packages that protocol: it holds the profiles
of the applications currently on the front-end, maintains the two
overlap distributions incrementally, and answers slowdown queries in
O(p). Incremental maintenance is observable through
:attr:`SlowdownManager.rebuilds` (tested to stay at zero across
arrivals).
"""

from __future__ import annotations

from typing import Iterator, Mapping

import numpy as np

from ..errors import ModelError
from ..obs import context as _obs
from ..reliability.degrade import (
    Confidence,
    DegradationLog,
    TaggedSlowdown,
    analytic_comm_slowdown,
    analytic_comp_slowdown,
)
from .params import DelayTable, SizedDelayTable
from .probability import (
    add_application,
    overlap_distribution,
    remove_application,
)
from .slowdown import weighted_delay
from .workload import ApplicationProfile

__all__ = ["SlowdownManager"]


class SlowdownManager:
    """Tracks competing applications and serves current slowdown factors.

    Parameters
    ----------
    delay_comp:
        Calibrated ``delay_comp^i`` table: the delay imposed by *i*
        compute-bound contenders — a term of the §3.2.1 *communication*
        slowdown. ``None`` degrades communication queries to the
        analytic fallback (see :meth:`comm_slowdown_tagged`).
    delay_comm:
        Calibrated ``delay_comm^i`` table: the delay imposed by *i*
        communicating contenders — the other term of the §3.2.1
        *communication* slowdown. ``None`` degrades like *delay_comp*.
    delay_comm_sized:
        Calibrated ``delay_comm^{i,j}`` tables: the message-size-bucketed
        delays of the §3.2.2 *computation* slowdown. ``None`` degrades
        computation queries to the analytic fallback.
    extrapolate:
        Allow delay-table extrapolation beyond the calibrated maximum
        contention level (the plain query methods; the tagged methods
        always fall back, tagging the answer instead of raising).
    """

    def __init__(
        self,
        delay_comp: DelayTable | None,
        delay_comm: DelayTable | None,
        delay_comm_sized: SizedDelayTable | None,
        extrapolate: bool = False,
    ) -> None:
        self.delay_comp = delay_comp
        self.delay_comm = delay_comm
        self.delay_comm_sized = delay_comm_sized
        self.extrapolate = extrapolate
        self._profiles: dict[str, ApplicationProfile] = {}
        self._pcomm = np.array([1.0])
        self._pcomp = np.array([1.0])
        #: Number of O(p²) full rebuilds performed (departure fallback).
        self.rebuilds = 0
        #: Every answer served below CALIBRATED confidence, by source.
        self.degradations = DegradationLog()

    # -- population management ------------------------------------------------

    def __len__(self) -> int:
        return len(self._profiles)

    def __contains__(self, name: str) -> bool:
        return name in self._profiles

    def __iter__(self) -> Iterator[ApplicationProfile]:
        return iter(self._profiles.values())

    @property
    def p(self) -> int:
        """Number of competing applications currently registered."""
        return len(self._profiles)

    def arrive(self, profile: ApplicationProfile) -> None:
        """Register a new application — O(p) incremental update."""
        if profile.name in self._profiles:
            raise ModelError(f"application {profile.name!r} is already registered")
        self._profiles[profile.name] = profile
        self._pcomm = add_application(self._pcomm, profile.comm_fraction)
        self._pcomp = add_application(self._pcomp, profile.comp_fraction)

    def depart(self, name: str) -> None:
        """Deregister an application.

        Attempts the O(p) deconvolution first and falls back to the
        O(p²) rebuild when the fraction makes deconvolution
        ill-conditioned — the paper's stated costs.
        """
        profile = self._profiles.pop(name, None)
        if profile is None:
            raise ModelError(f"application {name!r} is not registered")
        try:
            self._pcomm = remove_application(self._pcomm, profile.comm_fraction)
            self._pcomp = remove_application(self._pcomp, profile.comp_fraction)
        except ModelError:
            self._rebuild()

    def _rebuild(self) -> None:
        fractions = [p.comm_fraction for p in self._profiles.values()]
        self._pcomm = overlap_distribution(fractions)
        self._pcomp = overlap_distribution([1.0 - f for f in fractions])
        self.rebuilds += 1

    # -- distribution access -----------------------------------------------------

    @property
    def pcomm(self) -> np.ndarray:
        """Current ``pcomm_i`` distribution (copy)."""
        return self._pcomm.copy()

    @property
    def pcomp(self) -> np.ndarray:
        """Current ``pcomp_i`` distribution (copy)."""
        return self._pcomp.copy()

    # -- slowdown queries -----------------------------------------------------------

    def comm_slowdown(self) -> float:
        """Current communication slowdown (§3.2.1) — O(p).

        With a missing table this delegates to the fallback chain of
        :meth:`comm_slowdown_tagged` (dropping the tag); with tables
        present and ``extrapolate=False``, contention beyond the
        calibrated range raises :class:`~repro.errors.ModelError` as it
        always did.
        """
        if not self._profiles:
            return 1.0
        if self.delay_comp is None or self.delay_comm is None:
            return self.comm_slowdown_tagged().value
        _obs.inc("slowdown.comm.hit")
        return (
            1.0
            + weighted_delay(self._pcomp, self.delay_comp, self.extrapolate)
            + weighted_delay(self._pcomm, self.delay_comm, self.extrapolate)
        )

    def comp_slowdown(self, j: float | None = None) -> float:
        """Current computation slowdown (§3.2.2) — O(p).

        *j* defaults to the maximum message size among registered
        applications, per the paper's recommendation. Missing-table
        behaviour mirrors :meth:`comm_slowdown`.
        """
        if not self._profiles:
            return 1.0
        if self.delay_comm_sized is None:
            return self.comp_slowdown_tagged(j).value
        _obs.inc("slowdown.comp.hit")
        cpu_term = float(np.dot(np.arange(len(self._pcomp)), self._pcomp))
        # Subtracting nothing: index 0 contributes 0 to the dot product.
        size = j if j is not None else self.max_message_size()
        comm_term = 0.0
        for i in range(1, len(self._pcomm)):
            if self._pcomm[i] > 0.0:
                comm_term += self._pcomm[i] * self.delay_comm_sized.delay(
                    i, size, self.extrapolate
                )
        return 1.0 + cpu_term + comm_term

    # -- degradation-aware queries ---------------------------------------------

    def _max_active_level(self, dist: np.ndarray) -> int:
        """Largest contention level with nonzero probability mass."""
        return max((i for i in range(1, len(dist)) if dist[i] > 0.0), default=0)

    def comm_slowdown_tagged(self) -> TaggedSlowdown:
        """Communication slowdown through the fallback chain — never raises.

        Chain: calibrated tables → linear extrapolation beyond the
        calibrated range (EXTRAPOLATED) → the ``1 + Σ f_k`` closed form
        when a table is missing entirely (ANALYTIC). Every degraded
        answer is recorded in :attr:`degradations`.
        """
        if not self._profiles:
            return TaggedSlowdown(1.0, Confidence.CALIBRATED)
        if self.delay_comp is None or self.delay_comm is None:
            self.degradations.record("comm", Confidence.ANALYTIC)
            _obs.inc("slowdown.comm.miss")
            fractions = [p.comm_fraction for p in self._profiles.values()]
            return TaggedSlowdown(analytic_comm_slowdown(fractions), Confidence.ANALYTIC)
        value = (
            1.0
            + weighted_delay(self._pcomp, self.delay_comp, extrapolate=True)
            + weighted_delay(self._pcomm, self.delay_comm, extrapolate=True)
        )
        within = (
            self._max_active_level(self._pcomp) <= self.delay_comp.max_level
            and self._max_active_level(self._pcomm) <= self.delay_comm.max_level
        )
        if within:
            _obs.inc("slowdown.comm.hit")
            return TaggedSlowdown(value, Confidence.CALIBRATED)
        self.degradations.record("comm", Confidence.EXTRAPOLATED)
        _obs.inc("slowdown.comm.extrapolated")
        return TaggedSlowdown(value, Confidence.EXTRAPOLATED)

    def comp_slowdown_tagged(self, j: float | None = None) -> TaggedSlowdown:
        """Computation slowdown through the fallback chain — never raises.

        Chain: calibrated ``delay_comm^{i,j}`` bucket → extrapolation
        beyond its contention range (EXTRAPOLATED) → the ``p + 1``
        equal-share law when the sized tables are missing (ANALYTIC).
        """
        if not self._profiles:
            return TaggedSlowdown(1.0, Confidence.CALIBRATED)
        if self.delay_comm_sized is None:
            self.degradations.record("comp", Confidence.ANALYTIC)
            _obs.inc("slowdown.comp.miss")
            return TaggedSlowdown(analytic_comp_slowdown(self.p), Confidence.ANALYTIC)
        cpu_term = float(np.dot(np.arange(len(self._pcomp)), self._pcomp))
        size = j if j is not None else self.max_message_size()
        comm_term = 0.0
        for i in range(1, len(self._pcomm)):
            if self._pcomm[i] > 0.0:
                comm_term += self._pcomm[i] * self.delay_comm_sized.delay(i, size, True)
        value = 1.0 + cpu_term + comm_term
        comm_level = self._max_active_level(self._pcomm)
        if comm_level > 0:
            bucket = self.delay_comm_sized.select_bucket(size)
            if comm_level > self.delay_comm_sized.tables[bucket].max_level:
                self.degradations.record("comp", Confidence.EXTRAPOLATED)
                _obs.inc("slowdown.comp.extrapolated")
                return TaggedSlowdown(value, Confidence.EXTRAPOLATED)
        _obs.inc("slowdown.comp.hit")
        return TaggedSlowdown(value, Confidence.CALIBRATED)

    def cpu_bound_count(self) -> int:
        """Number of registered pure CPU-bound applications (p of §3.1)."""
        return sum(1 for p in self._profiles.values() if p.comm_fraction == 0.0)

    def max_message_size(self) -> float:
        """Largest message size among registered applications."""
        return max((p.message_size for p in self._profiles.values()), default=0.0)

    def snapshot(self) -> Mapping[str, ApplicationProfile]:
        """Immutable view of the registered applications."""
        return dict(self._profiles)
