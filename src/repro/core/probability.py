"""Poisson-binomial overlap probabilities (``pcomp_i`` / ``pcomm_i``).

The Sun/Paragon slowdown formulas weight the measured delay tables by
the probability that exactly *i* of the *p* contending applications are
simultaneously computing (``pcomp_i``) or communicating (``pcomm_i``).
Treating each application *k* as independently communicating with
long-run probability ``f_k`` (and computing with ``1 - f_k``), the
number of simultaneous communicators follows a **Poisson-binomial
distribution**.

The paper stresses the run-time efficiency of this computation:

* generating all ``pcomm_i`` (or ``pcomp_i``) for ``1 <= i <= p`` takes
  ``O(p²)`` time by dynamic programming (:func:`overlap_distribution`);
* when a new application arrives, the values update in ``O(p)``
  (:func:`add_application`);
* when an application finishes, the table is regenerated in ``O(p²)``
  (or ``O(p)`` by polynomial deconvolution when numerically safe,
  :func:`remove_application`).

The worked example of §3.2.1 (p = 2, fractions 0.2 and 0.3) is encoded
in the unit tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ModelError
from ..units import check_fraction

__all__ = [
    "overlap_distribution",
    "add_application",
    "remove_application",
    "comm_comp_distributions",
    "expected_active",
]

#: Fractions within this distance of 0 or 1 make polynomial
#: deconvolution in :func:`remove_application` ill-conditioned; the
#: caller should rebuild with :func:`overlap_distribution` instead.
_DECONV_LIMIT = 1e-9


def overlap_distribution(fractions: Sequence[float]) -> np.ndarray:
    """Distribution of the number of simultaneously *active* applications.

    Parameters
    ----------
    fractions:
        ``f_k`` for each of the *p* applications: the long-run fraction
        of time application *k* is active (communicating, for
        ``pcomm``; computing, for ``pcomp``). Each must lie in [0, 1].

    Returns
    -------
    numpy.ndarray
        Array ``dist`` of length ``p + 1`` with
        ``dist[i] = P[exactly i active]``. ``dist.sum() == 1``.

    Notes
    -----
    This is the classic ``O(p²)`` dynamic program: ``dist`` is the
    coefficient vector of ``∏_k ((1 - f_k) + f_k x)``.
    """
    dist = np.array([1.0])
    for k, f in enumerate(fractions):
        check_fraction(f, f"fractions[{k}]")
        dist = add_application(dist, f)
    return dist


def add_application(dist: np.ndarray, fraction: float) -> np.ndarray:
    """Fold one more application into an overlap distribution in O(p).

    Returns a new array one element longer; *dist* is not modified.
    """
    f = check_fraction(fraction, "fraction")
    p = len(dist)
    new = np.empty(p + 1)
    new[0] = dist[0] * (1.0 - f)
    if p > 1:
        new[1:p] = dist[1:] * (1.0 - f) + dist[:-1] * f
    new[p] = dist[p - 1] * f
    return new


def remove_application(dist: np.ndarray, fraction: float) -> np.ndarray:
    """Remove one application from an overlap distribution.

    Performs the inverse of :func:`add_application` by synthetic
    division of the distribution polynomial by ``(1 - f) + f·x``.
    Division is carried out from the numerically dominant end (the
    constant term when ``f < 0.5``, the leading term otherwise), which
    keeps the recurrence stable for interior fractions.

    Raises
    ------
    ModelError
        If the distribution has length 1 (no application to remove) or
        *fraction* is so close to 0 or 1 that deconvolution would
        divide by ~0 — rebuild with :func:`overlap_distribution` then.
    """
    f = check_fraction(fraction, "fraction")
    p = len(dist) - 1
    if p < 1:
        raise ModelError("cannot remove an application from an empty distribution")
    if min(f, 1.0 - f) < _DECONV_LIMIT:
        # (1-f) or f is ~0: one division direction is exact, use it.
        if f < 0.5:
            return np.asarray(dist[:-1]) / (1.0 - f)
        return np.asarray(dist[1:]) / f
    out = np.empty(p)
    if f <= 0.5:
        # Divide from the constant term: dist[i] = out[i](1-f) + out[i-1] f.
        g = 1.0 - f
        acc = 0.0
        for i in range(p):
            out[i] = (dist[i] - acc * f) / g
            acc = out[i]
    else:
        # Divide from the leading term: dist[p] = out[p-1] f.
        acc = 0.0
        for i in range(p - 1, -1, -1):
            out[i] = (dist[i + 1] - acc * (1.0 - f)) / f
            acc = out[i]
    # Deconvolution can produce tiny negatives from round-off.
    np.clip(out, 0.0, None, out=out)
    total = out.sum()
    if not np.isfinite(total) or total <= 0:
        raise ModelError("deconvolution lost the distribution; rebuild from fractions")
    return out / total


def comm_comp_distributions(
    comm_fractions: Sequence[float],
) -> tuple[np.ndarray, np.ndarray]:
    """``(pcomm, pcomp)`` arrays for applications with given comm fractions.

    ``pcomm[i]`` is the probability that exactly *i* applications
    communicate simultaneously; ``pcomp[i]`` that exactly *i* compute.
    Each application computes whenever it is not communicating, so
    ``pcomp`` is the overlap distribution of the complementary
    fractions. (The two arrays are reverses of each other only when
    every application is two-phase, which they are in this model.)
    """
    fractions = [check_fraction(f, "comm_fraction") for f in comm_fractions]
    pcomm = overlap_distribution(fractions)
    pcomp = overlap_distribution([1.0 - f for f in fractions])
    return pcomm, pcomp


def expected_active(dist: np.ndarray) -> float:
    """Mean number of simultaneously active applications."""
    return float(np.dot(np.arange(len(dist)), dist))
