"""Poisson-binomial overlap probabilities (``pcomp_i`` / ``pcomm_i``).

The Sun/Paragon slowdown formulas weight the measured delay tables by
the probability that exactly *i* of the *p* contending applications are
simultaneously computing (``pcomp_i``) or communicating (``pcomm_i``).
Treating each application *k* as independently communicating with
long-run probability ``f_k`` (and computing with ``1 - f_k``), the
number of simultaneous communicators follows a **Poisson-binomial
distribution**.

The paper stresses the run-time efficiency of this computation:

* generating all ``pcomm_i`` (or ``pcomp_i``) for ``1 <= i <= p`` takes
  ``O(p²)`` time by dynamic programming (:func:`overlap_distribution`);
* when a new application arrives, the values update in ``O(p)``
  (:func:`add_application`);
* when an application finishes, the table is regenerated in ``O(p²)``
  (or ``O(p)`` by polynomial deconvolution when numerically safe,
  :func:`remove_application`).

The worked example of §3.2.1 (p = 2, fractions 0.2 and 0.3) is encoded
in the unit tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ModelError
from ..units import check_fraction

__all__ = [
    "overlap_distribution",
    "add_application",
    "remove_application",
    "comm_comp_distributions",
    "expected_active",
]

#: Fractions within this distance of 0 or 1 make polynomial
#: deconvolution in :func:`remove_application` ill-conditioned; the
#: caller should rebuild with :func:`overlap_distribution` instead.
_DECONV_LIMIT = 1e-9

#: Negative probability mass (from round-off) tolerated per removal
#: before the deconvolution is declared lost. Sub-epsilon negatives are
#: clamped to zero and renormalized away; anything larger means the
#: division genuinely diverged and the caller must rebuild.
_NEGATIVE_MASS_LIMIT = 1e-12

#: Per-coefficient round-trip residual (re-adding the removed fraction
#: must reproduce the input distribution) tolerated per removal, scaled
#: by the population size. Synthetic division accumulates one rounding
#: error per recurrence step, so the bound grows linearly in ``p``.
_ROUNDTRIP_LIMIT = 1e-13


def _verified(
    out: np.ndarray, dist: np.ndarray, f: float, tol: float | None = None
) -> np.ndarray:
    """Clamp, renormalize and verify a deconvolution result.

    Three checks, each of which raises :class:`~repro.errors.ModelError`
    so :class:`~repro.core.runtime.SlowdownManager` falls back to the
    O(p²) rebuild instead of propagating a drifted distribution:

    * negative mass beyond :data:`_NEGATIVE_MASS_LIMIT` (round-off
      produces at most sub-epsilon negatives; more means divergence);
    * a non-finite or non-positive total;
    * a round-trip residual — ``add_application(out, f)`` must
      reproduce the input distribution to within *tol* per coefficient
      (default ``p · _ROUNDTRIP_LIMIT``). This is the tight condition:
      accumulated drift that never goes negative still trips it, which
      is what keeps long arrive/depart churn within 1e-12 of a fresh
      rebuild. The exact near-0/1 branch passes a looser *tol*: it
      legitimately discards ``min(f, 1-f) ≤ _DECONV_LIMIT`` of tail
      mass, which is invisible in the output but not in the round trip.
    """
    p = len(out)
    if tol is None:
        tol = _ROUNDTRIP_LIMIT * max(1, p)
    negative = out < 0.0
    if negative.any():
        if float(-out[negative].sum()) > _NEGATIVE_MASS_LIMIT:
            raise ModelError(
                "deconvolution produced non-trivial negative probability mass; "
                "rebuild from fractions"
            )
        out = np.clip(out, 0.0, None)
    total = out.sum()
    if not np.isfinite(total) or total <= 0:
        raise ModelError("deconvolution lost the distribution; rebuild from fractions")
    out = out / total
    residual = float(np.max(np.abs(add_application(out, f) - dist)))
    if residual > tol:
        raise ModelError(
            f"deconvolution round-trip residual {residual:.3e} exceeds the "
            "accuracy budget; rebuild from fractions"
        )
    return out


def overlap_distribution(fractions: Sequence[float]) -> np.ndarray:
    """Distribution of the number of simultaneously *active* applications.

    Parameters
    ----------
    fractions:
        ``f_k`` for each of the *p* applications: the long-run fraction
        of time application *k* is active (communicating, for
        ``pcomm``; computing, for ``pcomp``). Each must lie in [0, 1].

    Returns
    -------
    numpy.ndarray
        Array ``dist`` of length ``p + 1`` with
        ``dist[i] = P[exactly i active]``. ``dist.sum() == 1``.

    Notes
    -----
    This is the classic ``O(p²)`` dynamic program: ``dist`` is the
    coefficient vector of ``∏_k ((1 - f_k) + f_k x)``.
    """
    dist = np.array([1.0])
    for k, f in enumerate(fractions):
        check_fraction(f, f"fractions[{k}]")
        dist = add_application(dist, f)
    return dist


def add_application(dist: np.ndarray, fraction: float) -> np.ndarray:
    """Fold one more application into an overlap distribution in O(p).

    Returns a new array one element longer; *dist* is not modified.
    """
    f = check_fraction(fraction, "fraction")
    p = len(dist)
    new = np.empty(p + 1)
    new[0] = dist[0] * (1.0 - f)
    if p > 1:
        new[1:p] = dist[1:] * (1.0 - f) + dist[:-1] * f
    new[p] = dist[p - 1] * f
    return new


def remove_application(dist: np.ndarray, fraction: float) -> np.ndarray:
    """Remove one application from an overlap distribution.

    Performs the inverse of :func:`add_application` by synthetic
    division of the distribution polynomial by ``(1 - f) + f·x``.
    Division is carried out from the numerically dominant end (the
    constant term when ``f < 0.5``, the leading term otherwise), which
    keeps the recurrence stable for interior fractions.

    Raises
    ------
    ModelError
        If the distribution has length 1 (no application to remove),
        *fraction* is so close to 0 or 1 that deconvolution would
        divide by ~0, or the result fails the accuracy verification in
        :func:`_verified` — rebuild with :func:`overlap_distribution`
        then.
    """
    f = check_fraction(fraction, "fraction")
    p = len(dist) - 1
    if p < 1:
        raise ModelError("cannot remove an application from an empty distribution")
    dist = np.asarray(dist, dtype=float)
    if min(f, 1.0 - f) < _DECONV_LIMIT:
        # (1-f) or f is ~0: one division direction is exact, use it.
        # The discarded opposite-end coefficient holds at most
        # ~_DECONV_LIMIT of mass, so the round trip is bounded by that.
        tol = 4.0 * _DECONV_LIMIT
        if f < 0.5:
            return _verified(dist[:-1] / (1.0 - f), dist, f, tol)
        return _verified(dist[1:] / f, dist, f, tol)
    out = np.empty(p)
    if f <= 0.5:
        # Divide from the constant term: dist[i] = out[i](1-f) + out[i-1] f.
        g = 1.0 - f
        acc = 0.0
        for i in range(p):
            out[i] = (dist[i] - acc * f) / g
            acc = out[i]
    else:
        # Divide from the leading term: dist[p] = out[p-1] f.
        acc = 0.0
        for i in range(p - 1, -1, -1):
            out[i] = (dist[i + 1] - acc * (1.0 - f)) / f
            acc = out[i]
    return _verified(out, dist, f)


def comm_comp_distributions(
    comm_fractions: Sequence[float],
) -> tuple[np.ndarray, np.ndarray]:
    """``(pcomm, pcomp)`` arrays for applications with given comm fractions.

    ``pcomm[i]`` is the probability that exactly *i* applications
    communicate simultaneously; ``pcomp[i]`` that exactly *i* compute.
    Each application computes whenever it is not communicating, so
    ``pcomp`` is the overlap distribution of the complementary
    fractions. (The two arrays are reverses of each other only when
    every application is two-phase, which they are in this model.)
    """
    fractions = [check_fraction(f, "comm_fraction") for f in comm_fractions]
    pcomm = overlap_distribution(fractions)
    pcomp = overlap_distribution([1.0 - f for f in fractions])
    return pcomm, pcomp


def expected_active(dist: np.ndarray) -> float:
    """Mean number of simultaneously active applications."""
    return float(np.dot(np.arange(len(dist)), dist))
