"""The paper's contribution: the contention model.

Public surface of the analytical side of the reproduction — slowdown
factors, overlap probabilities, communication cost models, calibration
procedures, performance predictions, and the contention-aware mapper.
"""

from .calibration import (
    build_delay_table,
    build_sized_delay_table,
    estimate_cm2_params,
    find_saturation_threshold,
    fit_linear,
    fit_piecewise,
    relative_delays,
)
from .batch import (
    PlacementGrid,
    backend_times,
    cm2_slowdowns,
    comm_costs,
    decide_placement_batch,
    fragmented_message_times,
    frontend_times,
    linear_message_times,
    message_times,
    mixed_times,
    piecewise_message_times,
    placement_grid,
)
from .commcost import dedicated_comm_cost, dedicated_dataset_cost, dedicated_pattern_cost
from .dag import TaskGraph, critical_path_bound, eft_mapping, evaluate_dag_mapping
from .measurement import TagUsage, UsageMonitor
from .datasets import CommPattern, DataSet, matrix_transfer
from .params import (
    DelayTable,
    LinearCommParams,
    PiecewiseCommParams,
    SizedDelayTable,
    SMALL_MESSAGE_CUTOFF,
)
from .prediction import (
    BackendTaskCosts,
    ConfidentPlacement,
    PlacementPrediction,
    decide_placement,
    decide_placement_tagged,
    predict_backend_time,
    predict_comm_cost,
    predict_frontend_time,
    predict_mixed_time,
    should_offload,
)
from .probability import (
    add_application,
    comm_comp_distributions,
    expected_active,
    overlap_distribution,
    remove_application,
)
from .runtime import SlowdownManager
from .scheduler import (
    ConfidentMapping,
    MappingProblem,
    MappingResult,
    best_mapping,
    best_mapping_tagged,
    evaluate_mapping,
    rank_mappings,
)
from .slowdown import (
    cm2_slowdown,
    paragon_comm_slowdown,
    paragon_comp_slowdown,
    weighted_delay,
)
from .workload import ApplicationProfile, comm_fractions, max_message_size

__all__ = [
    "ApplicationProfile",
    "BackendTaskCosts",
    "CommPattern",
    "ConfidentMapping",
    "ConfidentPlacement",
    "DataSet",
    "DelayTable",
    "LinearCommParams",
    "MappingProblem",
    "MappingResult",
    "PiecewiseCommParams",
    "PlacementGrid",
    "PlacementPrediction",
    "SMALL_MESSAGE_CUTOFF",
    "SizedDelayTable",
    "SlowdownManager",
    "TagUsage",
    "TaskGraph",
    "UsageMonitor",
    "critical_path_bound",
    "eft_mapping",
    "evaluate_dag_mapping",
    "add_application",
    "backend_times",
    "best_mapping",
    "best_mapping_tagged",
    "build_delay_table",
    "build_sized_delay_table",
    "cm2_slowdown",
    "cm2_slowdowns",
    "comm_comp_distributions",
    "comm_costs",
    "comm_fractions",
    "decide_placement",
    "decide_placement_batch",
    "decide_placement_tagged",
    "dedicated_comm_cost",
    "dedicated_dataset_cost",
    "dedicated_pattern_cost",
    "estimate_cm2_params",
    "evaluate_mapping",
    "expected_active",
    "find_saturation_threshold",
    "fit_linear",
    "fit_piecewise",
    "fragmented_message_times",
    "frontend_times",
    "linear_message_times",
    "matrix_transfer",
    "max_message_size",
    "message_times",
    "mixed_times",
    "overlap_distribution",
    "paragon_comm_slowdown",
    "paragon_comp_slowdown",
    "piecewise_message_times",
    "placement_grid",
    "predict_backend_time",
    "predict_comm_cost",
    "predict_mixed_time",
    "predict_frontend_time",
    "rank_mappings",
    "relative_delays",
    "remove_application",
    "should_offload",
    "weighted_delay",
]
