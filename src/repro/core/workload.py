"""Application-dependent workload characterisations.

An :class:`ApplicationProfile` is what the paper assumes the system
knows about each application sharing the platform: the fraction of time
it communicates with the back-end, and the typical message size it
uses. The paper: *"The percentages of computation and communication
associated with each application ... can be either directly given by
the users or calculated from computation and communication costs (in
dedicated mode) provided by the user."* Both routes are provided here.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from ..errors import ModelError
from ..units import check_fraction, check_nonnegative
from .datasets import CommPattern

__all__ = ["ApplicationProfile", "max_message_size", "comm_fractions"]


@dataclass(frozen=True)
class ApplicationProfile:
    """What the contention model knows about one competing application.

    Attributes
    ----------
    name:
        Identifier (used by the run-time :class:`~repro.core.runtime.SlowdownManager`).
    comm_fraction:
        Long-run fraction of time the application spends communicating
        with the back-end; it computes the remaining ``1 - comm_fraction``.
    message_size:
        Typical message size (words) the application transfers; feeds
        the ``j`` bucket choice of ``delay_comm^{i,j}``. Zero is
        allowed for pure CPU-bound applications.
    """

    name: str
    comm_fraction: float
    message_size: float = 0.0

    def __post_init__(self) -> None:
        check_fraction(self.comm_fraction, "comm_fraction")
        check_nonnegative(self.message_size, "message_size")
        if self.comm_fraction > 0 and self.message_size <= 0:
            raise ModelError(
                f"application {self.name!r} communicates {self.comm_fraction:.0%} of the "
                "time but declares no message size"
            )

    @property
    def comp_fraction(self) -> float:
        """Long-run fraction of time spent computing."""
        return 1.0 - self.comm_fraction

    @classmethod
    def cpu_bound(cls, name: str) -> "ApplicationProfile":
        """A purely compute-bound application (the Sun/CM2 contenders)."""
        return cls(name=name, comm_fraction=0.0, message_size=0.0)

    @classmethod
    def from_costs(
        cls,
        name: str,
        dedicated_comp: float,
        dedicated_comm: float,
        message_size: float = 0.0,
    ) -> "ApplicationProfile":
        """Derive the communication fraction from dedicated-mode costs.

        ``comm_fraction = dcomm / (dcomp + dcomm)`` — the paper's second
        route for obtaining the percentages.
        """
        comp = check_nonnegative(dedicated_comp, "dedicated_comp")
        comm = check_nonnegative(dedicated_comm, "dedicated_comm")
        total = comp + comm
        if total <= 0:
            raise ModelError(f"application {name!r} has zero total dedicated cost")
        return cls(name=name, comm_fraction=comm / total, message_size=message_size)

    @classmethod
    def from_pattern(
        cls,
        name: str,
        dedicated_comp: float,
        dedicated_comm: float,
        pattern: CommPattern,
    ) -> "ApplicationProfile":
        """Like :meth:`from_costs`, taking the message size from a pattern."""
        return cls.from_costs(
            name, dedicated_comp, dedicated_comm, message_size=pattern.max_message_size()
        )

    def with_fraction(self, comm_fraction: float) -> "ApplicationProfile":
        """A copy with a different communication fraction."""
        return replace(self, comm_fraction=comm_fraction)


def comm_fractions(profiles: Iterable[ApplicationProfile]) -> list[float]:
    """Communication fractions of *profiles*, in order."""
    return [p.comm_fraction for p in profiles]


def max_message_size(profiles: Sequence[ApplicationProfile]) -> float:
    """Largest message size used by any profile (0 when none communicate).

    §3.2.2: the ``j`` value "should reflect the maximum message size
    used in the system".
    """
    return max((p.message_size for p in profiles), default=0.0)
