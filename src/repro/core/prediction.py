"""Contended performance predictions and the offloading rule.

Combines dedicated-mode costs with slowdown factors to produce the
quantities a scheduler compares:

* ``T_frontend`` — elapsed time executing the task on the front-end
  (Sun) under contention: ``dcomp_sun × slowdown``.
* ``T_backend`` (CM2 form) — elapsed time executing on the back-end:
  ``max(dcomp_cm2 + didle_cm2, dserial_cm2 × slowdown)`` (§3.1.2); the
  back-end is gated either by its own work + idle gaps, or by the
  contended serial stream on the front-end, whichever dominates.
* ``C_out`` / ``C_in`` — contended communication costs:
  ``dcomm × slowdown``.

and the paper's Equation (1): offload a task to the back-end only when

.. math::

   T_{front} > T_{back} + C_{front \\to back} + C_{back \\to front}.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ModelError
from ..reliability.degrade import Confidence, TaggedSlowdown, combine_confidence
from ..units import check_nonnegative

__all__ = [
    "BackendTaskCosts",
    "PlacementPrediction",
    "ConfidentPlacement",
    "predict_frontend_time",
    "predict_backend_time",
    "predict_comm_cost",
    "should_offload",
    "decide_placement",
    "decide_placement_tagged",
]


@dataclass(frozen=True)
class BackendTaskCosts:
    """Dedicated-mode cost breakdown of a task run on the back-end (§3.1.2).

    Attributes
    ----------
    dcomp:
        Time the back-end spends executing the task's parallel
        instructions (dedicated mode).
    didle:
        Back-end idle time while waiting for instructions from the
        front-end (dedicated mode).
    dserial:
        Front-end time executing the task's serial/scalar instructions
        (dedicated mode). Invariant from the paper: ``didle <= dserial``
        because the front-end may pre-execute serial code while the
        back-end computes.
    """

    dcomp: float
    didle: float
    dserial: float

    def __post_init__(self) -> None:
        check_nonnegative(self.dcomp, "dcomp")
        check_nonnegative(self.didle, "didle")
        check_nonnegative(self.dserial, "dserial")

    @property
    def dedicated_elapsed(self) -> float:
        """Elapsed time in a dedicated system (slowdown = 1)."""
        return max(self.dcomp + self.didle, self.dserial)


def predict_frontend_time(dcomp: float, slowdown: float) -> float:
    """``T_front = dcomp × slowdown`` (§3.1.2 / §3.2.2)."""
    check_nonnegative(dcomp, "dcomp")
    if slowdown < 1.0:
        raise ModelError(f"slowdown must be >= 1, got {slowdown!r}")
    return dcomp * slowdown


def predict_backend_time(costs: BackendTaskCosts, slowdown: float) -> float:
    """``T_back = max(dcomp + didle, dserial × slowdown)`` (§3.1.2).

    With no contention this reduces to the dedicated elapsed time; as
    contention grows, the contended serial stream on the front-end
    eventually becomes the bottleneck — the effect behind the Figure 3
    crossover at M ≈ 200.
    """
    if slowdown < 1.0:
        raise ModelError(f"slowdown must be >= 1, got {slowdown!r}")
    return max(costs.dcomp + costs.didle, costs.dserial * slowdown)


def predict_comm_cost(dcomm: float, slowdown: float) -> float:
    """``C = dcomm × slowdown`` (§3.1.1 / §3.2.1)."""
    check_nonnegative(dcomm, "dcomm")
    if slowdown < 1.0:
        raise ModelError(f"slowdown must be >= 1, got {slowdown!r}")
    return dcomm * slowdown


def should_offload(t_frontend: float, t_backend: float, c_out: float, c_in: float) -> bool:
    """Equation (1): run on the back-end iff it wins *including* transfers."""
    return t_frontend > t_backend + c_out + c_in


def predict_mixed_time(
    dcomp: float,
    dcomm_out: float,
    dcomm_in: float,
    comp_slowdown: float,
    comm_slowdown: float,
) -> float:
    """Prediction for an application alternating computation and communication.

    The paper's typical applications "execute for a long period of
    time, alternating computation with communication cycles" (§2); the
    natural long-term prediction applies each slowdown to its own
    share:

    .. math::

       T = dcomp \\cdot s_{comp} + (dcomm_{out} + dcomm_{in}) \\cdot s_{comm}

    Cycle boundaries are ignored — exactly the long-term view the
    paper argues for; the mixed-workload experiment quantifies how
    well it holds.
    """
    return predict_frontend_time(dcomp, comp_slowdown) + predict_comm_cost(
        dcomm_out + dcomm_in, comm_slowdown
    )


@dataclass(frozen=True)
class PlacementPrediction:
    """The full comparison a scheduler makes for one task.

    ``offload`` is True when Equation (1) favours the back-end.
    """

    t_frontend: float
    t_backend: float
    c_out: float
    c_in: float

    @property
    def backend_total(self) -> float:
        """Back-end elapsed time including both transfers."""
        return self.t_backend + self.c_out + self.c_in

    @property
    def offload(self) -> bool:
        return should_offload(self.t_frontend, self.t_backend, self.c_out, self.c_in)

    @property
    def best_time(self) -> float:
        """Predicted elapsed time of the better placement."""
        return min(self.t_frontend, self.backend_total)

    @property
    def advantage(self) -> float:
        """Time saved by the better placement over the alternative."""
        return abs(self.t_frontend - self.backend_total)


def decide_placement(
    dcomp_frontend: float,
    backend_costs: BackendTaskCosts,
    dcomm_out: float,
    dcomm_in: float,
    comp_slowdown: float,
    comm_slowdown: float,
    backend_serial_slowdown: float | None = None,
) -> PlacementPrediction:
    """Assemble a :class:`PlacementPrediction` from dedicated costs.

    Parameters
    ----------
    dcomp_frontend:
        Dedicated time of the task on the front-end.
    backend_costs:
        Dedicated cost breakdown of the task on the back-end.
    dcomm_out, dcomm_in:
        Dedicated transfer costs to and from the back-end.
    comp_slowdown:
        Slowdown applied to front-end computation (and, by default, to
        the back-end task's serial stream).
    comm_slowdown:
        Slowdown applied to transfers.
    backend_serial_slowdown:
        Override for the slowdown of the back-end task's serial stream;
        defaults to *comp_slowdown* (they coincide on the Sun/CM2,
        where all contention is front-end CPU contention).
    """
    serial_slow = backend_serial_slowdown if backend_serial_slowdown is not None else comp_slowdown
    return PlacementPrediction(
        t_frontend=predict_frontend_time(dcomp_frontend, comp_slowdown),
        t_backend=predict_backend_time(backend_costs, serial_slow),
        c_out=predict_comm_cost(dcomm_out, comm_slowdown),
        c_in=predict_comm_cost(dcomm_in, comm_slowdown),
    )


@dataclass(frozen=True)
class ConfidentPlacement:
    """A :class:`PlacementPrediction` with the confidence of its inputs.

    ``confidence`` is the minimum over the slowdown factors that fed the
    comparison — the Equation (1) verdict is only as trustworthy as its
    least-calibrated input.
    """

    prediction: PlacementPrediction
    confidence: Confidence

    @property
    def offload(self) -> bool:
        return self.prediction.offload

    @property
    def best_time(self) -> float:
        return self.prediction.best_time


def decide_placement_tagged(
    dcomp_frontend: float,
    backend_costs: BackendTaskCosts,
    dcomm_out: float,
    dcomm_in: float,
    comp_slowdown: TaggedSlowdown,
    comm_slowdown: TaggedSlowdown,
    backend_serial_slowdown: TaggedSlowdown | None = None,
) -> ConfidentPlacement:
    """:func:`decide_placement` over confidence-tagged slowdowns.

    Feed it the output of
    :meth:`~repro.core.runtime.SlowdownManager.comp_slowdown_tagged` /
    :meth:`~repro.core.runtime.SlowdownManager.comm_slowdown_tagged` and
    the placement decision stays available even when the model has
    degraded to its analytic fallbacks — tagged so the caller knows.
    """
    prediction = decide_placement(
        dcomp_frontend,
        backend_costs,
        dcomm_out,
        dcomm_in,
        comp_slowdown.value,
        comm_slowdown.value,
        None if backend_serial_slowdown is None else backend_serial_slowdown.value,
    )
    tags = [comp_slowdown.confidence, comm_slowdown.confidence]
    if backend_serial_slowdown is not None:
        tags.append(backend_serial_slowdown.confidence)
    return ConfidentPlacement(prediction=prediction, confidence=combine_confidence(*tags))
